//! Crash-matrix suite for the checkpoint/compaction subsystem: a deterministic
//! crash is injected at every phase of the checkpoint sequence
//! (stage → publish → truncate) and *inside* each phase's NVM writes (store- and
//! flush-granularity triggers), across checkpoint generations and pending-
//! write-back policies. After every crash, recovery must produce a state
//! linearizable with the acknowledged history:
//!
//! * no acknowledged update is lost (`durable_index >= acked`),
//! * nothing is resurrected (`durable_index <= attempted`, and no recovered
//!   operation lies at or below the checkpoint watermark recovery started from),
//! * the recovered value equals the replayed history exactly.

use remembering_consistently::nvm::{CrashTrigger, NvmPool, PmemConfig};
use remembering_consistently::objects::{CounterOp, CounterRead, CounterSpec};
use remembering_consistently::onll::{Durable, Hooks, OnllConfig, Phase};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the crash lands relative to the targeted checkpoint phase.
#[derive(Debug, Clone, Copy)]
enum CrashMode {
    /// Freeze the machine exactly at the phase hook (between the phases).
    AtPhase,
    /// Arm a store-granularity trigger at the hook: the crash fires inside the
    /// next NVM store burst (e.g. mid state write, mid header write).
    MidStore,
    /// Arm a flush-granularity trigger at the hook: the crash fires at the next
    /// flush, leaving its line pending (dropped or applied per pool policy).
    MidFlush,
}

struct Outcome {
    acked: u64,
    attempted: u64,
    durable_index: u64,
    checkpoint_index: u64,
    min_recovered_index: Option<u64>,
    recovered_value: i64,
    crashed: bool,
}

/// Runs updates with automatic checkpointing every `CP_EVERY` updates and
/// crashes at occurrence `nth` of `phase` (1-based), in the given mode.
fn run_scenario(phase: Phase, mode: CrashMode, nth: u64, apply_pending: f64) -> Outcome {
    const CP_EVERY: u64 = 20;
    const TOTAL_OPS: u64 = 70;

    let pool = NvmPool::new(
        PmemConfig::with_capacity(32 << 20)
            .apply_pending_at_crash(apply_pending)
            .crash_seed(0xC0FFEE ^ nth),
    );
    let cfg = OnllConfig::named("cp-crash")
        .log_capacity(TOTAL_OPS as usize + 8)
        .checkpoint_every(CP_EVERY)
        .checkpoint_slot_bytes(256);
    let seen = Arc::new(AtomicU64::new(0));
    let hooks = {
        let pool = pool.clone();
        let seen = seen.clone();
        Hooks::new(move |p, _pid| {
            if p == phase && seen.fetch_add(1, Ordering::SeqCst) + 1 == nth {
                match mode {
                    CrashMode::AtPhase => {
                        let _ = pool.crash();
                    }
                    CrashMode::MidStore => pool.arm_crash(CrashTrigger::AfterStores(1)),
                    CrashMode::MidFlush => pool.arm_crash(CrashTrigger::AfterFlushes(1)),
                }
            }
        })
    };
    let object =
        Durable::<CounterSpec>::create_with_hooks(pool.clone(), cfg.clone(), hooks).unwrap();
    let mut acked = 0u64;
    let mut attempted = 0u64;
    {
        let mut handle = object.register().unwrap();
        for _ in 0..TOTAL_OPS {
            if pool.is_frozen() {
                break;
            }
            attempted += 1;
            let value = handle.update_with_checkpoint(CounterOp::Add(1));
            if pool.is_frozen() {
                break;
            }
            let value = value.unwrap();
            acked += 1;
            assert_eq!(value, acked as i64, "pre-crash return values are exact");
        }
    }
    let crashed = pool.is_frozen();
    let token = pool.crash();
    pool.disarm_crash();
    pool.restart(token);
    drop(object);

    let (recovered, report) = Durable::<CounterSpec>::recover_with_checkpoints(pool, cfg).unwrap();
    Outcome {
        acked,
        attempted,
        durable_index: report.durable_index,
        checkpoint_index: report.checkpoint_index,
        min_recovered_index: report.recovered_ops.iter().map(|(idx, _)| *idx).min(),
        recovered_value: recovered.read_latest(&CounterRead::Get),
        crashed,
    }
}

fn assert_consistent(o: &Outcome, label: &str) {
    assert!(
        o.durable_index >= o.acked,
        "{label}: lost acknowledged updates (acked {} > durable {})",
        o.acked,
        o.durable_index
    );
    assert!(
        o.durable_index <= o.attempted,
        "{label}: resurrected updates that were never attempted (durable {} > attempted {})",
        o.durable_index,
        o.attempted
    );
    assert_eq!(
        o.recovered_value, o.durable_index as i64,
        "{label}: recovered value does not replay the durable history"
    );
    if let Some(min) = o.min_recovered_index {
        assert!(
            min > o.checkpoint_index,
            "{label}: replayed an operation ({min}) at or below the checkpoint watermark ({}) — a truncated op was resurrected",
            o.checkpoint_index
        );
    }
}

#[test]
fn crash_matrix_over_every_checkpoint_phase() {
    for &phase in &Phase::CHECKPOINT_PHASES {
        for mode in [CrashMode::AtPhase, CrashMode::MidStore, CrashMode::MidFlush] {
            // nth = 1: crash at the very first checkpoint (no older checkpoint to
            // fall back to). nth = 2: crash at the second (fallback must recover
            // the first checkpoint plus the tail; the first's truncation already
            // happened).
            for nth in [1u64, 2] {
                for apply_pending in [0.0, 1.0] {
                    let label = format!(
                        "phase {phase:?}, mode {mode:?}, checkpoint #{nth}, apply={apply_pending}"
                    );
                    let o = run_scenario(phase, mode, nth, apply_pending);
                    assert!(o.crashed, "{label}: the armed crash never fired");
                    assert_consistent(&o, &label);
                }
            }
        }
    }
}

#[test]
fn crash_after_publish_recovers_from_the_new_checkpoint() {
    // Crashing right after the publish fence (before truncation) must recover
    // from the *new* watermark: the second checkpoint covers 40 updates.
    let o = run_scenario(Phase::AfterCheckpointPublish, CrashMode::AtPhase, 2, 0.0);
    assert_consistent(&o, "after-publish");
    assert_eq!(o.checkpoint_index, 40);
    assert_eq!(o.durable_index, 40);
}

#[test]
fn crash_before_publish_falls_back_to_the_previous_checkpoint() {
    // Crashing between stage and publish of checkpoint #2 leaves its slot
    // invalid; recovery must fall back to checkpoint #1 (watermark 20) and
    // replay the complete tail — nothing was truncated above 20.
    let o = run_scenario(Phase::BeforeCheckpointPublish, CrashMode::AtPhase, 2, 0.0);
    assert_consistent(&o, "before-publish");
    assert_eq!(o.checkpoint_index, 20);
    // The 40th update's own persist fence completed before its piggybacked
    // checkpoint began, so the full tail (21..=40) is replayed from the logs.
    assert_eq!(o.durable_index, 40);
}

#[test]
fn no_crash_control_run_checkpoints_and_recovers_cleanly() {
    // nth beyond the number of checkpoints: the crash never fires during the
    // workload; the final power cycle exercises plain recovery with checkpoints.
    let o = run_scenario(Phase::AfterLogTruncate, CrashMode::AtPhase, 100, 0.0);
    assert!(!o.crashed);
    assert_eq!(o.acked, 70);
    assert_eq!(o.durable_index, 70);
    assert_eq!(o.recovered_value, 70);
    assert_eq!(o.checkpoint_index, 60);
}

#[test]
fn lazy_compaction_of_other_processes_logs_survives_crashes() {
    // Process 0 checkpoints; process 1 only updates. After the checkpoint
    // publishes, process 1's next update compacts its own log below the
    // watermark. A crash at any point of that interleaving must stay
    // consistent and must never resurrect compacted operations.
    for crash_events in [0u64, 3, 7, 12, 20, 35, 60, 120] {
        let pool = NvmPool::new(
            PmemConfig::with_capacity(32 << 20)
                .apply_pending_at_crash(0.0)
                .crash_seed(crash_events),
        );
        let cfg = OnllConfig::named("cp-multi")
            .max_processes(2)
            .log_capacity(256)
            .checkpoint_every(8)
            .checkpoint_slot_bytes(256);
        let object = Durable::<CounterSpec>::create(pool.clone(), cfg.clone()).unwrap();
        let mut acked = 0u64;
        let mut attempted = 0u64;
        {
            let mut h0 = object.register().unwrap();
            let mut h1 = object.register().unwrap();
            // Interleave: h1 updates, h0 updates-with-checkpoints.
            if crash_events > 0 {
                pool.arm_crash(CrashTrigger::AfterEvents(crash_events));
            }
            for _ in 0..30 {
                if pool.is_frozen() {
                    break;
                }
                attempted += 1;
                let r = h1.try_update(CounterOp::Add(1));
                if pool.is_frozen() {
                    break;
                }
                r.unwrap();
                acked += 1;

                if pool.is_frozen() {
                    break;
                }
                attempted += 1;
                let r = h0.update_with_checkpoint(CounterOp::Add(1));
                if pool.is_frozen() {
                    break;
                }
                r.unwrap();
                acked += 1;
            }
        }
        let token = pool.crash();
        pool.disarm_crash();
        pool.restart(token);
        drop(object);
        let (recovered, report) =
            Durable::<CounterSpec>::recover_with_checkpoints(pool, cfg).unwrap();
        let label = format!("crash after {crash_events} events");
        let o = Outcome {
            acked,
            attempted,
            durable_index: report.durable_index,
            checkpoint_index: report.checkpoint_index,
            min_recovered_index: report.recovered_ops.iter().map(|(idx, _)| *idx).min(),
            recovered_value: recovered.read_latest(&CounterRead::Get),
            crashed: true,
        };
        assert_consistent(&o, &label);
    }
}
