//! Experiment E4 (Theorem 6.3): in the adversarial schedule, every process issues
//! at least one persistent fence per update before it can respond — and with ONLL
//! exactly one, demonstrating that the bound is tight.

use remembering_consistently::harness::lower_bound::demonstrate_fence_necessity;
use remembering_consistently::harness::run_lower_bound_experiment;

#[test]
fn every_process_pays_at_least_one_fence() {
    for n in [1, 2, 3, 5, 8] {
        let report = run_lower_bound_experiment(n);
        assert_eq!(report.fences_before_response.len(), n);
        assert!(
            report.lower_bound_holds(),
            "n={n}: some process responded without a persistent fence: {report:?}"
        );
    }
}

#[test]
fn the_bound_is_tight_for_onll() {
    for n in [1, 2, 4] {
        let report = run_lower_bound_experiment(n);
        assert!(report.upper_bound_holds(), "n={n}: {report:?}");
        assert!(
            report.fences_before_response.iter().all(|&f| f == 1),
            "n={n}: ONLL should issue exactly one fence per update: {report:?}"
        );
    }
}

#[test]
fn dropping_the_fence_violates_durable_linearizability() {
    let (with_fence, without_fence) = demonstrate_fence_necessity();
    assert_eq!(with_fence, 1, "the fenced update must survive the crash");
    assert_eq!(
        without_fence, 0,
        "the unfenced update is lost — the contradiction used in the proof"
    );
}
