//! Loopback integration tests against a **real** `onll_server` process.
//!
//! Everything here crosses a process boundary: the store lives in the spawned
//! server, the clients live in this test, and the only shared state is the
//! wire protocol (and, for the restart test, the on-disk pool files). Covered:
//!
//! * concurrent sessions submitting through the per-shard combiners,
//! * a client that disconnects mid-request and retries on a fresh connection
//!   using resolve + replay-under-the-same-identity (exactly-once),
//! * session slot reuse after disconnects,
//! * fence accounting visible through `STATS`.

use remembering_consistently::nvm::ScratchDir;
use remembering_consistently::objects::KvValue;
use remembering_consistently::server::{RetryOutcome, WireClient};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

const SERVER_BIN: &str = env!("CARGO_BIN_EXE_onll_server");

/// A spawned server process, killed on drop. `addr` is read from the child's
/// `READY <port> <recovered>` line.
struct ServerProcess {
    child: Child,
    addr: String,
    recovered: u64,
}

impl ServerProcess {
    fn spawn(dir: &std::path::Path, shards: usize, clients: usize) -> Self {
        let mut child = Command::new(SERVER_BIN)
            .arg("serve")
            .arg("--dir")
            .arg(dir)
            .args(["--shards", &shards.to_string()])
            .args(["--clients", &clients.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn onll_server");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read READY line");
        let parts: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(parts.first(), Some(&"READY"), "unexpected line: {line}");
        let port: u16 = parts[1].parse().expect("port");
        let recovered: u64 = parts[2].parse().expect("recovered total");
        ServerProcess {
            child,
            addr: format!("127.0.0.1:{port}"),
            recovered,
        }
    }

    fn kill(mut self) {
        self.child.kill().expect("SIGKILL server");
        self.child.wait().expect("reap server");
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn value_of(v: &KvValue) -> Option<&str> {
    match v {
        KvValue::Value(s) => s.as_deref(),
        KvValue::Len(_) => panic!("expected a value, got a length"),
    }
}

#[test]
fn concurrent_sessions_combine_and_read_back() {
    let dir = ScratchDir::new("server-loopback").unwrap();
    let server = ServerProcess::spawn(dir.path(), 2, 8);
    assert_eq!(
        server.recovered, 0,
        "fresh directory must create, not recover"
    );

    let sessions: u32 = 4;
    let ops_per_session: usize = 40;
    std::thread::scope(|scope| {
        for conn in 0..sessions {
            let addr = server.addr.clone();
            scope.spawn(move || {
                let mut client =
                    WireClient::connect_with_retry(&addr, conn, 10).expect("connect session");
                for k in 0..ops_per_session {
                    let key = format!("c{conn}-k{k}");
                    let (prev, shard, op_id) =
                        client.put(&key, &format!("v{k}")).expect("durable put");
                    assert_eq!(value_of(&prev), None, "{key} written twice");
                    assert_eq!(op_id.pid, conn + 1, "identity pid is the session slot");
                    assert!(shard < client.num_shards());
                }
            });
        }
    });

    // Every write is visible through a fresh session, and the identity spaces
    // advanced: each session burned ops_per_session sequence numbers.
    let mut reader = WireClient::connect_with_retry(&server.addr, 0, 10).expect("reconnect");
    for conn in 0..sessions {
        for k in 0..ops_per_session {
            let key = format!("c{conn}-k{k}");
            let got = reader.get(&key).expect("get");
            assert_eq!(value_of(&got), Some(format!("v{k}").as_str()), "{key}");
        }
    }
    let stats = reader.stats().expect("stats");
    assert_eq!(stats.combined_ops, sessions as u64 * ops_per_session as u64);
    assert!(
        stats.batches <= stats.combined_ops,
        "batches combine one or more ops each"
    );
    server.kill();
}

/// The exactly-once path without a server crash: the *client* vanishes
/// mid-request (reply unread), reconnects on the same session index, resolves
/// the in-flight identity, and replays it only if it never executed. Whatever
/// the interleaving, the final state reflects exactly one application.
#[test]
fn disconnect_mid_request_resolves_then_replays_exactly_once() {
    let dir = ScratchDir::new("server-disconnect").unwrap();
    let server = ServerProcess::spawn(dir.path(), 2, 4);

    // Warm the session so the replayed op is not the identity space's first.
    let mut client = WireClient::connect_with_retry(&server.addr, 1, 10).expect("connect");
    client.put("warm", "w").expect("warm put");

    // Fire a put and abandon the socket without reading the reply. The server
    // may or may not have committed it by the time we reconnect — both paths
    // must end in exactly one application.
    let (shard, op_id) = client.send_put("inflight", "first").expect("send");
    client.abandon();

    let mut retry = WireClient::connect_with_retry(&server.addr, 1, 20).expect("reconnect");
    assert_eq!(
        retry.shard_of("inflight"),
        shard,
        "routing is deterministic"
    );
    let outcome = retry.resolve(shard, op_id).expect("resolve");
    match outcome {
        RetryOutcome::Executed(v) => {
            // Committed before the disconnect: the previous value must be the
            // fresh key's None, and the state must show it.
            assert_eq!(value_of(&v), None);
        }
        RetryOutcome::Unknown => {
            let (prev, replay_shard) = retry
                .put_with_id(op_id, "inflight", "first")
                .expect("replay under the same identity");
            assert_eq!(replay_shard, shard);
            assert_eq!(value_of(&prev), None);
        }
        RetryOutcome::Truncated => panic!("nothing was checkpointed, truncation impossible"),
    }
    let got = retry.get("inflight").expect("get");
    assert_eq!(value_of(&got), Some("first"));

    // The replayed identity now resolves Executed — a second retry would not
    // double-apply.
    assert_eq!(
        retry.resolve(shard, op_id).expect("re-resolve"),
        RetryOutcome::Executed(KvValue::Value(None))
    );

    // The identity space moved past the replayed op: the next update gets a
    // fresh identity and commits normally.
    let (_, _, next_id) = retry.put("inflight", "second").expect("follow-up");
    if retry.shard_of("inflight") == shard {
        assert!(next_id.seq > op_id.seq, "fresh identity after a replay");
    }
    let got = retry.get("inflight").expect("get");
    assert_eq!(value_of(&got), Some("second"));
    server.kill();
}

/// Kill-9 the server mid-request, restart it on the same directory, and run
/// the client recovery protocol. The acknowledged op must survive; the
/// in-flight op must resolve Executed or Unknown and end applied exactly once.
#[test]
fn server_kill9_restart_replays_unacked_identity_exactly_once() {
    let dir = ScratchDir::new("server-kill9-loopback").unwrap();
    let server = ServerProcess::spawn(dir.path(), 2, 4);

    let mut client = WireClient::connect_with_retry(&server.addr, 0, 10).expect("connect");
    let (_, acked_shard, acked_id) = client.put("acked", "safe").expect("acked put");
    let (inflight_shard, inflight_id) = client.send_put("inflight", "maybe").expect("send");
    // SIGKILL with the request possibly mid-fence. The reply may or may not
    // ever arrive; we don't read it.
    server.kill();
    drop(client);

    let server = ServerProcess::spawn(dir.path(), 2, 4);
    assert!(
        server.recovered >= 1,
        "the acknowledged op must be durable, recovered only {}",
        server.recovered
    );
    let mut retry = WireClient::connect_with_retry(&server.addr, 0, 20).expect("reconnect");

    // The acknowledged identity is stable across the crash.
    assert_eq!(
        retry.resolve(acked_shard, acked_id).expect("resolve acked"),
        RetryOutcome::Executed(KvValue::Value(None))
    );
    let got = retry.get("acked").expect("get acked");
    assert_eq!(value_of(&got), Some("safe"));

    // The in-flight identity either committed before the kill or is safely
    // replayable.
    match retry
        .resolve(inflight_shard, inflight_id)
        .expect("resolve inflight")
    {
        RetryOutcome::Executed(v) => assert_eq!(value_of(&v), None),
        RetryOutcome::Unknown => {
            let (prev, _) = retry
                .put_with_id(inflight_id, "inflight", "maybe")
                .expect("replay");
            assert_eq!(value_of(&prev), None);
        }
        RetryOutcome::Truncated => panic!("nothing was checkpointed, truncation impossible"),
    }
    let got = retry.get("inflight").expect("get inflight");
    assert_eq!(value_of(&got), Some("maybe"));
    assert_eq!(
        retry
            .resolve(inflight_shard, inflight_id)
            .expect("re-resolve"),
        RetryOutcome::Executed(KvValue::Value(None))
    );
    server.kill();
}
