//! Kill-9 crash matrix on the file backend: the only end-to-end durability
//! test in the repo that survives an **actual** process death.
//!
//! A child `real_restart` process builds a KV store on a file-backed pool and
//! acknowledges each update on stdout; this supervisor `SIGKILL`s it after a
//! randomized number of acknowledgements, re-execs it in `verify` mode, and
//! checks the surviving history:
//!
//! * `check_durable_linearizability` (Definition 5.6) over the observed
//!   pre-crash history vs the recovered operation identities,
//! * the recovered state digest equals a local replay of the durable prefix,
//! * every acknowledged operation is within the durable prefix.
//!
//! One quick scenario runs in tier-1; the full randomized matrix (including
//! checkpointed and double-kill runs) is `#[ignore]`-gated for the slow CI
//! job: `cargo test --test kill9_crash -- --ignored`.

use remembering_consistently::harness::{
    check_durable_linearizability, DurabilityViolation, EventKind, OpRecord,
};
use remembering_consistently::nvm::ScratchDir;
use remembering_consistently::objects::{KvOp, KvRead, KvSpec, KvValue};
use remembering_consistently::onll::OpId;
use remembering_consistently::restart_protocol as proto;
use remembering_consistently::server::{RetryOutcome, WireClient};
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

const BIN: &str = env!("CARGO_BIN_EXE_real_restart");
const SERVER_BIN: &str = env!("CARGO_BIN_EXE_onll_server");

#[derive(Debug, Clone, Copy)]
struct Scenario {
    seed: u64,
    ops: u64,
    kill_after_acks: u64,
    checkpoint_every: u64,
    /// Run the child's pool on a shared group-commit device file
    /// (`real_restart --coalesce`) instead of a private file per pool.
    coalesce: bool,
    /// Arm the child's `run` incarnation to abort itself *inside* the
    /// coalescing window via `ONLL_DEVICE_ABORT` (e.g. `"after-pwrites:25"`):
    /// the process dies between its batch's pwrites and the fsync, or between
    /// the fsync and the rider wakeups — the two spots a group-commit bug
    /// would acknowledge non-durable operations from.
    device_abort: Option<&'static str>,
}

impl Scenario {
    fn label(&self) -> String {
        format!(
            "seed={} ops={} kill_after_acks={} checkpoint_every={} coalesce={} device_abort={:?} (rerun: real_restart run --seed {} --ops {})",
            self.seed,
            self.ops,
            self.kill_after_acks,
            self.checkpoint_every,
            self.coalesce,
            self.device_abort,
            self.seed,
            self.ops
        )
    }
}

/// Everything the supervisor observed from one (killed) child incarnation.
/// Each entry carries the logical timestamp (line ordinal) it was read at:
/// the child is sequential and the pipe preserves order, so read order *is*
/// real-time order, and the reconstructed history must preserve it.
#[derive(Debug, Default)]
struct Observed {
    /// (op ordinal, op id, line stamp) in invocation order.
    invoked: Vec<(u64, OpId, u64)>,
    /// (op ordinal, op id, line stamp) in acknowledgement order.
    acked: Vec<(u64, OpId, u64)>,
    /// Lines read so far (the logical clock).
    lines: u64,
    done: bool,
}

fn command(mode: &str, dir: &std::path::Path, s: &Scenario) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.arg(mode)
        .arg("--dir")
        .arg(dir)
        .args(["--seed", &s.seed.to_string()])
        .args(["--ops", &s.ops.to_string()]);
    if s.checkpoint_every > 0 {
        cmd.args(["--checkpoint-every", &s.checkpoint_every.to_string()]);
    }
    if s.coalesce {
        cmd.arg("--coalesce");
    }
    // The abort is armed only on the original `run` incarnation: recovery and
    // resume incarnations must run to completion. Scrub any inherited arming.
    cmd.env_remove("ONLL_DEVICE_ABORT");
    if mode == "run" {
        if let Some(spec) = s.device_abort {
            cmd.env("ONLL_DEVICE_ABORT", spec);
        }
    }
    cmd
}

fn parse_id(parts: &[&str]) -> (u64, OpId) {
    let k: u64 = parts[1].parse().expect("op ordinal");
    let pid: u32 = parts[2].parse().expect("pid");
    let seq: u64 = parts[3].parse().expect("seq");
    (k, OpId::new(pid, seq))
}

/// Runs the child in `mode` and delivers `SIGKILL` after reading
/// `kill_after_acks` acknowledgements. Lines already in the pipe when the
/// child dies are still read: an ACK the supervisor *observed* was fully
/// emitted — and therefore durable — before the kill.
fn run_and_kill(mode: &str, dir: &std::path::Path, s: &Scenario) -> Observed {
    let mut child = command(mode, dir, s)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn real_restart");
    let stdout = child.stdout.take().expect("child stdout");
    let mut observed = Observed::default();
    let mut killed = false;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("read child stdout");
        observed.lines += 1;
        let stamp = observed.lines;
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.first().copied() {
            Some("INV") => {
                let (k, id) = parse_id(&parts);
                observed.invoked.push((k, id, stamp));
            }
            Some("ACK") => {
                let (k, id) = parse_id(&parts);
                observed.acked.push((k, id, stamp));
                if !killed && observed.acked.len() as u64 >= s.kill_after_acks {
                    child.kill().expect("SIGKILL the child");
                    killed = true;
                }
            }
            Some("DONE") => observed.done = true,
            Some("READY") | Some("NOSTORE") | None => {}
            Some(other) => panic!("unexpected protocol line '{other}': {line}"),
        }
    }
    child.wait().expect("reap child");
    observed
}

#[derive(Debug)]
enum Verified {
    Recovered {
        durable_index: u64,
        checkpoint_index: u64,
        /// Recovered op identities in linearization order (above checkpoint).
        rops: Vec<OpId>,
        /// Execution indices of the recovered ops, in the same order.
        rop_idxs: Vec<u64>,
        digest: u64,
    },
    NoStore(String),
}

fn verify(dir: &std::path::Path, s: &Scenario) -> Verified {
    let output = command("verify", dir, s)
        .stderr(Stdio::inherit())
        .output()
        .expect("run verify");
    let text = String::from_utf8_lossy(&output.stdout);
    let mut durable_index = None;
    let mut checkpoint_index = 0;
    let mut rops = Vec::new();
    let mut rop_idxs = Vec::new();
    let mut digest = None;
    for line in text.lines() {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.first().copied() {
            Some("RECOVERED") => durable_index = Some(parts[1].parse().expect("durable index")),
            Some("CHECKPOINT") => checkpoint_index = parts[1].parse().expect("checkpoint index"),
            Some("ROP") => {
                let pid: u32 = parts[1].parse().expect("pid");
                let seq: u64 = parts[2].parse().expect("seq");
                rops.push(OpId::new(pid, seq));
                rop_idxs.push(parts[3].parse().expect("execution index"));
            }
            Some("DIGEST") => {
                let hex = parts[1].trim_start_matches("0x");
                digest = Some(u64::from_str_radix(hex, 16).expect("digest"));
            }
            Some("NOSTORE") => return Verified::NoStore(line.to_string()),
            _ => {}
        }
    }
    Verified::Recovered {
        durable_index: durable_index.expect("verify printed RECOVERED"),
        checkpoint_index,
        rops,
        rop_idxs,
        digest: digest.expect("verify printed DIGEST"),
    }
}

/// The replayed log tail must be a gap-free run of execution indices from
/// just above the checkpoint to the durable index — a recovery that silently
/// drops an interior entry (maskable in the final-state digest by a later
/// overwrite) fails here.
fn assert_gap_free_tail(checkpoint_index: u64, durable_index: u64, rop_idxs: &[u64], label: &str) {
    let expected: Vec<u64> = (checkpoint_index + 1..=durable_index).collect();
    assert_eq!(
        rop_idxs,
        &expected,
        "{label}: replayed tail is not the contiguous range {}..={} above the checkpoint",
        checkpoint_index + 1,
        durable_index
    );
}

/// Builds the pre-crash history from the supervisor's observations, using
/// the line stamps recorded at read time. The child is sequential, so the
/// history must come out sequential too — op k's ACK stamp below op k+1's
/// INV stamp — which is exactly what lets the durability checker reject a
/// recovery that reorders two acknowledged updates.
fn build_history(observed: &Observed, seed: u64) -> Vec<OpRecord<KvOp, KvRead, KvValue>> {
    let mut records: Vec<OpRecord<KvOp, KvRead, KvValue>> = Vec::new();
    for (k, op_id, stamp) in &observed.invoked {
        records.push(OpRecord {
            pid: op_id.pid,
            op_id: Some(*op_id),
            invoked_at: *stamp,
            responded_at: None,
            kind: EventKind::Update {
                op: proto::op_for(seed, *k),
                // Values are checked separately via the state digest; the
                // durability checker accepts unobserved return values.
                value: None,
            },
        });
    }
    for (_, op_id, stamp) in &observed.acked {
        let record = records
            .iter_mut()
            .find(|r| r.op_id == Some(*op_id))
            .expect("ACK without INV");
        record.responded_at = Some(*stamp);
    }
    records
}

fn check_scenario(s: Scenario) {
    let dir = ScratchDir::new(&format!("kill9-{}-{}", s.seed, s.checkpoint_every)).unwrap();
    check_scenario_in(dir.path(), s);
}

/// The body of [`check_scenario`] against a caller-owned directory (so a
/// caller can keep the store around and resume it afterwards).
fn check_scenario_in(dir: &std::path::Path, s: Scenario) {
    let observed = run_and_kill("run", dir, &s);
    if s.device_abort.is_some() {
        assert!(
            !observed.done,
            "{}: the armed in-window abort never fired",
            s.label()
        );
    }

    match verify(dir, &s) {
        Verified::NoStore(reason) => {
            // Only acceptable if the child died before the store was fully
            // created — in which case it can never have acknowledged anything.
            assert!(
                observed.acked.is_empty(),
                "{}: store lost after {} acks: {reason}",
                s.label(),
                observed.acked.len()
            );
        }
        Verified::Recovered {
            durable_index,
            checkpoint_index,
            rops,
            rop_idxs,
            digest,
        } => {
            // Every acknowledged operation lies within the durable prefix, and
            // nothing beyond the invoked prefix was resurrected.
            assert!(
                durable_index >= observed.acked.len() as u64,
                "{}: acked {} ops but only {} durable",
                s.label(),
                observed.acked.len(),
                durable_index
            );
            assert!(
                durable_index <= observed.invoked.len() as u64,
                "{}: {} durable ops but only {} were ever invoked",
                s.label(),
                durable_index,
                observed.invoked.len()
            );
            // The recovered state is exactly the replay of the durable prefix.
            assert_eq!(
                digest,
                proto::digest_of_prefix(s.seed, durable_index),
                "{}: recovered digest diverges from replaying {} ops",
                s.label(),
                durable_index
            );
            // The replayed tail must be gap-free on every row (a dropped
            // interior entry can be masked in the digest by a later
            // overwrite of the same key).
            assert_gap_free_tail(checkpoint_index, durable_index, &rop_idxs, &s.label());
            // Durable linearizability over the surviving history. Operations
            // at or below a checkpoint are no longer individually
            // identifiable, so the identity-level check needs the
            // checkpoint-free matrix rows.
            if checkpoint_index == 0 {
                let history = build_history(&observed, s.seed);
                let verdict = check_durable_linearizability::<KvSpec>(&history, &rops);
                assert!(
                    verdict.is_ok(),
                    "{}: durable linearizability violated: {:?}",
                    s.label(),
                    verdict.unwrap_err()
                );
            }
        }
    }
}

/// Resumes a killed run to completion across one more incarnation and checks
/// the final state matches the full workload.
fn resume_to_completion(dir: &std::path::Path, s: &Scenario) {
    // No kill this time: the incarnation must run to DONE.
    let no_kill = Scenario {
        kill_after_acks: u64::MAX,
        ..*s
    };
    let observed = run_and_kill("resume", dir, &no_kill);
    assert!(
        observed.done,
        "{}: resume incarnation did not finish",
        s.label()
    );
    match verify(dir, s) {
        Verified::Recovered {
            durable_index,
            digest,
            ..
        } => {
            assert_eq!(
                durable_index,
                s.ops,
                "{}: incomplete final state",
                s.label()
            );
            assert_eq!(
                digest,
                proto::digest_of_prefix(s.seed, s.ops),
                "{}: final digest diverges",
                s.label()
            );
        }
        Verified::NoStore(reason) => panic!("{}: store lost on resume: {reason}", s.label()),
    }
}

/// Tier-1: one quick kill-9 scenario — SIGKILL mid-run, recover across a real
/// process restart, then resume to completion.
#[test]
fn kill9_single_recovers_across_process_restart() {
    let s = Scenario {
        seed: 0xC0FFEE,
        ops: 200,
        kill_after_acks: 23,
        checkpoint_every: 0,
        coalesce: false,
        device_abort: None,
    };
    let dir = ScratchDir::new("kill9-tier1").unwrap();
    let dir = dir.path();
    let observed = run_and_kill("run", dir, &s);
    assert!(
        observed.acked.len() as u64 >= s.kill_after_acks,
        "child died before reaching the kill point"
    );
    match verify(dir, &s) {
        Verified::Recovered {
            durable_index,
            rops,
            rop_idxs,
            digest,
            ..
        } => {
            assert!(durable_index >= observed.acked.len() as u64);
            assert_eq!(digest, proto::digest_of_prefix(s.seed, durable_index));
            assert_gap_free_tail(0, durable_index, &rop_idxs, &s.label());
            let history = build_history(&observed, s.seed);
            if let Err(v) = check_durable_linearizability::<KvSpec>(&history, &rops) {
                let lost = matches!(v, DurabilityViolation::CompletedOpLost(_));
                panic!("{}: violation (lost acked op: {lost}): {v:?}", s.label());
            }
        }
        Verified::NoStore(reason) => panic!("store lost: {reason}"),
    }
    resume_to_completion(dir, &s);
}

/// One row of the coalescing-window crash matrix: the child aborts itself at
/// the armed point *inside* its fence's pwrite->fsync window, and recovery
/// must show no operation was acknowledged without its bytes on disk
/// (`durable >= acked`, digest = replay of the durable prefix, gap-free log
/// tail). Afterwards the store resumes to completion across one more real
/// process restart.
fn check_window_abort(coalesce: bool, abort: &'static str, seed: u64) {
    let s = Scenario {
        seed,
        ops: 150,
        // No supervisor SIGKILL: the armed abort is the crash.
        kill_after_acks: u64::MAX,
        checkpoint_every: 0,
        coalesce,
        device_abort: Some(abort),
    };
    let dir = ScratchDir::new(&format!("kill9-window-{coalesce}-{seed}")).unwrap();
    check_scenario_in(dir.path(), s);
    // An abort early enough to hit store *creation* legally leaves no store
    // behind (and check_scenario_in verified nothing was acked) — there is
    // nothing to resume then.
    if !matches!(verify(dir.path(), &s), Verified::NoStore(_)) {
        resume_to_completion(dir.path(), &s);
    }
}

/// Tier-1: crashes armed inside the coalescing window, on both file modes
/// (private file per pool, and shared group-commit device). `after-pwrites`
/// dies with bytes written but not fsync'd — those operations must be *gone*
/// or at least unacknowledged after recovery; `after-fsync` dies with bytes
/// durable but the acknowledgment unsent — durable > acked is the only legal
/// direction.
#[test]
fn kill9_abort_inside_coalescing_window() {
    check_window_abort(false, "after-pwrites:25", 0xA150);
    check_window_abort(false, "after-fsync:25", 0xA151);
    check_window_abort(true, "after-pwrites:25", 0xA152);
    check_window_abort(true, "after-fsync:25", 0xA153);
}

/// Tier-2 (slow CI job): the full window-abort sweep — both file modes, both
/// abort points, countdowns hitting store creation, early workload and late
/// workload batches.
#[test]
#[ignore = "slow: spawns and aborts many child processes; run in the file-backend CI job"]
fn kill9_coalescing_window_matrix() {
    const POINTS: [&str; 8] = [
        "after-pwrites:3",
        "after-pwrites:15",
        "after-pwrites:40",
        "after-pwrites:90",
        "after-fsync:3",
        "after-fsync:15",
        "after-fsync:40",
        "after-fsync:90",
    ];
    for coalesce in [false, true] {
        for (i, point) in POINTS.iter().enumerate() {
            eprintln!("kill9 window matrix: coalesce={coalesce} {point}");
            check_window_abort(
                coalesce,
                point,
                0xB000 ^ ((coalesce as u64) << 8) ^ i as u64,
            );
        }
    }
}

/// Tier-2 (slow CI job): randomized kill points, checkpointed rows, and a
/// double-kill run. Seeds are derived deterministically so any failure is
/// reproducible from the printed scenario label alone.
#[test]
#[ignore = "slow: spawns and SIGKILLs many child processes; run in the file-backend CI job"]
fn kill9_randomized_matrix() {
    let matrix_seed: u64 = match std::env::var("KILL9_MATRIX_SEED") {
        Ok(v) => v.parse().expect("KILL9_MATRIX_SEED must be a u64"),
        Err(_) => 0x5EED_CAFE,
    };
    // Deterministic pseudo-random kill points derived from the matrix seed.
    let mut state = matrix_seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for round in 0..6 {
        let checkpoint_every = if round % 3 == 2 { 32 } else { 0 };
        let s = Scenario {
            seed: matrix_seed ^ (round * 0x9E37),
            ops: 600,
            kill_after_acks: 1 + next() % 300,
            checkpoint_every,
            // Alternate rounds run on the shared group-commit device, so the
            // randomized SIGKILL sweep also covers the persist executor.
            coalesce: round % 2 == 1,
            device_abort: None,
        };
        eprintln!("kill9 matrix round {round}: {}", s.label());
        check_scenario(s);
    }
    // Double-kill: kill, resume, kill again, then verify and finish.
    let s = Scenario {
        seed: matrix_seed ^ 0xDEAD,
        ops: 500,
        kill_after_acks: 1 + next() % 150,
        checkpoint_every: 0,
        coalesce: true,
        device_abort: None,
    };
    eprintln!("kill9 double-kill: {}", s.label());
    let dir = ScratchDir::new("kill9-double").unwrap();
    let dir = dir.path();
    let first = run_and_kill("run", dir, &s);
    if matches!(verify(dir, &s), Verified::NoStore(_)) {
        assert!(first.acked.is_empty(), "store lost after acks");
        return;
    }
    let second = run_and_kill("resume", dir, &s);
    match verify(dir, &s) {
        Verified::Recovered {
            durable_index,
            digest,
            ..
        } => {
            let acked_total = (first.acked.len() + second.acked.len()) as u64;
            assert!(
                durable_index >= acked_total,
                "{}: acked {acked_total} but durable {durable_index}",
                s.label()
            );
            assert_eq!(digest, proto::digest_of_prefix(s.seed, durable_index));
        }
        Verified::NoStore(reason) => {
            panic!("{}: store lost after double kill: {reason}", s.label())
        }
    }
    resume_to_completion(dir, &s);
}

// ---------------------------------------------------------------------------
// Server mode: SIGKILL a real `onll_server` process mid-request.
//
// The `real_restart` rows above crash a process that *owns* its store; these
// rows crash a process that is serving remote clients over the wire. The
// clients survive the crash, so the audit is stronger: every operation
// identity a client ever minted must resolve consistently against the
// restarted server — acknowledged identities may never resolve `Unknown`,
// and the one in-flight identity per session replays exactly once.
// ---------------------------------------------------------------------------

/// What one client session observed before the server died under it.
struct SessionLog {
    index: u32,
    /// Updates whose durability acknowledgement arrived: (key, value, shard, id).
    acked: Vec<(String, String, usize, OpId)>,
    /// The update in flight when the connection failed, if any.
    inflight: Option<(String, String, usize, OpId)>,
}

/// A spawned `onll_server`, SIGKILLed on drop. `recovered` is the durable
/// total the server reported on its `READY` line.
struct ServerProcess {
    child: std::process::Child,
    addr: String,
    recovered: u64,
}

impl ServerProcess {
    fn spawn(dir: &std::path::Path, shards: usize, clients: usize) -> Self {
        let mut child = Command::new(SERVER_BIN)
            .arg("serve")
            .arg("--dir")
            .arg(dir)
            .args(["--shards", &shards.to_string()])
            .args(["--clients", &clients.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn onll_server");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read READY line");
        let parts: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(parts.first(), Some(&"READY"), "unexpected line: {line}");
        ServerProcess {
            child,
            addr: format!("127.0.0.1:{}", parts[1].parse::<u16>().expect("port")),
            recovered: parts[2].parse().expect("recovered total"),
        }
    }

    fn sigkill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        self.sigkill();
    }
}

fn value_of(v: &KvValue) -> Option<&str> {
    match v {
        KvValue::Value(s) => s.as_deref(),
        KvValue::Len(_) => panic!("expected a value, got a length"),
    }
}

/// One server crash round: `clients` concurrent sessions hammer a spawned
/// server with distinct-key puts; the supervisor SIGKILLs the server once
/// `kill_after_acks` durability acknowledgements have been observed in total
/// across the sessions; a restarted server on the same directory must then
/// let every session resolve every identity it ever minted:
///
/// * acknowledged identities resolve `Executed` (or `Truncated` once a
///   checkpoint compacted their answer away) — never `Unknown`,
/// * the in-flight identity resolves `Executed` or `Unknown`, replays under
///   the same identity in the `Unknown` case, and ends applied exactly once,
/// * the restarted server recovered at least every acknowledged operation,
/// * every written key reads back with its exact value through a fresh
///   session.
fn server_crash_round(
    tag: &str,
    seed: u64,
    clients: u32,
    ops_per_client: u64,
    kill_after_acks: u64,
) {
    let dir = ScratchDir::new(&format!("kill9-server-{tag}-{seed:x}")).unwrap();
    let slots = (clients as usize).max(2);
    let mut server = ServerProcess::spawn(dir.path(), 2, slots);
    assert_eq!(
        server.recovered, 0,
        "fresh directory must create, not recover"
    );
    let addr = server.addr.clone();

    let acks = AtomicU64::new(0);
    let finished = AtomicU64::new(0);
    let logs: Vec<SessionLog> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|index| {
                let addr = addr.clone();
                let acks = &acks;
                let finished = &finished;
                scope.spawn(move || {
                    let mut log = SessionLog {
                        index,
                        acked: Vec::new(),
                        inflight: None,
                    };
                    let mut client = match WireClient::connect_with_retry(&addr, index, 10) {
                        Ok(client) => client,
                        // The kill can land before this session ever connects.
                        Err(_) => {
                            finished.fetch_add(1, Ordering::SeqCst);
                            return log;
                        }
                    };
                    for k in 0..ops_per_client {
                        let key = format!("s{index}-k{k}");
                        let value = format!("v{seed:x}-{k}");
                        // Mint the identity *before* sending so the op stays
                        // nameable even if the reply never arrives.
                        let (shard, op_id) = client.assign_id(&key);
                        match client.put_with_id(op_id, &key, &value) {
                            Ok((prev, _)) => {
                                assert_eq!(value_of(&prev), None, "{key} double-applied");
                                log.acked.push((key, value, shard, op_id));
                                acks.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(_) => {
                                log.inflight = Some((key, value, shard, op_id));
                                break;
                            }
                        }
                    }
                    finished.fetch_add(1, Ordering::SeqCst);
                    log
                })
            })
            .collect();

        // Supervisor: SIGKILL once enough acknowledgements were observed. If
        // the workload drains first the kill still happens — the round then
        // audits a clean restart with no in-flight identities.
        while acks.load(Ordering::SeqCst) < kill_after_acks
            && finished.load(Ordering::SeqCst) < clients as u64
        {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        server.sigkill();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    drop(server);

    let total_acked: u64 = logs.iter().map(|l| l.acked.len() as u64).sum();

    // Restart on the same directory: every acknowledged op must be recovered.
    let mut server = ServerProcess::spawn(dir.path(), 2, slots);
    assert!(
        server.recovered >= total_acked,
        "tag={tag}: acked {total_acked} ops but recovered only {}",
        server.recovered
    );

    for log in &logs {
        let mut client =
            WireClient::connect_with_retry(&server.addr, log.index, 20).expect("reconnect session");
        for (key, _value, shard, op_id) in &log.acked {
            match client.resolve(*shard, *op_id).expect("resolve acked") {
                RetryOutcome::Executed(prev) => {
                    assert_eq!(value_of(&prev), None, "{key}: applied twice")
                }
                // Compacted below a checkpoint floor: the answer is gone, but
                // the op itself is inside the durable prefix by definition —
                // and crucially the outcome is *not* `Unknown`, so a client
                // holding this identity can never be tricked into replaying.
                RetryOutcome::Truncated => {}
                RetryOutcome::Unknown => {
                    panic!("tag={tag}: acked op {op_id:?} on {key} lost by recovery")
                }
            }
        }
        if let Some((key, value, shard, op_id)) = &log.inflight {
            match client.resolve(*shard, *op_id).expect("resolve in-flight") {
                RetryOutcome::Executed(prev) => assert_eq!(value_of(&prev), None),
                RetryOutcome::Unknown => {
                    let (prev, _) = client
                        .put_with_id(*op_id, key, value)
                        .expect("replay in-flight");
                    assert_eq!(value_of(&prev), None, "{key}: replay applied twice");
                }
                // Per-process checkpoint floors are exact (a floor covers only
                // sequence numbers the checkpointed view actually applied),
                // and the in-flight identity is the highest its session ever
                // minted — so Truncated here proves the op executed before
                // the kill and the restarted server's checkpoint thread
                // merely compacted its answer before we reconnected. The
                // readback below still must see its value.
                RetryOutcome::Truncated => {}
            }
            // Whichever path was taken, the identity now answers consistently
            // and the value is in place — further retries are idempotent.
            assert!(matches!(
                client.resolve(*shard, *op_id).expect("re-resolve"),
                RetryOutcome::Executed(_) | RetryOutcome::Truncated
            ));
            assert_eq!(
                value_of(&client.get(key).expect("get in-flight key")),
                Some(value.as_str())
            );
        }
    }

    // Full-state readback through a fresh session.
    let mut reader = WireClient::connect_with_retry(&server.addr, 0, 20).expect("reader session");
    for log in &logs {
        for (key, value, _, _) in &log.acked {
            assert_eq!(
                value_of(&reader.get(key).expect("get")),
                Some(value.as_str()),
                "tag={tag}: acked key {key} lost"
            );
        }
    }
    drop(reader);
    server.sigkill();
}

/// Tier-1: one quick server-mode kill — two concurrent sessions, SIGKILL
/// mid-request after a fixed number of acknowledgements, restart on the same
/// directory, full resolve/replay audit.
#[test]
fn kill9_server_single_kill_resolves_every_identity() {
    server_crash_round("tier1", 0x5E12_7E57, 2, 60, 25);
}

/// Tier-2 (slow CI job): the randomized server-mode matrix — varying session
/// counts and kill points, including a round long enough to cross the
/// server's checkpoint interval (so acked identities may legally resolve
/// `Truncated` and recovery replays a checkpointed store).
#[test]
#[ignore = "slow: spawns and SIGKILLs many server processes; run in the file-backend CI job"]
fn kill9_server_randomized_matrix() {
    let matrix_seed: u64 = match std::env::var("KILL9_MATRIX_SEED") {
        Ok(v) => v.parse().expect("KILL9_MATRIX_SEED must be a u64"),
        Err(_) => 0x5EED_5E12,
    };
    let mut state = matrix_seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let rounds: [(u32, u64); 5] = [(1, 80), (2, 120), (4, 150), (3, 260), (4, 90)];
    for (round, (clients, ops)) in rounds.into_iter().enumerate() {
        let total = clients as u64 * ops;
        let kill_after = 1 + next() % total;
        eprintln!(
            "kill9 server matrix round {round}: clients={clients} ops={ops} kill_after={kill_after}"
        );
        server_crash_round(
            &format!("matrix{round}"),
            matrix_seed ^ ((round as u64) << 16),
            clients,
            ops,
            kill_after,
        );
    }
}
