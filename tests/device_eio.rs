//! Regression: an EIO surfacing inside the device backend's group-commit
//! window mid-batch must fail **every** parked submitter — no client may hang
//! on a combiner whose fence can never succeed, and none may be acknowledged
//! without a durable fence — and after the process reopens the device (fresh
//! executor, fresh poison state) the object recovers and commits fresh
//! batches.
//!
//! The combining protocol's obligation under a failed batch: the combiner
//! posts the error to every slot it drained, and any slot it did *not* drain
//! is served by a later pass (its submitter self-elects) whose fence fails
//! with the same poisoned-device error. Either way `submit()` returns `Err`.

use remembering_consistently::nvm::{BackendSpec, PersistDevice, PmemConfig, ScratchDir};
use remembering_consistently::objects::{CounterOp, CounterRead, CounterSpec};
use remembering_consistently::onll::{Durable, OnllConfig, ResolveOutcome};

#[test]
fn pwrite_eio_mid_batch_fails_every_waiter_and_recovers_on_reopen() {
    let dir = ScratchDir::new("device-eio").unwrap();
    let device_path = dir.path().join("eio.device");
    let cfg = OnllConfig::named("eio-ctr")
        .max_processes(4)
        .log_capacity(256)
        .group_persist(2)
        .backend(BackendSpec::device(&device_path));
    let pmem = PmemConfig::with_capacity(8 << 20);
    let mut receipts = Vec::new();
    {
        let object = Durable::<CounterSpec>::create_in(pmem.clone(), cfg.clone()).unwrap();
        let service = object.service(3).unwrap();
        // A committed baseline recovery must preserve.
        let mut warm = service.client().unwrap();
        let (warm_value, warm_id) = warm.submit(CounterOp::Add(1)).unwrap();
        assert_eq!(warm_value, 1);
        drop(warm);

        // Fail the next pwrite — the first write of the combined batch about
        // to be committed, so its entry never reaches the file.
        let device = PersistDevice::handle(&device_path, &pmem).unwrap();
        device.inject_pwrite_errors(1);

        // Two concurrent submitters: whoever combines hits the failing batch
        // IO; both must *return* (no hang) and both must be refused.
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let service = service.clone();
                    scope.spawn(move || {
                        let mut client = service.client().unwrap();
                        let op_id = client.peek_next_op_id();
                        (op_id, client.submit(CounterOp::Add(10)))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (op_id, result) in results {
            assert!(
                result.is_err(),
                "{op_id} was acknowledged without a durable fence: {result:?}"
            );
            receipts.push(op_id);
        }

        // The device stays poisoned for this incarnation: a fresh batch is
        // refused with the original error instead of wedging the combiner.
        let mut again = service.client().unwrap();
        assert!(again.submit(CounterOp::Add(100)).is_err());
        receipts.push(warm_id);
    }

    // Reopening the device file builds a fresh executor with fresh poison
    // state; recovery sees only what was durable before the EIO.
    let (object, report) = Durable::<CounterSpec>::recover_in(pmem, cfg).unwrap();
    assert_eq!(
        report.durable_index, 1,
        "only the pre-EIO baseline survived"
    );
    assert_eq!(object.read_latest(&CounterRead::Get), 1);
    let (lost_a, lost_b, warm_id) = (receipts[0], receipts[1], receipts[2]);
    assert_eq!(object.resolve(warm_id), ResolveOutcome::Executed(1));
    for lost in [lost_a, lost_b] {
        assert_eq!(
            object.resolve(lost),
            ResolveOutcome::Unknown,
            "a refused op must be detectably not-executed, so it can replay"
        );
    }

    // And a fresh batch commits: the EIO poisoned the old incarnation, not
    // the object.
    let service = object.service(3).unwrap();
    let mut client = service.client().unwrap();
    assert_eq!(client.submit(CounterOp::Add(5)).unwrap().0, 6);
    object.check_invariants().unwrap();
}
