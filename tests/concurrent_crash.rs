//! Crash semantics of the cross-thread combining commit (`onll::DurableService`).
//!
//! Two suites, each on both backends (simulator and file/fsync):
//!
//! * **All-or-nothing batches** — a combined multi-client log entry is covered
//!   by exactly one persistent fence, so a crash anywhere around that fence
//!   must leave either the *whole* entry (every client's operation durable and
//!   resolvable by its pre-assigned `OpId`) or *none* of it (every operation
//!   detectably not linearized). The crash is armed deterministically at three
//!   points: mid-store (torn entry), after the flush but before the fence
//!   (complete but not durable), and after the fence (durable).
//! * **Wing&Gong over concurrent crash histories** — N client threads submit
//!   through the service while a crash is armed at a swept persistence-event
//!   count; the surviving history must be durably linearizable (Definition
//!   5.6) and, when small enough, linearizable outright. Post-crash, every
//!   recovered operation's remembered response (`Durable::resolve`) must match
//!   the value handed to the submitting client before the crash — the
//!   exactly-once reply contract.
//!
//! Tier-1 covers fixed seeds/crash points; the `#[ignore]`d matrix sweeps a
//! randomized grid (run by the nightly CI job).

use remembering_consistently::harness::{
    check_durable_linearizability, check_linearizability, History,
};
use remembering_consistently::nvm::{BackendSpec, CrashTrigger, PmemConfig, ScratchDir};
use remembering_consistently::objects::{CounterOp, CounterRead, CounterSpec};
use remembering_consistently::onll::{Durable, OnllConfig, OpId, ResolveOutcome};

fn backend_for(label: &str, file: bool) -> (BackendSpec, Option<ScratchDir>) {
    if file {
        let dir = ScratchDir::new(label).unwrap();
        (BackendSpec::file(dir.path()), Some(dir))
    } else {
        (BackendSpec::Sim, None)
    }
}

/// How the deterministic all-or-nothing scenario arms its crash.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CrashArm {
    /// Mid-store of the combined entry: recovery sees a torn entry.
    MidStores,
    /// After the entry's flush, before its fence: complete but not durable.
    BeforeFence,
    /// After the entry's fence: the whole batch is durable.
    AfterFence,
}

/// Arms a crash around the single fence of one two-client combined batch and
/// asserts recovery observes the whole entry or none of it.
fn all_or_nothing(file: bool, arm: CrashArm) {
    let label = format!("combined-batch {arm:?} file={file}");
    let (spec, _cleanup) = backend_for("concurrent-all-or-nothing", file);
    let cfg = OnllConfig::named("combined-batch")
        .max_processes(3)
        .log_capacity(64)
        .group_persist(2)
        .backend(spec);
    let pmem = PmemConfig::with_capacity(32 << 20).apply_pending_at_crash(0.0);
    let object = Durable::<CounterSpec>::create_in(pmem, cfg.clone())
        .unwrap_or_else(|e| panic!("{label}: create failed: {e}"));
    let pool = object.pool().clone();
    let service = object.service(2).unwrap();
    let mut a = service.client().unwrap();
    let mut b = service.client().unwrap();

    // A durable baseline operation that must survive every scenario.
    let (baseline_value, baseline_id) = a.submit(CounterOp::Add(1)).unwrap();
    assert_eq!(baseline_value, 1);

    // Publish both clients' operations, then combine them on this thread with
    // the crash armed: the batch is one log entry, one flush, one fence.
    let id_a = a.submit_async(CounterOp::Add(10));
    let id_b = b.submit_async(CounterOp::Add(100));
    pool.arm_crash(match arm {
        CrashArm::MidStores => CrashTrigger::AfterStores(1),
        CrashArm::BeforeFence => CrashTrigger::AfterFlushes(1),
        CrashArm::AfterFence => CrashTrigger::AfterFences(1),
    });
    assert_eq!(service.combine_now(), 2, "{label}: both ops in one batch");
    assert!(pool.is_frozen(), "{label}: the armed crash must have fired");
    // The combiner posted replies; their shape depends on where the crash hit.
    // A batch whose fence persisted before the freeze yields values; a batch
    // whose fence found the machine already frozen is *refused* — the combiner
    // never acknowledges operations whose bytes are not durable.
    let reply_a = a
        .try_take_reply()
        .unwrap_or_else(|| panic!("{label}: combiner visited slot a"));
    let reply_b = b
        .try_take_reply()
        .unwrap_or_else(|| panic!("{label}: combiner visited slot b"));

    drop(a);
    drop(b);
    drop(service);
    drop(object);
    pool.crash_and_restart();
    let (recovered, report) = Durable::<CounterSpec>::recover(pool, cfg)
        .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    let recovered_ids: Vec<OpId> = report.recovered_ops.iter().map(|(_, id)| *id).collect();
    assert!(
        recovered_ids.contains(&baseline_id),
        "{label}: the pre-batch baseline op must always survive"
    );
    assert_eq!(
        recovered.resolve(baseline_id),
        ResolveOutcome::Executed(baseline_value),
        "{label}"
    );

    match arm {
        CrashArm::AfterFence => {
            // The whole multi-client entry survived: both ops are linearized,
            // and each client's remembered response is exactly the reply the
            // combiner handed it before the crash.
            let reply_a = reply_a.unwrap_or_else(|e| panic!("{label}: slot a refused: {e}"));
            let reply_b = reply_b.unwrap_or_else(|e| panic!("{label}: slot b refused: {e}"));
            assert_eq!(reply_a.1, id_a);
            assert_eq!(reply_b.1, id_b);
            for (value, op_id) in [reply_a, reply_b] {
                assert!(recovered.was_linearized(op_id), "{label}: lost {op_id}");
                assert_eq!(
                    recovered.resolve(op_id),
                    ResolveOutcome::Executed(value),
                    "{label}: {op_id}"
                );
            }
            assert_eq!(report.durable_index, 3, "{label}");
            assert_eq!(recovered.read_latest(&CounterRead::Get), 111, "{label}");
        }
        CrashArm::MidStores | CrashArm::BeforeFence => {
            // The batch's publish fence found the machine frozen, so the
            // combiner refused both operations instead of handing out replies
            // for non-durable state.
            assert!(
                reply_a.is_err() && reply_b.is_err(),
                "{label}: an unfenced batch must not be acknowledged"
            );
            // And none of the entry survived: both ops are detectably
            // not-linearized and the state shows only the baseline.
            for op_id in [id_a, id_b] {
                assert!(
                    !recovered.was_linearized(op_id),
                    "{label}: {op_id} resurrected from an unfenced entry"
                );
                assert_eq!(
                    recovered.resolve(op_id),
                    ResolveOutcome::Unknown,
                    "{label}: {op_id}"
                );
            }
            assert_eq!(report.durable_index, 1, "{label}");
            assert_eq!(recovered.read_latest(&CounterRead::Get), 1, "{label}");
        }
    }
}

#[test]
fn combined_batch_torn_entry_sim() {
    all_or_nothing(false, CrashArm::MidStores);
}

#[test]
fn combined_batch_lost_before_fence_sim() {
    all_or_nothing(false, CrashArm::BeforeFence);
}

#[test]
fn combined_batch_durable_after_fence_sim() {
    all_or_nothing(false, CrashArm::AfterFence);
}

#[test]
fn combined_batch_torn_entry_file() {
    all_or_nothing(true, CrashArm::MidStores);
}

#[test]
fn combined_batch_lost_before_fence_file() {
    all_or_nothing(true, CrashArm::BeforeFence);
}

#[test]
fn combined_batch_durable_after_fence_file() {
    all_or_nothing(true, CrashArm::AfterFence);
}

/// xorshift-ish per-(seed, thread, op) deterministic value.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9E3779B97F4A7C15);
    z ^= b.wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}

/// N client threads submit through one combining service while a crash is
/// armed `crash_after_events` persistence events in; recovery must satisfy
/// durable linearizability over the surviving history, Wing&Gong over small
/// histories, and the exactly-once reply contract for every completed op.
fn service_crash_run(file: bool, threads: usize, ops: usize, crash_after_events: u64, seed: u64) {
    let label = format!(
        "service-crash file={file} threads={threads} events={crash_after_events} seed={seed}"
    );
    let (spec, _cleanup) = backend_for("concurrent-service-crash", file);
    let cfg = OnllConfig::named("service-crash")
        .max_processes(threads + 1)
        .log_capacity(threads * ops + 16)
        .group_persist(threads.max(2))
        .backend(spec);
    let pmem = PmemConfig::with_capacity(64 << 20)
        .apply_pending_at_crash(0.0)
        .crash_seed(seed ^ 0xBADC0FFE);
    let object = Durable::<CounterSpec>::create_in(pmem, cfg.clone())
        .unwrap_or_else(|e| panic!("{label}: create failed: {e}"));
    let pool = object.pool().clone();
    let service = object.service(threads).unwrap();
    let history: History<CounterOp, CounterRead, i64> = History::new();

    pool.arm_crash(CrashTrigger::AfterEvents(crash_after_events));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let service = service.clone();
            let history = history.clone();
            let pool = pool.clone();
            let label = &label;
            scope.spawn(move || {
                let mut client = service.client().expect("a client slot per thread");
                for k in 0..ops {
                    if pool.is_frozen() {
                        break;
                    }
                    let op = CounterOp::Add((mix(seed, t as u64, k as u64) % 9) as i64 + 1);
                    let op_id = client.peek_next_op_id();
                    let pending = history.invoke_update(op_id.pid, Some(op_id), op);
                    let reply = client.submit(op);
                    // A response observed after the system froze never
                    // happened from the object's point of view.
                    if pool.is_frozen() {
                        break;
                    }
                    let (value, served_id) = reply.expect("pre-crash submit succeeds");
                    assert_eq!(served_id, op_id, "{label}: identity drifted");
                    history.respond(pending, value);
                }
            });
        }
    });

    let crashed = pool.is_frozen();
    let token = pool.crash();
    pool.disarm_crash();
    pool.restart(token);
    drop(service);
    drop(object);

    let (recovered, report) = Durable::<CounterSpec>::recover(pool, cfg)
        .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    let recovered_ids: Vec<OpId> = report.recovered_ops.iter().map(|(_, id)| *id).collect();
    let pre_crash = history.snapshot();
    check_durable_linearizability::<CounterSpec>(&pre_crash, &recovered_ids)
        .unwrap_or_else(|v| panic!("{label}: durability violation: {v:?}"));
    if pre_crash.len() <= 12 {
        check_linearizability::<CounterSpec>(&pre_crash)
            .unwrap_or_else(|e| panic!("{label}: Wing&Gong rejected the history: {e}"));
    }
    // Exactly-once replies: every completed op's remembered response matches
    // the value its client observed before the crash.
    for record in pre_crash.iter().filter(|r| r.is_complete()) {
        let op_id = record.op_id.expect("completed updates carry an op id");
        let remembered = recovered.resolve(op_id);
        if let remembering_consistently::harness::EventKind::Update {
            value: Some(value), ..
        } = &record.kind
        {
            assert_eq!(
                remembered,
                ResolveOutcome::Executed(*value),
                "{label}: {op_id} reply not remembered"
            );
        }
    }
    if !crashed {
        assert_eq!(
            recovered_ids.len(),
            threads * ops,
            "{label}: nothing crashed, everything must survive"
        );
    }
}

#[test]
fn service_crash_sweep_sim() {
    for events in [25, 60, 111, 190] {
        service_crash_run(false, 3, 6, events, 0xC0C0A);
    }
}

#[test]
fn service_crash_sweep_file() {
    for events in [30, 85, 150] {
        service_crash_run(true, 2, 5, events, 0xC0C0B);
    }
}

#[test]
fn service_crash_after_workload_recovers_everything() {
    service_crash_run(false, 3, 5, 1_000_000, 0xC0C0C);
}

/// Randomized matrix over seeds × crash points × thread counts, both
/// backends. Tier-2: run explicitly (`--ignored`) or by the nightly CI job.
#[test]
#[ignore = "randomized matrix; run with --ignored (nightly CI)"]
fn service_crash_randomized_matrix() {
    for file in [false, true] {
        for seed in 0..6u64 {
            for point in 0..5u64 {
                let threads = 2 + (seed % 3) as usize;
                let events = 20 + mix(seed, point, 17) % 400;
                service_crash_run(file, threads, 8, events, 0x5EED ^ (seed << 8) ^ point);
            }
        }
    }
}
