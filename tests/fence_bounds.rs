//! Experiment E3 (Theorem 5.1): at most one persistent fence per update and zero
//! per read-only operation, across object types, workload mixes and thread counts —
//! and the baselines do not meet the bound.

use remembering_consistently::baselines::{NaiveDurable, WalDurable};
use remembering_consistently::harness::{audit_fence_bounds, OnllAdapter, Workload, WorkloadMix};
use remembering_consistently::nvm::{NvmPool, PmemConfig};
use remembering_consistently::objects::{CounterSpec, KvSpec, SetSpec};
use remembering_consistently::onll::{Durable, OnllConfig};

fn pool() -> NvmPool {
    NvmPool::new(PmemConfig::with_capacity(128 << 20))
}

#[test]
fn onll_counter_meets_bounds_across_mixes() {
    for percent in [0, 10, 50, 90, 100] {
        let p = pool();
        let obj =
            Durable::<CounterSpec>::create(p.clone(), OnllConfig::named("ctr").log_capacity(2048))
                .unwrap();
        let mut adapter = OnllAdapter::new(obj.register().unwrap());
        let mut w = Workload::new(WorkloadMix::with_update_percent(percent), percent as u64);
        let audit =
            audit_fence_bounds::<CounterSpec, _>(&mut adapter, p.stats(), w.counter_ops(1000));
        assert!(
            audit.satisfies_onll_bounds(),
            "mix {percent}% updates violated the bound: {audit:?}"
        );
        if percent > 0 {
            assert_eq!(audit.max_fences_per_update, 1);
        }
    }
}

#[test]
fn onll_kv_and_set_meet_bounds() {
    let p = pool();
    let kv =
        Durable::<KvSpec>::create(p.clone(), OnllConfig::named("kv").log_capacity(2048)).unwrap();
    let mut adapter = OnllAdapter::new(kv.register().unwrap());
    let mut w = Workload::new(WorkloadMix::default(), 3);
    let audit = audit_fence_bounds::<KvSpec, _>(&mut adapter, p.stats(), w.kv_ops(1000));
    assert!(audit.satisfies_onll_bounds(), "{audit:?}");

    let set =
        Durable::<SetSpec>::create(p.clone(), OnllConfig::named("set").log_capacity(2048)).unwrap();
    let mut handle = set.register().unwrap();
    let mut w = Workload::new(WorkloadMix::default(), 4);
    let ops: Vec<_> = (0..1000).map(|_| w.next_set_op()).collect();
    let mut adapter = OnllAdapter::new(std::mem::replace(&mut handle, set.register().unwrap()));
    let audit = audit_fence_bounds::<SetSpec, _>(&mut adapter, p.stats(), ops);
    assert!(audit.satisfies_onll_bounds(), "{audit:?}");
}

#[test]
fn onll_bound_holds_under_concurrency() {
    // With several processes helping each other, the *global* fence count stays at
    // most one per update, and per-thread audits still never exceed one per update.
    let p = pool();
    let obj = Durable::<CounterSpec>::create(
        p.clone(),
        OnllConfig::named("ctr").max_processes(4).log_capacity(4096),
    )
    .unwrap();
    let fences_before = p.stats().persistent_fences();
    let threads = 4;
    let per_thread = 300;
    let mut joins = Vec::new();
    for t in 0..threads {
        let obj = obj.clone();
        let p = p.clone();
        joins.push(std::thread::spawn(move || {
            let mut adapter = OnllAdapter::new(obj.register().unwrap());
            let mut w = Workload::new(WorkloadMix::with_update_percent(80), t as u64);
            audit_fence_bounds::<CounterSpec, _>(&mut adapter, p.stats(), w.counter_ops(per_thread))
        }));
    }
    let mut total_updates = 0;
    for j in joins {
        let audit = j.join().unwrap();
        assert!(audit.satisfies_onll_bounds(), "{audit:?}");
        total_updates += audit.updates;
    }
    let total_fences = p.stats().persistent_fences() - fences_before;
    assert!(
        total_fences <= total_updates,
        "{total_fences} fences for {total_updates} updates"
    );
}

#[test]
fn baselines_do_not_meet_the_bound() {
    let p = pool();
    let naive = NaiveDurable::<CounterSpec>::create(p.clone(), 64);
    let mut w = Workload::new(WorkloadMix::update_only(), 1);
    let audit =
        audit_fence_bounds::<CounterSpec, _>(&mut naive.handle(), p.stats(), w.counter_ops(100));
    assert_eq!(audit.max_fences_per_update, 2);

    let p = pool();
    let wal = WalDurable::<CounterSpec>::create(p.clone(), 256);
    let mut w = Workload::new(WorkloadMix::update_only(), 2);
    let audit =
        audit_fence_bounds::<CounterSpec, _>(&mut wal.handle(), p.stats(), w.counter_ops(100));
    assert_eq!(audit.max_fences_per_update, 2);
}
