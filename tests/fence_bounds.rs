//! Experiment E3 (Theorem 5.1): at most one persistent fence per update and zero
//! per read-only operation, across object types, workload mixes and thread counts —
//! and the baselines do not meet the bound.

use remembering_consistently::baselines::{NaiveDurable, WalDurable};
use remembering_consistently::harness::{
    audit_fence_bounds, CheckpointingOnllAdapter, OnllAdapter, Workload, WorkloadMix,
};
use remembering_consistently::nvm::{NvmPool, PmemConfig};
use remembering_consistently::objects::{CounterSpec, KvSpec, SetSpec};
use remembering_consistently::onll::{Durable, OnllConfig};

fn pool() -> NvmPool {
    NvmPool::new(PmemConfig::with_capacity(128 << 20))
}

#[test]
fn onll_counter_meets_bounds_across_mixes() {
    for percent in [0, 10, 50, 90, 100] {
        let p = pool();
        let obj =
            Durable::<CounterSpec>::create(p.clone(), OnllConfig::named("ctr").log_capacity(2048))
                .unwrap();
        let mut adapter = OnllAdapter::new(obj.register().unwrap());
        let mut w = Workload::new(WorkloadMix::with_update_percent(percent), percent as u64);
        let audit =
            audit_fence_bounds::<CounterSpec, _>(&mut adapter, p.stats(), w.counter_ops(1000));
        assert!(
            audit.satisfies_onll_bounds(),
            "mix {percent}% updates violated the bound: {audit:?}"
        );
        if percent > 0 {
            assert_eq!(audit.max_fences_per_update, 1);
        }
    }
}

#[test]
fn onll_kv_and_set_meet_bounds() {
    let p = pool();
    let kv =
        Durable::<KvSpec>::create(p.clone(), OnllConfig::named("kv").log_capacity(2048)).unwrap();
    let mut adapter = OnllAdapter::new(kv.register().unwrap());
    let mut w = Workload::new(WorkloadMix::default(), 3);
    let audit = audit_fence_bounds::<KvSpec, _>(&mut adapter, p.stats(), w.kv_ops(1000));
    assert!(audit.satisfies_onll_bounds(), "{audit:?}");

    let set =
        Durable::<SetSpec>::create(p.clone(), OnllConfig::named("set").log_capacity(2048)).unwrap();
    let mut handle = set.register().unwrap();
    let mut w = Workload::new(WorkloadMix::default(), 4);
    let ops: Vec<_> = (0..1000).map(|_| w.next_set_op()).collect();
    let mut adapter = OnllAdapter::new(std::mem::replace(&mut handle, set.register().unwrap()));
    let audit = audit_fence_bounds::<SetSpec, _>(&mut adapter, p.stats(), ops);
    assert!(audit.satisfies_onll_bounds(), "{audit:?}");
}

#[test]
fn onll_bound_holds_under_concurrency() {
    // With several processes helping each other, the *global* fence count stays at
    // most one per update, and per-thread audits still never exceed one per update.
    let p = pool();
    let obj = Durable::<CounterSpec>::create(
        p.clone(),
        OnllConfig::named("ctr").max_processes(4).log_capacity(4096),
    )
    .unwrap();
    let fences_before = p.stats().persistent_fences();
    let threads = 4;
    let per_thread = 300;
    let mut joins = Vec::new();
    for t in 0..threads {
        let obj = obj.clone();
        let p = p.clone();
        joins.push(std::thread::spawn(move || {
            let mut adapter = OnllAdapter::new(obj.register().unwrap());
            let mut w = Workload::new(WorkloadMix::with_update_percent(80), t as u64);
            audit_fence_bounds::<CounterSpec, _>(&mut adapter, p.stats(), w.counter_ops(per_thread))
        }));
    }
    let mut total_updates = 0;
    for j in joins {
        let audit = j.join().unwrap();
        assert!(audit.satisfies_onll_bounds(), "{audit:?}");
        total_updates += audit.updates;
    }
    let total_fences = p.stats().persistent_fences() - fences_before;
    assert!(
        total_fences <= total_updates,
        "{total_fences} fences for {total_updates} updates"
    );
}

#[test]
fn checkpointing_preserves_the_per_update_bound() {
    // With both checkpoint triggers armed (ops-count and log-bytes), the paper's
    // inherent bound must still hold per update: checkpoint publish and log
    // truncation fences land in the separate maintenance bucket, never in the
    // per-update count.
    for percent in [50, 100] {
        let p = pool();
        let cfg = OnllConfig::named("ckpt")
            .log_capacity(2048)
            .checkpoint_every(64)
            .checkpoint_when_log_exceeds(64 * 1024)
            .checkpoint_slot_bytes(4096);
        let obj = Durable::<CounterSpec>::create(p.clone(), cfg).unwrap();
        let mut adapter = CheckpointingOnllAdapter::new(obj.register().unwrap());
        let before_persistent = p.stats().persistent_fences();
        let before_maintenance = p.stats().maintenance_fences();
        let mut w = Workload::new(WorkloadMix::with_update_percent(percent), percent as u64);
        let audit =
            audit_fence_bounds::<CounterSpec, _>(&mut adapter, p.stats(), w.counter_ops(1000));
        assert!(
            audit.satisfies_onll_bounds(),
            "mix {percent}% updates violated the inherent bound with checkpointing on: {audit:?}"
        );
        assert_eq!(audit.max_fences_per_update, 1);
        assert_eq!(audit.fences_per_update(), 1.0, "{audit:?}");
        // Checkpoints happened (so the separation was actually exercised)...
        assert!(audit.checkpoint_fences > 0, "{audit:?}");
        // ...at 2 fences per checkpoint, amortized over the 64-update interval.
        assert!(
            audit.checkpoint_fences <= 2 * (audit.updates / 64 + 1),
            "{audit:?}"
        );
        // Cross-check against the pool's global maintenance bucket.
        let maintenance = p.stats().maintenance_fences() - before_maintenance;
        let persistent = p.stats().persistent_fences() - before_persistent;
        assert_eq!(maintenance, audit.checkpoint_fences);
        assert_eq!(
            persistent - maintenance,
            audit.updates,
            "inherent fences must equal the update count exactly"
        );
    }
}

#[test]
fn baselines_do_not_meet_the_bound() {
    let p = pool();
    let naive = NaiveDurable::<CounterSpec>::create(p.clone(), 64);
    let mut w = Workload::new(WorkloadMix::update_only(), 1);
    let audit =
        audit_fence_bounds::<CounterSpec, _>(&mut naive.handle(), p.stats(), w.counter_ops(100));
    assert_eq!(audit.max_fences_per_update, 2);

    let p = pool();
    let wal = WalDurable::<CounterSpec>::create(p.clone(), 256);
    let mut w = Workload::new(WorkloadMix::update_only(), 2);
    let audit =
        audit_fence_bounds::<CounterSpec, _>(&mut wal.handle(), p.stats(), w.counter_ops(100));
    assert_eq!(audit.max_fences_per_update, 2);
}
