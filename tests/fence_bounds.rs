//! Experiment E3 (Theorem 5.1): at most one persistent fence per update and zero
//! per read-only operation, across object types, workload mixes and thread counts —
//! and the baselines do not meet the bound.

use remembering_consistently::baselines::{NaiveDurable, WalDurable};
use remembering_consistently::harness::{
    audit_fence_bounds, CheckpointingOnllAdapter, FenceAudit, OnllAdapter, Workload, WorkloadMix,
};
use remembering_consistently::nvm::{NvmPool, PmemConfig};
use remembering_consistently::objects::{CounterOp, CounterRead, CounterSpec, KvSpec, SetSpec};
use remembering_consistently::onll::{Durable, OnllConfig};
use std::sync::atomic::{AtomicBool, Ordering};

fn pool() -> NvmPool {
    NvmPool::new(PmemConfig::with_capacity(128 << 20))
}

#[test]
fn onll_counter_meets_bounds_across_mixes() {
    for percent in [0, 10, 50, 90, 100] {
        let p = pool();
        let obj =
            Durable::<CounterSpec>::create(p.clone(), OnllConfig::named("ctr").log_capacity(2048))
                .unwrap();
        let mut adapter = OnllAdapter::new(obj.register().unwrap());
        let mut w = Workload::new(WorkloadMix::with_update_percent(percent), percent as u64);
        let audit =
            audit_fence_bounds::<CounterSpec, _>(&mut adapter, p.stats(), w.counter_ops(1000));
        assert!(
            audit.satisfies_onll_bounds(),
            "mix {percent}% updates violated the bound: {audit:?}"
        );
        if percent > 0 {
            assert_eq!(audit.max_fences_per_update, 1);
        }
    }
}

#[test]
fn onll_kv_and_set_meet_bounds() {
    let p = pool();
    let kv =
        Durable::<KvSpec>::create(p.clone(), OnllConfig::named("kv").log_capacity(2048)).unwrap();
    let mut adapter = OnllAdapter::new(kv.register().unwrap());
    let mut w = Workload::new(WorkloadMix::default(), 3);
    let audit = audit_fence_bounds::<KvSpec, _>(&mut adapter, p.stats(), w.kv_ops(1000));
    assert!(audit.satisfies_onll_bounds(), "{audit:?}");

    let set =
        Durable::<SetSpec>::create(p.clone(), OnllConfig::named("set").log_capacity(2048)).unwrap();
    let mut handle = set.register().unwrap();
    let mut w = Workload::new(WorkloadMix::default(), 4);
    let ops: Vec<_> = (0..1000).map(|_| w.next_set_op()).collect();
    let mut adapter = OnllAdapter::new(std::mem::replace(&mut handle, set.register().unwrap()));
    let audit = audit_fence_bounds::<SetSpec, _>(&mut adapter, p.stats(), ops);
    assert!(audit.satisfies_onll_bounds(), "{audit:?}");
}

#[test]
fn onll_bound_holds_under_concurrency() {
    // With several processes helping each other, the *global* fence count stays at
    // most one per update, and per-thread audits still never exceed one per update.
    let p = pool();
    let obj = Durable::<CounterSpec>::create(
        p.clone(),
        OnllConfig::named("ctr").max_processes(4).log_capacity(4096),
    )
    .unwrap();
    let fences_before = p.stats().persistent_fences();
    let threads = 4;
    let per_thread = 300;
    let mut joins = Vec::new();
    for t in 0..threads {
        let obj = obj.clone();
        let p = p.clone();
        joins.push(std::thread::spawn(move || {
            let mut adapter = OnllAdapter::new(obj.register().unwrap());
            let mut w = Workload::new(WorkloadMix::with_update_percent(80), t as u64);
            audit_fence_bounds::<CounterSpec, _>(&mut adapter, p.stats(), w.counter_ops(per_thread))
        }));
    }
    let mut total_updates = 0;
    for j in joins {
        let audit = j.join().unwrap();
        assert!(audit.satisfies_onll_bounds(), "{audit:?}");
        total_updates += audit.updates;
    }
    let total_fences = p.stats().persistent_fences() - fences_before;
    assert!(
        total_fences <= total_updates,
        "{total_fences} fences for {total_updates} updates"
    );
}

#[test]
fn snapshot_readers_incur_zero_fences_while_writers_progress() {
    // The read half of Theorem 5.1, on the lock-free snapshot path: N
    // concurrent `SnapshotReader`s each audit their own thread's persistence
    // counters (`op_window` is per-thread, so a window opened inside a reader
    // thread attributes costs precisely) while a writer drives updates on
    // another thread. Every reader must observe exactly zero fences, zero
    // flushes and zero NVM stores — not amortized-to-zero, zero — and must
    // still see the writer's progress through the published snapshots.
    //
    // The fence penalty makes the writer block (not spin) on every persist,
    // so the reader threads are guaranteed scheduling time even on one core.
    let p = NvmPool::new(
        PmemConfig::with_capacity(128 << 20).fence_penalty(std::time::Duration::from_micros(20)),
    );
    let obj = Durable::<CounterSpec>::create(
        p.clone(),
        OnllConfig::named("snap-readers")
            .max_processes(2)
            .log_capacity(4096),
    )
    .unwrap();
    let service = obj.service(1).unwrap();
    service.enable_snapshots();

    let readers = 4;
    let writer_ops = 400i64;
    let stop = AtomicBool::new(false);
    let (audits, finals) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let (service, stop, p) = (service.clone(), &stop, p.clone());
                scope.spawn(move || {
                    let mut reader = service.snapshot_reader().unwrap();
                    let window = p.stats().op_window();
                    let mut audit = FenceAudit::default();
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let value = reader.read(&CounterRead::Get);
                        assert!(value >= last, "snapshot reads regressed");
                        last = value;
                        audit.reads += 1;
                    }
                    let d = window.close();
                    audit.read_fences = d.inherent_fences();
                    audit.read_flushes = d.flushes;
                    audit.read_stores = d.stores;
                    audit.max_fences_per_read = d.inherent_fences();
                    (audit, last)
                })
            })
            .collect();

        let mut writer = service.client().unwrap();
        for _ in 0..writer_ops {
            writer.submit(CounterOp::Increment).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let mut audits = FenceAudit::default();
        let mut finals = Vec::new();
        for h in handles {
            let (audit, last) = h.join().unwrap();
            assert!(
                audit.satisfies_onll_bounds(),
                "a snapshot reader touched NVM: {audit:?}"
            );
            assert_eq!(audit.read_fences, 0, "{audit:?}");
            assert_eq!(audit.read_flushes, 0, "{audit:?}");
            assert_eq!(audit.read_stores, 0, "{audit:?}");
            assert!(audit.reads > 0, "reader never got to run");
            audits.absorb(&audit);
            finals.push(last);
        }
        (audits, finals)
    });
    assert_eq!(audits.fences_per_read(), 0.0, "{audits:?}");
    // The writers actually progressed under the readers' feet, and the final
    // published snapshot carries the full prefix.
    assert_eq!(service.read_snapshot(&CounterRead::Get), writer_ops);
    assert!(
        finals.iter().all(|&v| v <= writer_ops),
        "a reader observed more than was written: {finals:?}"
    );
}

#[test]
fn checkpointing_preserves_the_per_update_bound() {
    // With both checkpoint triggers armed (ops-count and log-bytes), the paper's
    // inherent bound must still hold per update: checkpoint publish and log
    // truncation fences land in the separate maintenance bucket, never in the
    // per-update count.
    for percent in [50, 100] {
        let p = pool();
        let cfg = OnllConfig::named("ckpt")
            .log_capacity(2048)
            .checkpoint_every(64)
            .checkpoint_when_log_exceeds(64 * 1024)
            .checkpoint_slot_bytes(4096);
        let obj = Durable::<CounterSpec>::create(p.clone(), cfg).unwrap();
        let mut adapter = CheckpointingOnllAdapter::new(obj.register().unwrap());
        let before_persistent = p.stats().persistent_fences();
        let before_maintenance = p.stats().maintenance_fences();
        let mut w = Workload::new(WorkloadMix::with_update_percent(percent), percent as u64);
        let audit =
            audit_fence_bounds::<CounterSpec, _>(&mut adapter, p.stats(), w.counter_ops(1000));
        assert!(
            audit.satisfies_onll_bounds(),
            "mix {percent}% updates violated the inherent bound with checkpointing on: {audit:?}"
        );
        assert_eq!(audit.max_fences_per_update, 1);
        assert_eq!(audit.fences_per_update(), 1.0, "{audit:?}");
        // Checkpoints happened (so the separation was actually exercised)...
        assert!(audit.checkpoint_fences > 0, "{audit:?}");
        // ...at 2 fences per checkpoint, amortized over the 64-update interval.
        assert!(
            audit.checkpoint_fences <= 2 * (audit.updates / 64 + 1),
            "{audit:?}"
        );
        // Cross-check against the pool's global maintenance bucket.
        let maintenance = p.stats().maintenance_fences() - before_maintenance;
        let persistent = p.stats().persistent_fences() - before_persistent;
        assert_eq!(maintenance, audit.checkpoint_fences);
        assert_eq!(
            persistent - maintenance,
            audit.updates,
            "inherent fences must equal the update count exactly"
        );
    }
}

#[test]
fn baselines_do_not_meet_the_bound() {
    let p = pool();
    let naive = NaiveDurable::<CounterSpec>::create(p.clone(), 64);
    let mut w = Workload::new(WorkloadMix::update_only(), 1);
    let audit =
        audit_fence_bounds::<CounterSpec, _>(&mut naive.handle(), p.stats(), w.counter_ops(100));
    assert_eq!(audit.max_fences_per_update, 2);

    let p = pool();
    let wal = WalDurable::<CounterSpec>::create(p.clone(), 256);
    let mut w = Workload::new(WorkloadMix::update_only(), 2);
    let audit =
        audit_fence_bounds::<CounterSpec, _>(&mut wal.handle(), p.stats(), w.counter_ops(100));
    assert_eq!(audit.max_fences_per_update, 2);
}
