//! Multi-threaded stress: several OS threads hammering one `Durable<S>` and
//! one `ShardedDurable<KvSpec>`, on both backends, validated with the
//! Wing&Gong checker on *bounded windows*.
//!
//! The exhaustive checker is exponential, so an unbounded multi-threaded
//! history is uncheckable. Instead the run quiesces between windows: all
//! threads join, the post-window state is read at the quiescent point, and
//! the next window is checked against a history seeded with synthetic
//! base operations encoding that state (sound because every operation of
//! window `i` responds before any operation of window `i+1` is invoked).
//!
//! Every assertion carries the workload seed (override with `STRESS_SEED`),
//! so any violation is reproducible from the failure output alone.

use remembering_consistently::harness::{
    check_linearizability, run_sharded_kv_workload, History, OpRecord, SubmitMode, WorkloadMix,
};
use remembering_consistently::nvm::{BackendSpec, PmemConfig, ScratchDir};
use remembering_consistently::objects::{
    CounterOp, CounterRead, CounterSpec, KvOp, KvRead, KvSpec, KvValue,
};
use remembering_consistently::onll::{Durable, OnllConfig};
use remembering_consistently::shard::{HashRouter, ShardConfig, ShardedDurable};
use std::sync::Arc;

const THREADS: usize = 4;
const WINDOWS: usize = 6;
const OPS_PER_THREAD: usize = 2;
const KEY_SPACE: u64 = 4;

fn seed() -> u64 {
    match std::env::var("STRESS_SEED") {
        Ok(v) => v.parse().expect("STRESS_SEED must be a u64"),
        Err(_) => 0xDECAF,
    }
}

/// xorshift-ish per-(seed, window, thread, op) deterministic value.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9E3779B97F4A7C15);
    z ^= b.wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= c.wrapping_mul(0x94D049BB133111EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}

fn backend_for(label: &str, file: bool) -> (BackendSpec, Option<ScratchDir>) {
    if file {
        let dir = ScratchDir::new(label).unwrap();
        (BackendSpec::file(dir.path()), Some(dir))
    } else {
        (BackendSpec::Sim, None)
    }
}

/// THREADS threads hammer one `Durable<CounterSpec>`; each window's history
/// is checked with Wing&Gong against a base op encoding the quiescent value.
fn stress_counter(file: bool) {
    let seed = seed();
    let label = format!("stress-counter seed={seed} file={file}");
    let (spec, _cleanup) = backend_for("stress-counter", file);
    let cfg = OnllConfig::named("stress-counter")
        .max_processes(THREADS)
        .log_capacity(THREADS * WINDOWS * OPS_PER_THREAD + 16)
        .backend(spec);
    let object = Durable::<CounterSpec>::create_in(
        PmemConfig::with_capacity(32 << 20).apply_pending_at_crash(0.0),
        cfg,
    )
    .unwrap_or_else(|e| panic!("{label}: create failed: {e}"));

    let mut quiescent_value = 0i64;
    let mut expected_total = 0i64;
    for window in 0..WINDOWS {
        let history: History<CounterOp, CounterRead, i64> = History::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let object = object.clone();
                let history = history.clone();
                scope.spawn(move || {
                    let mut handle = object.handle_for(t).expect("claim slot");
                    for k in 0..OPS_PER_THREAD {
                        let r = mix(seed, window as u64, t as u64, k as u64);
                        if r.is_multiple_of(4) {
                            let pending = history.invoke_read(t as u32, CounterRead::Get);
                            let v = handle.read(&CounterRead::Get);
                            history.respond(pending, v);
                        } else {
                            let amount = (r % 9) as i64 - 4;
                            let op = CounterOp::Add(amount);
                            let id = handle.peek_next_op_id();
                            let pending = history.invoke_update(t as u32, Some(id), op);
                            let v = handle.update(op);
                            history.respond(pending, v);
                        }
                    }
                });
            }
        });
        // Quiescent: every window op has responded. Seed the next check with
        // the exact current value as one synthetic completed base update.
        let mut records = history.snapshot();
        for r in &records {
            if let remembering_consistently::harness::EventKind::Update {
                op: CounterOp::Add(a),
                ..
            } = &r.kind
            {
                expected_total += a;
            }
        }
        let base: OpRecord<CounterOp, CounterRead, i64> = OpRecord {
            pid: u32::MAX,
            op_id: None,
            invoked_at: 0,
            responded_at: Some(0),
            kind: remembering_consistently::harness::EventKind::Update {
                op: CounterOp::Add(quiescent_value),
                value: None,
            },
        };
        records.insert(0, base);
        check_linearizability::<CounterSpec>(&records).unwrap_or_else(|e| {
            panic!("{label}: window {window} not linearizable: {e}");
        });
        quiescent_value = object.read_latest(&CounterRead::Get);
    }
    assert_eq!(
        quiescent_value, expected_total,
        "{label}: final value diverges from the applied updates"
    );
    object
        .check_invariants()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
}

/// Encodes a quiescent KV state as synthetic completed Puts preceding the
/// window's real operations.
fn kv_base_records(state: &[(String, String)]) -> Vec<OpRecord<KvOp, KvRead, KvValue>> {
    state
        .iter()
        .enumerate()
        .map(|(i, (k, v))| OpRecord {
            pid: u32::MAX,
            op_id: None,
            invoked_at: i as u64,
            responded_at: Some(i as u64),
            kind: remembering_consistently::harness::EventKind::Update {
                op: KvOp::Put(k.clone(), v.clone()),
                value: None,
            },
        })
        .collect()
}

/// THREADS threads hammer one `ShardedDurable<KvSpec>` with keyed ops; each
/// window is checked with Wing&Gong against the quiescent map contents.
fn stress_sharded_kv(file: bool) {
    let seed = seed();
    let label = format!("stress-sharded-kv seed={seed} file={file}");
    let (spec, _cleanup) = backend_for("stress-sharded-kv", file);
    let config = ShardConfig::named("stress-kv")
        .shards(2)
        .base(
            remembering_consistently::onll::OnllConfig::default()
                .max_processes(THREADS + 1)
                .log_capacity(THREADS * WINDOWS * OPS_PER_THREAD + 16),
        )
        .pmem(PmemConfig::with_capacity(64 << 20).apply_pending_at_crash(0.0))
        .backend(spec);
    let object = ShardedDurable::<KvSpec>::create(config, Arc::new(HashRouter::new(2)))
        .unwrap_or_else(|e| panic!("{label}: create failed: {e}"));

    let mut quiescent: Vec<(String, String)> = Vec::new();
    for window in 0..WINDOWS {
        let history: History<KvOp, KvRead, KvValue> = History::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let object = object.clone();
                let history = history.clone();
                scope.spawn(move || {
                    let mut handle = object.register().expect("register");
                    for k in 0..OPS_PER_THREAD {
                        let r = mix(seed, window as u64, t as u64 + 100, k as u64);
                        let key = format!("key-{}", r % KEY_SPACE);
                        match r % 4 {
                            0 => {
                                let read = KvRead::Get(key);
                                let pending = history.invoke_read(t as u32, read.clone());
                                let v = handle.read(&read);
                                history.respond(pending, v);
                            }
                            1 => {
                                let op = KvOp::Delete(key);
                                let pending = history.invoke_update(t as u32, None, op.clone());
                                let v = handle.update(op);
                                history.respond(pending, v);
                            }
                            _ => {
                                let op = KvOp::Put(key, format!("v{}", r >> 32));
                                let pending = history.invoke_update(t as u32, None, op.clone());
                                let v = handle.update(op);
                                history.respond(pending, v);
                            }
                        }
                    }
                });
            }
        });
        let mut records = kv_base_records(&quiescent);
        let offset = records.len() as u64 + 1;
        for mut r in history.snapshot() {
            r.invoked_at += offset;
            r.responded_at = r.responded_at.map(|t| t + offset);
            records.push(r);
        }
        check_linearizability::<KvSpec>(&records).unwrap_or_else(|e| {
            panic!("{label}: window {window} not linearizable: {e}");
        });
        // Re-read the quiescent state for the next window's base.
        quiescent = (0..KEY_SPACE)
            .filter_map(|i| {
                let key = format!("key-{i}");
                match object.read_latest(&KvRead::Get(key.clone())) {
                    KvValue::Value(Some(v)) => Some((key, v)),
                    _ => None,
                }
            })
            .collect();
    }
    object
        .check_invariants()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
}

#[test]
fn counter_stress_sim_backend() {
    stress_counter(false);
}

#[test]
fn counter_stress_file_backend() {
    stress_counter(true);
}

#[test]
fn sharded_kv_stress_sim_backend() {
    stress_sharded_kv(false);
}

#[test]
fn sharded_kv_stress_file_backend() {
    stress_sharded_kv(true);
}

/// The harness workload driver at higher thread counts (8), on both backends:
/// totals must add up, fence bounds must hold in aggregate, and the report
/// must carry the seed that reproduces the run.
#[test]
fn workload_driver_reports_reproducible_seed() {
    for file in [false, true] {
        let seed = seed();
        let label = format!("driver seed={seed} file={file}");
        let (spec, _cleanup) = backend_for("stress-driver", file);
        let config = ShardConfig::named("driver-kv")
            .shards(2)
            .base(
                remembering_consistently::onll::OnllConfig::default()
                    .max_processes(8)
                    .log_capacity(4096),
            )
            .pmem(PmemConfig::with_capacity(128 << 20).apply_pending_at_crash(0.0))
            .backend(spec);
        let object = ShardedDurable::<KvSpec>::create(config, Arc::new(HashRouter::new(2)))
            .unwrap_or_else(|e| panic!("{label}: create failed: {e}"));
        let ops = if file { 40 } else { 200 };
        let report = run_sharded_kv_workload(
            &object,
            8,
            ops,
            WorkloadMix::with_update_percent(50),
            seed,
            SubmitMode::Individual,
        );
        assert_eq!(report.seed, seed, "{label}: report must carry the seed");
        assert_eq!(report.backend, if file { "file" } else { "sim" }, "{label}");
        assert_eq!(report.total_ops, 8 * ops as u64, "{label}");
        assert_eq!(
            report.persistent_fences, report.updates,
            "{label}: individual submission is exactly one fence per update"
        );
        object
            .check_invariants()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}
