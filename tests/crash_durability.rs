//! Experiment E7: durable linearizability (Definition 5.6) and detectable execution
//! under randomized and exhaustive crash injection.

use remembering_consistently::harness::{quick_crash_sweep, CrashExperiment};
use remembering_consistently::nvm::{CrashTrigger, NvmPool, PmemConfig};
use remembering_consistently::objects::{CounterOp, CounterRead, DurableCounter};
use remembering_consistently::onll::{OnllConfig, OpId};

#[test]
fn randomized_crash_sweep_is_durably_linearizable() {
    for (i, outcome) in quick_crash_sweep(8).iter().enumerate() {
        assert!(outcome.is_consistent(), "sweep point {i}: {outcome:?}");
        assert!(
            outcome.recovered_updates >= outcome.completed_updates,
            "sweep point {i} lost completed updates: {outcome:?}"
        );
    }
}

#[test]
fn crashes_with_pending_flush_uncertainty_are_handled() {
    // An asynchronous write-back pending at crash time may or may not have reached
    // NVM; both outcomes must be consistent.
    for probability in [0.0, 0.3, 0.7, 1.0] {
        let outcome = CrashExperiment {
            threads: 2,
            ops_per_thread: 12,
            crash_after_events: 60,
            apply_pending_probability: probability,
            seed: 7,
            check_linearizability_limit: 0,
            ..Default::default()
        }
        .run();
        assert!(
            outcome.is_consistent(),
            "probability {probability}: {outcome:?}"
        );
    }
}

#[test]
fn exhaustive_crash_points_on_a_short_run_are_all_consistent() {
    // Sweep every persistence event index of a short single-process run: whichever
    // instruction the crash lands after, recovery must yield a consistent prefix.
    let outcomes = CrashExperiment {
        threads: 1,
        ops_per_thread: 6,
        apply_pending_probability: 0.0,
        seed: 11,
        check_linearizability_limit: 14,
        crash_after_events: 1, // overridden by the sweep
        ..Default::default()
    }
    .sweep(1..=20);
    for (i, outcome) in outcomes.iter().enumerate() {
        assert!(
            outcome.is_consistent(),
            "crash after event {}: {outcome:?}",
            i + 1
        );
    }
}

#[test]
fn detectable_execution_across_a_mid_update_crash() {
    // Crash in the middle of an update whose log append has not completed: after
    // recovery, was_linearized() must answer false for it and true for all earlier
    // updates (the detectable-execution property).
    let pool = NvmPool::new(PmemConfig::with_capacity(32 << 20).apply_pending_at_crash(0.0));
    let cfg = OnllConfig::named("detect")
        .max_processes(1)
        .log_capacity(64);
    let object = DurableCounter::create(pool.clone(), cfg.clone()).unwrap();
    let mut completed_ids: Vec<OpId> = Vec::new();
    let mut interrupted: Option<OpId> = None;
    {
        let mut handle = object.register().unwrap();
        for i in 0..10 {
            let id = handle.peek_next_op_id();
            if i == 7 {
                // Crash before this update's single fence completes.
                pool.arm_crash(CrashTrigger::AfterFlushes(1));
                let _ = handle.try_update(CounterOp::Increment);
                interrupted = Some(id);
                break;
            }
            handle.update(CounterOp::Increment);
            completed_ids.push(id);
        }
    }
    drop(object);
    pool.crash_and_restart();
    let (object, report) = DurableCounter::recover(pool, cfg).unwrap();
    assert_eq!(report.durable_index, 7);
    for id in &completed_ids {
        assert!(
            object.was_linearized(*id),
            "completed {id} must be detected"
        );
    }
    assert!(
        !object.was_linearized(interrupted.unwrap()),
        "the interrupted, unpersisted update must be detected as not linearized"
    );
    assert_eq!(object.read_latest(&CounterRead::Get), 7);
}
