//! Read-your-writes through the lock-free snapshot path.
//!
//! Snapshot reads serve a *published* linearized prefix, not the live trace —
//! so the recency contract has to be proven, not assumed. The combiner
//! publishes the new snapshot after `commit_batch` succeeds and **before** it
//! posts READY to the batch's riders; a client's acknowledgement therefore
//! happens-after the publish, and a snapshot read issued after the ack must
//! observe the acked write (and everything linearized before it).
//!
//! Covered here, on both backends:
//!
//! * every acked `Put` is visible to the same session's *next* snapshot read,
//!   under concurrent writers riding the same combiner batches, and
//! * the contract survives a `SIGKILL` of a real `onll_server` process: the
//!   restarted incarnation publishes its recovered prefix before accepting
//!   connections, so snapshot GETs observe every write acked by the previous
//!   incarnation.

use remembering_consistently::nvm::{BackendSpec, PmemConfig, ScratchDir};
use remembering_consistently::objects::{KvOp, KvRead, KvSpec, KvValue};
use remembering_consistently::onll::{Durable, OnllConfig};
use remembering_consistently::server::WireClient;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

const SERVER_BIN: &str = env!("CARGO_BIN_EXE_onll_server");

fn value_of(v: &KvValue) -> Option<&str> {
    match v {
        KvValue::Value(s) => s.as_deref(),
        KvValue::Len(_) => panic!("expected a value, got a length"),
    }
}

/// The in-process half: `threads` clients each ack a `Put` and immediately
/// snapshot-read it back through their own session, while the other threads
/// keep writing (so snapshots are republished under the readers' feet).
fn ack_then_snapshot_read(spec: BackendSpec) {
    let threads = 3;
    let ops = 60;
    let cfg = OnllConfig::named("ryw")
        // One process slot per client plus one for the service's combiner.
        .max_processes(threads + 1)
        .log_capacity(threads * ops + 64)
        .backend(spec);
    let object = Durable::<KvSpec>::create_in(PmemConfig::with_capacity(64 << 20), cfg)
        .expect("create object");
    let service = object.service(threads).expect("service");

    std::thread::scope(|scope| {
        for t in 0..threads {
            let service = service.clone();
            scope.spawn(move || {
                let mut client = service.client().expect("client slot");
                for k in 0..ops {
                    let key = format!("t{t}-k{k}");
                    let value = format!("v{k}");
                    client
                        .submit(KvOp::Put(key.clone(), value.clone()))
                        .expect("acked put");
                    // The ack happened-after the publish: this session's very
                    // next snapshot read must already see the write.
                    let got = client.read_snapshot(&KvRead::Get(key.clone()));
                    assert_eq!(
                        value_of(&got),
                        Some(value.as_str()),
                        "snapshot read after ack missed {key} — the snapshot \
                         was published after the ack, not before"
                    );
                }
            });
        }
    });

    // And the unkeyed service-level snapshot read agrees once quiesced.
    let got = service.read_snapshot(&KvRead::Len);
    assert_eq!(got, KvValue::Len(threads * ops));
}

#[test]
fn ack_then_snapshot_read_on_sim() {
    ack_then_snapshot_read(BackendSpec::Sim);
}

#[test]
fn ack_then_snapshot_read_on_file() {
    let dir = ScratchDir::new("ryw-file").unwrap();
    ack_then_snapshot_read(BackendSpec::file(dir.path()));
}

/// A spawned server process, killed on drop (`READY <port> <recovered>`).
struct ServerProcess {
    child: Child,
    addr: String,
    port: u16,
}

impl ServerProcess {
    fn spawn(dir: &std::path::Path, port: u16) -> Self {
        // Retry: immediately after a SIGKILL the fixed port can still be
        // settling, in which case the child exits before printing READY.
        for _ in 0..50 {
            let mut child = Command::new(SERVER_BIN)
                .arg("serve")
                .arg("--dir")
                .arg(dir)
                .args(["--port", &port.to_string()])
                .args(["--shards", "2", "--clients", "4"])
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn onll_server");
            let stdout = child.stdout.take().expect("child stdout");
            let mut line = String::new();
            BufReader::new(stdout).read_line(&mut line).ok();
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.first() == Some(&"READY") {
                let port: u16 = parts[1].parse().expect("port");
                return ServerProcess {
                    child,
                    addr: format!("127.0.0.1:{port}"),
                    port,
                };
            }
            let _ = child.kill();
            let _ = child.wait();
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        panic!("server did not come up on port {port}");
    }

    fn kill9(mut self) {
        self.child.kill().expect("SIGKILL server");
        self.child.wait().expect("reap server");
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn snapshot_reads_survive_a_kill9_restart() {
    let dir = ScratchDir::new("ryw-kill9").unwrap();
    let server = ServerProcess::spawn(dir.path(), 0);
    let port = server.port;

    // Ack writes, and check read-your-writes across the wire as we go: every
    // GET rides the snapshot path on the server side.
    let mut client = WireClient::connect_with_retry(&server.addr, 1, 20).expect("connect");
    let mut acked = Vec::new();
    for k in 0..80 {
        let key = format!("ryw{k}");
        let value = format!("v{k}");
        client.put(&key, &value).expect("acked put");
        assert_eq!(
            value_of(&client.get(&key).expect("get after ack")),
            Some(value.as_str()),
            "same-session snapshot GET after ack missed {key}"
        );
        acked.push((key, value));
    }
    client.abandon();

    // SIGKILL, recover on the same directory: the restarted server publishes
    // the recovered prefix as its seed snapshot *before* serving, so snapshot
    // GETs observe every previously acked write from the first request on.
    server.kill9();
    let server = ServerProcess::spawn(dir.path(), port);
    let mut reader = WireClient::connect_with_retry(&server.addr, 1, 20).expect("reconnect");
    for (key, value) in &acked {
        assert_eq!(
            value_of(&reader.get(key).expect("get after restart")),
            Some(value.as_str()),
            "snapshot GET after kill-9 restart missed acked key {key}"
        );
    }
    // The counters prove those GETs took the snapshot path, not the lock.
    let stats = reader.stats().expect("stats");
    assert!(
        stats.snapshot_reads >= acked.len() as u64,
        "stats: {stats:?}"
    );
}
