//! Chaos harness: randomized-but-replayable fault schedules against a real
//! `onll_server` process, asserting the exactly-once contract end to end.
//!
//! Every source of nondeterminism derives from one seed (printed at the start
//! of each round; override with `CHAOS_SEED=<n>`), so a failing run replays:
//!
//! * which fault spec the server is started with (`--fault-spec`, driving the
//!   `nvm_sim::FaultPlan` inside every shard pool),
//! * when the chaos director kills the server (`SIGKILL`) or drains it
//!   politely (`SIGTERM`), and
//! * when clients deliberately drop their connections mid-stream.
//!
//! Clients run [`ResilientSession`] — reconnect, resolve, replay under the
//! same identity — and record every *acknowledged* `(key, value, shard,
//! op_id)`. The audit after the dust settles asserts, over a fresh
//! connection:
//!
//! 1. every acknowledged identity resolves `Executed` or `Truncated`
//!    (compacted below a checkpoint floor) — **never** `Unknown`: an
//!    acknowledged operation must have survived every crash, and
//! 2. every acknowledged key reads back the acknowledged value (keys are
//!    unique per operation, so the expected value is deterministic even with
//!    concurrent writers).
//!
//! The tier-1 `chaos_smoke` keeps one short seeded round in the default test
//! run; the seeded matrix (`chaos_matrix`) is `#[ignore]`d and run by the
//! nightly CI job. The remaining tests pin down the individual degradation
//! mechanisms: SIGTERM drain, admission control (`BUSY`), idle-session
//! reaping, handler panic containment, and permanent-fault degraded mode.

use remembering_consistently::nvm::ScratchDir;
use remembering_consistently::objects::KvValue;
use remembering_consistently::onll::OpId;
use remembering_consistently::server::{
    ClientError, ResilientSession, RetryOutcome, RetryPolicy, WireClient,
};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const SERVER_BIN: &str = env!("CARGO_BIN_EXE_onll_server");

/// Deterministic splitmix64; all chaos scheduling randomness flows from here.
/// (Not an LCG: round seeds are derived arithmetically from the base seed,
/// and an LCG's linearity would correlate their streams.)
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x2545F4914F6CDD1D) ^ 0x6A09E667F3BCC909)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A spawned server process, killed on drop.
struct ServerProcess {
    child: Child,
    addr: String,
    port: u16,
    recovered: u64,
}

struct SpawnSpec<'a> {
    dir: &'a std::path::Path,
    port: u16,
    shards: usize,
    clients: usize,
    extra_args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl<'a> SpawnSpec<'a> {
    fn new(dir: &'a std::path::Path) -> Self {
        SpawnSpec {
            dir,
            port: 0,
            shards: 2,
            clients: 8,
            extra_args: Vec::new(),
            envs: Vec::new(),
        }
    }
}

impl ServerProcess {
    /// Spawns and waits for `READY`. Retries a few times: immediately after a
    /// SIGKILL the fixed port can still be settling, in which case the child
    /// exits before printing `READY`.
    fn spawn(spec: &SpawnSpec) -> Self {
        let mut last_err = String::new();
        for _ in 0..50 {
            match Self::try_spawn(spec) {
                Ok(server) => return server,
                Err(e) => {
                    last_err = e;
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        panic!("server did not come up on port {}: {last_err}", spec.port);
    }

    fn try_spawn(spec: &SpawnSpec) -> Result<Self, String> {
        let mut cmd = Command::new(SERVER_BIN);
        cmd.arg("serve")
            .arg("--dir")
            .arg(spec.dir)
            .args(["--port", &spec.port.to_string()])
            .args(["--shards", &spec.shards.to_string()])
            .args(["--clients", &spec.clients.to_string()])
            .args(spec.extra_args.iter())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in &spec.envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().map_err(|e| format!("spawn: {e}"))?;
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read READY: {e}"))?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.first() != Some(&"READY") {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("no READY line (got {line:?})"));
        }
        let port: u16 = parts[1].parse().map_err(|e| format!("port: {e}"))?;
        let recovered: u64 = parts[2].parse().map_err(|e| format!("recovered: {e}"))?;
        Ok(ServerProcess {
            child,
            addr: format!("127.0.0.1:{port}"),
            port,
            recovered,
        })
    }

    fn pid(&self) -> u32 {
        self.child.id()
    }

    /// SIGKILL: the crash the construction's recovery is built for.
    fn kill9(mut self) {
        self.child.kill().expect("SIGKILL server");
        self.child.wait().expect("reap server");
        // Drop runs after this, but the child is already reaped.
    }

    /// SIGTERM, then wait for the graceful drain to finish. Asserts exit 0:
    /// the drain path must complete the final checkpoint and exit cleanly.
    fn terminate_gracefully(mut self) {
        let status = Command::new("kill")
            .args(["-TERM", &self.pid().to_string()])
            .status()
            .expect("send SIGTERM");
        assert!(status.success(), "kill -TERM failed");
        let exit = self.child.wait().expect("reap server");
        assert!(
            exit.success(),
            "graceful shutdown must exit 0, got {exit:?}"
        );
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn value_of(v: &KvValue) -> Option<&str> {
    match v {
        KvValue::Value(s) => s.as_deref(),
        KvValue::Len(_) => panic!("expected a value, got a length"),
    }
}

/// One acknowledged durable write, as seen by the client that performed it.
struct Acked {
    key: String,
    value: String,
    shard: usize,
    op_id: OpId,
}

/// The exactly-once audit (see the module docs).
fn audit(addr: &str, acked: &[Acked], seed: u64) {
    let mut reader = WireClient::connect_with_retry(addr, 0, 50).expect("connect auditor");
    for a in acked {
        match reader.resolve(a.shard, a.op_id).expect("resolve") {
            RetryOutcome::Unknown => panic!(
                "seed {seed}: acked {:?} ({}={}) resolves Unknown — an acknowledged \
                 write was lost",
                a.op_id, a.key, a.value
            ),
            RetryOutcome::Executed(_) | RetryOutcome::Truncated => {}
        }
        let got = reader.get(&a.key).expect("audit get");
        assert_eq!(
            value_of(&got),
            Some(a.value.as_str()),
            "seed {seed}: acked key {} must read back its acked value",
            a.key
        );
    }
}

/// One chaos round: `clients` resilient sessions write `ops_per_client`
/// uniquely-keyed values while the director restarts the server `restarts`
/// times (mostly SIGKILL, occasionally SIGTERM). Returns every acknowledged
/// write plus the final server incarnation for the audit.
#[allow(clippy::too_many_arguments)]
fn chaos_round(
    dir: &std::path::Path,
    seed: u64,
    round: u64,
    clients: u32,
    ops_per_client: usize,
    restarts: u32,
    fault_spec: Option<&str>,
    drop_every: Option<usize>,
) -> (Vec<Acked>, ServerProcess) {
    let mut spec = SpawnSpec::new(dir);
    if let Some(fs) = fault_spec {
        spec.extra_args = vec!["--fault-spec".into(), fs.into()];
    }
    let first = ServerProcess::spawn(&spec);
    let port = first.port;
    let addr = first.addr.clone();
    spec.port = port;

    let acked: Mutex<Vec<Acked>> = Mutex::new(Vec::new());
    let permanent: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let server = std::thread::scope(|scope| {
        for conn in 0..clients {
            let addr = addr.clone();
            let acked = &acked;
            let permanent = &permanent;
            scope.spawn(move || {
                let policy = RetryPolicy::with_deadline(Duration::from_secs(30))
                    .seed(seed ^ (conn as u64) << 8);
                let mut session = ResilientSession::new(addr, conn, policy);
                for k in 0..ops_per_client {
                    if let Some(every) = drop_every {
                        if k > 0 && k % every == 0 {
                            // A client-side disconnect mid-stream: the next
                            // operation reconnects and resolves first.
                            session.drop_connection();
                        }
                    }
                    let key = format!("s{seed}-r{round}-c{conn}-k{k}");
                    let value = format!("v{k}");
                    match session.put(&key, &value) {
                        Ok((prev, shard, op_id)) => {
                            assert_eq!(
                                value_of(&prev),
                                None,
                                "seed {seed}: unique key {key} written twice — \
                                 a replay double-applied"
                            );
                            acked.lock().unwrap().push(Acked {
                                key,
                                value,
                                shard,
                                op_id,
                            });
                        }
                        Err(e) => permanent.lock().unwrap().push(format!("{key}: {e}")),
                    }
                }
            });
        }

        // The chaos director: seeded restarts while the clients hammer away.
        let mut rng = Rng::new(seed ^ 0xD15EA5E);
        let mut server = first;
        for _ in 0..restarts {
            std::thread::sleep(Duration::from_millis(150 + rng.below(400)));
            if rng.below(4) == 0 {
                server.terminate_gracefully();
            } else {
                server.kill9();
            }
            // Recovery on the same directory and port; the fault spec is only
            // installed in the first incarnation (its event ordinals are
            // relative to process start and would re-fire during recovery).
            server = ServerProcess::spawn(&SpawnSpec {
                port,
                ..SpawnSpec::new(dir)
            });
        }
        // The last incarnation stays alive for the audit.
        server
    });

    let permanent = permanent.into_inner().unwrap();
    assert!(
        permanent.is_empty(),
        "seed {seed}: operations failed permanently under a recoverable \
         schedule: {permanent:?}"
    );
    (acked.into_inner().unwrap(), server)
}

#[test]
fn chaos_smoke() {
    let seed = chaos_seed(0xC0FFEE);
    eprintln!("chaos_smoke seed = {seed} (override with CHAOS_SEED)");
    let dir = ScratchDir::new("chaos-smoke").unwrap();
    let (acked, server) = chaos_round(
        dir.path(),
        seed,
        0,
        3,  // clients
        40, // ops per client
        2,  // restarts
        None,
        Some(13), // deliberate client disconnect every 13 ops
    );
    assert!(
        acked.len() >= 3 * 40 / 2,
        "most operations should be acknowledged (got {})",
        acked.len()
    );
    audit(&server.addr, &acked, seed);
}

/// The nightly matrix: several seeds, injected backend faults (transient
/// EIOs, torn writes, fsync latency spikes), more restarts, more clients.
/// Replay a failure with `CHAOS_SEED=<printed seed> cargo test --test chaos
/// chaos_matrix -- --ignored`.
#[test]
#[ignore = "long-running seeded matrix; run via the nightly chaos CI job"]
fn chaos_matrix() {
    let base = chaos_seed(20260808);
    for round in 0..4u64 {
        let seed = base.wrapping_add(round.wrapping_mul(0x9E3779B97F4A7C15));
        let mut rng = Rng::new(seed);
        // A seed-derived fault spec; every variant is recoverable (transient
        // or torn — permanent EIOs are covered by the degraded-mode test
        // below). Ordinals start past store creation, which consumes ~68
        // pwrite/fsync events for two shards: a fault that fires *during*
        // creation fails the open, and the spawn retry would then re-fire it
        // against the half-created directory forever.
        let at = 120 + rng.below(150);
        let fault_spec = match rng.below(4) {
            0 => None,
            1 => Some(format!("seed={seed},transient-fsync-eio@{at}*2")),
            2 => Some(format!("seed={seed},torn@{at}")),
            _ => Some(format!("seed={seed},fsync-delay@{at}*4=3000")),
        };
        eprintln!(
            "chaos_matrix round {round}: seed = {seed}, fault_spec = {fault_spec:?} \
             (override base with CHAOS_SEED)"
        );
        let dir = ScratchDir::new(&format!("chaos-matrix-{round}")).unwrap();
        let (acked, server) = chaos_round(
            dir.path(),
            seed,
            round,
            4,  // clients
            80, // ops per client
            3,  // restarts
            fault_spec.as_deref(),
            Some(11),
        );
        assert!(
            acked.len() >= 4 * 80 / 2,
            "seed {seed}: most operations should be acknowledged (got {})",
            acked.len()
        );
        audit(&server.addr, &acked, seed);
    }
}

#[test]
fn graceful_sigterm_drains_and_recovers_everything() {
    let dir = ScratchDir::new("chaos-sigterm").unwrap();
    let server = ServerProcess::spawn(&SpawnSpec::new(dir.path()));
    let port = server.port;
    let addr = server.addr.clone();

    let mut client = WireClient::connect_with_retry(&addr, 1, 20).expect("connect");
    let mut acked = Vec::new();
    for k in 0..50 {
        let key = format!("g{k}");
        let (_, shard, op_id) = client.put(&key, &format!("v{k}")).expect("put");
        acked.push(Acked {
            key,
            value: format!("v{k}"),
            shard,
            op_id,
        });
    }
    client.abandon();

    // SIGTERM: stop accepting, drain, final checkpoint, exit 0.
    server.terminate_gracefully();

    // The restart recovers every acknowledged write — and, because the drain
    // published a final checkpoint, the recovered durable index covers them.
    let server = ServerProcess::spawn(&SpawnSpec {
        port,
        ..SpawnSpec::new(dir.path())
    });
    assert!(
        server.recovered >= 50,
        "drained server must recover all 50 acked writes, got {}",
        server.recovered
    );
    audit(&server.addr, &acked, 0);
}

#[test]
fn admission_control_rejects_and_then_admits() {
    let dir = ScratchDir::new("chaos-busy").unwrap();
    let mut spec = SpawnSpec::new(dir.path());
    spec.extra_args = vec!["--max-conns".into(), "2".into()];
    let server = ServerProcess::spawn(&spec);

    let c1 = WireClient::connect_with_retry(&server.addr, 1, 20).expect("first");
    let _c2 = WireClient::connect_with_retry(&server.addr, 2, 20).expect("second");

    // Third connection: a typed BUSY rejection, not a hang or a reset.
    match WireClient::connect(&server.addr, 3) {
        Err(ClientError::Busy) => {}
        Err(other) => panic!("expected Busy, got {other:?}"),
        Ok(_) => panic!("expected Busy, got an admitted session"),
    }

    // The rejection is visible in STATS (served over an admitted session) —
    // the `server.busy_rejects` telemetry counter backs this field.
    let mut probe = c1;
    let stats = probe.stats().expect("stats");
    assert!(stats.busy_rejects >= 1, "stats: {stats:?}");

    // Freeing a slot re-admits: drop one session, then the reject clears.
    probe.abandon();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match WireClient::connect(&server.addr, 3) {
            Ok(c) => {
                c.abandon();
                break;
            }
            Err(ClientError::Busy) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("expected eventual admission, got {e:?}"),
        }
    }
}

#[test]
fn idle_sessions_are_reaped_and_resilient_clients_recover() {
    let dir = ScratchDir::new("chaos-idle").unwrap();
    let mut spec = SpawnSpec::new(dir.path());
    spec.extra_args = vec!["--idle-timeout-ms".into(), "300".into()];
    let server = ServerProcess::spawn(&spec);

    // A raw client that goes quiet is reaped: its next request fails.
    let mut raw = WireClient::connect_with_retry(&server.addr, 1, 20).expect("connect");
    raw.put("warm", "up").expect("warm put");
    std::thread::sleep(Duration::from_millis(1200));
    assert!(
        raw.put("after", "idle").is_err(),
        "the server should have closed the idle session"
    );

    // A resilient session shrugs it off: reconnect, resolve, replay.
    let mut session = ResilientSession::new(
        server.addr.clone(),
        1,
        RetryPolicy::with_deadline(Duration::from_secs(10)).seed(1),
    );
    session.put("recovered", "yes").expect("resilient put");
    std::thread::sleep(Duration::from_millis(1200));
    session
        .put("recovered-again", "yes")
        .expect("put after idle reap");
    assert!(session.retries() >= 1, "the reap must have cost a retry");

    // The reap shows up in STATS via the `server.timeouts` counter.
    let stats = session.stats().expect("stats");
    assert!(stats.timeouts >= 1, "stats: {stats:?}");
}

#[test]
fn handler_panics_are_contained() {
    let dir = ScratchDir::new("chaos-panic").unwrap();
    let mut spec = SpawnSpec::new(dir.path());
    spec.envs = vec![("ONLL_TEST_PANIC_KEY".into(), "__chaos_panic__".into())];
    let server = ServerProcess::spawn(&spec);

    let mut client = WireClient::connect_with_retry(&server.addr, 1, 20).expect("connect");
    client.put("before", "ok").expect("normal put");

    // The poison-pill key panics the handler thread; the panic must come back
    // as a typed, retryable error frame — never a silent hang or a dead server.
    match client.put("__chaos_panic__", "boom") {
        Err(ClientError::Server { retryable, message }) => {
            assert!(retryable, "a panic is a retryable condition");
            assert!(
                message.contains("panicked"),
                "unexpected message: {message}"
            );
        }
        // The handler dies after replying, so the error can also surface as a
        // connection-level failure if the reply write raced the close.
        Err(ClientError::Wire(_)) => {}
        other => panic!("expected a contained panic error, got {other:?}"),
    }

    // The server survives: a fresh session works, and earlier data is intact.
    let mut fresh = WireClient::connect_with_retry(&server.addr, 2, 20).expect("reconnect");
    assert_eq!(value_of(&fresh.get("before").expect("get")), Some("ok"));
    fresh.put("after", "ok").expect("put after panic");
}

#[test]
fn permanent_fault_degrades_writes_but_serves_reads_until_restart() {
    let dir = ScratchDir::new("chaos-degraded").unwrap();
    let mut spec = SpawnSpec::new(dir.path());
    spec.shards = 1;
    // A permanent fsync EIO partway into the run: ordinal 200 clears store
    // creation comfortably and lands within the write loop below.
    spec.extra_args = vec!["--fault-spec".into(), "fsync-eio@200".into()];
    let server = ServerProcess::spawn(&spec);
    let port = server.port;

    let mut client = WireClient::connect_with_retry(&server.addr, 1, 20).expect("connect");
    let mut acked = Vec::new();
    let mut degraded_seen = false;
    for k in 0..1000 {
        let key = format!("d{k}");
        match client.put(&key, &format!("v{k}")) {
            Ok((_, shard, op_id)) => acked.push(Acked {
                key,
                value: format!("v{k}"),
                shard,
                op_id,
            }),
            Err(ClientError::Unavailable { .. }) => {
                // The first refusal carries the raw backend error; only
                // subsequent short-circuited writes say "degraded" — both are
                // typed Unavailable, which is what matters here.
                degraded_seen = true;
                break;
            }
            Err(e) => panic!("expected Unavailable at the fault point, got {e:?}"),
        }
    }
    assert!(
        degraded_seen,
        "the injected permanent fault never fired within 1000 puts"
    );
    assert!(!acked.is_empty(), "some writes must precede the fault");

    // Degraded mode: reads still serve, writes stay refused, STATS says so.
    // GETs ride the lock-free snapshot path, so a shard whose *write* path is
    // dead keeps answering from its last published (linearized, acked) prefix
    // — every acked key, not just the latest, and repeatedly.
    for a in &acked {
        assert_eq!(
            value_of(&client.get(&a.key).expect("degraded snapshot read")),
            Some(a.value.as_str()),
            "degraded shard must keep serving acked key {}",
            a.key
        );
    }
    // The locked path (GET_LATEST) also still works: the commit lock itself
    // is healthy — only persistence is refusing — and it must agree with the
    // snapshot on a quiesced shard.
    let last = acked.last().unwrap();
    assert_eq!(
        value_of(&client.get_latest(&last.key).expect("degraded latest read")),
        Some(last.value.as_str())
    );
    match client.put("rejected", "x") {
        Err(ClientError::Unavailable { .. }) => {}
        other => panic!("degraded shard must refuse writes, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert!(stats.degraded_shards >= 1, "stats: {stats:?}");
    assert!(
        stats.snapshot_reads >= acked.len() as u64,
        "every degraded GET must be counted as a snapshot read: {stats:?}"
    );
    assert!(
        stats.latest_reads >= 1,
        "the GET_LATEST must be counted as a locked read: {stats:?}"
    );
    client.abandon();

    // A restart (fresh incarnation, no fault spec) recovers every acked write
    // and accepts writes again — degradation is per incarnation, not
    // persistent damage.
    server.kill9();
    let server = ServerProcess::spawn(&SpawnSpec {
        port,
        shards: 1,
        ..SpawnSpec::new(dir.path())
    });
    audit(&server.addr, &acked, 0);
    let mut healed = WireClient::connect_with_retry(&server.addr, 1, 20).expect("reconnect");
    healed.put("healed", "yes").expect("write after restart");
}
