//! Experiment E1: the four Figure-1 executions as assertions (the runnable,
//! narrated version is `examples/figure1_executions.rs`).

use remembering_consistently::nvm::{NvmPool, PmemConfig};
use remembering_consistently::objects::{CounterOp, CounterRead, CounterSpec, DurableCounter};
use remembering_consistently::onll::{Durable, Hooks, OnllConfig, Phase};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One-shot gate parking a given process at a given phase until opened.
struct Gate {
    pid: u32,
    phase: Phase,
    reached: AtomicBool,
    open: AtomicBool,
    armed: AtomicBool,
}

impl Gate {
    fn new(pid: u32, phase: Phase) -> Arc<Self> {
        Arc::new(Gate {
            pid,
            phase,
            reached: AtomicBool::new(false),
            open: AtomicBool::new(false),
            armed: AtomicBool::new(true),
        })
    }
    fn hook(gates: Vec<Arc<Gate>>) -> Hooks {
        Hooks::new(move |phase, pid| {
            for g in &gates {
                if phase == g.phase && pid == g.pid && g.armed.swap(false, Ordering::SeqCst) {
                    g.reached.store(true, Ordering::SeqCst);
                    while !g.open.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
            }
        })
    }
    fn wait(&self) {
        while !self.reached.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }
    fn open(&self) {
        self.open.store(true, Ordering::Release);
    }
}

#[test]
fn execution_1_sequential_update_and_read() {
    let pool = NvmPool::new(PmemConfig::default());
    let counter = DurableCounter::create(pool, OnllConfig::named("e1")).unwrap();
    let mut p1 = counter.register().unwrap();
    assert_eq!(p1.update(CounterOp::Increment), 1);
    assert_eq!(p1.read(&CounterRead::Get), 1);
}

#[test]
fn execution_2_update_concurrent_with_reads() {
    let pool = NvmPool::new(PmemConfig::default());
    let gate = Gate::new(0, Phase::BeforeLinearize);
    let counter = Durable::<CounterSpec>::create_with_hooks(
        pool,
        OnllConfig::named("e2").max_processes(3),
        Gate::hook(vec![gate.clone()]),
    )
    .unwrap();
    counter.handle_for(2).unwrap().update(CounterOp::Increment); // state = 1
    let c = counter.clone();
    let p1 = std::thread::spawn(move || c.handle_for(0).unwrap().update(CounterOp::Increment));
    gate.wait();
    let mut reader = counter.handle_for(1).unwrap();
    assert_eq!(reader.read(&CounterRead::Get), 1, "r1 sees the old state");
    gate.open();
    assert_eq!(p1.join().unwrap(), 2);
    assert_eq!(reader.read(&CounterRead::Get), 2, "r2 sees the new state");
}

#[test]
fn execution_3_update_helping_another_update() {
    let pool = NvmPool::new(PmemConfig::default());
    let gate = Gate::new(0, Phase::BeforePersist);
    let counter = Durable::<CounterSpec>::create_with_hooks(
        pool.clone(),
        OnllConfig::named("e3").max_processes(3),
        Gate::hook(vec![gate.clone()]),
    )
    .unwrap();
    counter.handle_for(2).unwrap().update(CounterOp::Increment); // state = 1
    let c = counter.clone();
    let p1 = std::thread::spawn(move || c.handle_for(0).unwrap().update(CounterOp::Increment));
    gate.wait();
    let before = pool.stats().persistent_fences();
    let mut p2 = counter.handle_for(1).unwrap();
    assert_eq!(
        p2.update(CounterOp::Increment),
        3,
        "p2 helps p1 and returns 3"
    );
    assert_eq!(pool.stats().persistent_fences() - before, 1);
    assert_eq!(p2.read(&CounterRead::Get), 3);
    gate.open();
    assert_eq!(p1.join().unwrap(), 2);
}

#[test]
fn execution_4_crash_concurrent_with_updates() {
    let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20).apply_pending_at_crash(0.0));
    let g1 = Gate::new(0, Phase::BeforePersist);
    let g2 = Gate::new(1, Phase::BeforeLinearize);
    let g3 = Gate::new(2, Phase::BeforePersist);
    let cfg = OnllConfig::named("e4").max_processes(3);
    let counter = Durable::<CounterSpec>::create_with_hooks(
        pool.clone(),
        cfg.clone(),
        Gate::hook(vec![g1.clone(), g2.clone(), g3.clone()]),
    )
    .unwrap();
    let spawn = |pid: usize, c: Durable<CounterSpec>| {
        std::thread::spawn(move || {
            let _ = c.handle_for(pid).unwrap().try_update(CounterOp::Increment);
        })
    };
    let t1 = spawn(0, counter.clone());
    g1.wait();
    let t2 = spawn(1, counter.clone());
    g2.wait();
    let t3 = spawn(2, counter.clone());
    g3.wait();
    assert_eq!(counter.read_latest(&CounterRead::Get), 0, "no flag set yet");
    let token = pool.crash();
    for g in [&g1, &g2, &g3] {
        g.open();
    }
    for t in [t1, t2, t3] {
        t.join().unwrap();
    }
    pool.restart(token);
    drop(counter);
    let (recovered, report) = DurableCounter::recover(pool, cfg).unwrap();
    assert_eq!(
        report.replayed_ops(),
        2,
        "p1 and p2 recovered via p2's log entry"
    );
    assert_eq!(recovered.read_latest(&CounterRead::Get), 2);
}
