//! Reproduces the Theorem 6.3 lower-bound execution and the contradiction behind it.
//!
//! 1. The adversarial schedule: each of `n` processes runs an update solo and is
//!    preempted just before its response; every one of them is observed to have
//!    issued at least one persistent fence (the lower bound). Since ONLL issues at
//!    most one (Theorem 5.1), the bound is tight: exactly one fence per update.
//! 2. The contradiction: an update that responds without having fenced can be lost
//!    by a crash placed immediately after its response, violating durable
//!    linearizability.
//!
//! ```text
//! cargo run --example lower_bound_demo
//! ```

use remembering_consistently::harness::lower_bound::{
    demonstrate_fence_necessity, run_lower_bound_experiment,
};
use remembering_consistently::harness::Table;

fn main() {
    let mut table = Table::new(
        "Theorem 6.3 schedule: per-process persistent fences before the response",
        &[
            "processes",
            "fences per process (min..max)",
            "lower bound >=1",
            "upper bound <=1",
        ],
    );
    for n in [1, 2, 4, 8] {
        let report = run_lower_bound_experiment(n);
        let min = report
            .fences_before_response
            .iter()
            .min()
            .copied()
            .unwrap_or(0);
        let max = report
            .fences_before_response
            .iter()
            .max()
            .copied()
            .unwrap_or(0);
        table.row_display(&[
            n.to_string(),
            format!("{min}..{max}"),
            report.lower_bound_holds().to_string(),
            report.upper_bound_holds().to_string(),
        ]);
        assert!(report.lower_bound_holds());
        assert!(report.upper_bound_holds());
    }
    table.print();

    let (with_fence, without_fence) = demonstrate_fence_necessity();
    println!();
    println!("why the fence is necessary (proof's contradiction):");
    println!("  counter value after crash+recovery WITH its one fence    : {with_fence}");
    println!("  counter value after crash+recovery WITHOUT the fence     : {without_fence}");
    println!("  (the fence-less update would already have responded — losing it violates");
    println!("   durable linearizability, which is exactly the contradiction in the proof)");
    assert_eq!((with_fence, without_fence), (1, 0));
    println!("lower_bound_demo OK");
}
