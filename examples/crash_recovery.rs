//! Crash-injection sweep with durable-linearizability checking (experiment E7).
//!
//! Runs concurrent counter workloads, injects full-system crashes at a sweep of
//! adversarially chosen persistence events, recovers, and verifies Definition 5.6:
//! every completed operation survives, the recovered set is a consistent cut,
//! recovered order respects real time, and replayed values match observed ones.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use remembering_consistently::harness::{CrashExperiment, Table};

fn main() {
    let experiment = CrashExperiment {
        threads: 3,
        ops_per_thread: 15,
        check_linearizability_limit: 0, // concurrent histories: skip the exponential checker
        ..Default::default()
    };
    let crash_points: Vec<u64> = (0..12).map(|i| 10 + 23 * i).collect();

    let mut table = Table::new(
        "crash sweep: durable linearizability after recovery",
        &[
            "crash after N events",
            "crashed mid-run",
            "completed updates",
            "recovered updates",
            "recovered value",
            "durably linearizable",
        ],
    );

    let outcomes = experiment.sweep(crash_points.iter().copied());
    let mut all_ok = true;
    for (point, outcome) in crash_points.iter().zip(&outcomes) {
        all_ok &= outcome.is_consistent();
        table.row_display(&[
            point.to_string(),
            outcome.crashed.to_string(),
            outcome.completed_updates.to_string(),
            outcome.recovered_updates.to_string(),
            outcome.recovered_value.to_string(),
            outcome.durability.is_ok().to_string(),
        ]);
    }
    table.print();
    assert!(all_ok, "a crash point violated durable linearizability");
    println!();
    println!(
        "all {} crash points satisfied Definition 5.6 (durable linearizability)",
        outcomes.len()
    );
    println!("crash_recovery OK");
}
