//! A persistent key-value store served by multiple worker threads, with
//! checkpointing and memory reclamation (the Section 8 extensions), surviving a
//! crash in the middle of the run.
//!
//! This is the kind of application the paper's introduction motivates: durable
//! application state where the persistence cost per request is a single fence.
//!
//! ```text
//! cargo run --example durable_kv_store
//! ```

use remembering_consistently::harness::{Workload, WorkloadMix, WorkloadOp};
use remembering_consistently::nvm::{NvmPool, PmemConfig};
use remembering_consistently::objects::{DurableKv, KvRead, KvSpec, KvValue};
use remembering_consistently::onll::OnllConfig;

const WORKERS: usize = 4;
const REQUESTS_PER_WORKER: usize = 2_000;

fn config() -> OnllConfig {
    OnllConfig::named("kv-store")
        .max_processes(WORKERS)
        .log_capacity(4096)
        .checkpoint_every(512)
        .checkpoint_slot_bytes(512 * 1024)
}

fn serve(kv: &DurableKv, pool: &NvmPool) -> (u64, u64) {
    let fences_before = pool.stats().persistent_fences();
    let mut joins = Vec::new();
    for worker in 0..WORKERS {
        let kv = kv.clone();
        joins.push(std::thread::spawn(move || {
            let mut handle = kv.register().expect("register worker");
            let mut workload = Workload::new(
                WorkloadMix {
                    update_ratio: 0.5,
                    key_space: 256,
                },
                worker as u64 * 7919 + 13,
            );
            let mut updates = 0u64;
            for op in workload.kv_ops(REQUESTS_PER_WORKER) {
                match op {
                    WorkloadOp::Update(u) => {
                        handle
                            .update_with_checkpoint(u)
                            .expect("update with periodic checkpoint");
                        updates += 1;
                    }
                    WorkloadOp::Read(r) => {
                        handle.read(&r);
                    }
                }
            }
            updates
        }));
    }
    let updates: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    (updates, pool.stats().persistent_fences() - fences_before)
}

fn main() {
    let pool = NvmPool::new(PmemConfig::with_capacity(128 << 20));
    let kv = DurableKv::create(pool.clone(), config()).expect("create kv store");

    // Phase 1: serve a burst of requests from several workers.
    let (updates, fences) = serve(&kv, &pool);
    println!(
        "phase 1: {} requests ({} updates) across {WORKERS} workers, {} persistent fences \
         ({:.2} fences per update including checkpoint maintenance)",
        WORKERS * REQUESTS_PER_WORKER,
        updates,
        fences,
        fences as f64 / updates as f64
    );
    // Reads go through a registered handle: after trace-prefix reclamation the
    // history below the local views is gone, so only handles (which materialize the
    // state) can serve reads — exactly the Section 8 trade-off.
    let len_before = {
        let mut reader = kv.register().expect("register reader");
        match reader.read(&KvRead::Len) {
            KvValue::Len(n) => n,
            other => panic!("unexpected read value {other:?}"),
        }
    };
    println!("phase 1: store holds {len_before} keys");

    // Crash the machine.
    drop(kv);
    pool.crash_and_restart();

    // Phase 2: recover (from the newest checkpoint plus the log suffix) and keep serving.
    let (kv, report) =
        DurableKv::recover_with_checkpoints(pool.clone(), config()).expect("recover kv store");
    println!(
        "recovery: checkpoint at index {}, {} log operations replayed, durable index {}",
        report.checkpoint_index,
        report.replayed_ops(),
        report.durable_index
    );
    let len_after = {
        let mut reader = kv.register().expect("register reader");
        match reader.read(&KvRead::Len) {
            KvValue::Len(n) => n,
            other => panic!("unexpected read value {other:?}"),
        }
    };
    assert_eq!(len_before, len_after, "no completed update may be lost");
    println!("recovery: store holds {len_after} keys (matches pre-crash state)");

    let (updates2, fences2) = serve(&kv, &pool);
    println!(
        "phase 2 (after recovery): {} more updates, {} persistent fences",
        updates2, fences2
    );

    // Sanity: a targeted probe through a reader handle.
    let mut reader = kv.register().expect("register reader");
    let probe = KvRead::Get("key-17".to_string());
    let value = reader.read(&probe);
    println!("probe key-17 -> {value:?}");
    let _: KvSpec = KvSpec::default();
    println!("durable_kv_store OK");
}
