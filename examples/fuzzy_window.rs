//! Reproduces Figure 2 of the paper: the execution trace and the fuzzy window.
//!
//! Five nodes (INIT plus op1..op4) with only op2's available flag set: op3 and op4
//! form the fuzzy window; op1, although its own flag is unset, is part of the
//! non-fuzzy prefix because a later operation (op2) is available.
//!
//! ```text
//! cargo run --example fuzzy_window
//! ```

use remembering_consistently::trace::{
    check_fuzzy_invariant, fuzzy_window_indices, partition_indices, ExecutionTrace,
};

fn main() {
    let trace = ExecutionTrace::new("INIT");
    let _op1 = trace.insert("op1");
    let op2 = trace.insert("op2");
    let _op3 = trace.insert("op3");
    let _op4 = trace.insert("op4");
    trace.set_available(op2);

    println!("execution trace (tail -> sentinel):");
    for node in trace.iter() {
        println!(
            "  idx {:>2}  available={:5}  op={}",
            node.idx(),
            node.is_available(),
            node.op()
        );
    }

    let (non_fuzzy, fuzzy) = partition_indices(&trace);
    println!("fuzzy window   : {fuzzy:?} (expected [4, 3] as in Figure 2)");
    println!("non-fuzzy part : {non_fuzzy:?} (expected [2, 1, 0])");
    assert_eq!(fuzzy, vec![4, 3]);
    assert_eq!(non_fuzzy, vec![2, 1, 0]);
    assert_eq!(fuzzy_window_indices(&trace), vec![4, 3]);

    // Proposition 5.2: with two processes, any 3 consecutive nodes contain an
    // available one; the fuzzy window therefore never exceeds 2 nodes.
    check_fuzzy_invariant(&trace, 2).expect("Proposition 5.2 holds for Figure 2's trace");
    println!("Proposition 5.2 check passed (bound = 2 processes)");

    // Readers linearize at the latest available node: op2.
    assert_eq!(trace.latest_available().idx(), 2);
    println!(
        "latest available node: idx {}",
        trace.latest_available().idx()
    );
    println!("fuzzy_window OK");
}
