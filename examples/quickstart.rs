//! Quickstart: a durable counter with one persistent fence per update.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use remembering_consistently::nvm::{NvmPool, PmemConfig};
use remembering_consistently::objects::{CounterOp, CounterRead, DurableCounter};
use remembering_consistently::onll::OnllConfig;

fn main() {
    // 1. Create a simulated persistent-memory pool (64 MiB, adversarial policy:
    //    nothing is durable unless flushed and fenced).
    let pool = NvmPool::new(PmemConfig::default());

    // 2. Build a durable counter through the ONLL universal construction.
    let counter = DurableCounter::create(pool.clone(), OnllConfig::named("quickstart-counter"))
        .expect("create counter");

    // 3. Register a process handle and run some operations while counting fences.
    {
        let mut handle = counter.register().expect("register");
        let window = pool.stats().op_window();
        for _ in 0..10 {
            handle.update(CounterOp::Increment);
        }
        let delta = window.close();
        println!(
            "10 updates -> value {}, persistent fences {}",
            handle.read(&CounterRead::Get),
            delta.persistent_fences
        );
        assert_eq!(delta.persistent_fences, 10, "exactly one fence per update");

        let window = pool.stats().op_window();
        for _ in 0..10 {
            handle.read(&CounterRead::Get);
        }
        assert_eq!(
            window.close().persistent_fences,
            0,
            "reads never issue persistent fences"
        );
    }

    // 4. Crash the machine (caches are lost, NVM survives) and recover.
    drop(counter);
    pool.crash_and_restart();
    let (counter, report) =
        DurableCounter::recover(pool.clone(), OnllConfig::named("quickstart-counter"))
            .expect("recover");
    println!(
        "after crash: recovered {} operations, counter = {}",
        report.replayed_ops(),
        counter.read_latest(&CounterRead::Get)
    );
    assert_eq!(counter.read_latest(&CounterRead::Get), 10);

    // 5. Keep going — recovery returns a fully functional object.
    let mut handle = counter.register().expect("register after recovery");
    assert_eq!(handle.update(CounterOp::Add(5)), 15);
    println!("post-recovery update -> {}", handle.read(&CounterRead::Get));
    println!("quickstart OK");
}
