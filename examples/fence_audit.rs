//! Audits the Theorem 5.1 fence bounds across implementations (experiment E3/E5).
//!
//! Runs the same mixed workload against ONLL and every baseline, printing the
//! average and maximum persistent fences per update and per read. ONLL must show
//! at most one per update and zero per read; the baselines show why that is not
//! free to achieve naively. A second table breaks an ONLL run down by phase
//! (order / persist / linearize / response latency distributions), showing
//! where the single inherent fence's cost actually lands.
//!
//! ```text
//! cargo run --example fence_audit
//! ```

use remembering_consistently::baselines::{
    DurableObject, FlatCombiningDurable, NaiveDurable, TransientObject, WalDurable,
};
use remembering_consistently::harness::{
    audit_fence_bounds, telemetry_histogram_table, OnllAdapter, Table, Workload, WorkloadMix,
};
use remembering_consistently::nvm::{NvmPool, PmemConfig, Telemetry};
use remembering_consistently::objects::CounterSpec;
use remembering_consistently::onll::{Durable, OnllConfig};

const OPS: usize = 2_000;

fn audit_one<D: DurableObject<CounterSpec> + ?Sized>(
    name: &str,
    pool: &NvmPool,
    object: &mut D,
    update_percent: u32,
    table: &mut Table,
) {
    let mut workload = Workload::new(WorkloadMix::with_update_percent(update_percent), 0xFE11CE);
    let audit =
        audit_fence_bounds::<CounterSpec, _>(object, pool.stats(), workload.counter_ops(OPS));
    table.row_display(&[
        name.to_string(),
        format!("{update_percent}%"),
        format!("{:.2}", audit.fences_per_update()),
        audit.max_fences_per_update.to_string(),
        format!("{:.2}", audit.fences_per_read()),
        audit.max_fences_per_read.to_string(),
        audit.satisfies_onll_bounds().to_string(),
    ]);
}

fn main() {
    let mut table = Table::new(
        "persistent fences per operation (2,000-op workloads)",
        &[
            "implementation",
            "updates",
            "avg fences/update",
            "max",
            "avg fences/read",
            "max",
            "within ONLL bound",
        ],
    );

    for update_percent in [10, 50, 100] {
        // ONLL.
        let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20));
        let onll = Durable::<CounterSpec>::create(
            pool.clone(),
            OnllConfig::named("audit").log_capacity(OPS + 8),
        )
        .unwrap();
        let mut adapter = OnllAdapter::new(onll.register().unwrap());
        audit_one("onll", &pool, &mut adapter, update_percent, &mut table);

        // Transient (no persistence at all).
        let pool = NvmPool::new(PmemConfig::with_capacity(16 << 20));
        let transient = TransientObject::<CounterSpec>::new();
        audit_one(
            "transient",
            &pool,
            &mut transient.handle(),
            update_percent,
            &mut table,
        );

        // Naive full-state persistence.
        let pool = NvmPool::new(PmemConfig::with_capacity(16 << 20));
        let naive = NaiveDurable::<CounterSpec>::create(pool.clone(), 64);
        audit_one(
            "naive-full-state",
            &pool,
            &mut naive.handle(),
            update_percent,
            &mut table,
        );

        // Classic write-ahead logging.
        let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20));
        let wal = WalDurable::<CounterSpec>::create(pool.clone(), OPS + 8);
        audit_one(
            "wal-2-fence",
            &pool,
            &mut wal.handle(),
            update_percent,
            &mut table,
        );

        // Lock-based flat combining (single-threaded here: batch size 1).
        let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20));
        let fc = FlatCombiningDurable::<CounterSpec>::create(pool.clone(), 4, OPS + 8);
        audit_one(
            "flat-combining",
            &pool,
            &mut fc.handle(0),
            update_percent,
            &mut table,
        );
    }

    table.print();
    println!();
    println!("ONLL meets the Theorem 5.1 bound (<=1 fence per update, 0 per read);");
    println!("the durable baselines need 2 fences per update or give up lock-freedom.");

    // Where the single fence's cost lands: run ONLL once more with telemetry
    // enabled and print the per-phase latency distributions.
    let telemetry = Telemetry::enabled();
    let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20).telemetry(telemetry.clone()));
    let onll = Durable::<CounterSpec>::create(
        pool.clone(),
        OnllConfig::named("audit-phases").log_capacity(OPS + 8),
    )
    .unwrap();
    let mut adapter = OnllAdapter::new(onll.register().unwrap());
    let mut workload = Workload::new(WorkloadMix::with_update_percent(50), 0xFE11CE);
    audit_fence_bounds::<CounterSpec, _>(&mut adapter, pool.stats(), workload.counter_ops(OPS));
    println!();
    telemetry_histogram_table(
        "onll per-phase latency, 50% updates (ns)",
        &telemetry.snapshot(),
    )
    .print();
}
