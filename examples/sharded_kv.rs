//! A sharded persistent key-value store: N independent ONLL instances behind
//! one facade, each paying the paper's inherent one-fence-per-update cost while
//! the aggregate throughput scales with the shard count — plus fence-amortized
//! group persist and parallel crash recovery.
//!
//! ```text
//! cargo run --example sharded_kv
//! ```

use remembering_consistently::harness::{run_sharded_kv_workload, SubmitMode, Table, WorkloadMix};
use remembering_consistently::nvm::PmemConfig;
use remembering_consistently::objects::{KvRead, KvSpec, KvValue};
use remembering_consistently::onll::OnllConfig;
use remembering_consistently::shard::{HashRouter, ShardConfig, ShardedDurable};
use std::sync::Arc;
use std::time::Duration;

const WORKERS: usize = 4;
const REQUESTS_PER_WORKER: usize = 2_000;
const GROUP: usize = 16;

fn config(shards: usize) -> ShardConfig {
    ShardConfig::named("sharded-kv")
        .shards(shards)
        .base(
            OnllConfig::default()
                .max_processes(WORKERS)
                .log_capacity(4 * REQUESTS_PER_WORKER)
                .group_persist(GROUP),
        )
        .pmem(
            PmemConfig::with_capacity(2 << 30)
                // Charge a realistic stall per persistent fence so the fence
                // amortization is visible in wall-clock throughput.
                .fence_penalty(Duration::from_nanos(500)),
        )
}

fn main() {
    println!("== sharded durable KV store ==\n");
    let mut table = Table::new(
        "sharded throughput (4 workers, 50% updates)",
        &["shards", "mode", "ops/s", "fences/update"],
    );

    for shards in [1usize, 2, 4, 8] {
        for (mode, label) in [
            (SubmitMode::Individual, "individual"),
            (SubmitMode::Grouped, "grouped"),
        ] {
            let object =
                ShardedDurable::<KvSpec>::create(config(shards), Arc::new(HashRouter::new(shards)))
                    .expect("create sharded kv");
            let summary = run_sharded_kv_workload(
                &object,
                WORKERS,
                REQUESTS_PER_WORKER,
                WorkloadMix {
                    update_ratio: 0.5,
                    key_space: 4096,
                },
                42,
                mode,
            );
            table.row(&[
                shards.to_string(),
                label.to_string(),
                format!("{:.0}", summary.ops_per_sec()),
                format!("{:.3}", summary.fences_per_update()),
            ]);
            object.check_invariants().expect("invariants hold");
        }
    }
    table.print();

    // Crash the whole fleet and recover every shard in parallel.
    println!("\n== crash and parallel recovery (8 shards) ==\n");
    let shards = 8;
    let cfg = config(shards);
    let router = Arc::new(HashRouter::new(shards));
    let object =
        ShardedDurable::<KvSpec>::create(cfg.clone(), router.clone()).expect("create for crash");
    let mut handle = object.register().expect("register");
    for i in 0..1_000u32 {
        handle.update(remembering_consistently::objects::KvOp::Put(
            format!("user-{}", i % 500),
            format!("session-{i}"),
        ));
    }
    let pools = object.pools().to_vec();
    drop(handle);
    drop(object);
    for p in &pools {
        p.crash_and_restart();
    }
    let start = std::time::Instant::now();
    let (recovered, report) =
        ShardedDurable::<KvSpec>::recover(pools, cfg, router).expect("parallel recovery");
    let elapsed = start.elapsed();
    println!(
        "recovered {} operations across {} shards in {elapsed:?} (per-shard durable indices: {:?})",
        report.total_replayed(),
        report.shards(),
        report.durable_indices(),
    );
    match recovered.read_latest(&KvRead::Len) {
        KvValue::Len(n) => println!("distinct keys after recovery: {n}"),
        other => println!("unexpected read result: {other:?}"),
    }
    assert_eq!(report.total_replayed(), 1_000);
    println!("\nevery update paid at most one persistent fence; reads paid none.");
}
