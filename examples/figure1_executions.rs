//! Reproduces the four counter executions of Figure 1 (experiment E1).
//!
//! Each execution scripts process pauses at precise points inside ONLL updates via
//! the construction's hooks, exactly as the figure does:
//!
//! 1. **Sequential update and read** — one process increments, then reads 1.
//! 2. **Update concurrent with reads** — p1 pauses after persisting but before
//!    linearizing; reader r1 still sees 1, and after p1 linearizes, reader r2 sees 2.
//! 3. **Update helping another update** — p1 pauses before persisting; p2's update
//!    helps persist p1's operation and linearizes both, returning 3.
//! 4. **Crash concurrent with updates** — p1 ordered only, p2 ordered+persisted
//!    (helping p1), p3 crashed before persisting; after recovery the counter is 2.
//!
//! ```text
//! cargo run --example figure1_executions
//! ```

use remembering_consistently::nvm::{NvmPool, PmemConfig};
use remembering_consistently::objects::{CounterOp, CounterRead, CounterSpec, DurableCounter};
use remembering_consistently::onll::{Durable, Hooks, OnllConfig, Phase};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A one-shot gate: a designated process parks at a designated phase until opened.
struct Gate {
    pid: u32,
    phase: Phase,
    reached: AtomicBool,
    open: AtomicBool,
    armed: AtomicBool,
}

impl Gate {
    fn new(pid: u32, phase: Phase) -> Arc<Self> {
        Arc::new(Gate {
            pid,
            phase,
            reached: AtomicBool::new(false),
            open: AtomicBool::new(false),
            armed: AtomicBool::new(true),
        })
    }

    fn maybe_park(&self, phase: Phase, pid: u32) {
        if phase == self.phase && pid == self.pid && self.armed.swap(false, Ordering::SeqCst) {
            self.reached.store(true, Ordering::SeqCst);
            while !self.open.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
    }

    fn wait_reached(&self) {
        while !self.reached.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }

    fn open(&self) {
        self.open.store(true, Ordering::Release);
    }
}

fn hooks_for(gates: Vec<Arc<Gate>>) -> Hooks {
    Hooks::new(move |phase, pid| {
        for gate in &gates {
            gate.maybe_park(phase, pid);
        }
    })
}

fn execution_1() {
    println!("-- Execution 1: sequential update and read --");
    let pool = NvmPool::new(PmemConfig::default());
    let counter = DurableCounter::create(pool, OnllConfig::named("fig1-e1")).unwrap();
    let mut p1 = counter.register().unwrap();
    let update_value = p1.update(CounterOp::Increment);
    let read_value = p1.read(&CounterRead::Get);
    println!("   p1 increment -> {update_value}, p1 read -> {read_value}");
    assert_eq!((update_value, read_value), (1, 1));
}

fn execution_2() {
    println!("-- Execution 2: update concurrent with two readers --");
    let pool = NvmPool::new(PmemConfig::default());
    // Pause p1 (pid 0) after it persisted its increment but before it linearizes.
    let gate = Gate::new(0, Phase::BeforeLinearize);
    let counter = Durable::<CounterSpec>::create_with_hooks(
        pool,
        OnllConfig::named("fig1-e2").max_processes(3),
        hooks_for(vec![gate.clone()]),
    )
    .unwrap();

    // Initial state: the counter already holds 1 (node n1 in the figure); performed
    // through a separate handle so the gate (armed for pid 0) stays armed... the
    // gate is armed per (pid, phase) pair and one-shot, so arm it only after the
    // setup update by using pid 2 for setup.
    {
        let mut setup = counter.handle_for(2).unwrap();
        setup.update(CounterOp::Increment);
    }

    let counter_for_p1 = counter.clone();
    let p1 = std::thread::spawn(move || {
        let mut h = counter_for_p1.handle_for(0).unwrap();
        h.update(CounterOp::Increment)
    });
    gate.wait_reached();

    // r1 reads while n2's available flag is still unset: it stops at n1 and returns 1.
    let mut r1 = counter.handle_for(1).unwrap();
    let r1_value = r1.read(&CounterRead::Get);
    println!("   r1 (concurrent with p1's update) -> {r1_value}");
    assert_eq!(r1_value, 1);

    // p1 resumes, sets the available flag and returns 2.
    gate.open();
    let p1_value = p1.join().unwrap();
    // r2 starts after n2 became available: it returns 2.
    let r2_value = r1.read(&CounterRead::Get);
    println!("   p1 update -> {p1_value}, r2 -> {r2_value}");
    assert_eq!((p1_value, r2_value), (2, 2));
}

fn execution_3() {
    println!("-- Execution 3: update helping another update --");
    let pool = NvmPool::new(PmemConfig::default());
    // Pause p1 (pid 0) after ordering its increment but before persisting it.
    let gate = Gate::new(0, Phase::BeforePersist);
    let counter = Durable::<CounterSpec>::create_with_hooks(
        pool.clone(),
        OnllConfig::named("fig1-e3").max_processes(3),
        hooks_for(vec![gate.clone()]),
    )
    .unwrap();
    {
        let mut setup = counter.handle_for(2).unwrap();
        setup.update(CounterOp::Increment); // counter starts at 1 (node n1)
    }

    let counter_for_p1 = counter.clone();
    let p1 = std::thread::spawn(move || {
        let mut h = counter_for_p1.handle_for(0).unwrap();
        h.update(CounterOp::Increment)
    });
    gate.wait_reached();

    // p2 runs a full update: its fuzzy window contains p1's unpersisted operation,
    // so p2's single log append helps persist it; p2's available flag linearizes
    // both, and p2 returns 3.
    let fences_before = pool.stats().persistent_fences();
    let mut p2 = counter.handle_for(1).unwrap();
    let p2_value = p2.update(CounterOp::Increment);
    let p2_fences = pool.stats().persistent_fences() - fences_before;
    println!("   p2 update (helping p1) -> {p2_value} using {p2_fences} persistent fence(s)");
    assert_eq!(p2_value, 3);
    assert_eq!(p2_fences, 1, "helping does not cost extra fences");

    // Any reader starting now returns 3 even though p1 has not yet set its flag.
    let reader_value = p2.read(&CounterRead::Get);
    println!("   reader -> {reader_value}");
    assert_eq!(reader_value, 3);

    gate.open();
    let p1_value = p1.join().unwrap();
    println!("   p1 eventually returns {p1_value}");
    assert_eq!(
        p1_value, 2,
        "p1's return value reflects the state after its own op"
    );
}

fn execution_4() {
    println!("-- Execution 4: crash concurrent with three updates --");
    let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20).apply_pending_at_crash(0.0));
    // p1 (pid 0): ordered its op but never persisted it.
    // p2 (pid 1): ordered + persisted (helping p1) but never linearized.
    // p3 (pid 2): ordered, and crashes before its log append completes.
    let gate_p1 = Gate::new(0, Phase::BeforePersist);
    let gate_p2 = Gate::new(1, Phase::BeforeLinearize);
    let gate_p3 = Gate::new(2, Phase::BeforePersist);
    let cfg = OnllConfig::named("fig1-e4").max_processes(3);
    let counter = Durable::<CounterSpec>::create_with_hooks(
        pool.clone(),
        cfg.clone(),
        hooks_for(vec![gate_p1.clone(), gate_p2.clone(), gate_p3.clone()]),
    )
    .unwrap();

    let spawn = |pid: usize, counter: Durable<CounterSpec>| {
        std::thread::spawn(move || {
            let mut h = counter.handle_for(pid).unwrap();
            let _ = h.try_update(CounterOp::Increment);
        })
    };
    // p1 orders first and pauses before persisting.
    let t1 = spawn(0, counter.clone());
    gate_p1.wait_reached();
    // p2 orders, persists (helping p1) and pauses before linearizing.
    let t2 = spawn(1, counter.clone());
    gate_p2.wait_reached();
    // p3 orders and pauses just before its append; the crash hits while its entry
    // is still only in the cache.
    let t3 = spawn(2, counter.clone());
    gate_p3.wait_reached();

    // Readers concurrent with the updates still see 0: no available flag was set.
    let pre_crash_read = counter.read_latest(&CounterRead::Get);
    println!("   reader before the crash -> {pre_crash_read}");
    assert_eq!(pre_crash_read, 0);

    // Full-system crash.
    let token = pool.crash();
    gate_p1.open();
    gate_p2.open();
    gate_p3.open();
    for t in [t1, t2, t3] {
        t.join().unwrap();
    }
    pool.restart(token);

    drop(counter);
    let (recovered, report) = DurableCounter::recover(pool, cfg).unwrap();
    let value = recovered.read_latest(&CounterRead::Get);
    println!(
        "   after recovery: {} operations recovered, counter = {value}",
        report.replayed_ops()
    );
    assert_eq!(
        value, 2,
        "p1's and p2's updates survive via p2's log entry; p3's is lost"
    );
    assert_eq!(report.replayed_ops(), 2);
}

fn main() {
    execution_1();
    execution_2();
    execution_3();
    execution_4();
    println!("figure1_executions OK — all four executions match Figure 1");
}
