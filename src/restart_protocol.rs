//! Shared protocol between the `real_restart` binary and the kill-9 test
//! harness.
//!
//! The binary is killed with `SIGKILL` at arbitrary points and re-exec'd; the
//! only channel between incarnations is the file-backed pool, and the only
//! channel to the supervising test is stdout. Both sides must therefore agree
//! on (a) the deterministic operation sequence derived from a seed, and (b)
//! the state digest used to compare a recovered store against a local replay.
//! That agreement lives here, in one place.

use crate::objects::{KvOp, KvRead, KvSpec, KvValue};
use crate::onll::SequentialSpec;

/// Number of distinct keys the deterministic workload touches.
pub const KEY_SPACE: u64 = 64;

/// SplitMix64-style mix: tiny, seedable, identical on both sides of the pipe.
fn mix(seed: u64, k: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E3779B97F4A7C15)
        .wrapping_add(k.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The `k`-th operation of the deterministic workload for `seed`
/// (0-based). Mostly puts, some deletes, over [`KEY_SPACE`] keys.
pub fn op_for(seed: u64, k: u64) -> KvOp {
    let h = mix(seed, k);
    let key = format!("key-{}", h % KEY_SPACE);
    if h >> 61 == 0 {
        // 1/8 of operations delete.
        KvOp::Delete(key)
    } else {
        KvOp::Put(key, format!("v{}-{}", k, h >> 32))
    }
}

/// FNV-1a digest of the full key space as observed through `get`. Both sides
/// compute it the same way: the child over the recovered store, the
/// supervisor over a local replay of the durable prefix.
pub fn digest_via(mut get: impl FnMut(String) -> Option<String>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut absorb = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for i in 0..KEY_SPACE {
        match get(format!("key-{i}")) {
            Some(v) => {
                absorb(&[1]);
                absorb(v.as_bytes());
            }
            None => absorb(&[0]),
        }
    }
    h
}

/// Digest of a sequential replay of ops `0..n` of `seed`'s workload — what a
/// store whose durable prefix is exactly `n` operations must report.
pub fn digest_of_prefix(seed: u64, n: u64) -> u64 {
    let mut state = KvSpec::initialize();
    for k in 0..n {
        state.apply(&op_for(seed, k));
    }
    digest_via(|key| match state.read(&KvRead::Get(key)) {
        KvValue::Value(v) => v,
        KvValue::Len(_) => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_sequence_is_deterministic() {
        assert_eq!(op_for(7, 3), op_for(7, 3));
        assert_ne!(op_for(7, 3), op_for(7, 4));
        assert_ne!(op_for(7, 3), op_for(8, 3));
    }

    #[test]
    fn keys_stay_in_the_key_space() {
        for k in 0..200 {
            let key = match op_for(11, k) {
                KvOp::Put(key, _) => key,
                KvOp::Delete(key) => key,
            };
            let n: u64 = key.strip_prefix("key-").unwrap().parse().unwrap();
            assert!(n < KEY_SPACE);
        }
    }

    #[test]
    fn digest_distinguishes_prefixes() {
        assert_eq!(digest_of_prefix(5, 50), digest_of_prefix(5, 50));
        assert_ne!(digest_of_prefix(5, 50), digest_of_prefix(5, 51));
        assert_ne!(digest_of_prefix(5, 0), digest_of_prefix(5, 1));
    }
}
