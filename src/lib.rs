//! # remembering-consistently
//!
//! Umbrella crate for the reproduction of *The Inherent Cost of Remembering
//! Consistently* (Cohen, Guerraoui, Zablotchi — SPAA 2018).
//!
//! This crate re-exports the workspace members so examples and integration tests
//! can use a single dependency. The pieces are:
//!
//! * [`nvm`] — the persistence substrate: the `PmemBackend` trait behind
//!   `NvmPool`, with a simulator (cache-line model, flush/fence, write-back
//!   policies, crash injection, fence statistics) and a file backend
//!   (`pwrite` + `fsync`, recovery across real process restarts).
//! * [`plog`] — the single-persistent-fence per-process append-only log
//!   (Cohen et al., OOPSLA 2017) the construction relies on.
//! * [`trace`] — the transient lock-free execution trace with available flags and
//!   fuzzy window (Listing 2 of the paper).
//! * [`onll`] — the ONLL universal construction itself (Listings 3–5), including
//!   detectable execution, local-view reads, checkpoint/reclamation and the
//!   wait-free variant.
//! * [`objects`] — durable objects derived from the construction (counter,
//!   register, stack, queue, set, key-value map, append-log).
//! * [`baselines`] — comparison implementations (transient, naive flush-per-write,
//!   write-ahead log, lock-based flat combining).
//! * [`harness`] — workloads, history recording, (durable-)linearizability
//!   checking, crash-injection orchestration and the Theorem 6.3 adversarial
//!   scheduler.
//! * [`shard`] — horizontally partitioned durable objects: keyed routing over
//!   N independent ONLL instances, fence-amortized group persist, parallel
//!   recovery.
//! * [`server`] — TCP front-end over the sharded combining service: a
//!   length-prefixed wire protocol with client-assigned operation identities,
//!   so a reconnecting client resolves and replays unacknowledged operations
//!   exactly once across server crashes.
//!
//! See `README.md` for a quickstart and `DESIGN.md`/`EXPERIMENTS.md` for the
//! experiment inventory.

pub mod restart_protocol;

pub use baselines;
pub use durable_objects as objects;
pub use exec_trace as trace;
pub use harness;
pub use nvm_sim as nvm;
pub use onll;
pub use onll_server as server;
pub use onll_shard as shard;
pub use persist_log as plog;

/// Convenience prelude pulling in the types most examples need.
pub mod prelude {
    pub use crate::nvm::{
        BackendSpec, FenceStats, FileBackend, NvmPool, PmemBackend, PmemConfig, Telemetry,
        TelemetrySnapshot, WritebackPolicy,
    };
}
