//! Load generator for `onll_server`: drives the wire protocol from another
//! process and writes `BENCH_server.json`.
//!
//! For each connection count in `--conns`, spawns that many client threads
//! (session indices `0..N`), each performing `--ops-per-conn` durable `Put`s,
//! and records throughput, latency percentiles, and the server's persistent
//! fence counters before/after the round. The headline column is
//! `fences_per_op`: with N concurrent connections the per-shard combiners
//! amortize one fence over every rider in a batch, so the ratio must drop
//! below 1 as N grows (≈ 1/batch-size; the paper's Theorem 5.1 bound is the
//! N=1 ceiling of one fence per update).
//!
//! ```text
//! onll_load --addr 127.0.0.1:PORT [--conns 1,2,4,8] [--ops-per-conn 300]
//!           [--out BENCH_server.json]
//! ```

use remembering_consistently::server::client::{ResilientSession, RetryPolicy};
use remembering_consistently::server::WireClient;
use std::io::Write;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    conns: Vec<usize>,
    ops_per_conn: usize,
    out: String,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: onll_load --addr HOST:PORT [--conns 1,2,4,8] [--ops-per-conn N] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        addr: String::new(),
        conns: vec![1, 2, 4, 8],
        ops_per_conn: 300,
        out: "BENCH_server.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage("missing flag value"));
        match flag.as_str() {
            "--addr" => parsed.addr = value(),
            "--conns" => {
                parsed.conns = value()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage("bad --conns")))
                    .collect()
            }
            "--ops-per-conn" => {
                parsed.ops_per_conn = value()
                    .parse()
                    .unwrap_or_else(|_| usage("bad --ops-per-conn"))
            }
            "--out" => parsed.out = value(),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if parsed.addr.is_empty() {
        usage("--addr is required");
    }
    parsed
}

/// Per-connection resilience tally for one round.
struct ConnReport {
    conn: usize,
    ops: u64,
    errors: u64,
    retries: u64,
}

struct Round {
    connections: usize,
    ops: u64,
    elapsed_s: f64,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    fences: u64,
    maintenance_fences: u64,
    fences_per_op: f64,
    batches: u64,
    combined_ops: u64,
    errors: u64,
    retries: u64,
    server_timeouts: u64,
    server_busy_rejects: u64,
    per_connection: Vec<ConnReport>,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[rank] as f64 / 1_000.0
}

/// One round: `connections` concurrent sessions, `ops_per_conn` durable puts
/// each, fence counters sampled around the whole round.
fn run_round(addr: &str, connections: usize, ops_per_conn: usize) -> Round {
    let mut probe = WireClient::connect_with_retry(addr, 0, 10).expect("connect stats probe");
    let before = probe.stats().expect("stats before round");
    probe.abandon();

    let started = Instant::now();
    let results: Vec<(Vec<u64>, ConnReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|conn| {
                scope.spawn(move || {
                    // Resilient sessions: a retryable hiccup (reset, BUSY,
                    // transient backend fault) costs latency, not the run.
                    let policy = RetryPolicy::with_deadline(Duration::from_secs(30))
                        .seed(0xB0A7 + conn as u64);
                    let mut session = ResilientSession::new(addr, conn as u32, policy);
                    let mut lat = Vec::with_capacity(ops_per_conn);
                    let mut errors = 0u64;
                    for k in 0..ops_per_conn {
                        let key = format!("load-{conn}-{}", k % 64);
                        let value = format!("v{k}");
                        let t0 = Instant::now();
                        match session.put(&key, &value) {
                            Ok(_) => lat.push(t0.elapsed().as_nanos() as u64),
                            Err(e) => {
                                errors += 1;
                                eprintln!("conn {conn} op {k} failed permanently: {e}");
                            }
                        }
                    }
                    let report = ConnReport {
                        conn,
                        ops: lat.len() as u64,
                        errors,
                        retries: session.retries(),
                    };
                    (lat, report)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut probe = WireClient::connect_with_retry(addr, 0, 10).expect("connect stats probe");
    let after = probe.stats().expect("stats after round");
    probe.abandon();

    let (latencies, per_connection): (Vec<Vec<u64>>, Vec<ConnReport>) = results.into_iter().unzip();
    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let ops = all.len() as u64;
    let fences = after.persistent_fences - before.persistent_fences;
    let maintenance = after.maintenance_fences - before.maintenance_fences;
    Round {
        connections,
        ops,
        elapsed_s,
        throughput: ops as f64 / elapsed_s,
        p50_us: percentile_us(&all, 0.50),
        p99_us: percentile_us(&all, 0.99),
        fences,
        maintenance_fences: maintenance,
        // Checkpoint/compaction fences are maintenance, not part of the
        // per-update persist path Theorem 5.1 bounds; keep them out of the
        // headline ratio (they are still reported in their own column).
        fences_per_op: (fences - maintenance) as f64 / ops.max(1) as f64,
        batches: after.batches - before.batches,
        combined_ops: after.combined_ops - before.combined_ops,
        errors: per_connection.iter().map(|c| c.errors).sum(),
        retries: per_connection.iter().map(|c| c.retries).sum(),
        server_timeouts: after.timeouts - before.timeouts,
        server_busy_rejects: after.busy_rejects - before.busy_rejects,
        per_connection,
    }
}

fn main() {
    let args = parse_args();
    let mut rounds = Vec::new();
    for &connections in &args.conns {
        let round = run_round(&args.addr, connections, args.ops_per_conn);
        eprintln!(
            "conns={:2}  {:8.0} ops/s  p50={:7.1}us  p99={:7.1}us  fences/op={:.3}  (batches={} carrying {})  errors={} retries={} srv_timeouts={} srv_busy={}",
            round.connections,
            round.throughput,
            round.p50_us,
            round.p99_us,
            round.fences_per_op,
            round.batches,
            round.combined_ops,
            round.errors,
            round.retries,
            round.server_timeouts,
            round.server_busy_rejects,
        );
        rounds.push(round);
    }

    let mut json = String::from("{\n  \"bench\": \"onll-server\",\n  \"rounds\": [\n");
    for (i, r) in rounds.iter().enumerate() {
        let per_conn: Vec<String> = r
            .per_connection
            .iter()
            .map(|c| {
                format!(
                    "{{\"conn\": {}, \"ops\": {}, \"errors\": {}, \"retries\": {}}}",
                    c.conn, c.ops, c.errors, c.retries
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\"connections\": {}, \"ops\": {}, \"elapsed_s\": {:.4}, \
             \"throughput_ops_per_s\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"fences\": {}, \"maintenance_fences\": {}, \"fences_per_op\": {:.4}, \
             \"batches\": {}, \"combined_ops\": {}, \
             \"errors\": {}, \"retries\": {}, \
             \"server_timeouts\": {}, \"server_busy_rejects\": {}, \
             \"per_connection\": [{}]}}{}\n",
            r.connections,
            r.ops,
            r.elapsed_s,
            r.throughput,
            r.p50_us,
            r.p99_us,
            r.fences,
            r.maintenance_fences,
            r.fences_per_op,
            r.batches,
            r.combined_ops,
            r.errors,
            r.retries,
            r.server_timeouts,
            r.server_busy_rejects,
            per_conn.join(", "),
            if i + 1 < rounds.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&args.out).expect("create --out file");
    file.write_all(json.as_bytes()).expect("write bench json");
    eprintln!("wrote {}", args.out);
}
