//! Load generator for `onll_server`: drives the wire protocol from another
//! process and writes `BENCH_server.json`.
//!
//! For each connection count in `--conns`, spawns that many client threads
//! (session indices `0..N`), each performing `--ops-per-conn` durable `Put`s,
//! and records throughput, latency percentiles, and the server's persistent
//! fence counters before/after the round. The headline column is
//! `fences_per_op`: with N concurrent connections the per-shard combiners
//! amortize one fence over every rider in a batch, so the ratio must drop
//! below 1 as N grows (≈ 1/batch-size; the paper's Theorem 5.1 bound is the
//! N=1 ceiling of one fence per update).
//!
//! `--read-pct P` turns each round into a mixed workload: every connection
//! flips a deterministic per-thread coin and issues a snapshot `Get` instead
//! of a `Put` P% of the time. Reads target a zipfian-ish hot subset of the
//! 64-key space (min of three uniform draws, so key 0 is hottest), the shape
//! a cache-friendly read path must win on. GET latencies are recorded
//! separately from PUT latencies (`get_p50_us`/`get_p99_us` vs
//! `p50_us`/`p99_us`), and `throughput_ops_per_s` and `fences_per_op` keep
//! counting writes only — snapshot reads are fence-free by construction, so
//! folding them in would flatter the ratio.
//!
//! ```text
//! onll_load --addr 127.0.0.1:PORT [--conns 1,2,4,8] [--ops-per-conn 300]
//!           [--read-pct 0..100] [--out BENCH_server.json]
//! ```

use remembering_consistently::server::client::{ResilientSession, RetryPolicy};
use remembering_consistently::server::WireClient;
use std::io::Write;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    conns: Vec<usize>,
    ops_per_conn: usize,
    read_pct: u64,
    out: String,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: onll_load --addr HOST:PORT [--conns 1,2,4,8] [--ops-per-conn N] \
         [--read-pct 0..100] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        addr: String::new(),
        conns: vec![1, 2, 4, 8],
        ops_per_conn: 300,
        read_pct: 0,
        out: "BENCH_server.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage("missing flag value"));
        match flag.as_str() {
            "--addr" => parsed.addr = value(),
            "--conns" => {
                parsed.conns = value()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage("bad --conns")))
                    .collect()
            }
            "--ops-per-conn" => {
                parsed.ops_per_conn = value()
                    .parse()
                    .unwrap_or_else(|_| usage("bad --ops-per-conn"))
            }
            "--read-pct" => {
                parsed.read_pct = value().parse().unwrap_or_else(|_| usage("bad --read-pct"));
                if parsed.read_pct > 100 {
                    usage("--read-pct must be 0..=100");
                }
            }
            "--out" => parsed.out = value(),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if parsed.addr.is_empty() {
        usage("--addr is required");
    }
    parsed
}

/// Deterministic per-thread generator (64-bit LCG, MMIX constants): the op
/// mix and key skew are reproducible run to run, connection to connection.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Zipfian-ish hot-key index in `0..64`: the min of three uniform draws
    /// concentrates ~30% of reads on keys 0–3 while still touching the tail.
    fn hot_key(&mut self) -> u64 {
        (self.next() % 64)
            .min(self.next() % 64)
            .min(self.next() % 64)
    }
}

/// Per-connection resilience tally for one round.
struct ConnReport {
    conn: usize,
    ops: u64,
    gets: u64,
    errors: u64,
    retries: u64,
}

struct Round {
    connections: usize,
    ops: u64,
    gets: u64,
    elapsed_s: f64,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    get_p50_us: f64,
    get_p99_us: f64,
    fences: u64,
    maintenance_fences: u64,
    fences_per_op: f64,
    batches: u64,
    combined_ops: u64,
    errors: u64,
    retries: u64,
    server_timeouts: u64,
    server_busy_rejects: u64,
    per_connection: Vec<ConnReport>,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[rank] as f64 / 1_000.0
}

/// One round: `connections` concurrent sessions, `ops_per_conn` ops each
/// (`read_pct`% snapshot gets against hot keys, the rest durable puts), fence
/// counters sampled around the whole round.
fn run_round(addr: &str, connections: usize, ops_per_conn: usize, read_pct: u64) -> Round {
    let mut probe = WireClient::connect_with_retry(addr, 0, 10).expect("connect stats probe");
    let before = probe.stats().expect("stats before round");
    probe.abandon();

    let started = Instant::now();
    let results: Vec<(Vec<u64>, Vec<u64>, ConnReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|conn| {
                scope.spawn(move || {
                    // Resilient sessions: a retryable hiccup (reset, BUSY,
                    // transient backend fault) costs latency, not the run.
                    let policy = RetryPolicy::with_deadline(Duration::from_secs(30))
                        .seed(0xB0A7 + conn as u64);
                    let mut session = ResilientSession::new(addr, conn as u32, policy);
                    let mut rng = Lcg(0x5EED ^ (conn as u64) << 17);
                    let mut lat = Vec::with_capacity(ops_per_conn);
                    let mut get_lat = Vec::with_capacity(ops_per_conn);
                    let mut errors = 0u64;
                    for k in 0..ops_per_conn {
                        if rng.next() % 100 < read_pct {
                            let key = format!("load-{conn}-{}", rng.hot_key());
                            let t0 = Instant::now();
                            match session.get(&key) {
                                Ok(_) => get_lat.push(t0.elapsed().as_nanos() as u64),
                                Err(e) => {
                                    errors += 1;
                                    eprintln!("conn {conn} get {k} failed permanently: {e}");
                                }
                            }
                            continue;
                        }
                        let key = format!("load-{conn}-{}", k % 64);
                        let value = format!("v{k}");
                        let t0 = Instant::now();
                        match session.put(&key, &value) {
                            Ok(_) => lat.push(t0.elapsed().as_nanos() as u64),
                            Err(e) => {
                                errors += 1;
                                eprintln!("conn {conn} op {k} failed permanently: {e}");
                            }
                        }
                    }
                    let report = ConnReport {
                        conn,
                        ops: lat.len() as u64,
                        gets: get_lat.len() as u64,
                        errors,
                        retries: session.retries(),
                    };
                    (lat, get_lat, report)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut probe = WireClient::connect_with_retry(addr, 0, 10).expect("connect stats probe");
    let after = probe.stats().expect("stats after round");
    probe.abandon();

    let mut all = Vec::new();
    let mut all_gets = Vec::new();
    let mut per_connection = Vec::new();
    for (lat, get_lat, report) in results {
        all.extend(lat);
        all_gets.extend(get_lat);
        per_connection.push(report);
    }
    all.sort_unstable();
    all_gets.sort_unstable();
    let ops = all.len() as u64;
    let fences = after.persistent_fences - before.persistent_fences;
    let maintenance = after.maintenance_fences - before.maintenance_fences;
    Round {
        connections,
        ops,
        gets: all_gets.len() as u64,
        elapsed_s,
        // Write throughput: snapshot gets are counted and timed separately so
        // the headline number stays comparable across read mixes.
        throughput: ops as f64 / elapsed_s,
        p50_us: percentile_us(&all, 0.50),
        p99_us: percentile_us(&all, 0.99),
        get_p50_us: percentile_us(&all_gets, 0.50),
        get_p99_us: percentile_us(&all_gets, 0.99),
        fences,
        maintenance_fences: maintenance,
        // Checkpoint/compaction fences are maintenance, not part of the
        // per-update persist path Theorem 5.1 bounds; keep them out of the
        // headline ratio (they are still reported in their own column).
        fences_per_op: (fences - maintenance) as f64 / ops.max(1) as f64,
        batches: after.batches - before.batches,
        combined_ops: after.combined_ops - before.combined_ops,
        errors: per_connection.iter().map(|c| c.errors).sum(),
        retries: per_connection.iter().map(|c| c.retries).sum(),
        server_timeouts: after.timeouts - before.timeouts,
        server_busy_rejects: after.busy_rejects - before.busy_rejects,
        per_connection,
    }
}

fn main() {
    let args = parse_args();
    let mut rounds = Vec::new();
    for &connections in &args.conns {
        let round = run_round(&args.addr, connections, args.ops_per_conn, args.read_pct);
        eprintln!(
            "conns={:2}  {:8.0} puts/s  p50={:7.1}us  p99={:7.1}us  gets={} get_p50={:.1}us get_p99={:.1}us  fences/op={:.3}  (batches={} carrying {})  errors={} retries={} srv_timeouts={} srv_busy={}",
            round.connections,
            round.throughput,
            round.p50_us,
            round.p99_us,
            round.gets,
            round.get_p50_us,
            round.get_p99_us,
            round.fences_per_op,
            round.batches,
            round.combined_ops,
            round.errors,
            round.retries,
            round.server_timeouts,
            round.server_busy_rejects,
        );
        rounds.push(round);
    }

    let mut json = format!(
        "{{\n  \"bench\": \"onll-server\",\n  \"read_pct\": {},\n  \"rounds\": [\n",
        args.read_pct
    );
    for (i, r) in rounds.iter().enumerate() {
        let per_conn: Vec<String> = r
            .per_connection
            .iter()
            .map(|c| {
                format!(
                    "{{\"conn\": {}, \"ops\": {}, \"gets\": {}, \"errors\": {}, \"retries\": {}}}",
                    c.conn, c.ops, c.gets, c.errors, c.retries
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\"connections\": {}, \"ops\": {}, \"gets\": {}, \"elapsed_s\": {:.4}, \
             \"throughput_ops_per_s\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"get_p50_us\": {:.1}, \"get_p99_us\": {:.1}, \
             \"fences\": {}, \"maintenance_fences\": {}, \"fences_per_op\": {:.4}, \
             \"batches\": {}, \"combined_ops\": {}, \
             \"errors\": {}, \"retries\": {}, \
             \"server_timeouts\": {}, \"server_busy_rejects\": {}, \
             \"per_connection\": [{}]}}{}\n",
            r.connections,
            r.ops,
            r.gets,
            r.elapsed_s,
            r.throughput,
            r.p50_us,
            r.p99_us,
            r.get_p50_us,
            r.get_p99_us,
            r.fences,
            r.maintenance_fences,
            r.fences_per_op,
            r.batches,
            r.combined_ops,
            r.errors,
            r.retries,
            r.server_timeouts,
            r.server_busy_rejects,
            per_conn.join(", "),
            if i + 1 < rounds.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&args.out).expect("create --out file");
    file.write_all(json.as_bytes()).expect("write bench json");
    eprintln!("wrote {}", args.out);
}
