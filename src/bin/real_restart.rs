//! End-to-end durability demonstration on the file backend: a KV store that
//! survives a **real** process death.
//!
//! Unlike every simulator-based crash test, this binary's incarnations share
//! nothing but the on-disk pool. A supervisor (the kill-9 test suite, or a
//! human) runs it in `run` mode, `SIGKILL`s it at an arbitrary point, then
//! re-execs it in `resume` or `verify` mode; recovery replays the fsync'd
//! persist-logs (plus the newest valid checkpoint, if enabled) from the file.
//!
//! Modes (all take `--dir`, `--seed`, `--ops`):
//!
//! * `run` — create a fresh store and apply the deterministic workload,
//!   acknowledging each operation on stdout (`ACK <k> <pid> <seq>`).
//! * `resume` — recover the store and continue the workload where the durable
//!   prefix ends.
//! * `verify` — recover the store, report the durable prefix, every recovered
//!   operation identity (`ROP <pid> <seq> <idx>`) and the state digest.
//!
//! Standalone demo:
//!
//! ```text
//! cargo run --bin real_restart -- run --dir /tmp/rr --seed 7 --ops 500 &
//! sleep 0.05 && kill -9 $!
//! cargo run --bin real_restart -- verify --dir /tmp/rr --seed 7 --ops 500
//! ```

use remembering_consistently::harness::telemetry_histogram_table;
use remembering_consistently::nvm::{BackendSpec, PmemConfig, Telemetry};
use remembering_consistently::objects::{KvRead, KvSpec, KvValue};
use remembering_consistently::onll::{Durable, OnllConfig, RecoveryReport};
use remembering_consistently::restart_protocol as proto;
use std::io::Write;

struct Args {
    mode: String,
    dir: String,
    seed: u64,
    ops: u64,
    checkpoint_every: u64,
    telemetry: bool,
    coalesce: bool,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| usage("missing mode"));
    let mut parsed = Args {
        mode,
        dir: String::new(),
        seed: 42,
        ops: 1000,
        checkpoint_every: 0,
        telemetry: false,
        coalesce: false,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage("missing flag value"));
        match flag.as_str() {
            "--telemetry" => parsed.telemetry = true,
            "--coalesce" => parsed.coalesce = true,
            "--dir" => parsed.dir = value(),
            "--seed" => parsed.seed = value().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--ops" => parsed.ops = value().parse().unwrap_or_else(|_| usage("bad --ops")),
            "--checkpoint-every" => {
                parsed.checkpoint_every = value()
                    .parse()
                    .unwrap_or_else(|_| usage("bad --checkpoint-every"))
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if parsed.dir.is_empty() {
        usage("--dir is required");
    }
    parsed
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: real_restart <run|resume|verify> --dir DIR [--seed N] [--ops N] [--checkpoint-every N] [--telemetry] [--coalesce]"
    );
    std::process::exit(2);
}

fn config(args: &Args) -> OnllConfig {
    // `--coalesce` places the pool on a shared group-commit device file whose
    // fences go through the persist executor (coalesced fsyncs); the default
    // is a private file with one fsync per fence. Both modes honor
    // `ONLL_DEVICE_ABORT` for the kill-9 coalescing-window matrix.
    let backend = if args.coalesce {
        BackendSpec::device(std::path::Path::new(&args.dir).join("restart-kv.device"))
    } else {
        BackendSpec::file(&args.dir)
    };
    let mut cfg = OnllConfig::named("restart-kv")
        .max_processes(2)
        .log_capacity(args.ops as usize + 16)
        .backend(backend);
    if args.checkpoint_every > 0 {
        cfg = cfg
            .checkpoint_every(args.checkpoint_every)
            .checkpoint_slot_bytes(64 * 1024);
    }
    cfg
}

fn pmem(telemetry: &Telemetry) -> PmemConfig {
    // Fixed 64 MiB: enough for the matrix's largest runs (the log *capacity*
    // scales with --ops via config(), the pool just needs to hold it), and
    // the backing file is sparse anyway.
    PmemConfig::with_capacity(64 << 20).telemetry(telemetry.clone())
}

/// Prints the run's latency distributions to **stderr**: the supervisor parses
/// stdout line by line, so telemetry must never interleave with the protocol.
fn report_telemetry(telemetry: &Telemetry) {
    if telemetry.is_enabled() {
        let snap = telemetry.snapshot();
        eprint!(
            "{}",
            telemetry_histogram_table("real_restart telemetry (ns)", &snap).render()
        );
        eprintln!("TELEMETRY_JSON {}", snap.to_json());
    }
}

/// Emits one protocol line, flushed immediately: a line the supervisor has
/// *read* must have been fully emitted before the process died.
fn emit(line: std::fmt::Arguments<'_>) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "{line}").expect("stdout closed");
    out.flush().expect("stdout flush failed");
}

fn apply_workload(args: &Args, object: &Durable<KvSpec>, start: u64) {
    let mut handle = object.register().expect("register handle");
    for k in start..args.ops {
        let op = proto::op_for(args.seed, k);
        let op_id = handle.peek_next_op_id();
        emit(format_args!("INV {k} {} {}", op_id.pid, op_id.seq));
        let result = if args.checkpoint_every > 0 {
            handle.update_with_checkpoint(op)
        } else {
            handle.try_update(op)
        };
        result.expect("update failed");
        emit(format_args!("ACK {k} {} {}", op_id.pid, op_id.seq));
    }
    emit(format_args!("DONE {}", args.ops));
}

fn recover(
    args: &Args,
    telemetry: &Telemetry,
) -> Result<(Durable<KvSpec>, RecoveryReport), String> {
    Durable::<KvSpec>::recover_in_with_checkpoints(pmem(telemetry), config(args))
        .map_err(|e| e.to_string())
}

fn main() {
    let args = parse_args();
    let telemetry = if args.telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    match args.mode.as_str() {
        "run" => {
            let object = Durable::<KvSpec>::create_in(pmem(&telemetry), config(&args))
                .expect("create file-backed store");
            emit(format_args!("READY create"));
            apply_workload(&args, &object, 0);
            report_telemetry(&telemetry);
        }
        "resume" => match recover(&args, &telemetry) {
            Ok((object, report)) => {
                emit(format_args!(
                    "READY recover {} {}",
                    report.durable_index,
                    report.replayed_ops()
                ));
                apply_workload(&args, &object, report.durable_index);
                report_telemetry(&telemetry);
            }
            Err(e) => {
                emit(format_args!("NOSTORE {e}"));
                std::process::exit(3);
            }
        },
        "verify" => match recover(&args, &telemetry) {
            Ok((object, report)) => {
                emit(format_args!("RECOVERED {}", report.durable_index));
                emit(format_args!("CHECKPOINT {}", report.checkpoint_index));
                for (idx, op_id) in &report.recovered_ops {
                    emit(format_args!("ROP {} {} {idx}", op_id.pid, op_id.seq));
                }
                let digest = proto::digest_via(|key| match object.read_latest(&KvRead::Get(key)) {
                    KvValue::Value(v) => v,
                    KvValue::Len(_) => None,
                });
                emit(format_args!("DIGEST {digest:#018x}"));
                report_telemetry(&telemetry);
            }
            Err(e) => {
                emit(format_args!("NOSTORE {e}"));
                std::process::exit(3);
            }
        },
        other => usage(&format!("unknown mode {other}")),
    }
}
