//! The `onll-server` daemon: serves a file-backed sharded KV store over TCP.
//!
//! A fresh directory creates the store; a directory holding pool files from a
//! previous (possibly `SIGKILL`ed) incarnation recovers it. The supervisor
//! protocol on stdout is one flushed line:
//!
//! ```text
//! READY <port> <recovered_durable_total>
//! ```
//!
//! after which the server accepts connections until killed. Crash testing is
//! the *point* of this binary: the kill-9 harness reads `READY`, drives
//! clients, SIGKILLs the process mid-request, restarts it on the same
//! directory, and verifies every in-flight operation identity resolves
//! consistently (see `tests/kill9_crash.rs` and `tests/server_loopback.rs`).
//!
//! ```text
//! onll_server serve --dir DIR [--port P] [--shards N] [--clients N]
//! ```

use remembering_consistently::server::{OnllServer, ServerConfig};
use std::io::Write;
use std::net::TcpListener;

struct Args {
    dir: String,
    port: u16,
    shards: usize,
    clients: usize,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: onll_server serve --dir DIR [--port P] [--shards N] [--clients N]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => {}
        Some(other) => usage(&format!("unknown mode {other}")),
        None => usage("missing mode"),
    }
    let mut parsed = Args {
        dir: String::new(),
        port: 0,
        shards: 2,
        clients: 8,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage("missing flag value"));
        match flag.as_str() {
            "--dir" => parsed.dir = value(),
            "--port" => parsed.port = value().parse().unwrap_or_else(|_| usage("bad --port")),
            "--shards" => parsed.shards = value().parse().unwrap_or_else(|_| usage("bad --shards")),
            "--clients" => {
                parsed.clients = value().parse().unwrap_or_else(|_| usage("bad --clients"))
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if parsed.dir.is_empty() {
        usage("--dir is required");
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut config = ServerConfig::new(&args.dir);
    config.shards = args.shards;
    config.max_clients = args.clients;
    let (server, recovered) = match OnllServer::open(config) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("failed to open store: {e}");
            std::process::exit(3);
        }
    };
    let listener = TcpListener::bind(("127.0.0.1", args.port)).expect("bind the loopback listener");
    let port = listener.local_addr().expect("listener address").port();
    // The supervisor reads this line to learn the port; flush before serving.
    {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        writeln!(out, "READY {port} {recovered}").expect("stdout closed");
        out.flush().expect("stdout flush failed");
    }
    let err = server.serve(listener);
    eprintln!("listener failed: {err}");
    std::process::exit(1);
}
