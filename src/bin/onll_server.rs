//! The `onll-server` daemon: serves a file-backed sharded KV store over TCP.
//!
//! A fresh directory creates the store; a directory holding pool files from a
//! previous (possibly `SIGKILL`ed) incarnation recovers it. The supervisor
//! protocol on stdout is one flushed line:
//!
//! ```text
//! READY <port> <recovered_durable_total>
//! ```
//!
//! after which the server accepts connections until killed — or, on SIGTERM,
//! drains gracefully (stop accepting, finish in-flight requests, publish a
//! final checkpoint) and exits 0. Crash and chaos testing are the *point* of
//! this binary: the harnesses read `READY`, drive clients, kill the process
//! mid-request (SIGKILL) or politely (SIGTERM), restart it on the same
//! directory, and verify every in-flight operation identity resolves
//! consistently (see `tests/kill9_crash.rs`, `tests/server_loopback.rs`, and
//! `tests/chaos.rs`).
//!
//! ```text
//! onll_server serve --dir DIR [--port P] [--shards N] [--clients N]
//!                   [--max-conns N] [--idle-timeout-ms MS] [--fault-spec SPEC]
//! ```
//!
//! `--fault-spec` installs a deterministic fault schedule into every shard
//! pool (see `nvm_sim::FaultPlan::parse_spec`), e.g.
//! `seed=7,transient-fsync-eio@3*2,torn@9`.

use remembering_consistently::nvm::FaultPlan;
use remembering_consistently::server::{install_sigterm_handler, OnllServer, ServerConfig};
use std::io::Write;
use std::net::TcpListener;
use std::time::Duration;

struct Args {
    dir: String,
    port: u16,
    shards: usize,
    clients: usize,
    max_conns: Option<usize>,
    idle_timeout_ms: Option<u64>,
    fault_spec: Option<String>,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: onll_server serve --dir DIR [--port P] [--shards N] [--clients N] \
         [--max-conns N] [--idle-timeout-ms MS] [--fault-spec SPEC]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => {}
        Some(other) => usage(&format!("unknown mode {other}")),
        None => usage("missing mode"),
    }
    let mut parsed = Args {
        dir: String::new(),
        port: 0,
        shards: 2,
        clients: 8,
        max_conns: None,
        idle_timeout_ms: None,
        fault_spec: None,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage("missing flag value"));
        match flag.as_str() {
            "--dir" => parsed.dir = value(),
            "--port" => parsed.port = value().parse().unwrap_or_else(|_| usage("bad --port")),
            "--shards" => parsed.shards = value().parse().unwrap_or_else(|_| usage("bad --shards")),
            "--clients" => {
                parsed.clients = value().parse().unwrap_or_else(|_| usage("bad --clients"))
            }
            "--max-conns" => {
                parsed.max_conns =
                    Some(value().parse().unwrap_or_else(|_| usage("bad --max-conns")))
            }
            "--idle-timeout-ms" => {
                parsed.idle_timeout_ms = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| usage("bad --idle-timeout-ms")),
                )
            }
            "--fault-spec" => parsed.fault_spec = Some(value()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if parsed.dir.is_empty() {
        usage("--dir is required");
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut config = ServerConfig::new(&args.dir);
    config.shards = args.shards;
    config.max_clients = args.clients;
    config.max_connections = args.max_conns.unwrap_or(args.clients + 2);
    if let Some(ms) = args.idle_timeout_ms {
        config.idle_timeout = Duration::from_millis(ms);
    }
    if let Some(spec) = &args.fault_spec {
        config.fault_plan = FaultPlan::parse_spec(spec)
            .unwrap_or_else(|e| usage(&format!("bad --fault-spec: {e}")));
    }
    let (server, recovered) = match OnllServer::open(config) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("failed to open store: {e}");
            std::process::exit(3);
        }
    };
    install_sigterm_handler();
    let listener = TcpListener::bind(("127.0.0.1", args.port)).expect("bind the loopback listener");
    let port = listener.local_addr().expect("listener address").port();
    // The supervisor reads this line to learn the port; flush before serving.
    {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        writeln!(out, "READY {port} {recovered}").expect("stdout closed");
        out.flush().expect("stdout flush failed");
    }
    match server.serve(listener) {
        Ok(()) => {
            // Graceful SIGTERM drain completed: every acknowledged write is
            // durable and a final checkpoint is published.
            eprintln!("graceful shutdown complete");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("listener failed: {e}");
            std::process::exit(1);
        }
    }
}
