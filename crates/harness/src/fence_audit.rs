//! Per-operation persistent-fence auditing (Theorem 5.1).
//!
//! The audit drives an arbitrary workload against any [`DurableObject`]
//! implementation while counting, per operation, the persistent fences issued by
//! the executing thread. For ONLL the result must satisfy: at most one persistent
//! fence per update, zero per read.
//!
//! Checkpoint maintenance (checkpoint publish, log truncation) issues persistent
//! fences too, but those are *amortized* maintenance the paper's per-update lower
//! bound does not charge to operations. The simulator tags them (they run inside
//! a `MaintenanceScope`), and the audit accumulates them in the separate
//! [`FenceAudit::checkpoint_fences`] bucket: the Theorem 5.1 bound is checked on
//! the **inherent** fences only, so the bound stays verifiable with checkpointing
//! enabled.

use crate::workload::WorkloadOp;
use baselines::DurableObject;
use nvm_sim::FenceStats;
use onll::SequentialSpec;

/// Aggregated per-operation fence counts for one workload run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FenceAudit {
    /// Number of update operations executed.
    pub updates: u64,
    /// Number of read-only operations executed.
    pub reads: u64,
    /// Total **inherent** persistent fences issued during updates (maintenance
    /// fences excluded — they are in [`FenceAudit::checkpoint_fences`]).
    pub update_fences: u64,
    /// Total inherent persistent fences issued during reads.
    pub read_fences: u64,
    /// Total maintenance (checkpoint publish + log truncation) fences issued
    /// during the audited operations, across updates and reads.
    pub checkpoint_fences: u64,
    /// Maximum inherent persistent fences observed in a single update.
    pub max_fences_per_update: u64,
    /// Maximum inherent persistent fences observed in a single read.
    pub max_fences_per_read: u64,
    /// Total flush instructions issued during reads (must be zero for ONLL:
    /// reads never touch NVM, and checkpoints never run inside reads).
    pub read_flushes: u64,
    /// Total NVM store instructions issued during reads (must be zero for ONLL).
    pub read_stores: u64,
    /// Total flush instructions issued during updates. Carried so the audit
    /// reports the full backend totals (reproducing a randomized failure needs
    /// the whole cost picture, not only the fence counts).
    pub update_flushes: u64,
    /// Total NVM store instructions issued during updates.
    pub update_stores: u64,
}

impl FenceAudit {
    /// True if the run satisfies the ONLL bounds of Theorem 5.1: at most one
    /// inherent persistent fence per update and none per read (and reads touch
    /// NVM not at all). Checkpoint fences are judged separately — they are
    /// bounded by the checkpoint *rate*, not the update count.
    pub fn satisfies_onll_bounds(&self) -> bool {
        self.max_fences_per_update <= 1
            && self.read_fences == 0
            && self.read_flushes == 0
            && self.read_stores == 0
    }

    /// Average inherent persistent fences per update.
    pub fn fences_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.update_fences as f64 / self.updates as f64
        }
    }

    /// Average inherent persistent fences per read.
    pub fn fences_per_read(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_fences as f64 / self.reads as f64
        }
    }

    /// Average checkpoint/maintenance fences per update — the amortized
    /// maintenance overhead, which shrinks as the checkpoint interval grows.
    pub fn checkpoint_fences_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.checkpoint_fences as f64 / self.updates as f64
        }
    }

    /// Merges another audit into this one. Concurrent runs audit each client
    /// thread separately (persistence counters are per thread) and absorb the
    /// per-thread audits into one aggregate, on which the amortized bounds are
    /// then checked.
    pub fn absorb(&mut self, other: &FenceAudit) {
        self.updates += other.updates;
        self.reads += other.reads;
        self.update_fences += other.update_fences;
        self.read_fences += other.read_fences;
        self.checkpoint_fences += other.checkpoint_fences;
        self.max_fences_per_update = self.max_fences_per_update.max(other.max_fences_per_update);
        self.max_fences_per_read = self.max_fences_per_read.max(other.max_fences_per_read);
        self.read_flushes += other.read_flushes;
        self.read_stores += other.read_stores;
        self.update_flushes += other.update_flushes;
        self.update_stores += other.update_stores;
    }

    /// The amortized per-operation fence bounds of a cross-thread combining
    /// front-end whose batches hold at most `max_batch` operations
    /// (`min(live clients, max_group_ops)` for `onll::DurableService`):
    ///
    /// * **upper** — every operation individually still satisfies Theorem 5.1
    ///   (at most one inherent fence in its own window; an operation served by
    ///   another thread's combiner observes zero), reads stay at zero and
    ///   never touch NVM; and
    /// * **lower** — the run cannot beat the inherent cost: one fence covers
    ///   at most `max_batch` operations, so total inherent update fences are
    ///   at least `updates / max_batch` (rounded up). Fences per operation per
    ///   live client therefore cannot fall below `1/max_batch` — amortization
    ///   divides the fence *count*, it never deletes the fence the lower
    ///   bound (Theorem 6.3) demands.
    pub fn satisfies_amortized_bounds(&self, max_batch: u64) -> bool {
        self.satisfies_onll_bounds()
            && self.update_fences >= self.updates.div_ceil(max_batch.max(1))
    }
}

/// Executes `ops` against `object`, auditing the calling thread's persistence
/// events per operation via `stats` (the pool's statistics).
pub fn audit_fence_bounds<S, D>(
    object: &mut D,
    stats: &FenceStats,
    ops: impl IntoIterator<Item = WorkloadOp<S::UpdateOp, S::ReadOp>>,
) -> FenceAudit
where
    S: SequentialSpec,
    D: DurableObject<S> + ?Sized,
{
    let mut audit = FenceAudit::default();
    for op in ops {
        let window = stats.op_window();
        match op {
            WorkloadOp::Update(u) => {
                object.update(u);
                let d = window.close();
                let inherent = d.inherent_fences();
                audit.updates += 1;
                audit.update_fences += inherent;
                audit.checkpoint_fences += d.maintenance_fences;
                audit.max_fences_per_update = audit.max_fences_per_update.max(inherent);
                audit.update_flushes += d.flushes;
                audit.update_stores += d.stores;
            }
            WorkloadOp::Read(r) => {
                object.read(&r);
                let d = window.close();
                let inherent = d.inherent_fences();
                audit.reads += 1;
                audit.read_fences += inherent;
                audit.checkpoint_fences += d.maintenance_fences;
                audit.max_fences_per_read = audit.max_fences_per_read.max(inherent);
                audit.read_flushes += d.flushes;
                audit.read_stores += d.stores;
            }
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{CheckpointingOnllAdapter, OnllAdapter};
    use crate::workload::{Workload, WorkloadMix};
    use baselines::{NaiveDurable, WalDurable};
    use durable_objects::CounterSpec;
    use nvm_sim::{NvmPool, PmemConfig};
    use onll::{Durable, OnllConfig};

    fn pool() -> NvmPool {
        NvmPool::new(PmemConfig::with_capacity(32 << 20))
    }

    #[test]
    fn onll_satisfies_the_theorem_bounds() {
        let p = pool();
        let obj = Durable::<CounterSpec>::create(p.clone(), OnllConfig::named("c")).unwrap();
        let mut adapter = OnllAdapter::new(obj.register().unwrap());
        let mut w = Workload::new(WorkloadMix::with_update_percent(50), 9);
        let audit =
            audit_fence_bounds::<CounterSpec, _>(&mut adapter, p.stats(), w.counter_ops(400));
        assert!(audit.satisfies_onll_bounds(), "{audit:?}");
        assert_eq!(audit.max_fences_per_update, 1);
        assert_eq!(audit.fences_per_update(), 1.0);
        assert_eq!(audit.fences_per_read(), 0.0);
        assert_eq!(audit.updates + audit.reads, 400);
        // The full backend totals ride along: updates store and flush the log.
        assert!(audit.update_stores > 0);
        assert!(audit.update_flushes > 0);
    }

    #[test]
    fn checkpoint_fences_land_in_their_own_bucket() {
        let p = pool();
        let obj = Durable::<CounterSpec>::create(
            p.clone(),
            OnllConfig::named("c")
                .checkpoint_every(25)
                .checkpoint_slot_bytes(256),
        )
        .unwrap();
        let mut adapter = CheckpointingOnllAdapter::new(obj.register().unwrap());
        let mut w = Workload::new(WorkloadMix::with_update_percent(80), 11);
        let audit =
            audit_fence_bounds::<CounterSpec, _>(&mut adapter, p.stats(), w.counter_ops(400));
        // The inherent per-update bound still holds with checkpointing on...
        assert!(audit.satisfies_onll_bounds(), "{audit:?}");
        assert_eq!(audit.max_fences_per_update, 1);
        // ...and checkpoint maintenance actually ran, in its own bucket:
        // 2 fences per checkpoint (publish + truncation), ~updates/25 checkpoints.
        assert!(audit.checkpoint_fences > 0, "{audit:?}");
        assert!(
            audit.checkpoint_fences <= 2 * (audit.updates / 25 + 1),
            "{audit:?}"
        );
        assert!(audit.checkpoint_fences_per_update() < 0.1, "{audit:?}");
    }

    #[test]
    fn wal_baseline_exceeds_the_bound() {
        let p = pool();
        let obj = WalDurable::<CounterSpec>::create(p.clone(), 4096);
        let mut h = obj.handle();
        let mut w = Workload::new(WorkloadMix::update_only(), 9);
        let audit = audit_fence_bounds::<CounterSpec, _>(&mut h, p.stats(), w.counter_ops(100));
        assert!(!audit.satisfies_onll_bounds());
        assert_eq!(audit.max_fences_per_update, 2);
        assert_eq!(audit.fences_per_update(), 2.0);
    }

    #[test]
    fn naive_baseline_exceeds_the_bound() {
        let p = pool();
        let obj = NaiveDurable::<CounterSpec>::create(p.clone(), 64);
        let mut h = obj.handle();
        let mut w = Workload::new(WorkloadMix::update_only(), 9);
        let audit = audit_fence_bounds::<CounterSpec, _>(&mut h, p.stats(), w.counter_ops(50));
        assert_eq!(audit.max_fences_per_update, 2);
    }

    #[test]
    fn empty_workload_yields_zero_audit() {
        let audit = FenceAudit::default();
        assert_eq!(audit.fences_per_update(), 0.0);
        assert_eq!(audit.fences_per_read(), 0.0);
        assert!(audit.satisfies_onll_bounds());
    }
}
