//! The Theorem 6.3 lower-bound experiment.
//!
//! Theorem 6.3: for any lock-free durably linearizable implementation of an update
//! operation, there is an execution in which all `n` processes call the update
//! concurrently and *every one of them* performs at least one persistent fence
//! before its call returns. The proof constructs that execution explicitly: each
//! process in turn runs its update solo and is preempted *just before the
//! response*; if any process had not yet issued a persistent fence at that point, a
//! crash placed right after its (hypothetical) response would violate durable
//! linearizability.
//!
//! This module reproduces that adversarial schedule against the ONLL
//! implementation (whose hooks provide the "preempt just before the response"
//! point) and measures, per process, the persistent fences issued between the
//! operation's invocation and the preemption point. Combined with the Theorem 5.1
//! audit (at most one fence per update), the outcome demonstrates the paper's
//! headline: **exactly one persistent fence per update is both necessary and
//! sufficient**.

use durable_objects::{CounterOp, CounterSpec};
use nvm_sim::{NvmPool, PmemConfig};
use onll::{Durable, Hooks, OnllConfig, Phase};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Result of the lower-bound schedule.
#[derive(Debug, Clone)]
pub struct LowerBoundReport {
    /// Persistent fences issued by each process between invoking its update and
    /// being preempted just before the response.
    pub fences_before_response: Vec<u64>,
    /// Persistent fences issued by each process over its entire (resumed) call.
    pub fences_total: Vec<u64>,
}

impl LowerBoundReport {
    /// True if every process issued at least one persistent fence before the
    /// preemption point (the Theorem 6.3 bound).
    pub fn lower_bound_holds(&self) -> bool {
        self.fences_before_response.iter().all(|&f| f >= 1)
    }

    /// True if no process issued more than one persistent fence in its whole call
    /// (the Theorem 5.1 upper bound), i.e. the bound is tight.
    pub fn upper_bound_holds(&self) -> bool {
        self.fences_total.iter().all(|&f| f <= 1)
    }
}

/// Runs the adversarial schedule of Theorem 6.3 with `n` processes, each invoking
/// one `increment` on a shared ONLL counter:
///
/// 1. process `p_i` runs its update solo;
/// 2. it is preempted just before the response (the construction's
///    `BeforeResponse` hook);
/// 3. the persistent fences it issued so far are recorded;
/// 4. the schedule moves on to `p_{i+1}`; at the end all processes are resumed.
pub fn run_lower_bound_experiment(n: usize) -> LowerBoundReport {
    assert!(n >= 1);
    let pool = NvmPool::new(PmemConfig::with_capacity(32 << 20));
    // Per-process bookkeeping shared with the hook.
    let fences_at_invoke: Arc<Vec<AtomicU64>> =
        Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let fences_at_preempt: Arc<Vec<AtomicU64>> =
        Arc::new((0..n).map(|_| AtomicU64::new(u64::MAX)).collect());
    let reached_preempt: Arc<Vec<AtomicBool>> =
        Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let release: Arc<AtomicBool> = Arc::new(AtomicBool::new(false));

    let hooks = {
        let pool = pool.clone();
        let fences_at_invoke = fences_at_invoke.clone();
        let fences_at_preempt = fences_at_preempt.clone();
        let reached_preempt = reached_preempt.clone();
        let release = release.clone();
        Hooks::new(move |phase, pid| {
            let pid = pid as usize;
            match phase {
                Phase::BeforeOrder => {
                    // Invocation point: remember this thread's fence count.
                    fences_at_invoke[pid]
                        .store(pool.stats().my_persistent_fences(), Ordering::SeqCst);
                }
                Phase::BeforeResponse => {
                    // Preemption point: "just before the response".
                    let now = pool.stats().my_persistent_fences();
                    fences_at_preempt[pid].store(
                        now - fences_at_invoke[pid].load(Ordering::SeqCst),
                        Ordering::SeqCst,
                    );
                    reached_preempt[pid].store(true, Ordering::SeqCst);
                    // Stay preempted until the whole schedule completes.
                    while !release.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
                _ => {}
            }
        })
    };

    let object = Durable::<CounterSpec>::create_with_hooks(
        pool.clone(),
        OnllConfig::named("lower-bound").max_processes(n),
        hooks,
    )
    .unwrap();

    // The adversarial scheduler: start process i, let it run solo until it reaches
    // the preemption point, then start process i+1.
    let mut joins = Vec::new();
    let totals: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    for i in 0..n {
        let object = object.clone();
        let pool = pool.clone();
        let totals = totals.clone();
        let fences_at_invoke = fences_at_invoke.clone();
        joins.push(std::thread::spawn(move || {
            let mut handle = object.handle_for(i).unwrap();
            handle.update(CounterOp::Increment);
            // Back from the (released) preemption: record the whole call's fences.
            let total =
                pool.stats().my_persistent_fences() - fences_at_invoke[i].load(Ordering::SeqCst);
            totals[i].store(total, Ordering::SeqCst);
        }));
        // Run solo: wait until process i is parked just before its response.
        while !reached_preempt[i].load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }
    // Resume everyone (the proof's final step) and collect.
    release.store(true, Ordering::Release);
    for j in joins {
        j.join().unwrap();
    }

    LowerBoundReport {
        fences_before_response: fences_at_preempt
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .collect(),
        fences_total: totals.iter().map(|a| a.load(Ordering::SeqCst)).collect(),
    }
}

/// Demonstrates *why* the fence is necessary (the proof's contradiction): an
/// implementation that skips the persistent fence loses a completed update across
/// a crash. Returns the value read after crash+recovery when a single increment was
/// performed with / without its fence — `(with_fence, without_fence)`.
///
/// `without_fence` simulates a hypothetical fence-free implementation by performing
/// the same log write but crashing before the fence takes effect; the recovered
/// value shows the update was lost, which contradicts durable linearizability for
/// an operation that (hypothetically) already responded.
pub fn demonstrate_fence_necessity() -> (i64, i64) {
    use durable_objects::CounterRead;

    // With the fence: the update survives.
    let pool = NvmPool::new(PmemConfig::with_capacity(8 << 20).apply_pending_at_crash(0.0));
    let cfg = OnllConfig::named("with-fence")
        .max_processes(1)
        .log_capacity(64);
    let obj = Durable::<CounterSpec>::create(pool.clone(), cfg.clone()).unwrap();
    {
        let mut h = obj.register().unwrap();
        h.update(CounterOp::Increment);
    }
    drop(obj);
    pool.crash_and_restart();
    let (obj, _) = Durable::<CounterSpec>::recover(pool, cfg).unwrap();
    let with_fence = obj.read_latest(&CounterRead::Get);

    // "Without" the fence: crash right before the update's only persistent fence
    // (so the log append never became durable). The operation would have responded
    // next; recovery then misses it — exactly the contradiction in the proof.
    let pool = NvmPool::new(PmemConfig::with_capacity(8 << 20).apply_pending_at_crash(0.0));
    let cfg = OnllConfig::named("without-fence")
        .max_processes(1)
        .log_capacity(64);
    let pool2 = pool.clone();
    let hooks = Hooks::new(move |phase, _pid| {
        if phase == Phase::BeforePersist {
            // Arm a crash that fires just before the fence of the log append: the
            // entry's stores and flushes happen, but the fence never completes.
            pool2.arm_crash(nvm_sim::CrashTrigger::AfterFlushes(1));
        }
    });
    let obj = Durable::<CounterSpec>::create_with_hooks(pool.clone(), cfg.clone(), hooks).unwrap();
    {
        let mut h = obj.register().unwrap();
        let _ = h.try_update(CounterOp::Increment);
    }
    drop(obj);
    pool.crash_and_restart();
    let (obj, _) = Durable::<CounterSpec>::recover(pool, cfg).unwrap();
    let without_fence = obj.read_latest(&CounterRead::Get);

    (with_fence, without_fence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_process_fences_at_least_once_and_at_most_once() {
        for n in [1, 2, 4] {
            let report = run_lower_bound_experiment(n);
            assert_eq!(report.fences_before_response.len(), n);
            assert!(
                report.lower_bound_holds(),
                "lower bound violated for n={n}: {report:?}"
            );
            assert!(
                report.upper_bound_holds(),
                "upper bound violated for n={n}: {report:?}"
            );
        }
    }

    #[test]
    fn skipping_the_fence_loses_the_update() {
        let (with_fence, without_fence) = demonstrate_fence_necessity();
        assert_eq!(with_fence, 1);
        assert_eq!(without_fence, 0);
    }
}
