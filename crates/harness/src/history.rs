//! Concurrent history recording.
//!
//! A *history* (Section 5.2.1 of the paper) is a sequence of invocation and
//! response events. The harness records histories while workloads run so the
//! linearizability and durable-linearizability checkers can verify them offline.
//! Timestamps are logical: a single global atomic counter incremented at every
//! event, which yields a total order consistent with real time (an event that
//! happens-before another gets a smaller stamp).

use onll::OpId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What kind of operation an event pair describes.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind<U, R, V> {
    /// An update operation with its argument and (once responded) return value.
    Update {
        /// The update operation.
        op: U,
        /// Return value, present once the operation responded.
        value: Option<V>,
    },
    /// A read-only operation with its argument and (once responded) return value.
    Read {
        /// The read operation.
        op: R,
        /// Return value, present once the operation responded.
        value: Option<V>,
    },
}

/// One recorded operation: invocation stamp, optional response stamp, process, and
/// the operation itself.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRecord<U, R, V> {
    /// Identity of the invoking process (slot index used by the workload driver).
    pub pid: u32,
    /// Identity of the update operation (None for reads).
    pub op_id: Option<OpId>,
    /// Logical invocation timestamp.
    pub invoked_at: u64,
    /// Logical response timestamp (`None` if the operation never responded, e.g.
    /// because the system crashed).
    pub responded_at: Option<u64>,
    /// The operation and its return value.
    pub kind: EventKind<U, R, V>,
}

impl<U, R, V> OpRecord<U, R, V> {
    /// True if this record describes an update.
    pub fn is_update(&self) -> bool {
        matches!(self.kind, EventKind::Update { .. })
    }

    /// True if the operation completed (has a response).
    pub fn is_complete(&self) -> bool {
        self.responded_at.is_some()
    }

    /// Real-time precedence: `self` precedes `other` iff `self` responded before
    /// `other` was invoked.
    pub fn precedes(&self, other: &Self) -> bool {
        match self.responded_at {
            Some(r) => r < other.invoked_at,
            None => false,
        }
    }
}

/// One raw event (used internally and exposed for debugging output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An invocation with its logical stamp.
    Invoke(u64),
    /// A response with its logical stamp.
    Respond(u64),
}

/// A shared, append-only history recorder.
pub struct History<U, R, V> {
    clock: Arc<AtomicU64>,
    records: Arc<Mutex<Vec<OpRecord<U, R, V>>>>,
}

impl<U, R, V> Clone for History<U, R, V> {
    fn clone(&self) -> Self {
        History {
            clock: self.clock.clone(),
            records: self.records.clone(),
        }
    }
}

impl<U, R, V> Default for History<U, R, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A token identifying an invocation, to be closed by [`History::respond`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingOp(usize);

impl<U, R, V> History<U, R, V> {
    /// Creates an empty history.
    pub fn new() -> Self {
        History {
            clock: Arc::new(AtomicU64::new(1)),
            records: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Records the invocation of an update.
    pub fn invoke_update(&self, pid: u32, op_id: Option<OpId>, op: U) -> PendingOp {
        let stamp = self.tick();
        let mut records = self.records.lock();
        records.push(OpRecord {
            pid,
            op_id,
            invoked_at: stamp,
            responded_at: None,
            kind: EventKind::Update { op, value: None },
        });
        PendingOp(records.len() - 1)
    }

    /// Records the invocation of a read.
    pub fn invoke_read(&self, pid: u32, op: R) -> PendingOp {
        let stamp = self.tick();
        let mut records = self.records.lock();
        records.push(OpRecord {
            pid,
            op_id: None,
            invoked_at: stamp,
            responded_at: None,
            kind: EventKind::Read { op, value: None },
        });
        PendingOp(records.len() - 1)
    }

    /// Records the response of a previously invoked operation, with its value.
    pub fn respond(&self, pending: PendingOp, value: V) {
        let stamp = self.tick();
        let mut records = self.records.lock();
        let record = &mut records[pending.0];
        record.responded_at = Some(stamp);
        match &mut record.kind {
            EventKind::Update { value: v, .. } => *v = Some(value),
            EventKind::Read { value: v, .. } => *v = Some(value),
        }
    }

    /// Updates the op-id of a pending update (assigned by the implementation only
    /// after the invocation was recorded).
    pub fn set_op_id(&self, pending: PendingOp, op_id: OpId) {
        self.records.lock()[pending.0].op_id = Some(op_id);
    }

    /// Returns a snapshot of all records.
    pub fn snapshot(&self) -> Vec<OpRecord<U, R, V>>
    where
        U: Clone,
        R: Clone,
        V: Clone,
    {
        self.records.lock().clone()
    }

    /// Number of recorded operations (complete or not).
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type H = History<&'static str, &'static str, i64>;

    #[test]
    fn invocation_and_response_are_ordered() {
        let h: H = History::new();
        let a = h.invoke_update(0, None, "add");
        h.respond(a, 1);
        let b = h.invoke_read(1, "get");
        h.respond(b, 1);
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].is_update());
        assert!(!snap[1].is_update());
        assert!(snap[0].is_complete() && snap[1].is_complete());
        assert!(snap[0].precedes(&snap[1]));
        assert!(!snap[1].precedes(&snap[0]));
    }

    #[test]
    fn pending_operation_has_no_response() {
        let h: H = History::new();
        let _a = h.invoke_update(0, None, "add");
        let snap = h.snapshot();
        assert!(!snap[0].is_complete());
        assert!(!snap[0].precedes(&snap[0]));
    }

    #[test]
    fn concurrent_operations_do_not_precede_each_other() {
        let h: H = History::new();
        let a = h.invoke_update(0, None, "a");
        let b = h.invoke_update(1, None, "b");
        h.respond(a, 1);
        h.respond(b, 2);
        let snap = h.snapshot();
        assert!(!snap[0].precedes(&snap[1]));
        assert!(!snap[1].precedes(&snap[0]));
    }

    #[test]
    fn op_id_can_be_attached_after_invocation() {
        let h: H = History::new();
        let a = h.invoke_update(3, None, "a");
        h.set_op_id(a, OpId::new(3, 1));
        assert_eq!(h.snapshot()[0].op_id, Some(OpId::new(3, 1)));
    }

    #[test]
    fn clones_share_the_same_history() {
        let h: H = History::new();
        let h2 = h.clone();
        let a = h.invoke_update(0, None, "x");
        h2.respond(a, 9);
        assert!(h.snapshot()[0].is_complete());
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
    }
}
