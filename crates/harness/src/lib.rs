//! # harness — experiment infrastructure for the SPAA 2018 reproduction
//!
//! This crate contains everything needed to *exercise and check* the ONLL
//! construction and its baselines:
//!
//! * [`adapter`] — adapters presenting ONLL process handles through the common
//!   [`baselines::DurableObject`] interface, so identical workloads drive every
//!   implementation.
//! * [`workload`] — deterministic workload generators (update/read mixes, key
//!   distributions) used by benchmarks and stress tests.
//! * [`history`] — concurrent history recording (invocations, responses, values,
//!   per-process order).
//! * [`linearizability`] — a Wing&Gong-style linearizability checker for small
//!   histories against any [`onll::SequentialSpec`], plus the durable-
//!   linearizability (consistent-cut) checks of Definition 5.6.
//! * [`crash`] — crash-injection orchestration: run a concurrent workload, stop the
//!   world at an adversarially chosen persistence event, recover, and verify.
//! * [`lower_bound`] — the Theorem 6.3 adversarial schedule: every process runs an
//!   update solo and is preempted just before its response (or first fence), and
//!   each must be observed to issue at least one persistent fence.
//! * [`fence_audit`] — helpers asserting the Theorem 5.1 per-operation fence bounds
//!   over arbitrary workloads, including the amortized bounds of cross-thread
//!   combining front-ends.
//! * [`concurrent`] — multi-threaded drivers and merged fence audits for the
//!   combining-commit service ([`onll::DurableService`]) and the baselines it
//!   is benchmarked against.
//! * [`sharded`] — multi-threaded drivers and aggregate fence audits for
//!   [`onll_shard::ShardedDurable`] objects (the bounds must hold across all
//!   shard pools at once).
//! * [`report`] — plain-text table rendering for benchmark and example output.

#![warn(missing_docs)]

pub mod adapter;
pub mod concurrent;
pub mod crash;
pub mod fence_audit;
pub mod history;
pub mod linearizability;
pub mod lower_bound;
pub mod report;
pub mod sharded;
pub mod workload;

pub use adapter::{CheckpointingOnllAdapter, OnllAdapter, ServiceClientAdapter};
pub use concurrent::{audit_concurrent_workload, run_concurrent_workload};
pub use crash::{quick_crash_sweep, CrashExperiment, CrashOutcome};
pub use fence_audit::{audit_fence_bounds, FenceAudit};
pub use history::{Event, EventKind, History, OpRecord};
pub use linearizability::{
    check_durable_linearizability, check_linearizability, DurabilityViolation,
};
pub use lower_bound::{run_lower_bound_experiment, LowerBoundReport};
pub use report::{telemetry_counter_table, telemetry_histogram_table, Table};
pub use sharded::{
    audit_sharded_fence_bounds, run_sharded_kv_workload, RunReport, ShardedRunSummary, SubmitMode,
};
pub use workload::{Workload, WorkloadMix, WorkloadOp};
