//! Adapters presenting ONLL handles through the common [`DurableObject`] interface.

use baselines::DurableObject;
use onll::{OnllError, ProcessHandle, SequentialSpec, ServiceClient, SnapshotSpec};

/// Wraps an ONLL [`ProcessHandle`] so workloads written against
/// [`baselines::DurableObject`] can drive the ONLL implementation unchanged.
pub struct OnllAdapter<S: SequentialSpec> {
    handle: ProcessHandle<S>,
}

impl<S: SequentialSpec> OnllAdapter<S> {
    /// Wraps a handle.
    pub fn new(handle: ProcessHandle<S>) -> Self {
        OnllAdapter { handle }
    }

    /// The wrapped handle.
    pub fn handle(&self) -> &ProcessHandle<S> {
        &self.handle
    }

    /// Mutable access to the wrapped handle (e.g. for checkpoint calls).
    pub fn handle_mut(&mut self) -> &mut ProcessHandle<S> {
        &mut self.handle
    }

    /// Unwraps back into the handle.
    pub fn into_handle(self) -> ProcessHandle<S> {
        self.handle
    }
}

impl<S: SequentialSpec> DurableObject<S> for OnllAdapter<S> {
    fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        self.handle.try_update(op)
    }

    fn read(&mut self, op: &S::ReadOp) -> S::Value {
        self.handle.read(op)
    }

    fn implementation_name(&self) -> &'static str {
        "onll"
    }
}

/// Like [`OnllAdapter`], but every update runs the automatic checkpoint check
/// (`ProcessHandle::update_with_checkpoint`), so fence audits can verify that
/// the per-update inherent bound survives checkpoint maintenance (whose fences
/// land in the separate maintenance bucket).
pub struct CheckpointingOnllAdapter<S: SnapshotSpec> {
    handle: ProcessHandle<S>,
}

impl<S: SnapshotSpec> CheckpointingOnllAdapter<S> {
    /// Wraps a handle on a checkpoint-enabled object.
    pub fn new(handle: ProcessHandle<S>) -> Self {
        CheckpointingOnllAdapter { handle }
    }

    /// The wrapped handle.
    pub fn handle(&self) -> &ProcessHandle<S> {
        &self.handle
    }
}

impl<S: SnapshotSpec> DurableObject<S> for CheckpointingOnllAdapter<S> {
    fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        self.handle.update_with_checkpoint(op)
    }

    fn read(&mut self, op: &S::ReadOp) -> S::Value {
        self.handle.read(op)
    }

    fn implementation_name(&self) -> &'static str {
        "onll+checkpoint"
    }
}

/// Wraps an [`onll::ServiceClient`] of a combining-commit
/// [`onll::DurableService`] so the same workloads drive the concurrent
/// front-end: updates block until the submitting thread is served by (or
/// becomes) a combiner; reads go through the combiner's local view.
pub struct ServiceClientAdapter<S: SequentialSpec> {
    client: ServiceClient<S>,
}

impl<S: SequentialSpec> ServiceClientAdapter<S> {
    /// Wraps a service client.
    pub fn new(client: ServiceClient<S>) -> Self {
        ServiceClientAdapter { client }
    }

    /// The wrapped client.
    pub fn client(&self) -> &ServiceClient<S> {
        &self.client
    }
}

impl<S: SequentialSpec> DurableObject<S> for ServiceClientAdapter<S> {
    fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        self.client.submit(op).map(|(value, _)| value)
    }

    fn read(&mut self, op: &S::ReadOp) -> S::Value {
        self.client.read(op)
    }

    fn implementation_name(&self) -> &'static str {
        "onll-service"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_objects::{CounterOp, CounterRead, CounterSpec};
    use nvm_sim::{NvmPool, PmemConfig};
    use onll::{Durable, OnllConfig};

    #[test]
    fn adapter_drives_the_onll_object() {
        let pool = NvmPool::new(PmemConfig::default());
        let obj = Durable::<CounterSpec>::create(pool, OnllConfig::named("ctr")).unwrap();
        let mut adapter = OnllAdapter::new(obj.register().unwrap());
        assert_eq!(adapter.update(CounterOp::Add(4)), 4);
        assert_eq!(adapter.read(&CounterRead::Get), 4);
        assert_eq!(adapter.implementation_name(), "onll");
        assert_eq!(adapter.handle().pid(), 0);
    }
}
