//! Multi-threaded drivers and fence audits for cross-thread combining
//! front-ends.
//!
//! The sharded driver ([`crate::run_sharded_kv_workload`]) measures *aggregate*
//! throughput of one facade; this module drives N client threads against any
//! [`DurableObject`] implementation — the ONLL combining service
//! ([`onll::DurableService`] via [`crate::adapter::ServiceClientAdapter`]), the
//! `baselines` flat combiner, or plain per-thread handles — under identical
//! seeded workloads, so the `concurrent_commit` bench compares them
//! apples-to-apples. It also audits the amortized per-operation fence bounds
//! ([`FenceAudit::satisfies_amortized_bounds`]): at most one inherent fence in
//! any operation's own window, and no fewer than one fence per `max_batch`
//! operations in aggregate — the inherent cost is amortized, never evaded.

use crate::fence_audit::{audit_fence_bounds, FenceAudit};
use crate::sharded::{RunReport, SubmitMode};
use crate::workload::{Workload, WorkloadMix, WorkloadOp};
use baselines::DurableObject;
use nvm_sim::NvmPool;
use onll::SequentialSpec;
use std::time::Instant;

/// Derives thread `t`'s workload seed from the run seed (same scheme as the
/// sharded driver, so runs are reproducible from the reported seed alone).
pub fn thread_seed(seed: u64, thread: u64) -> u64 {
    seed.wrapping_add(thread).wrapping_mul(2654435761)
}

/// Drives `threads` client threads, each executing `ops_per_thread` seeded
/// operations through its own handle (built by `make_handle`, once per thread,
/// inside that thread), and reports aggregate throughput and fence counts
/// summed over `pools`.
///
/// `next_op` draws one operation from a thread's seeded [`Workload`] stream —
/// pass `Workload::next_counter_op` / `Workload::next_kv_op` or a custom
/// generator. `mode` is recorded in the report verbatim (the handle decides
/// how updates are actually submitted).
#[allow(clippy::too_many_arguments)]
pub fn run_concurrent_workload<S, H>(
    make_handle: impl Fn(usize) -> H + Sync,
    pools: &[NvmPool],
    threads: usize,
    ops_per_thread: usize,
    mix: WorkloadMix,
    seed: u64,
    mode: SubmitMode,
    next_op: impl Fn(&mut Workload) -> WorkloadOp<S::UpdateOp, S::ReadOp> + Sync,
) -> RunReport
where
    S: SequentialSpec,
    H: DurableObject<S>,
{
    let before = onll_shard::merged_global_stats(pools);
    let start = Instant::now();
    let make_handle = &make_handle;
    let next_op = &next_op;
    let (updates, reads) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut handle = make_handle(t);
                    let mut workload = Workload::new(mix, thread_seed(seed, t as u64));
                    let mut updates = 0u64;
                    let mut reads = 0u64;
                    for _ in 0..ops_per_thread {
                        match next_op(&mut workload) {
                            WorkloadOp::Update(u) => {
                                updates += 1;
                                handle.update(u);
                            }
                            WorkloadOp::Read(r) => {
                                reads += 1;
                                handle.read(&r);
                            }
                        }
                    }
                    (updates, reads)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker thread panicked"))
            .fold((0, 0), |(u, r), (wu, wr)| (u + wu, r + wr))
    });
    let elapsed = start.elapsed();
    // The full stats delta rides along (satellite fix: drivers used to keep
    // only the fence count and drop the rest of the backend totals).
    let delta = onll_shard::merged_global_stats(pools).delta(&before);
    RunReport {
        threads,
        seed,
        mode,
        backend: pools.first().map_or("none", |p| p.backend_name()),
        total_ops: updates + reads,
        updates,
        reads,
        elapsed,
        persistent_fences: delta.persistent_fences,
        fence_totals: delta,
        telemetry: onll_shard::merged_telemetry(pools),
    }
}

/// Like [`run_concurrent_workload`], but additionally audits every operation's
/// own persistence window on its executing thread (persistence counters are
/// per thread) and returns the per-thread audits absorbed into one aggregate
/// [`FenceAudit`]. Single-pool objects only (windows are per pool).
pub fn audit_concurrent_workload<S, H>(
    make_handle: impl Fn(usize) -> H + Sync,
    pool: &NvmPool,
    threads: usize,
    ops_per_thread: usize,
    mix: WorkloadMix,
    seed: u64,
    next_op: impl Fn(&mut Workload) -> WorkloadOp<S::UpdateOp, S::ReadOp> + Sync,
) -> FenceAudit
where
    S: SequentialSpec,
    H: DurableObject<S>,
{
    let make_handle = &make_handle;
    let next_op = &next_op;
    let audits: Vec<FenceAudit> = std::thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut handle = make_handle(t);
                    let mut workload = Workload::new(mix, thread_seed(seed, t as u64));
                    let ops: Vec<_> = (0..ops_per_thread)
                        .map(|_| next_op(&mut workload))
                        .collect();
                    audit_fence_bounds::<S, _>(&mut handle, pool.stats(), ops)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|w| w.join().expect("audit thread panicked"))
            .collect()
    });
    let mut merged = FenceAudit::default();
    for audit in &audits {
        merged.absorb(audit);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::ServiceClientAdapter;
    use durable_objects::CounterSpec;
    use nvm_sim::PmemConfig;
    use onll::{Durable, DurableService, OnllConfig};

    fn counter_service(pool: &NvmPool, threads: usize) -> DurableService<CounterSpec> {
        Durable::<CounterSpec>::create(
            pool.clone(),
            OnllConfig::named("conc")
                .max_processes(threads + 1)
                .log_capacity(1 << 13)
                .group_persist(threads),
        )
        .unwrap()
        .service(threads)
        .unwrap()
    }

    #[test]
    fn driver_counts_every_operation_and_carries_the_seed() {
        let pool = NvmPool::new(PmemConfig::with_capacity(128 << 20));
        let service = counter_service(&pool, 3);
        let report = run_concurrent_workload::<CounterSpec, _>(
            |_| ServiceClientAdapter::new(service.client().expect("client slot")),
            std::slice::from_ref(&pool),
            3,
            100,
            WorkloadMix::with_update_percent(50),
            41,
            SubmitMode::Combined,
            Workload::next_counter_op,
        );
        assert_eq!(report.seed, 41);
        assert_eq!(report.mode, SubmitMode::Combined);
        assert_eq!(report.backend, "sim");
        assert_eq!(report.total_ops, 300);
        assert_eq!(report.updates + report.reads, 300);
        // Combining can only reduce fences below one per update, never add.
        assert!(report.persistent_fences <= report.updates);
        // Full backend totals ride along; telemetry is None when disabled.
        assert_eq!(
            report.fence_totals.persistent_fences,
            report.persistent_fences
        );
        assert!(report.fence_totals.stores > 0);
        assert!(report.telemetry.is_none());
        service.durable().check_invariants().unwrap();
    }

    #[test]
    fn concurrent_audit_respects_the_amortized_bounds() {
        let threads = 4;
        let pool = NvmPool::new(PmemConfig::with_capacity(128 << 20));
        let service = counter_service(&pool, threads);
        let audit = audit_concurrent_workload::<CounterSpec, _>(
            |_| ServiceClientAdapter::new(service.client().expect("client slot")),
            &pool,
            threads,
            150,
            WorkloadMix::with_update_percent(80),
            7,
            Workload::next_counter_op,
        );
        assert_eq!(audit.updates + audit.reads, (threads * 150) as u64);
        // Upper bound: every op's own window holds ≤1 inherent fence, reads 0.
        // Lower bound: one fence covers at most `threads` ops.
        assert!(
            audit.satisfies_amortized_bounds(threads as u64),
            "{audit:?}"
        );
        // And the totals agree with the service's own batch accounting.
        let (batches, ops) = service.batch_stats();
        assert_eq!(ops, audit.updates);
        assert_eq!(batches, audit.update_fences);
    }

    #[test]
    fn per_op_bound_holds_when_clients_exceed_the_batch_cap() {
        // 6 live clients but batches of at most 2 (group_persist(2)): the
        // batch cap keeps excluding some submitters from full passes, and a
        // submitter that becomes combiner must still drain its OWN op in the
        // pass it pays for — otherwise its submit window shows several
        // fences, breaking the audited Theorem 5.1 upper bound.
        let threads = 6;
        let pool = NvmPool::new(PmemConfig::with_capacity(128 << 20));
        let service = Durable::<CounterSpec>::create(
            pool.clone(),
            OnllConfig::named("cap")
                .max_processes(threads + 1)
                .log_capacity(1 << 13)
                .group_persist(2),
        )
        .unwrap()
        .service(threads)
        .unwrap();
        let audit = audit_concurrent_workload::<CounterSpec, _>(
            |_| ServiceClientAdapter::new(service.client().expect("client slot")),
            &pool,
            threads,
            100,
            WorkloadMix::update_only(),
            13,
            Workload::next_counter_op,
        );
        assert_eq!(audit.updates, (threads * 100) as u64);
        assert!(audit.satisfies_amortized_bounds(2), "{audit:?}");
        assert_eq!(audit.max_fences_per_update, 1, "{audit:?}");
    }

    #[test]
    fn amortized_bounds_reject_fenceless_runs() {
        let audit = FenceAudit {
            updates: 100,
            update_fences: 3, // 100 updates, batches of at most 8 → ≥13 fences
            ..FenceAudit::default()
        };
        assert!(!audit.satisfies_amortized_bounds(8));
        let audit = FenceAudit {
            updates: 100,
            update_fences: 13,
            ..FenceAudit::default()
        };
        assert!(audit.satisfies_amortized_bounds(8));
    }
}
