//! Plain-text tables for experiment and benchmark output.
//!
//! The benchmarks regenerate the paper's comparisons as small aligned tables on
//! stdout (who wins, by what factor), in addition to Criterion's own statistics.
//! [`telemetry_histogram_table`] and [`telemetry_counter_table`] render a
//! [`TelemetrySnapshot`] the same way, so examples and benches print latency
//! distributions without each reinventing the formatting.

use nvm_sim::TelemetrySnapshot;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match the header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for rows of displayable values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header_line.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Renders every histogram of a telemetry snapshot as one table row
/// (count, mean, p50/p90/p99 and max). Quantiles are upper bounds of the
/// log-scaled buckets, clamped to the observed maximum.
pub fn telemetry_histogram_table(title: &str, snapshot: &TelemetrySnapshot) -> Table {
    let mut table = Table::new(
        title,
        &["metric", "count", "mean", "p50", "p90", "p99", "max"],
    );
    for h in &snapshot.histograms {
        if h.count == 0 {
            continue;
        }
        table.row(&[
            h.name.clone(),
            h.count.to_string(),
            format!("{:.1}", h.mean()),
            h.p50().to_string(),
            h.p90().to_string(),
            h.p99().to_string(),
            h.max.to_string(),
        ]);
    }
    table
}

/// Renders the counters and gauges of a telemetry snapshot as one table.
pub fn telemetry_counter_table(title: &str, snapshot: &TelemetrySnapshot) -> Table {
    let mut table = Table::new(title, &["metric", "value"]);
    for c in &snapshot.counters {
        table.row(&[c.name.clone(), c.value.to_string()]);
    }
    for g in &snapshot.gauges {
        table.row(&[g.name.clone(), g.value.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["impl", "fences/update", "ops/s"]);
        t.row_display(&["onll", "1.00", "123456"]);
        t.row_display(&["wal-2-fence", "2.00", "9999"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("wal-2-fence"));
        // All data lines have equal length.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row_display(&["only-one"]);
    }

    #[test]
    fn telemetry_tables_render_snapshot_metrics() {
        let telemetry = nvm_sim::Telemetry::enabled();
        telemetry.counter("ckpt.checkpoints").add(3);
        let h = telemetry.histogram("sim.fence_ns");
        for v in [10u64, 100, 1000] {
            h.record(v);
        }
        let snap = telemetry.snapshot();
        let hist = telemetry_histogram_table("latency", &snap);
        assert_eq!(hist.len(), 1);
        let rendered = hist.render();
        assert!(rendered.contains("sim.fence_ns"));
        assert!(rendered.contains("p99"));
        let counters = telemetry_counter_table("counters", &snap);
        assert_eq!(counters.len(), 1);
        assert!(counters.render().contains("ckpt.checkpoints"));
    }
}
