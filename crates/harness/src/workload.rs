//! Deterministic workload generation.
//!
//! Benchmarks and stress tests need reproducible streams of operations with a
//! controlled update/read mix — the main knob in the paper's cost model, since only
//! updates pay a persistent fence. [`Workload`] produces such streams from a seed.

use durable_objects::{CounterOp, CounterRead, KvOp, KvRead, QueueOp, QueueRead, SetOp, SetRead};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An operation drawn from a workload: either an update or a read of the target
/// object type.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadOp<U, R> {
    /// An update operation.
    Update(U),
    /// A read-only operation.
    Read(R),
}

impl<U, R> WorkloadOp<U, R> {
    /// True if this is an update.
    pub fn is_update(&self) -> bool {
        matches!(self, WorkloadOp::Update(_))
    }
}

/// The update/read mix and key-space parameters of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMix {
    /// Fraction of operations that are updates, in `[0, 1]`.
    pub update_ratio: f64,
    /// Number of distinct keys touched (for keyed objects).
    pub key_space: u64,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        WorkloadMix {
            update_ratio: 0.5,
            key_space: 1024,
        }
    }
}

impl WorkloadMix {
    /// A workload of only updates.
    pub fn update_only() -> Self {
        WorkloadMix {
            update_ratio: 1.0,
            ..Default::default()
        }
    }

    /// A workload of only reads.
    pub fn read_only() -> Self {
        WorkloadMix {
            update_ratio: 0.0,
            ..Default::default()
        }
    }

    /// A workload with the given update percentage (0–100).
    pub fn with_update_percent(percent: u32) -> Self {
        WorkloadMix {
            update_ratio: f64::from(percent.min(100)) / 100.0,
            ..Default::default()
        }
    }
}

/// A seeded, deterministic operation generator.
pub struct Workload {
    rng: StdRng,
    mix: WorkloadMix,
}

impl Workload {
    /// Creates a workload with the given mix and seed.
    pub fn new(mix: WorkloadMix, seed: u64) -> Self {
        Workload {
            rng: StdRng::seed_from_u64(seed),
            mix,
        }
    }

    /// The configured mix.
    pub fn mix(&self) -> WorkloadMix {
        self.mix
    }

    fn is_update(&mut self) -> bool {
        self.rng.gen_bool(self.mix.update_ratio.clamp(0.0, 1.0))
    }

    /// Next counter operation.
    pub fn next_counter_op(&mut self) -> WorkloadOp<CounterOp, CounterRead> {
        if self.is_update() {
            WorkloadOp::Update(CounterOp::Add(self.rng.gen_range(-10..=10)))
        } else {
            WorkloadOp::Read(CounterRead::Get)
        }
    }

    /// Next key-value operation.
    pub fn next_kv_op(&mut self) -> WorkloadOp<KvOp, KvRead> {
        let key = format!("key-{}", self.rng.gen_range(0..self.mix.key_space));
        if self.is_update() {
            if self.rng.gen_bool(0.8) {
                let value = format!("value-{}", self.rng.gen_range(0..1_000_000u64));
                WorkloadOp::Update(KvOp::Put(key, value))
            } else {
                WorkloadOp::Update(KvOp::Delete(key))
            }
        } else {
            WorkloadOp::Read(KvRead::Get(key))
        }
    }

    /// Next set operation.
    pub fn next_set_op(&mut self) -> WorkloadOp<SetOp, SetRead> {
        let key = self.rng.gen_range(0..self.mix.key_space);
        if self.is_update() {
            if self.rng.gen_bool(0.5) {
                WorkloadOp::Update(SetOp::Add(key))
            } else {
                WorkloadOp::Update(SetOp::Remove(key))
            }
        } else {
            WorkloadOp::Read(SetRead::Contains(key))
        }
    }

    /// Next queue operation.
    pub fn next_queue_op(&mut self) -> WorkloadOp<QueueOp, QueueRead> {
        if self.is_update() {
            if self.rng.gen_bool(0.5) {
                WorkloadOp::Update(QueueOp::Enqueue(self.rng.gen()))
            } else {
                WorkloadOp::Update(QueueOp::Dequeue)
            }
        } else {
            WorkloadOp::Read(QueueRead::Front)
        }
    }

    /// Generates a vector of `n` counter operations.
    pub fn counter_ops(&mut self, n: usize) -> Vec<WorkloadOp<CounterOp, CounterRead>> {
        (0..n).map(|_| self.next_counter_op()).collect()
    }

    /// Generates a vector of `n` key-value operations.
    pub fn kv_ops(&mut self, n: usize) -> Vec<WorkloadOp<KvOp, KvRead>> {
        (0..n).map(|_| self.next_kv_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Workload::new(WorkloadMix::default(), 7);
        let mut b = Workload::new(WorkloadMix::default(), 7);
        assert_eq!(a.counter_ops(50), b.counter_ops(50));
        assert_eq!(a.kv_ops(50), b.kv_ops(50));
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = Workload::new(WorkloadMix::default(), 1);
        let mut b = Workload::new(WorkloadMix::default(), 2);
        assert_ne!(a.counter_ops(50), b.counter_ops(50));
    }

    #[test]
    fn update_only_and_read_only_mixes() {
        let mut w = Workload::new(WorkloadMix::update_only(), 3);
        assert!(w.counter_ops(100).iter().all(|op| op.is_update()));
        let mut w = Workload::new(WorkloadMix::read_only(), 3);
        assert!(w.counter_ops(100).iter().all(|op| !op.is_update()));
    }

    #[test]
    fn update_percent_is_roughly_respected() {
        let mut w = Workload::new(WorkloadMix::with_update_percent(20), 11);
        let ops = w.counter_ops(2000);
        let updates = ops.iter().filter(|o| o.is_update()).count();
        assert!((300..500).contains(&updates), "updates = {updates}");
    }

    #[test]
    fn kv_keys_stay_in_the_key_space() {
        let mix = WorkloadMix {
            update_ratio: 1.0,
            key_space: 4,
        };
        let mut w = Workload::new(mix, 5);
        for op in w.kv_ops(100) {
            let key = match op {
                WorkloadOp::Update(KvOp::Put(k, _)) => k,
                WorkloadOp::Update(KvOp::Delete(k)) => k,
                WorkloadOp::Read(KvRead::Get(k)) => k,
                _ => continue,
            };
            let n: u64 = key.strip_prefix("key-").unwrap().parse().unwrap();
            assert!(n < 4);
        }
    }
}
