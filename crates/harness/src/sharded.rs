//! Sharded workload driving and aggregate fence auditing.
//!
//! The Theorem 5.1 bounds are per *object*; a sharded object must satisfy them
//! in aggregate: every update costs at most one persistent fence across **all**
//! shard pools (exactly one on the owning shard, zero elsewhere), and reads
//! cost zero everywhere. [`audit_sharded_fence_bounds`] asserts this with an
//! [`AggregateWindow`] per operation, and [`run_sharded_kv_workload`] is the
//! multi-threaded throughput driver used by the scaling benchmarks.

use crate::fence_audit::FenceAudit;
use crate::workload::{Workload, WorkloadMix, WorkloadOp};
use durable_objects::KvSpec;
use nvm_sim::{TelemetrySnapshot, ThreadStatsSnapshot};
use onll::KeyedSpec;
use onll_shard::{AggregateWindow, ShardedDurable, ShardedHandle};
use std::time::{Duration, Instant};

/// Executes `ops` against a sharded handle, auditing the calling thread's
/// persistence events per operation across **all** shard pools.
pub fn audit_sharded_fence_bounds<S: KeyedSpec>(
    handle: &mut ShardedHandle<S>,
    pools: &[nvm_sim::NvmPool],
    ops: impl IntoIterator<Item = WorkloadOp<S::UpdateOp, S::ReadOp>>,
) -> FenceAudit {
    let mut audit = FenceAudit::default();
    for op in ops {
        let window = AggregateWindow::open(pools);
        match op {
            WorkloadOp::Update(u) => {
                handle.update(u);
                let d = window.close();
                audit.updates += 1;
                audit.update_fences += d.persistent_fences;
                audit.max_fences_per_update = audit.max_fences_per_update.max(d.persistent_fences);
            }
            WorkloadOp::Read(r) => {
                handle.read(&r);
                let d = window.close();
                audit.reads += 1;
                audit.read_fences += d.persistent_fences;
                audit.max_fences_per_read = audit.max_fences_per_read.max(d.persistent_fences);
                audit.read_flushes += d.flushes;
                audit.read_stores += d.stores;
            }
        }
    }
    audit
}

/// How updates are submitted by the workload driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitMode {
    /// One synchronous update per operation (one fence each).
    Individual,
    /// Fence-amortized group persist: buffer updates per shard and flush in
    /// groups of the object's configured `max_group_ops` — one *thread*
    /// batching its own operations.
    Grouped,
    /// Cross-thread combining commit ([`onll::DurableService`] via
    /// `ShardedDurable::service`): concurrent threads submit individual
    /// synchronous operations and per-shard combiners merge all pending ones
    /// into single fences — the amortization comes from concurrency, not from
    /// caller-side buffering, so every submit is durable when it returns.
    Combined,
}

/// Outcome of one multi-threaded workload run.
///
/// Carries everything needed to *reproduce* the run — most importantly the
/// workload seed: a failing randomized run that does not report its seed
/// cannot be re-run, so drivers must thread the seed through to here.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Worker threads driven.
    pub threads: usize,
    /// The workload seed the run was derived from (per-thread streams are
    /// derived from it deterministically). Re-running the same driver with
    /// this seed reproduces the identical operation streams.
    pub seed: u64,
    /// How updates were submitted.
    pub mode: SubmitMode,
    /// Name of the persistence backend the object's pools ran on.
    pub backend: &'static str,
    /// Total operations executed (updates + reads).
    pub total_ops: u64,
    /// Updates executed.
    pub updates: u64,
    /// Reads executed.
    pub reads: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Persistent fences issued during the run, summed over all shard pools.
    pub persistent_fences: u64,
    /// The full backend `FenceStats` delta of the run (stores, flushes,
    /// fences, write-backs — everything, not just the fence count), merged
    /// over all pools. Randomized-failure reproductions need the complete
    /// totals, and they must be carried uniformly by every driver on both
    /// backends instead of being dropped on the floor.
    pub fence_totals: ThreadStatsSnapshot,
    /// Telemetry rollup of the run's pools, when the pools carry an enabled
    /// sink (`None` otherwise).
    pub telemetry: Option<TelemetrySnapshot>,
}

/// Former name of [`RunReport`].
pub type ShardedRunSummary = RunReport;

impl RunReport {
    /// Aggregate operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Persistent fences per update (1.0 for individual submission, ~1/group
    /// for grouped submission).
    pub fn fences_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.persistent_fences as f64 / self.updates as f64
        }
    }
}

/// Drives `threads` worker threads, each executing `ops_per_thread` seeded
/// key-value operations through its own [`ShardedHandle`], and reports
/// aggregate throughput and fence counts.
///
/// The object's per-shard `max_processes` must be at least `threads`.
pub fn run_sharded_kv_workload(
    object: &ShardedDurable<KvSpec>,
    threads: usize,
    ops_per_thread: usize,
    mix: WorkloadMix,
    seed: u64,
    mode: SubmitMode,
) -> RunReport {
    // Combined mode drives the per-shard combining services instead of plain
    // per-thread handles; the service (and its per-shard combiner process
    // slots) lives for the duration of the run.
    let service =
        (mode == SubmitMode::Combined).then(|| object.service(threads).expect("combining service"));
    let before = onll_shard::merged_global_stats(object.pools());
    let start = Instant::now();
    let service = &service;
    let (updates, reads) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let object = object.clone();
                scope.spawn(move || {
                    let mut handle = None;
                    let mut client = None;
                    match mode {
                        SubmitMode::Combined => {
                            let svc = service.as_ref().expect("service exists in Combined mode");
                            client = Some(svc.client().expect("a free client slot per worker"));
                        }
                        _ => handle = Some(object.register().expect("a free slot per worker")),
                    }
                    let mut workload =
                        Workload::new(mix, seed.wrapping_add(t as u64).wrapping_mul(2654435761));
                    let mut updates = 0u64;
                    let mut reads = 0u64;
                    for op in workload.kv_ops(ops_per_thread) {
                        match op {
                            WorkloadOp::Update(u) => {
                                updates += 1;
                                match mode {
                                    SubmitMode::Individual => {
                                        handle.as_mut().unwrap().update(u);
                                    }
                                    SubmitMode::Grouped => {
                                        handle
                                            .as_mut()
                                            .unwrap()
                                            .buffer_update(u)
                                            .expect("buffered update");
                                    }
                                    SubmitMode::Combined => {
                                        client.as_mut().unwrap().submit(u).expect("submit");
                                    }
                                }
                            }
                            WorkloadOp::Read(r) => {
                                reads += 1;
                                match mode {
                                    SubmitMode::Combined => {
                                        client.as_mut().unwrap().read(&r);
                                    }
                                    _ => {
                                        handle.as_mut().unwrap().read(&r);
                                    }
                                }
                            }
                        }
                    }
                    if mode == SubmitMode::Grouped {
                        handle.as_mut().unwrap().flush().expect("final flush");
                    }
                    (updates, reads)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker thread panicked"))
            .fold((0, 0), |(u, r), (wu, wr)| (u + wu, r + wr))
    });
    let elapsed = start.elapsed();
    let after = onll_shard::merged_global_stats(object.pools());
    let delta = after.delta(&before);
    RunReport {
        threads,
        seed,
        mode,
        backend: object.pools().first().map_or("none", |p| p.backend_name()),
        total_ops: updates + reads,
        updates,
        reads,
        elapsed,
        persistent_fences: delta.persistent_fences,
        fence_totals: delta,
        telemetry: onll_shard::merged_telemetry(object.pools()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::PmemConfig;
    use onll::OnllConfig;
    use onll_shard::{HashRouter, ShardConfig};
    use std::sync::Arc;

    fn sharded_kv(shards: usize, processes: usize, group: usize) -> ShardedDurable<KvSpec> {
        let config = ShardConfig::named("kv")
            .shards(shards)
            .base(
                OnllConfig::default()
                    .max_processes(processes)
                    .log_capacity(4096)
                    .group_persist(group),
            )
            .pmem(PmemConfig::with_capacity(256 << 20).apply_pending_at_crash(0.0));
        ShardedDurable::<KvSpec>::create(config, Arc::new(HashRouter::new(shards)))
            .expect("create sharded kv")
    }

    #[test]
    fn sharded_updates_satisfy_theorem_bounds_in_aggregate() {
        let object = sharded_kv(4, 1, 1);
        let mut handle = object.register().unwrap();
        let mut workload = Workload::new(WorkloadMix::with_update_percent(50), 17);
        let audit =
            audit_sharded_fence_bounds::<KvSpec>(&mut handle, object.pools(), workload.kv_ops(400));
        assert!(audit.satisfies_onll_bounds(), "{audit:?}");
        assert_eq!(audit.max_fences_per_update, 1);
        assert_eq!(audit.fences_per_update(), 1.0);
        assert_eq!(audit.updates + audit.reads, 400);
        object.check_invariants().unwrap();
    }

    #[test]
    fn multi_threaded_driver_counts_every_operation() {
        let object = sharded_kv(2, 3, 1);
        let summary = run_sharded_kv_workload(
            &object,
            3,
            200,
            WorkloadMix::with_update_percent(50),
            7,
            SubmitMode::Individual,
        );
        assert_eq!(summary.threads, 3);
        // The report must reproduce the run: seed, mode and backend are
        // part of the output, not just the input.
        assert_eq!(summary.seed, 7);
        assert_eq!(summary.mode, SubmitMode::Individual);
        assert_eq!(summary.backend, "sim");
        assert_eq!(summary.total_ops, 600);
        assert_eq!(summary.updates + summary.reads, 600);
        // Individual submission: exactly one fence per update.
        assert_eq!(summary.persistent_fences, summary.updates);
        object.check_invariants().unwrap();
    }

    #[test]
    fn report_carries_full_fence_totals_and_telemetry() {
        use nvm_sim::Telemetry;
        let telemetry = Telemetry::enabled();
        let config = ShardConfig::named("kv")
            .shards(2)
            .base(OnllConfig::default().max_processes(2).log_capacity(4096))
            .pmem(
                PmemConfig::with_capacity(64 << 20)
                    .apply_pending_at_crash(0.0)
                    .telemetry(telemetry.clone()),
            );
        let object = ShardedDurable::<KvSpec>::create(config, Arc::new(HashRouter::new(2)))
            .expect("create sharded kv");
        let summary = run_sharded_kv_workload(
            &object,
            2,
            100,
            WorkloadMix::with_update_percent(50),
            11,
            SubmitMode::Individual,
        );
        // Satellite fix: the *full* backend totals ride along, not just the
        // fence count.
        assert_eq!(
            summary.fence_totals.persistent_fences,
            summary.persistent_fences
        );
        assert!(summary.fence_totals.stores > 0);
        assert!(summary.fence_totals.flushes > 0);
        // And the telemetry rollup is attached when the sink is enabled.
        let snap = summary.telemetry.as_ref().expect("telemetry enabled");
        assert_eq!(
            snap.histogram("phase.update_ns").unwrap().count,
            summary.updates
        );
        // Fence latencies cover at least the run's fences (creation persists
        // its own metadata before the run, so the sink may hold a few more).
        assert!(snap.histogram("sim.fence_ns").unwrap().count >= summary.persistent_fences);
    }

    #[test]
    fn grouped_submission_amortizes_fences() {
        let object = sharded_kv(2, 2, 8);
        let summary = run_sharded_kv_workload(
            &object,
            2,
            400,
            WorkloadMix::update_only(),
            23,
            SubmitMode::Grouped,
        );
        assert_eq!(summary.updates, 800);
        assert!(
            summary.persistent_fences < summary.updates / 2,
            "grouping should amortize fences: {} fences for {} updates",
            summary.persistent_fences,
            summary.updates
        );
        assert!(summary.fences_per_update() < 0.5);
        object.check_invariants().unwrap();
    }

    #[test]
    fn combined_submission_amortizes_fences_across_threads() {
        // 4 worker threads share per-shard combiners: every submit is durable
        // when it returns (unlike Grouped, which buffers caller-side), yet the
        // aggregate fence count falls well below one per update.
        let threads = 4;
        let object = sharded_kv(2, threads + 1, threads);
        let summary = run_sharded_kv_workload(
            &object,
            threads,
            150,
            WorkloadMix::update_only(),
            31,
            SubmitMode::Combined,
        );
        assert_eq!(summary.mode, SubmitMode::Combined);
        assert_eq!(summary.updates, (threads * 150) as u64);
        assert!(
            summary.persistent_fences < summary.updates,
            "combining should amortize fences: {} fences for {} updates",
            summary.persistent_fences,
            summary.updates
        );
        object.check_invariants().unwrap();
    }
}
