//! Crash-injection experiments (durable linearizability under adversarial crashes).
//!
//! A [`CrashExperiment`] runs a concurrent update workload against an ONLL object,
//! records the history, injects a full-system crash after an adversarially chosen
//! number of persistence events, recovers the object, and checks Definition 5.6:
//! every completed operation is present, the recovered set is a consistent cut, the
//! recovered order respects real time, and replaying it reproduces the observed
//! return values. It also (for small histories) checks plain linearizability of the
//! pre-crash history.

use crate::history::History;
use crate::linearizability::{
    check_durable_linearizability, check_linearizability, DurabilityViolation,
};
use durable_objects::{CounterOp, CounterRead, CounterSpec};
use nvm_sim::{
    BackendSpec, CrashTrigger, NvmPool, PmemConfig, Telemetry, TelemetrySnapshot,
    ThreadStatsSnapshot,
};
use onll::{Durable, OnllConfig, OpId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one crash experiment over a durable counter.
///
/// Backend-generic: the experiment provisions its pool on
/// [`CrashExperiment::backend`], so the same adversarial crash-injection
/// machinery validates durable linearizability on the simulator *and* on the
/// file backend (where a simulated power loss drops everything that was not
/// `fsync`ed).
#[derive(Debug, Clone)]
pub struct CrashExperiment {
    /// Number of concurrent processes.
    pub threads: usize,
    /// Updates attempted per process (the crash usually interrupts them).
    pub ops_per_thread: usize,
    /// The crash fires after this many further persistence events (stores, flushes
    /// or fences across all threads) once the workload starts.
    pub crash_after_events: u64,
    /// Probability that a flush pending at crash time was nevertheless written back.
    pub apply_pending_probability: f64,
    /// Workload seed.
    pub seed: u64,
    /// Run the (exponential) linearizability checker on the pre-crash history when
    /// it is small enough.
    pub check_linearizability_limit: usize,
    /// Persistence backend the experiment's pool runs on. File-backed pools
    /// are created under the spec's directory (one file per sweep point,
    /// named from the seed and crash point) and left in place — the caller
    /// owns the directory and its cleanup.
    pub backend: BackendSpec,
    /// Telemetry sink for the experiment's pool. Disabled by default; pass
    /// [`Telemetry::enabled`] to collect fence/phase latency distributions
    /// alongside the consistency verdicts.
    pub telemetry: Telemetry,
}

impl Default for CrashExperiment {
    fn default() -> Self {
        CrashExperiment {
            threads: 3,
            ops_per_thread: 20,
            crash_after_events: 200,
            apply_pending_probability: 0.5,
            seed: 42,
            check_linearizability_limit: 14,
            backend: BackendSpec::Sim,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Outcome of a crash experiment.
#[derive(Debug)]
pub struct CrashOutcome {
    /// Updates whose response was observed before the crash.
    pub completed_updates: usize,
    /// Updates the recovery reinstated.
    pub recovered_updates: usize,
    /// Durable-linearizability verdict (Definition 5.6).
    pub durability: Result<(), DurabilityViolation>,
    /// Plain linearizability verdict of the pre-crash history (`None` if the
    /// history was too large to check exhaustively).
    pub linearizability: Option<Result<(), String>>,
    /// Counter value read after recovery.
    pub recovered_value: i64,
    /// Whether the crash actually fired during the workload (it may not, if the
    /// trigger exceeds the workload's total events).
    pub crashed: bool,
    /// Full backend totals (stores, flushes, fences) for the whole experiment,
    /// including recovery — reproducing a randomized failure needs the complete
    /// cost picture, on either backend, not only the consistency verdicts.
    pub fence_totals: ThreadStatsSnapshot,
    /// Telemetry rollup when the experiment ran with an enabled sink.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl CrashOutcome {
    /// True if no violation of durable linearizability (or linearizability) was
    /// found.
    pub fn is_consistent(&self) -> bool {
        self.durability.is_ok() && self.linearizability.as_ref().is_none_or(|r| r.is_ok())
    }
}

impl CrashExperiment {
    /// Runs the experiment and returns its outcome.
    pub fn run(&self) -> CrashOutcome {
        let pmem = PmemConfig::with_capacity(64 << 20)
            .apply_pending_at_crash(self.apply_pending_probability)
            .crash_seed(self.seed ^ 0xBADC0FFE)
            .telemetry(self.telemetry.clone());
        // Distinct pool files per sweep point: sweeps vary crash_after_events,
        // and a stale pool from an earlier point must never be recovered.
        let label = format!("crash-counter-{}-{}", self.seed, self.crash_after_events);
        let pool =
            NvmPool::provision(&self.backend, pmem, &label).expect("provision experiment pool");
        self.run_in(pool)
    }

    /// Runs the experiment against a caller-provided pool (any backend).
    fn run_in(&self, pool: NvmPool) -> CrashOutcome {
        let cfg = OnllConfig::named("crash-counter")
            .max_processes(self.threads.max(1))
            .log_capacity(self.threads * self.ops_per_thread + 16);
        let object = Durable::<CounterSpec>::create(pool.clone(), cfg.clone()).unwrap();
        let history: History<CounterOp, CounterRead, i64> = History::new();

        pool.arm_crash(CrashTrigger::AfterEvents(self.crash_after_events));

        let mut joins = Vec::new();
        for t in 0..self.threads {
            let object = object.clone();
            let history = history.clone();
            let pool = pool.clone();
            let seed = self.seed;
            let ops = self.ops_per_thread;
            joins.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 7919));
                let mut handle = object.register().unwrap();
                for _ in 0..ops {
                    if pool.is_frozen() {
                        break;
                    }
                    let op = CounterOp::Add(rng.gen_range(1..=5));
                    let op_id = handle.peek_next_op_id();
                    let pending = history.invoke_update(handle.pid() as u32, Some(op_id), op);
                    // An update whose publish fence hit the (now frozen) crashed
                    // machine reports an error instead of a value: the operation
                    // stays invoked-but-unanswered in the history, exactly like a
                    // response observed after the freeze.
                    let value = match handle.try_update(op) {
                        Ok(value) => value,
                        Err(_) => break,
                    };
                    // Only record the response if the system had not crashed by the
                    // time the operation finished: a response "after the crash"
                    // never happened from the object's point of view.
                    if pool.is_frozen() {
                        break;
                    }
                    history.respond(pending, value);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }

        let crashed = pool.is_frozen();
        // Power-cycle: if the armed crash already fired, this "crashes" an already
        // dark machine (harmless — the cache is already gone) and restarts it;
        // otherwise it injects the crash now.
        let token = pool.crash();
        pool.disarm_crash();
        pool.restart(token);

        drop(object);
        let (recovered, report) = Durable::<CounterSpec>::recover(pool.clone(), cfg).unwrap();
        let recovered_ids: Vec<OpId> = report.recovered_ops.iter().map(|(_, id)| *id).collect();
        let pre_crash = history.snapshot();
        let completed_updates = pre_crash.iter().filter(|r| r.is_complete()).count();
        let durability = check_durable_linearizability::<CounterSpec>(&pre_crash, &recovered_ids);
        let linearizability = if pre_crash.len() <= self.check_linearizability_limit {
            Some(check_linearizability::<CounterSpec>(&pre_crash))
        } else {
            None
        };
        let recovered_value = recovered.read_latest(&CounterRead::Get);
        let telemetry = pool.telemetry();
        CrashOutcome {
            completed_updates,
            recovered_updates: recovered_ids.len(),
            durability,
            linearizability,
            recovered_value,
            crashed,
            fence_totals: pool.stats().snapshot().global,
            telemetry: telemetry.is_enabled().then(|| telemetry.snapshot()),
        }
    }

    /// Runs the experiment for a sweep of crash points, returning all outcomes.
    /// Every outcome must be consistent for the sweep to pass.
    pub fn sweep(&self, crash_points: impl IntoIterator<Item = u64>) -> Vec<CrashOutcome> {
        crash_points
            .into_iter()
            .map(|events| {
                CrashExperiment {
                    crash_after_events: events,
                    seed: self.seed.wrapping_add(events),
                    ..self.clone()
                }
                .run()
            })
            .collect()
    }
}

/// Convenience: a quick consistency sweep used by tests and the crash example.
pub fn quick_crash_sweep(points: usize) -> Vec<CrashOutcome> {
    let exp = CrashExperiment::default();
    let sweep_points: Vec<u64> = (0..points).map(|i| 40 + 37 * i as u64).collect();
    exp.sweep(sweep_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::scratch_dir;

    #[test]
    fn single_thread_crash_is_consistent() {
        let outcome = CrashExperiment {
            threads: 1,
            ops_per_thread: 10,
            crash_after_events: 17,
            ..Default::default()
        }
        .run();
        assert!(outcome.crashed);
        assert!(outcome.is_consistent(), "{outcome:?}");
        assert!(outcome.recovered_updates >= outcome.completed_updates);
        // The backend totals ride along with the verdicts.
        assert!(outcome.fence_totals.persistent_fences > 0);
        assert!(outcome.fence_totals.stores > 0);
        assert!(outcome.telemetry.is_none());
    }

    #[test]
    fn telemetry_enabled_experiment_reports_fence_latencies() {
        let outcome = CrashExperiment {
            threads: 1,
            ops_per_thread: 10,
            crash_after_events: 1_000_000,
            telemetry: Telemetry::enabled(),
            ..Default::default()
        }
        .run();
        assert!(outcome.is_consistent(), "{outcome:?}");
        let snap = outcome.telemetry.expect("telemetry enabled");
        let fences = snap.histogram("sim.fence_ns").expect("sim fence histogram");
        assert!(fences.count >= outcome.fence_totals.persistent_fences);
    }

    #[test]
    fn concurrent_crash_is_consistent() {
        let outcome = CrashExperiment {
            threads: 3,
            ops_per_thread: 8,
            crash_after_events: 50,
            check_linearizability_limit: 0, // concurrent history; skip the exponential check
            ..Default::default()
        }
        .run();
        assert!(outcome.is_consistent(), "{outcome:?}");
    }

    #[test]
    fn sweep_of_crash_points_is_consistent() {
        for (i, outcome) in quick_crash_sweep(6).iter().enumerate() {
            assert!(outcome.is_consistent(), "sweep point {i}: {outcome:?}");
        }
    }

    #[test]
    fn file_backend_crash_sweep_is_consistent() {
        // The same adversarial machinery, durability now provided by fsync:
        // a simulated power loss drops everything that was not fenced.
        let dir = scratch_dir("crash-file-sweep").unwrap();
        let exp = CrashExperiment {
            threads: 2,
            ops_per_thread: 8,
            apply_pending_probability: 0.0,
            check_linearizability_limit: 0,
            backend: BackendSpec::file(&dir),
            ..Default::default()
        };
        for (i, outcome) in exp.sweep([30, 77, 124]).iter().enumerate() {
            assert!(outcome.is_consistent(), "file sweep point {i}: {outcome:?}");
            // Totals are carried uniformly on the file backend too.
            assert!(outcome.fence_totals.stores > 0, "file sweep point {i}");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn crash_after_workload_finishes_recovers_everything() {
        let outcome = CrashExperiment {
            threads: 2,
            ops_per_thread: 5,
            crash_after_events: 1_000_000,
            check_linearizability_limit: 0,
            ..Default::default()
        }
        .run();
        assert!(outcome.is_consistent(), "{outcome:?}");
        assert_eq!(outcome.completed_updates, 10);
        assert_eq!(outcome.recovered_updates, 10);
    }
}
