//! Linearizability and durable-linearizability checking.
//!
//! * [`check_linearizability`] is a Wing&Gong-style exhaustive checker: it searches
//!   for a legal sequential witness of a recorded concurrent history against the
//!   object's [`SequentialSpec`] (Definition 5.4). It is exponential in the worst
//!   case and intended for the small histories produced by the crash tests.
//! * [`check_durable_linearizability`] checks Definition 5.6 across a crash: the
//!   recovered operation set must contain every operation that completed before the
//!   crash, must be a consistent cut of the pre-crash history, must respect
//!   real-time order, and replaying it must reproduce the return values observed
//!   before the crash.

use crate::history::{EventKind, OpRecord};
use onll::{OpId, SequentialSpec};
use std::collections::HashSet;

/// Checks that the recorded history is linearizable with respect to `S`.
///
/// Incomplete operations (no response) may or may not be included in the witness,
/// exactly as Definition 5.4 allows. Returns `Ok(())` if a witness exists,
/// otherwise a human-readable explanation.
pub fn check_linearizability<S>(
    records: &[OpRecord<S::UpdateOp, S::ReadOp, S::Value>],
) -> Result<(), String>
where
    S: SequentialSpec,
{
    let completed: Vec<usize> = (0..records.len())
        .filter(|&i| records[i].is_complete())
        .collect();
    let pending_updates: Vec<usize> = (0..records.len())
        .filter(|&i| !records[i].is_complete() && records[i].is_update())
        .collect();

    fn precedes<U, R, V>(a: &OpRecord<U, R, V>, b: &OpRecord<U, R, V>) -> bool {
        a.precedes(b)
    }

    struct Search<'a, S: SequentialSpec> {
        records: &'a [OpRecord<S::UpdateOp, S::ReadOp, S::Value>],
        completed: &'a [usize],
        pending_updates: &'a [usize],
    }

    impl<S: SequentialSpec> Search<'_, S> {
        fn run(&self, linearized: &mut HashSet<usize>, applied_ops: &[S::UpdateOp]) -> bool {
            if self.completed.iter().all(|i| linearized.contains(i)) {
                return true;
            }
            // Candidates: completed ops all of whose completed predecessors are
            // linearized, plus pending updates (which can linearize at any time).
            let candidates: Vec<usize> = self
                .completed
                .iter()
                .chain(self.pending_updates.iter())
                .copied()
                .filter(|&i| !linearized.contains(&i))
                .filter(|&i| {
                    self.completed
                        .iter()
                        .filter(|&&j| !linearized.contains(&j))
                        .all(|&j| j == i || !precedes(&self.records[j], &self.records[i]))
                })
                .collect();
            for i in candidates {
                let record = &self.records[i];
                // Rebuild the state by replaying applied_ops plus this op — the spec
                // is not required to be Clone, so we replay instead of cloning.
                let (ok, next_ops) = match &record.kind {
                    EventKind::Update { op, value } => {
                        let mut replay = S::initialize();
                        for o in applied_ops.iter() {
                            replay.apply(o);
                        }
                        let v = replay.apply(op);
                        let ok = match value {
                            Some(expected) => &v == expected,
                            None => true,
                        };
                        let mut next = applied_ops.to_vec();
                        next.push(op.clone());
                        (ok, Some(next))
                    }
                    EventKind::Read { op, value } => {
                        let mut replay = S::initialize();
                        for o in applied_ops.iter() {
                            replay.apply(o);
                        }
                        let v = replay.read(op);
                        let ok = match value {
                            Some(expected) => &v == expected,
                            None => true,
                        };
                        (ok, None)
                    }
                };
                if !ok {
                    continue;
                }
                linearized.insert(i);
                let ops_for_recursion = next_ops.unwrap_or_else(|| applied_ops.to_vec());
                if self.run(linearized, &ops_for_recursion) {
                    return true;
                }
                linearized.remove(&i);
            }
            false
        }
    }

    let search = Search::<S> {
        records,
        completed: &completed,
        pending_updates: &pending_updates,
    };
    let mut linearized = HashSet::new();
    if search.run(&mut linearized, &[]) {
        Ok(())
    } else {
        Err(format!(
            "no linearization found for history with {} operations ({} completed)",
            records.len(),
            completed.len()
        ))
    }
}

/// A violation of durable linearizability detected by
/// [`check_durable_linearizability`].
#[derive(Debug, Clone, PartialEq)]
pub enum DurabilityViolation {
    /// An update completed before the crash but is missing from the recovered state.
    CompletedOpLost(OpId),
    /// The recovery reported an operation that was never invoked.
    PhantomOp(OpId),
    /// The recovered set is not a consistent cut: `missing` precedes `because_of`
    /// (which was recovered) but was not itself recovered.
    InconsistentCut {
        /// The operation that should have been recovered.
        missing: OpId,
        /// The recovered operation that depends on it.
        because_of: OpId,
    },
    /// Two recovered operations appear in an order contradicting real time.
    OrderViolation {
        /// The operation that responded first.
        first: OpId,
        /// The operation invoked after `first` responded, yet recovered before it.
        second: OpId,
    },
    /// Replaying the recovered history gives a different return value than the one
    /// observed before the crash.
    ValueMismatch {
        /// The operation whose value differs.
        op_id: OpId,
    },
}

/// Checks durable linearizability (Definition 5.6) of a crash:
///
/// * `pre_crash` — the history recorded up to the crash (updates tagged with their
///   [`OpId`]s; operations without a response are those interrupted by the crash);
/// * `recovered` — the operation identities reported by recovery, in linearization
///   order (e.g. from [`onll::RecoveryReport::recovered_ops`]).
pub fn check_durable_linearizability<S>(
    pre_crash: &[OpRecord<S::UpdateOp, S::ReadOp, S::Value>],
    recovered: &[OpId],
) -> Result<(), DurabilityViolation>
where
    S: SequentialSpec,
{
    let updates: Vec<&OpRecord<S::UpdateOp, S::ReadOp, S::Value>> =
        pre_crash.iter().filter(|r| r.is_update()).collect();
    let find = |id: OpId| updates.iter().find(|r| r.op_id == Some(id)).copied();
    let recovered_set: HashSet<OpId> = recovered.iter().copied().collect();

    // 1. Every completed update must be recovered.
    for r in &updates {
        if r.is_complete() {
            let id = r.op_id.expect("completed updates carry an op id");
            if !recovered_set.contains(&id) {
                return Err(DurabilityViolation::CompletedOpLost(id));
            }
        }
    }
    // 2. No phantom operations.
    for id in recovered {
        if find(*id).is_none() {
            return Err(DurabilityViolation::PhantomOp(*id));
        }
    }
    // 3. Consistent cut: predecessors of recovered operations are recovered.
    for id in recovered {
        let r2 = find(*id).unwrap();
        for r1 in &updates {
            if r1.precedes(r2) {
                let id1 = r1.op_id.expect("responded updates carry an op id");
                if !recovered_set.contains(&id1) {
                    return Err(DurabilityViolation::InconsistentCut {
                        missing: id1,
                        because_of: *id,
                    });
                }
            }
        }
    }
    // 4. Real-time order among recovered operations is preserved.
    for (i, id_a) in recovered.iter().enumerate() {
        for id_b in recovered.iter().skip(i + 1) {
            let a = find(*id_a).unwrap();
            let b = find(*id_b).unwrap();
            if b.precedes(a) {
                return Err(DurabilityViolation::OrderViolation {
                    first: *id_b,
                    second: *id_a,
                });
            }
        }
    }
    // 5. Replaying the recovered order reproduces the observed return values.
    let mut state = S::initialize();
    for id in recovered {
        let r = find(*id).unwrap();
        if let EventKind::Update { op, value } = &r.kind {
            let v = state.apply(op);
            if let Some(expected) = value {
                if &v != expected {
                    return Err(DurabilityViolation::ValueMismatch { op_id: *id });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use durable_objects::{CounterOp, CounterRead, CounterSpec};

    type H = History<CounterOp, CounterRead, i64>;

    #[test]
    fn sequential_history_is_linearizable() {
        let h: H = History::new();
        let a = h.invoke_update(0, Some(OpId::new(0, 1)), CounterOp::Add(5));
        h.respond(a, 5);
        let b = h.invoke_read(0, CounterRead::Get);
        h.respond(b, 5);
        assert!(check_linearizability::<CounterSpec>(&h.snapshot()).is_ok());
    }

    #[test]
    fn wrong_read_value_is_rejected() {
        let h: H = History::new();
        let a = h.invoke_update(0, Some(OpId::new(0, 1)), CounterOp::Add(5));
        h.respond(a, 5);
        let b = h.invoke_read(0, CounterRead::Get);
        h.respond(b, 99);
        assert!(check_linearizability::<CounterSpec>(&h.snapshot()).is_err());
    }

    #[test]
    fn concurrent_reads_may_see_old_or_new_value() {
        // An update concurrent with a read: the read may return 0 or 5.
        for observed in [0i64, 5] {
            let h: H = History::new();
            let u = h.invoke_update(0, Some(OpId::new(0, 1)), CounterOp::Add(5));
            let r = h.invoke_read(1, CounterRead::Get);
            h.respond(r, observed);
            h.respond(u, 5);
            assert!(
                check_linearizability::<CounterSpec>(&h.snapshot()).is_ok(),
                "read observing {observed} must be accepted"
            );
        }
        // But a value that was never the counter's state is rejected.
        let h: H = History::new();
        let u = h.invoke_update(0, Some(OpId::new(0, 1)), CounterOp::Add(5));
        let r = h.invoke_read(1, CounterRead::Get);
        h.respond(r, 3);
        h.respond(u, 5);
        assert!(check_linearizability::<CounterSpec>(&h.snapshot()).is_err());
    }

    #[test]
    fn read_after_update_response_must_see_it() {
        let h: H = History::new();
        let u = h.invoke_update(0, Some(OpId::new(0, 1)), CounterOp::Add(5));
        h.respond(u, 5);
        let r = h.invoke_read(1, CounterRead::Get);
        h.respond(r, 0);
        assert!(check_linearizability::<CounterSpec>(&h.snapshot()).is_err());
    }

    #[test]
    fn pending_update_may_be_observed_by_a_read() {
        let h: H = History::new();
        let _u = h.invoke_update(0, Some(OpId::new(0, 1)), CounterOp::Add(7));
        // The update never responds (e.g. crash), but a concurrent read saw it.
        let r = h.invoke_read(1, CounterRead::Get);
        h.respond(r, 7);
        assert!(check_linearizability::<CounterSpec>(&h.snapshot()).is_ok());
    }

    fn record(
        pid: u32,
        seq: u64,
        add: i64,
        invoked_at: u64,
        responded_at: Option<u64>,
        value: Option<i64>,
    ) -> OpRecord<CounterOp, CounterRead, i64> {
        OpRecord {
            pid,
            op_id: Some(OpId::new(pid, seq)),
            invoked_at,
            responded_at,
            kind: EventKind::Update {
                op: CounterOp::Add(add),
                value,
            },
        }
    }

    #[test]
    fn durable_check_accepts_a_correct_recovery() {
        let pre = vec![
            record(0, 1, 1, 1, Some(2), Some(1)),
            record(1, 1, 2, 3, Some(4), Some(3)),
            record(0, 2, 4, 5, None, None), // in flight at the crash, not recovered
        ];
        let recovered = vec![OpId::new(0, 1), OpId::new(1, 1)];
        assert!(check_durable_linearizability::<CounterSpec>(&pre, &recovered).is_ok());
    }

    #[test]
    fn durable_check_accepts_recovered_in_flight_op() {
        let pre = vec![
            record(0, 1, 1, 1, Some(2), Some(1)),
            record(1, 1, 2, 3, None, None), // in flight but persisted before crash
        ];
        let recovered = vec![OpId::new(0, 1), OpId::new(1, 1)];
        assert!(check_durable_linearizability::<CounterSpec>(&pre, &recovered).is_ok());
    }

    #[test]
    fn losing_a_completed_op_is_a_violation() {
        let pre = vec![record(0, 1, 1, 1, Some(2), Some(1))];
        let err = check_durable_linearizability::<CounterSpec>(&pre, &[]).unwrap_err();
        assert_eq!(err, DurabilityViolation::CompletedOpLost(OpId::new(0, 1)));
    }

    #[test]
    fn phantom_op_is_a_violation() {
        let pre = vec![record(0, 1, 1, 1, Some(2), Some(1))];
        let err =
            check_durable_linearizability::<CounterSpec>(&pre, &[OpId::new(0, 1), OpId::new(5, 5)])
                .unwrap_err();
        assert_eq!(err, DurabilityViolation::PhantomOp(OpId::new(5, 5)));
    }

    #[test]
    fn inconsistent_cut_is_a_violation() {
        // op (0,1) completed before (1,1) was invoked; recovering only (1,1) breaks
        // the cut (and also loses a completed op — make (0,1) pending to isolate the
        // cut check).
        let pre = vec![
            record(0, 1, 1, 1, Some(2), Some(1)),
            record(1, 1, 2, 5, None, None),
        ];
        let err =
            check_durable_linearizability::<CounterSpec>(&pre, &[OpId::new(1, 1)]).unwrap_err();
        // (0,1) is completed, so the checker reports the loss first — both reports
        // describe the same underlying violation.
        assert!(matches!(
            err,
            DurabilityViolation::CompletedOpLost(_) | DurabilityViolation::InconsistentCut { .. }
        ));
    }

    #[test]
    fn order_violation_is_detected() {
        let pre = vec![
            record(0, 1, 1, 1, Some(2), Some(1)),
            record(1, 1, 2, 5, Some(6), Some(3)),
        ];
        // Recovery reports them in the wrong order.
        let err =
            check_durable_linearizability::<CounterSpec>(&pre, &[OpId::new(1, 1), OpId::new(0, 1)])
                .unwrap_err();
        assert_eq!(
            err,
            DurabilityViolation::OrderViolation {
                first: OpId::new(0, 1),
                second: OpId::new(1, 1),
            }
        );
    }

    #[test]
    fn value_mismatch_is_detected() {
        // The op returned 5 before the crash, but replaying the recovered history
        // yields 1: the recovery contradicts an observed response.
        let pre = vec![record(0, 1, 1, 1, Some(2), Some(5))];
        let err =
            check_durable_linearizability::<CounterSpec>(&pre, &[OpId::new(0, 1)]).unwrap_err();
        assert_eq!(
            err,
            DurabilityViolation::ValueMismatch {
                op_id: OpId::new(0, 1)
            }
        );
    }
}
