//! Merged recovery reporting for sharded objects.

use onll::RecoveryReport;

/// Outcome of a parallel sharded recovery: one [`RecoveryReport`] per shard, in
/// shard order, plus merged convenience accessors.
///
/// Shards compact independently, so their checkpoint watermarks and epochs
/// generally differ; [`ShardRecoveryReport::checkpoint_indices`] and
/// [`ShardRecoveryReport::checkpoint_epochs`] surface the per-shard progress so
/// operators can see how far each shard's compaction had advanced before the
/// crash. Recovery itself validates that every shard's persisted geometry
/// matches the facade's template and fails loudly on a mismatch instead of
/// silently replaying against the wrong layout.
#[derive(Debug, Clone)]
pub struct ShardRecoveryReport {
    /// Per-shard reports, indexed by shard.
    pub per_shard: Vec<RecoveryReport>,
}

impl ShardRecoveryReport {
    /// Number of shards recovered.
    pub fn shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Total operations replayed from logs across all shards.
    pub fn total_replayed(&self) -> usize {
        self.per_shard.iter().map(|r| r.replayed_ops()).sum()
    }

    /// Each shard's durable execution index, in shard order.
    pub fn durable_indices(&self) -> Vec<u64> {
        self.per_shard.iter().map(|r| r.durable_index).collect()
    }

    /// Each shard's checkpoint watermark (0 if the shard recovered without a
    /// checkpoint), in shard order.
    pub fn checkpoint_indices(&self) -> Vec<u64> {
        self.per_shard.iter().map(|r| r.checkpoint_index).collect()
    }

    /// Each shard's checkpoint epoch (0 if the shard recovered without a
    /// checkpoint), in shard order.
    pub fn checkpoint_epochs(&self) -> Vec<u64> {
        self.per_shard.iter().map(|r| r.checkpoint_epoch).collect()
    }

    /// Total durable operations across all shards (sum of per-shard durable
    /// indices above their checkpoints).
    pub fn total_durable(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|r| r.durable_index - r.checkpoint_index)
            .sum()
    }

    /// Per-shard internal consistency: a shard whose durable index is below its
    /// own checkpoint watermark would mean the logs were truncated above the
    /// durable tail — state loss that must not be reported as a successful
    /// recovery. Returns the offending `(shard, checkpoint_index,
    /// durable_index)` if any.
    pub fn watermark_violation(&self) -> Option<(usize, u64, u64)> {
        self.per_shard.iter().enumerate().find_map(|(i, r)| {
            (r.durable_index < r.checkpoint_index).then_some((
                i,
                r.checkpoint_index,
                r.durable_index,
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onll::OpId;

    fn report(checkpoint: u64, epoch: u64, durable: u64, replayed: usize) -> RecoveryReport {
        RecoveryReport {
            checkpoint_index: checkpoint,
            checkpoint_epoch: epoch,
            durable_index: durable,
            recovered_ops: (0..replayed)
                .map(|i| (checkpoint + 1 + i as u64, OpId::new(0, i as u64 + 1)))
                .collect(),
        }
    }

    #[test]
    fn merged_accessors_aggregate_per_shard_reports() {
        let merged = ShardRecoveryReport {
            per_shard: vec![report(0, 0, 5, 5), report(0, 0, 0, 0), report(10, 3, 13, 3)],
        };
        assert_eq!(merged.shards(), 3);
        assert_eq!(merged.total_replayed(), 8);
        assert_eq!(merged.durable_indices(), vec![5, 0, 13]);
        assert_eq!(merged.checkpoint_indices(), vec![0, 0, 10]);
        assert_eq!(merged.checkpoint_epochs(), vec![0, 0, 3]);
        assert_eq!(merged.total_durable(), 8);
        assert!(merged.watermark_violation().is_none());
    }

    #[test]
    fn watermark_violation_is_detected_per_shard() {
        let mut bad = report(10, 2, 13, 3);
        bad.durable_index = 7; // logs truncated above the durable tail
        let merged = ShardRecoveryReport {
            per_shard: vec![report(0, 0, 5, 5), bad],
        };
        assert_eq!(merged.watermark_violation(), Some((1, 10, 7)));
    }
}
