//! Merged recovery reporting for sharded objects.

use onll::RecoveryReport;

/// Outcome of a parallel sharded recovery: one [`RecoveryReport`] per shard, in
/// shard order, plus merged convenience accessors.
#[derive(Debug, Clone)]
pub struct ShardRecoveryReport {
    /// Per-shard reports, indexed by shard.
    pub per_shard: Vec<RecoveryReport>,
}

impl ShardRecoveryReport {
    /// Number of shards recovered.
    pub fn shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Total operations replayed from logs across all shards.
    pub fn total_replayed(&self) -> usize {
        self.per_shard.iter().map(|r| r.replayed_ops()).sum()
    }

    /// Each shard's durable execution index, in shard order.
    pub fn durable_indices(&self) -> Vec<u64> {
        self.per_shard.iter().map(|r| r.durable_index).collect()
    }

    /// Total durable operations across all shards (sum of per-shard durable
    /// indices above their checkpoints).
    pub fn total_durable(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|r| r.durable_index - r.checkpoint_index)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onll::OpId;

    fn report(checkpoint: u64, durable: u64, replayed: usize) -> RecoveryReport {
        RecoveryReport {
            checkpoint_index: checkpoint,
            durable_index: durable,
            recovered_ops: (0..replayed)
                .map(|i| (checkpoint + 1 + i as u64, OpId::new(0, i as u64 + 1)))
                .collect(),
        }
    }

    #[test]
    fn merged_accessors_aggregate_per_shard_reports() {
        let merged = ShardRecoveryReport {
            per_shard: vec![report(0, 5, 5), report(0, 0, 0), report(10, 13, 3)],
        };
        assert_eq!(merged.shards(), 3);
        assert_eq!(merged.total_replayed(), 8);
        assert_eq!(merged.durable_indices(), vec![5, 0, 13]);
        assert_eq!(merged.total_durable(), 8);
    }
}
