//! The group-persist buffering layer.
//!
//! Persistent fences are the dominant cost of durable updates (the paper's
//! whole subject), and its lower bound says one fence per update is inherent
//! for *synchronous* durability. [`GroupPersist`] trades linearization latency
//! for fence amortization, the same lever lifecycle-aware persistence uses to
//! amortize retention costs: updates are buffered per shard and persisted as a
//! *group* via `ProcessHandle::update_group` — one log entry, **one persistent
//! fence for the whole group**.
//!
//! Semantics: a buffered update is not ordered, not durable and not visible
//! until its shard is flushed (explicitly via [`crate::ShardedHandle::flush`],
//! or automatically when the shard's buffer reaches the configured group size).
//! Flushing linearizes the group at a single point and makes it durable with
//! one fence, so a crash either keeps the whole group or loses it entirely —
//! each operation remains individually reported by detectable execution.

/// Per-shard buffers of not-yet-persisted update operations.
#[derive(Debug)]
pub struct GroupPersist<Op> {
    buffers: Vec<Vec<Op>>,
    /// Flush a shard automatically once its buffer holds this many operations.
    group_size: usize,
}

impl<Op> GroupPersist<Op> {
    /// Buffers for `shards` shards, auto-flushing at `group_size` operations
    /// (which must not exceed the shards' `OnllConfig::max_group_ops`).
    pub fn new(shards: usize, group_size: usize) -> Self {
        assert!(group_size >= 1, "group size must be at least 1");
        GroupPersist {
            buffers: (0..shards)
                .map(|_| Vec::with_capacity(group_size))
                .collect(),
            group_size,
        }
    }

    /// The configured auto-flush group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Buffers `op` on `shard`. Returns `true` if the shard's buffer is now
    /// full and must be flushed.
    pub fn push(&mut self, shard: usize, op: Op) -> bool {
        let buf = &mut self.buffers[shard];
        buf.push(op);
        buf.len() >= self.group_size
    }

    /// Takes all buffered operations of `shard` (possibly empty).
    pub fn drain(&mut self, shard: usize) -> Vec<Op> {
        std::mem::take(&mut self.buffers[shard])
    }

    /// Puts drained operations back at the *front* of `shard`'s buffer (their
    /// original order ahead of anything buffered since). Used to undo a drain
    /// when the group persist failed before ordering anything, so the caller
    /// can retry after resolving the error (e.g. checkpointing a full log).
    pub fn restore(&mut self, shard: usize, mut ops: Vec<Op>) {
        let buffered_since = std::mem::take(&mut self.buffers[shard]);
        ops.extend(buffered_since);
        self.buffers[shard] = ops;
    }

    /// Number of operations buffered on `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.buffers[shard].len()
    }

    /// Total buffered operations across all shards.
    pub fn len(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shards with at least one buffered operation, in shard order.
    pub fn dirty_shards(&self) -> Vec<usize> {
        (0..self.buffers.len())
            .filter(|&s| !self.buffers[s].is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_signals_full_at_group_size() {
        let mut g: GroupPersist<u32> = GroupPersist::new(2, 3);
        assert!(!g.push(0, 1));
        assert!(!g.push(0, 2));
        assert!(g.push(0, 3), "third push reaches the group size");
        assert_eq!(g.shard_len(0), 3);
        assert_eq!(g.shard_len(1), 0);
    }

    #[test]
    fn drain_empties_only_the_target_shard() {
        let mut g: GroupPersist<u32> = GroupPersist::new(3, 8);
        g.push(0, 1);
        g.push(2, 2);
        g.push(2, 3);
        assert_eq!(g.dirty_shards(), vec![0, 2]);
        assert_eq!(g.drain(2), vec![2, 3]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.drain(2), Vec::<u32>::new());
        assert!(!g.is_empty());
        assert_eq!(g.drain(0), vec![1]);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_group_size_rejected() {
        let _ = GroupPersist::<u32>::new(1, 0);
    }
}
