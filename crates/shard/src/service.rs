//! The sharded concurrent front-end: one combining-commit service per shard,
//! with cross-shard submit routing.
//!
//! Combines the two orthogonal scaling levers this crate and `onll` provide:
//!
//! * **Sharding** multiplies fence *bandwidth* — N independent pools drain N
//!   persist stalls in parallel;
//! * **Combining** ([`onll::DurableService`]) divides fence *count* — each
//!   shard's live clients share single fences.
//!
//! A [`ShardedService`] owns one [`DurableService`] per shard (one combiner
//! election per shard, so distinct shards commit concurrently), and a
//! [`ShardedServiceClient`] owns one client slot on every shard, routing each
//! submitted update to its key's shard. Identities are per shard: an [`OpId`]
//! returned by a submit is meaningful to the shard that served it (which
//! [`ShardedServiceClient::submit_routed`] reports, and
//! [`ShardedService::resolve_on`] takes explicitly).

use crate::router::ShardRouter;
use crate::sharded::ShardedDurable;
use onll::{DurableService, KeyedSpec, OnllError, OpId, ReadStats, ResolveOutcome, ServiceClient};
use std::sync::Arc;

/// A combining-commit session layer over every shard of a
/// [`ShardedDurable`] — see the [module documentation](self).
///
/// Cloning is cheap; clones refer to the same per-shard services.
pub struct ShardedService<S: KeyedSpec> {
    services: Arc<Vec<DurableService<S>>>,
    router: Arc<dyn ShardRouter<S::Key>>,
}

impl<S: KeyedSpec> Clone for ShardedService<S> {
    fn clone(&self) -> Self {
        ShardedService {
            services: self.services.clone(),
            router: self.router.clone(),
        }
    }
}

impl<S: KeyedSpec> ShardedDurable<S> {
    /// Opens a combining-commit service over every shard, each sized for up to
    /// `clients` concurrent client threads. Claims one process slot per shard
    /// for that shard's combiner; each [`ShardedService::client`] claims one
    /// more on every shard — size `max_processes >= clients + 1` (plus any
    /// plain handles registered besides the service).
    pub fn service(&self, clients: usize) -> Result<ShardedService<S>, OnllError> {
        let services = (0..self.num_shards())
            .map(|i| self.shard(i).service(clients))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedService {
            services: Arc::new(services),
            router: self.router().clone(),
        })
    }
}

impl<S: KeyedSpec> ShardedService<S> {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.services.len()
    }

    /// The shard index owning `key`.
    pub fn shard_of(&self, key: &S::Key) -> usize {
        self.router.route(key)
    }

    /// The per-shard combining service of shard `index`.
    pub fn shard_service(&self, index: usize) -> &DurableService<S> {
        &self.services[index]
    }

    /// Claims a client slot on **every** shard and returns the routing client.
    /// Fails if any shard's slots are exhausted.
    pub fn client(&self) -> Result<ShardedServiceClient<S>, OnllError> {
        let clients = self
            .services
            .iter()
            .map(|s| s.client())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedServiceClient {
            clients,
            router: self.router.clone(),
        })
    }

    /// Runs one combining pass on every shard from the calling thread and
    /// returns the total operations served (0 when nothing is pending).
    pub fn combine_now(&self) -> usize {
        self.services.iter().map(|s| s.combine_now()).sum()
    }

    /// Claims client slot `index` on **every** shard — the deterministic
    /// variant of [`ShardedService::client`] (see
    /// [`DurableService::client_for`]): across a restart, a reconnecting
    /// session that re-claims the same index resumes the same per-shard
    /// [`OpId`] identity spaces, which is what lets it replay
    /// unacknowledged operations exactly once.
    pub fn client_for(&self, index: usize) -> Result<ShardedServiceClient<S>, OnllError> {
        let clients = self
            .services
            .iter()
            .map(|s| s.client_for(index))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedServiceClient {
            clients,
            router: self.router.clone(),
        })
    }

    /// Exactly-once reply retrieval on a specific shard — identities are per
    /// shard, so the caller names the shard that served the operation (as
    /// returned by [`ShardedServiceClient::submit_routed`], or recomputed from
    /// the key via [`ShardedService::shard_of`]). The typed outcome
    /// distinguishes "never executed — safe to re-submit" from "compacted
    /// below a checkpoint floor — re-submitting could double-apply"; see
    /// [`onll::Durable::resolve`].
    pub fn resolve_on(&self, shard: usize, op_id: OpId) -> ResolveOutcome<S::Value> {
        self.services[shard].resolve(op_id)
    }

    /// Reads through the owning shard's combiner view (keyed reads), or
    /// combines every shard's answer via [`KeyedSpec::merge_reads`] (global
    /// reads). Zero persistent fences either way. Alias for
    /// [`ShardedService::read_latest`] — see there for the (weak!) broadcast
    /// semantics, and prefer [`ShardedService::read_snapshot`] for read paths
    /// that must not contend with the per-shard commit locks.
    pub fn read(&self, op: &S::ReadOp) -> S::Value {
        self.read_latest(op)
    }

    /// The lock-taking read path. **Keyed** reads are linearizable within
    /// their shard (the shard is one ONLL object; its commit lock serializes
    /// the read against in-flight batches). **Broadcast** reads
    /// (`read_key(op) == None`) are *not* a consistent cut: each shard's lock
    /// is taken and released **sequentially**, so shard `i`'s answer can
    /// predate updates that shard `j > i`'s answer already includes — there
    /// is no single linearization point across independent objects, and
    /// holding all locks at once would only add deadlock risk and writer
    /// stalls without creating one (updates spanning shards don't exist;
    /// cross-shard order is undefined). What *is* guaranteed: each per-shard
    /// answer is a linearized prefix of that shard including every operation
    /// acknowledged before the broadcast began.
    pub fn read_latest(&self, op: &S::ReadOp) -> S::Value {
        match S::read_key(op) {
            Some(key) => self.services[self.router.route(&key)].read_latest(op),
            None => {
                let answers = self.services.iter().map(|s| s.read_latest(op)).collect();
                S::merge_reads(op, answers)
            }
        }
    }

    /// The lock-free read path — keyed reads go to the owning shard's
    /// published snapshot ([`DurableService::read_snapshot`]); broadcast
    /// reads merge every shard's **snapshot** instead of chasing the commit
    /// locks. The cross-shard cut is exactly as (in)consistent as
    /// [`ShardedService::read_latest`]'s — per-shard linearized prefixes with
    /// no cross-shard order — but each prefix still includes every operation
    /// whose ack was observed before the read began (publish-before-ack per
    /// shard), and the broadcast no longer blocks any shard's writers, nor is
    /// it blocked by them.
    pub fn read_snapshot(&self, op: &S::ReadOp) -> S::Value
    where
        S: Clone,
    {
        match S::read_key(op) {
            Some(key) => self.services[self.router.route(&key)].read_snapshot(op),
            None => {
                let answers = self.services.iter().map(|s| s.read_snapshot(op)).collect();
                S::merge_reads(op, answers)
            }
        }
    }

    /// Enables the lock-free snapshot read path on every shard — see
    /// [`DurableService::enable_snapshots`]. Idempotent; servers call this at
    /// open so recovered state is immediately readable lock-free.
    pub fn enable_snapshots(&self)
    where
        S: Clone,
    {
        for service in self.services.iter() {
            service.enable_snapshots();
        }
    }

    /// Summed per-path read counts over all shards — see
    /// [`DurableService::read_stats`].
    pub fn read_stats(&self) -> ReadStats {
        self.services
            .iter()
            .map(|s| s.read_stats())
            .fold(ReadStats::default(), ReadStats::merge)
    }

    /// Summed `(batches, operations)` over all shards — the aggregate
    /// amortization factor (see [`DurableService::batch_stats`]).
    pub fn batch_stats(&self) -> (u64, u64) {
        self.services
            .iter()
            .map(|s| s.batch_stats())
            .fold((0, 0), |(b, o), (sb, so)| (b + sb, o + so))
    }
}

impl<S: KeyedSpec> std::fmt::Debug for ShardedService<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.num_shards())
            .finish()
    }
}

/// A per-thread client spanning every shard of a [`ShardedService`]: each
/// submitted update is routed to its key's shard and combined there with
/// other clients' operations for that shard.
pub struct ShardedServiceClient<S: KeyedSpec> {
    clients: Vec<ServiceClient<S>>,
    router: Arc<dyn ShardRouter<S::Key>>,
}

impl<S: KeyedSpec> ShardedServiceClient<S> {
    /// Submits an update to its key's shard, blocking until it is durable and
    /// linearized there. Returns the value and the per-shard [`OpId`].
    pub fn submit(&mut self, op: S::UpdateOp) -> Result<(S::Value, OpId), OnllError> {
        self.submit_routed(op)
            .map(|(value, _, op_id)| (value, op_id))
    }

    /// Like [`ShardedServiceClient::submit`], additionally reporting the shard
    /// that served the operation — the shard to hand back to
    /// [`ShardedService::resolve_on`] for post-crash reply retrieval.
    pub fn submit_routed(&mut self, op: S::UpdateOp) -> Result<(S::Value, usize, OpId), OnllError> {
        let shard = self.router.route(&S::update_key(&op));
        let (value, op_id) = self.clients[shard].submit(op)?;
        Ok((value, shard, op_id))
    }

    /// The per-shard client for `shard` (e.g. for `submit_async`-style use).
    pub fn shard_client(&mut self, shard: usize) -> &mut ServiceClient<S> {
        &mut self.clients[shard]
    }

    /// Replays an update under a **caller-supplied** per-shard identity on its
    /// key's shard — the routed variant of [`ServiceClient::submit_with_id`].
    /// The shard is recomputed from the operation's key, so a retry after a
    /// crash lands on the same shard the identity was minted for (routing is
    /// deterministic). The caller must have observed
    /// [`ResolveOutcome::Unknown`] for `op_id` on that shard first.
    pub fn submit_routed_with_id(
        &mut self,
        op_id: OpId,
        op: S::UpdateOp,
    ) -> Result<(S::Value, usize, OpId), OnllError> {
        let shard = self.router.route(&S::update_key(&op));
        let (value, op_id) = self.clients[shard].submit_with_id(op_id, op)?;
        Ok((value, shard, op_id))
    }

    /// The shard index owning `key`.
    pub fn shard_of(&self, key: &S::Key) -> usize {
        self.router.route(key)
    }

    /// Reads through the owning shard's combiner view (keyed reads) or merges
    /// all shards' answers (global reads). Zero persistent fences. Alias for
    /// [`ShardedServiceClient::read_latest`]; see
    /// [`ShardedService::read_latest`] for the broadcast caveats.
    pub fn read(&self, op: &S::ReadOp) -> S::Value {
        self.read_latest(op)
    }

    /// The lock-taking read path — per-shard linearizable, broadcast reads
    /// are sequential per-shard cuts; see [`ShardedService::read_latest`].
    pub fn read_latest(&self, op: &S::ReadOp) -> S::Value {
        match S::read_key(op) {
            Some(key) => self.clients[self.router.route(&key)].read_latest(op),
            None => {
                let answers = self.clients.iter().map(|c| c.read_latest(op)).collect();
                S::merge_reads(op, answers)
            }
        }
    }

    /// The lock-free read path through this client's reserved per-shard
    /// hazard slots — semantics per [`ShardedService::read_snapshot`], plus
    /// the per-session recency guarantee: an update this client saw
    /// acknowledged is visible in its subsequent snapshot reads (on the
    /// shard that served it).
    pub fn read_snapshot(&mut self, op: &S::ReadOp) -> S::Value
    where
        S: Clone,
    {
        match S::read_key(op) {
            Some(key) => self.clients[self.router.route(&key)].read_snapshot(op),
            None => {
                let answers = self
                    .clients
                    .iter_mut()
                    .map(|c| c.read_snapshot(op))
                    .collect();
                S::merge_reads(op, answers)
            }
        }
    }
}

impl<S: KeyedSpec> std::fmt::Debug for ShardedServiceClient<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServiceClient")
            .field("shards", &self.clients.len())
            .finish()
    }
}
