//! Per-process handles on a sharded object.

use crate::group::GroupPersist;
use crate::router::ShardRouter;
use onll::{KeyedSpec, OnllError, ProcessHandle};
use std::sync::Arc;

/// Values returned by a multi-shard flush: `(shard, group values)` for every
/// shard that had buffered operations.
pub type FlushedGroups<V> = Vec<(usize, Vec<V>)>;

/// A per-process handle spanning every shard of a [`crate::ShardedDurable`].
///
/// Internally one [`ProcessHandle`] per shard; an operation only ever touches
/// the handle (and pool) of the shard its key routes to. The paper's
/// per-object cost bounds therefore hold per operation across the whole
/// facade: **at most one persistent fence per update, zero per read** — and
/// with group persist, one fence per flushed *group*.
pub struct ShardedHandle<S: KeyedSpec> {
    handles: Vec<ProcessHandle<S>>,
    router: Arc<dyn ShardRouter<S::Key>>,
    group: GroupPersist<S::UpdateOp>,
}

impl<S: KeyedSpec> ShardedHandle<S> {
    pub(crate) fn new(
        handles: Vec<ProcessHandle<S>>,
        router: Arc<dyn ShardRouter<S::Key>>,
        group_size: usize,
    ) -> Self {
        let shards = handles.len();
        ShardedHandle {
            handles,
            router,
            group: GroupPersist::new(shards, group_size),
        }
    }

    /// The shard index owning `key`.
    pub fn shard_of(&self, key: &S::Key) -> usize {
        self.router.route(key)
    }

    /// The underlying per-shard handle for `shard`.
    pub fn shard_handle(&mut self, shard: usize) -> &mut ProcessHandle<S> {
        &mut self.handles[shard]
    }

    /// Performs an update synchronously on the owning shard: one persistent
    /// fence, exactly as a plain `ProcessHandle::update`.
    pub fn update(&mut self, op: S::UpdateOp) -> S::Value {
        self.try_update(op).expect("sharded update failed")
    }

    /// Fallible variant of [`ShardedHandle::update`].
    pub fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        let shard = self.router.route(&S::update_key(&op));
        self.handles[shard].try_update(op)
    }

    /// Performs a batch of updates with **at most one persistent fence per
    /// *touched shard***: operations are grouped by owning shard (preserving
    /// per-shard order) and each group is persisted via a single
    /// fence-amortized `update_group`. Returns the values in input order.
    ///
    /// Batches larger than `max_group_ops` per shard are split into successive
    /// groups of at most that size.
    ///
    /// # Partial failure
    ///
    /// Shards are processed in index order and the batch is **not atomic
    /// across shards**: if a group persist fails (e.g.
    /// [`OnllError::LogFull`]), groups already persisted on lower-numbered
    /// shards stay durable and linearized, while the failing shard's and all
    /// later shards' operations were never ordered; the error discards the
    /// earlier groups' return values. Callers needing to resolve exactly which
    /// operations took effect can query per-shard detectable execution, or use
    /// [`ShardedHandle::buffer_update`] / [`ShardedHandle::flush`], whose
    /// buffers survive errors for retry.
    pub fn update_batch(&mut self, ops: Vec<S::UpdateOp>) -> Result<Vec<S::Value>, OnllError> {
        let shards = self.handles.len();
        let mut routed: Vec<Vec<S::UpdateOp>> = (0..shards).map(|_| Vec::new()).collect();
        // Remember each input's (shard, position-within-shard) to restore order.
        let mut placement = Vec::with_capacity(ops.len());
        for op in ops {
            let shard = self.router.route(&S::update_key(&op));
            placement.push((shard, routed[shard].len()));
            routed[shard].push(op);
        }
        let max_group = self.group.group_size();
        let mut per_shard_values: Vec<Vec<S::Value>> = Vec::with_capacity(shards);
        for (shard, shard_ops) in routed.into_iter().enumerate() {
            let mut values = Vec::with_capacity(shard_ops.len());
            if !shard_ops.is_empty() {
                let mut remaining = shard_ops;
                while !remaining.is_empty() {
                    let tail = remaining.split_off(remaining.len().min(max_group));
                    values.extend(self.handles[shard].try_update_group(remaining)?);
                    remaining = tail;
                }
            }
            per_shard_values.push(values);
        }
        let mut per_shard_values: Vec<std::vec::IntoIter<S::Value>> = per_shard_values
            .into_iter()
            .map(|v| v.into_iter())
            .collect();
        Ok(placement
            .into_iter()
            .map(|(shard, _)| {
                per_shard_values[shard]
                    .next()
                    .expect("one value per routed operation")
            })
            .collect())
    }

    /// Buffers an update in the group-persist layer instead of persisting it
    /// immediately. The operation is not ordered, durable or visible until its
    /// shard flushes — automatically once the shard's buffer reaches the group
    /// size (in which case the flushed group's values are returned), or
    /// explicitly via [`ShardedHandle::flush`].
    ///
    /// On error (e.g. [`OnllError::LogFull`]) the buffered operations are
    /// **kept** — nothing was ordered or persisted — so the caller can retry
    /// after resolving the condition.
    pub fn buffer_update(&mut self, op: S::UpdateOp) -> Result<Option<Vec<S::Value>>, OnllError> {
        let shard = self.router.route(&S::update_key(&op));
        if self.group.push(shard, op) {
            return self.flush_shard(shard).map(Some);
        }
        Ok(None)
    }

    /// Persists one shard's buffered group, restoring the buffer intact if the
    /// persist failed (group persist fails only *before* ordering anything).
    fn flush_shard(&mut self, shard: usize) -> Result<Vec<S::Value>, OnllError> {
        let ops = self.group.drain(shard);
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        // Clone so the ops survive an error; try_update_group validates (group
        // size, log capacity) before mutating any shared or persistent state.
        match self.handles[shard].try_update_group(ops.clone()) {
            Ok(values) => Ok(values),
            Err(e) => {
                self.group.restore(shard, ops);
                Err(e)
            }
        }
    }

    /// Flushes every shard's buffered updates, each group with a single
    /// persistent fence. Returns `(shard, values)` for each flushed shard.
    ///
    /// On error, the failing shard's buffer is kept intact (its group persist
    /// fails before ordering anything), so `flush` can simply be retried after
    /// resolving the condition. Groups flushed on lower-numbered shards before
    /// the failure are already durable and linearized; only their return
    /// values are lost with the error. [`ShardedHandle::pending`] reports what
    /// remains buffered.
    pub fn flush(&mut self) -> Result<FlushedGroups<S::Value>, OnllError> {
        let mut flushed = Vec::new();
        for shard in self.group.dirty_shards() {
            let values = self.flush_shard(shard)?;
            if !values.is_empty() {
                flushed.push((shard, values));
            }
        }
        Ok(flushed)
    }

    /// Number of updates currently buffered (not yet durable).
    pub fn pending(&self) -> usize {
        self.group.len()
    }

    /// Performs a read-only operation: keyed reads go to the owning shard (zero
    /// persistent fences, as always); global reads combine all shards' answers
    /// via [`KeyedSpec::merge_reads`] (still zero fences — reads never touch
    /// NVM).
    ///
    /// Reads do **not** observe this handle's buffered (unflushed) updates,
    /// mirroring the durability contract: what a read returns is linearized,
    /// and a buffered update is not yet linearized.
    pub fn read(&mut self, op: &S::ReadOp) -> S::Value {
        match S::read_key(op) {
            Some(key) => {
                let shard = self.router.route(&key);
                self.handles[shard].read(op)
            }
            None => {
                let answers = self.handles.iter_mut().map(|h| h.read(op)).collect();
                S::merge_reads(op, answers)
            }
        }
    }
}

impl<S: KeyedSpec> std::fmt::Debug for ShardedHandle<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHandle")
            .field("shards", &self.handles.len())
            .field("pending", &self.pending())
            .finish()
    }
}
