//! # onll-shard — horizontally partitioned durable objects
//!
//! The paper's Theorem 6.3 proves a *per-object* lower bound: every durably
//! linearizable object pays at least one persistent fence per update. That
//! bound says nothing about how many objects you run — which makes horizontal
//! partitioning the scaling axis it leaves open. This crate partitions a keyed
//! sequential specification ([`onll::KeyedSpec`]) across N fully independent
//! [`onll::Durable`] instances:
//!
//! * **Routing** ([`ShardRouter`], [`HashRouter`], [`RangeRouter`]) — every
//!   key maps to exactly one shard, deterministically, so recovery finds each
//!   key's operations where they were persisted.
//! * **Per-shard guarantees carry over** — shards share no state, so each
//!   update is one ONLL update on one shard: durably linearizable, detectably
//!   executed, at most one persistent fence; reads cost zero fences.
//! * **Fence-amortized group persist** ([`GroupPersist`],
//!   [`ShardedHandle::buffer_update`] / [`ShardedHandle::update_batch`]) —
//!   updates bound for the same shard coalesce into a single fuzzy-window log
//!   append: one persistent fence per *group*, amortizing the inherent cost
//!   the same way lifecycle-aware persistence amortizes retention costs.
//! * **Parallel recovery** ([`ShardedDurable::recover`]) — one thread per
//!   shard rebuilds that shard's trace from its logs; reports merge into a
//!   [`ShardRecoveryReport`].
//! * **Concurrent front-end** ([`ShardedDurable::service`],
//!   [`ShardedService`]) — one combining-commit service per shard: live
//!   client threads share single fences *within* a shard while distinct
//!   shards commit in parallel, compounding both scaling levers.
//!
//! ## Example
//!
//! ```
//! use durable_objects::{SetOp, SetRead, SetSpec, SetValue};
//! use nvm_sim::PmemConfig;
//! use onll_shard::{HashRouter, ShardConfig, ShardedDurable};
//! use std::sync::Arc;
//!
//! let config = ShardConfig::named("set")
//!     .shards(4)
//!     .pmem(PmemConfig::with_capacity(64 << 20));
//! let set = ShardedDurable::<SetSpec>::create(config.clone(), Arc::new(HashRouter::new(4))).unwrap();
//! let mut h = set.register().unwrap();
//!
//! let w = set.aggregate_window();
//! for k in 0..32 {
//!     h.update(SetOp::Add(k)); // one fence each, on the owning shard only
//! }
//! assert_eq!(w.close().persistent_fences, 32);
//! assert_eq!(h.read(&SetRead::Len), SetValue::Len(32)); // merged, zero fences
//!
//! // Crash every pool, then recover all shards in parallel.
//! let pools = set.pools().to_vec();
//! drop(h);
//! drop(set);
//! for p in &pools {
//!     p.crash_and_restart();
//! }
//! let (set, report) = ShardedDurable::<SetSpec>::recover(
//!     pools, config, Arc::new(HashRouter::new(4))).unwrap();
//! assert_eq!(report.total_replayed(), 32);
//! assert_eq!(set.read_latest(&SetRead::Len), SetValue::Len(32));
//! ```

#![warn(missing_docs)]

mod config;
mod group;
mod handle;
mod recovery;
mod router;
mod service;
mod sharded;
mod stats;

pub use config::ShardConfig;
pub use group::GroupPersist;
pub use handle::{FlushedGroups, ShardedHandle};
pub use recovery::ShardRecoveryReport;
pub use router::{HashRouter, RangeRouter, ShardRouter};
pub use service::{ShardedService, ShardedServiceClient};
pub use sharded::{CheckpointDaemon, ShardedDurable};
pub use stats::{merged_global_stats, merged_telemetry, AggregateWindow};
