//! Aggregated persistence statistics across shard pools.
//!
//! A sharded object spreads its state over N independent NVM pools, but the
//! quantities the paper reasons about (persistent fences per operation) are
//! properties of the *logical* object. [`AggregateWindow`] opens one per-thread
//! [`OpWindow`] per pool and closes them into a single merged delta, so fence
//! audits can assert the Theorem 5.1 bounds across all shards at once.

use nvm_sim::{NvmPool, OpWindow, TelemetrySnapshot, ThreadStatsSnapshot};

/// A scoped window over the calling thread's persistence counters on *every*
/// pool of a sharded object.
pub struct AggregateWindow<'a> {
    windows: Vec<OpWindow<'a>>,
}

impl<'a> AggregateWindow<'a> {
    /// Opens a window on each pool.
    pub fn open(pools: &'a [NvmPool]) -> Self {
        AggregateWindow {
            windows: pools.iter().map(|p| p.stats().op_window()).collect(),
        }
    }

    /// Closes all windows and returns the merged per-thread delta.
    pub fn close(self) -> ThreadStatsSnapshot {
        self.windows
            .into_iter()
            .map(|w| w.close())
            .fold(ThreadStatsSnapshot::default(), |acc, d| acc.merge(&d))
    }

    /// Peeks at the merged delta without consuming the window.
    pub fn peek(&self) -> ThreadStatsSnapshot {
        let deltas: Vec<ThreadStatsSnapshot> = self.windows.iter().map(|w| w.peek()).collect();
        ThreadStatsSnapshot::merge_all(deltas.iter())
    }
}

/// Merged global counters (all threads) across a set of pools.
pub fn merged_global_stats(pools: &[NvmPool]) -> ThreadStatsSnapshot {
    let globals: Vec<ThreadStatsSnapshot> =
        pools.iter().map(|p| p.stats().snapshot().global).collect();
    ThreadStatsSnapshot::merge_all(globals.iter())
}

/// Merged telemetry rollup across a set of pools, deduplicated by sink: the
/// per-shard pools of a partitioned [`nvm_sim::PmemConfig`] share one sink
/// (snapshot it once), while independently provisioned pools with distinct
/// sinks have their distributions combined. Returns `None` when no pool has
/// telemetry enabled.
pub fn merged_telemetry(pools: &[NvmPool]) -> Option<TelemetrySnapshot> {
    let mut seen_sinks = Vec::new();
    let mut merged: Option<TelemetrySnapshot> = None;
    for pool in pools {
        let telemetry = pool.telemetry();
        if !telemetry.is_enabled() || seen_sinks.contains(&telemetry.sink_id()) {
            continue;
        }
        seen_sinks.push(telemetry.sink_id());
        let snap = telemetry.snapshot();
        match &mut merged {
            Some(m) => m.merge(&snap),
            None => merged = Some(snap),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::PmemConfig;

    fn pools(n: usize) -> Vec<NvmPool> {
        PmemConfig::with_capacity(1 << 20)
            .partition(n)
            .into_iter()
            .map(NvmPool::new)
            .collect()
    }

    #[test]
    fn aggregate_window_sums_across_pools() {
        let pools = pools(3);
        // Allocation persists allocator metadata (its own fences); keep it
        // outside the window so the window sees exactly our persists.
        let addrs: Vec<_> = pools.iter().map(|p| p.alloc(64).unwrap()).collect();
        let w = AggregateWindow::open(&pools);
        for (i, (p, addr)) in pools.iter().zip(&addrs).enumerate() {
            p.write_u64(*addr, i as u64);
            p.flush(*addr, 8);
            p.fence().unwrap();
        }
        let d = w.close();
        assert_eq!(d.persistent_fences, 3);
        assert_eq!(d.flushes, 3);
    }

    #[test]
    fn aggregate_window_peek_does_not_consume() {
        let pools = pools(2);
        let addr = pools[0].alloc(64).unwrap();
        let w = AggregateWindow::open(&pools);
        pools[0].write_u64(addr, 1);
        pools[0].flush(addr, 8);
        pools[0].fence().unwrap();
        assert_eq!(w.peek().persistent_fences, 1);
        pools[1].fence().unwrap(); // no pending flush: not persistent
        let d = w.close();
        assert_eq!(d.persistent_fences, 1);
        assert_eq!(d.fences, 2);
    }

    #[test]
    fn merged_telemetry_deduplicates_shared_sinks() {
        use nvm_sim::Telemetry;
        // Partitioned config: all shards share one sink.
        let telemetry = Telemetry::enabled();
        let shared: Vec<NvmPool> = PmemConfig::with_capacity(1 << 20)
            .telemetry(telemetry.clone())
            .partition(2)
            .into_iter()
            .map(NvmPool::new)
            .collect();
        telemetry.counter("x").add(5);
        let merged = merged_telemetry(&shared).expect("enabled sink");
        assert_eq!(merged.counter("x").unwrap().value, 5, "not double-counted");

        // Distinct sinks: values combine.
        let t1 = Telemetry::enabled();
        let t2 = Telemetry::enabled();
        t1.counter("x").add(1);
        t2.counter("x").add(2);
        let distinct = vec![
            NvmPool::new(PmemConfig::with_capacity(1 << 20).telemetry(t1)),
            NvmPool::new(PmemConfig::with_capacity(1 << 20).telemetry(t2)),
        ];
        let merged = merged_telemetry(&distinct).expect("enabled sinks");
        assert_eq!(merged.counter("x").unwrap().value, 3);

        // Disabled everywhere: no snapshot.
        assert!(merged_telemetry(&pools(2)).is_none());
    }

    #[test]
    fn merged_global_stats_cover_all_threads() {
        let pools = pools(2);
        let addr0 = pools[0].alloc(64).unwrap();
        let addr1 = pools[1].alloc(64).unwrap();
        let before = merged_global_stats(&pools);
        let p1 = pools[1].clone();
        std::thread::spawn(move || {
            p1.write_u64(addr1, 7);
            p1.flush(addr1, 8);
            p1.fence().unwrap();
        })
        .join()
        .unwrap();
        pools[0].write_u64(addr0, 9);
        pools[0].flush(addr0, 8);
        pools[0].fence().unwrap();
        let merged = merged_global_stats(&pools);
        assert_eq!(merged.delta(&before).persistent_fences, 2);
    }
}
