//! Sharded-object configuration.

use nvm_sim::{BackendSpec, NvmError, NvmPool, PmemConfig};
use onll::OnllConfig;

/// Configuration of a [`crate::ShardedDurable`] object.
///
/// Each shard is a full, independent ONLL instance living in its own NVM pool
/// partition; `base` is the per-shard template (its `name` is suffixed with the
/// shard index) and `pmem` is partitioned into one equal slice per shard.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Logical name of the sharded object; shard `i`'s ONLL instance is named
    /// `"{name}/shard{i}"` inside its pool.
    pub name: String,
    /// Number of shards (independent ONLL instances).
    pub shards: usize,
    /// Per-shard ONLL configuration template.
    pub base: OnllConfig,
    /// NVM configuration partitioned across the shards.
    pub pmem: PmemConfig,
    /// Persistence backend all shard pools run on. With
    /// [`BackendSpec::File`], shard `i`'s pool is a file derived from the
    /// label `<name>/shard<i>` (see [`BackendSpec::pool_path`]), so a sharded
    /// store can be reopened after a real process restart via
    /// [`ShardConfig::open_pools`]. With [`BackendSpec::device`], every shard
    /// becomes a segment of one shared device file and all shard fences go
    /// through that device's group-commit executor (see
    /// [`ShardConfig::coalesce_window_us`]).
    pub backend: BackendSpec,
}

impl ShardConfig {
    /// A configuration named `name` with defaults: 4 shards, default per-shard
    /// ONLL config, 64 MiB of simulated NVM split across the shards.
    pub fn named(name: &str) -> Self {
        ShardConfig {
            name: name.to_string(),
            shards: 4,
            base: OnllConfig::default(),
            pmem: PmemConfig::default(),
            backend: BackendSpec::Sim,
        }
    }

    /// Sets the number of shards.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one shard is required");
        self.shards = n;
        self
    }

    /// Sets the per-shard ONLL configuration template (its `name` is ignored;
    /// shards derive theirs from the shard config's name).
    pub fn base(mut self, base: OnllConfig) -> Self {
        self.base = base;
        self
    }

    /// Sets the NVM configuration to partition across the shards.
    pub fn pmem(mut self, pmem: PmemConfig) -> Self {
        self.pmem = pmem;
        self
    }

    /// Sets the persistence backend all shard pools run on.
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        self.backend = spec;
        self
    }

    /// Provisions one fresh pool per shard on the configured backend: the
    /// partitioned [`ShardConfig::pmem`] slices on [`ShardConfig::backend`].
    /// Used by `ShardedDurable::create`; also useful to pre-create pools that
    /// outlive the object across crash/recovery cycles.
    pub fn provision_pools(&self) -> Result<Vec<NvmPool>, NvmError> {
        self.pmem
            .partition(self.shards)
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| NvmPool::provision(&self.backend, cfg, &self.shard_label(i)))
            .collect()
    }

    /// Reopens the per-shard pools previously provisioned under this config —
    /// the cross-process recovery entry point for sharded objects (pass the
    /// result to `ShardedDurable::recover*`). Fails for the simulator, which
    /// has no cross-process representation.
    pub fn open_pools(&self) -> Result<Vec<NvmPool>, NvmError> {
        self.pmem
            .partition(self.shards)
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| NvmPool::reopen(&self.backend, cfg, &self.shard_label(i)))
            .collect()
    }

    /// The pool label of shard `index` (its ONLL object name).
    fn shard_label(&self, index: usize) -> String {
        format!("{}/shard{index}", self.name)
    }

    /// Convenience: sets the persist executor's fence-coalescing window in
    /// microseconds (see `PmemConfig::coalesce_window`). Only meaningful with
    /// [`BackendSpec::device`], where every shard pool on the same device file
    /// shares one group-commit executor: a fence leader waits up to this long
    /// for rider fences from other shards before issuing the shared `fsync`.
    pub fn coalesce_window_us(mut self, us: u64) -> Self {
        self.pmem = self
            .pmem
            .coalesce_window(std::time::Duration::from_micros(us));
        self
    }

    /// Convenience: caps how many rider fences one coalesced `fsync` may carry
    /// (see `PmemConfig::coalesce_max_riders`).
    pub fn coalesce_max_riders(mut self, n: usize) -> Self {
        self.pmem = self.pmem.coalesce_max_riders(n);
        self
    }

    /// Convenience: enables fence-amortized group persist with groups of up to
    /// `n` operations per shard (see `OnllConfig::group_persist`).
    pub fn group_persist(mut self, n: usize) -> Self {
        self.base = self.base.group_persist(n);
        self
    }

    /// Convenience: enables the per-shard ops-count checkpoint trigger
    /// (see `OnllConfig::checkpoint_every`). Evaluated by the background
    /// checkpointer spawned with `ShardedDurable::spawn_checkpointer` (or by
    /// handles using `update_with_checkpoint`).
    pub fn checkpoint_every(mut self, interval: u64) -> Self {
        self.base = self.base.checkpoint_every(interval);
        self
    }

    /// Convenience: enables the per-shard log-bytes checkpoint trigger
    /// (see `OnllConfig::checkpoint_when_log_exceeds`).
    pub fn checkpoint_when_log_exceeds(mut self, bytes: u64) -> Self {
        self.base = self.base.checkpoint_when_log_exceeds(bytes);
        self
    }

    /// Convenience: sets the per-shard checkpoint slot capacity
    /// (see `OnllConfig::checkpoint_slot_bytes`).
    pub fn checkpoint_slot_bytes(mut self, bytes: usize) -> Self {
        self.base = self.base.checkpoint_slot_bytes(bytes);
        self
    }

    /// The ONLL configuration of shard `index`.
    pub(crate) fn shard_onll_config(&self, index: usize) -> OnllConfig {
        let mut cfg = self.base.clone();
        cfg.name = self.shard_label(index);
        cfg.backend = self.backend.clone();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let cfg = ShardConfig::named("kv")
            .shards(8)
            .base(OnllConfig::default().max_processes(2))
            .group_persist(4)
            .pmem(PmemConfig::with_capacity(128 << 20));
        assert_eq!(cfg.name, "kv");
        assert_eq!(cfg.shards, 8);
        assert_eq!(cfg.base.max_processes, 2);
        assert_eq!(cfg.base.max_group_ops, 4);
        assert_eq!(cfg.pmem.capacity, 128 << 20);
    }

    #[test]
    fn shard_names_are_distinct_and_derived() {
        let cfg = ShardConfig::named("kv").shards(3);
        assert_eq!(cfg.shard_onll_config(0).name, "kv/shard0");
        assert_eq!(cfg.shard_onll_config(2).name, "kv/shard2");
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        let _ = ShardConfig::named("x").shards(0);
    }
}
