//! The sharded durable object: N independent ONLL instances behind one facade.

use crate::config::ShardConfig;
use crate::handle::ShardedHandle;
use crate::recovery::ShardRecoveryReport;
use crate::router::ShardRouter;
use crate::stats::{merged_global_stats, AggregateWindow};
use nvm_sim::{NvmPool, ThreadStatsSnapshot};
use onll::{Durable, Hooks, KeyedSpec, OnllError};
use std::sync::Arc;

/// A keyed sequential specification partitioned across N independent
/// [`Durable`] instances.
///
/// The paper's Theorem 6.3 lower bound is *per object*: one persistent fence
/// per update cannot be avoided. Sharding is the scaling axis that bound
/// leaves open — N independent objects each pay their own (unavoidable) fence,
/// but sustain N times the aggregate update throughput, and every per-shard
/// guarantee (durable linearizability, detectable execution, ≤1 fence per
/// update, 0 per read) carries over to the sharded facade because shards share
/// no state: every update touches exactly one shard, chosen by a
/// [`ShardRouter`] over the spec's routing key ([`KeyedSpec`]).
///
/// Cloning is cheap; all clones refer to the same shards.
pub struct ShardedDurable<S: KeyedSpec> {
    inner: Arc<Inner<S>>,
}

struct Inner<S: KeyedSpec> {
    shards: Vec<Durable<S>>,
    pools: Vec<NvmPool>,
    router: Arc<dyn ShardRouter<S::Key>>,
    config: ShardConfig,
}

impl<S: KeyedSpec> Clone for ShardedDurable<S> {
    fn clone(&self) -> Self {
        ShardedDurable {
            inner: self.inner.clone(),
        }
    }
}

impl<S: KeyedSpec> ShardedDurable<S> {
    /// Formats a fresh sharded object: partitions `config.pmem` into one pool
    /// per shard and creates an ONLL instance in each.
    pub fn create(
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
    ) -> Result<Self, OnllError> {
        Self::create_with_shard_hooks(config, router, |_| Hooks::none())
    }

    /// Like [`ShardedDurable::create`], installing per-shard execution hooks
    /// (used by the crash harness to stall or kill individual shards).
    pub fn create_with_shard_hooks(
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
        hooks_for: impl Fn(usize) -> Hooks,
    ) -> Result<Self, OnllError> {
        Self::check_router(&config, router.as_ref())?;
        let pools: Vec<NvmPool> = config
            .pmem
            .partition(config.shards)
            .into_iter()
            .map(NvmPool::new)
            .collect();
        Self::create_in_pools_with_hooks(pools, config, router, hooks_for)
    }

    /// Creates the shards inside caller-provided pools (one per shard). Useful
    /// when pools outlive the object, e.g. across crash/recovery cycles.
    pub fn create_in_pools(
        pools: Vec<NvmPool>,
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
    ) -> Result<Self, OnllError> {
        Self::create_in_pools_with_hooks(pools, config, router, |_| Hooks::none())
    }

    /// [`ShardedDurable::create_in_pools`] with per-shard hooks.
    pub fn create_in_pools_with_hooks(
        pools: Vec<NvmPool>,
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
        hooks_for: impl Fn(usize) -> Hooks,
    ) -> Result<Self, OnllError> {
        Self::check_router(&config, router.as_ref())?;
        Self::check_pools(&config, &pools)?;
        let shards = pools
            .iter()
            .enumerate()
            .map(|(i, pool)| {
                Durable::<S>::create_with_hooks(
                    pool.clone(),
                    config.shard_onll_config(i),
                    hooks_for(i),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedDurable {
            inner: Arc::new(Inner {
                shards,
                pools,
                router,
                config,
            }),
        })
    }

    /// Recovers a sharded object from its pools **in parallel**: one recovery
    /// thread per shard, each rebuilding its shard's execution trace from that
    /// shard's persistent logs, merged into a [`ShardRecoveryReport`].
    ///
    /// Recovery work is proportional to the surviving history, so parallelism
    /// across shards cuts restart latency by up to the shard count — the
    /// recovery-side payoff of partitioning.
    pub fn recover(
        pools: Vec<NvmPool>,
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
    ) -> Result<(Self, ShardRecoveryReport), OnllError> {
        Self::check_router(&config, router.as_ref())?;
        Self::check_pools(&config, &pools)?;
        let results: Vec<Result<(Durable<S>, onll::RecoveryReport), OnllError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = pools
                    .iter()
                    .enumerate()
                    .map(|(i, pool)| {
                        let cfg = config.shard_onll_config(i);
                        let pool = pool.clone();
                        scope.spawn(move || Durable::<S>::recover(pool, cfg))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard recovery thread panicked"))
                    .collect()
            });
        let mut shards = Vec::with_capacity(results.len());
        let mut per_shard = Vec::with_capacity(results.len());
        for result in results {
            let (durable, report) = result?;
            shards.push(durable);
            per_shard.push(report);
        }
        Ok((
            ShardedDurable {
                inner: Arc::new(Inner {
                    shards,
                    pools,
                    router,
                    config,
                }),
            },
            ShardRecoveryReport { per_shard },
        ))
    }

    fn check_router(
        config: &ShardConfig,
        router: &dyn ShardRouter<S::Key>,
    ) -> Result<(), OnllError> {
        if router.shards() != config.shards {
            return Err(OnllError::MetadataMismatch(format!(
                "router distributes over {} shards but the config declares {}",
                router.shards(),
                config.shards
            )));
        }
        Ok(())
    }

    fn check_pools(config: &ShardConfig, pools: &[NvmPool]) -> Result<(), OnllError> {
        if pools.len() != config.shards {
            return Err(OnllError::MetadataMismatch(format!(
                "{} pools provided for {} shards",
                pools.len(),
                config.shards
            )));
        }
        Ok(())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard index owning `key`.
    pub fn shard_of(&self, key: &S::Key) -> usize {
        let s = self.inner.router.route(key);
        debug_assert!(
            s < self.num_shards(),
            "router returned an out-of-range shard"
        );
        s
    }

    /// The ONLL instance of shard `index`.
    pub fn shard(&self, index: usize) -> &Durable<S> {
        &self.inner.shards[index]
    }

    /// All per-shard pools, in shard order.
    pub fn pools(&self) -> &[NvmPool] {
        &self.inner.pools
    }

    /// The configuration this object was created with.
    pub fn config(&self) -> &ShardConfig {
        &self.inner.config
    }

    /// The router partitioning the key space.
    pub fn router(&self) -> &Arc<dyn ShardRouter<S::Key>> {
        &self.inner.router
    }

    /// Registers a process slot on **every** shard and returns the combined
    /// handle. Fails if any shard has no free slot.
    pub fn register(&self) -> Result<ShardedHandle<S>, OnllError> {
        let handles = self
            .inner
            .shards
            .iter()
            .map(|s| s.register())
            .collect::<Result<Vec<_>, _>>()?;
        // Group size comes from the shards' *actual* ONLL configuration, which
        // after a recovery reflects the persisted log geometry rather than the
        // caller's template (core tolerates a template mismatch by adopting
        // the persisted value — the facade must follow it, or auto-flushes
        // would submit groups the log entries cannot hold).
        let group_size = self.inner.shards[0].config().max_group_ops;
        Ok(ShardedHandle::new(
            handles,
            self.inner.router.clone(),
            group_size,
        ))
    }

    /// Reads without a process handle: keyed reads are routed to their shard's
    /// `read_latest`; global reads combine every shard's answer via
    /// [`KeyedSpec::merge_reads`].
    ///
    /// Global reads are **not atomic across shards**: each shard's answer is
    /// individually linearizable, but the combination corresponds to a
    /// per-shard-consistent cut rather than a single point in global time
    /// (the usual contract of sharded stores).
    pub fn read_latest(&self, op: &S::ReadOp) -> S::Value {
        match S::read_key(op) {
            Some(key) => self.shard(self.shard_of(&key)).read_latest(op),
            None => {
                let answers = self
                    .inner
                    .shards
                    .iter()
                    .map(|s| s.read_latest(op))
                    .collect();
                S::merge_reads(op, answers)
            }
        }
    }

    /// Opens an aggregate per-thread statistics window over all shard pools.
    pub fn aggregate_window(&self) -> AggregateWindow<'_> {
        AggregateWindow::open(&self.inner.pools)
    }

    /// Merged global persistence counters across all shard pools.
    pub fn merged_stats(&self) -> ThreadStatsSnapshot {
        merged_global_stats(&self.inner.pools)
    }

    /// Checks every shard's trace invariants (generalized Proposition 5.2).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, shard) in self.inner.shards.iter().enumerate() {
            shard
                .check_invariants()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }
}

impl<S: KeyedSpec> std::fmt::Debug for ShardedDurable<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDurable")
            .field("name", &self.inner.config.name)
            .field("shards", &self.num_shards())
            .finish()
    }
}
