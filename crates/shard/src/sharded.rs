//! The sharded durable object: N independent ONLL instances behind one facade.

use crate::config::ShardConfig;
use crate::handle::ShardedHandle;
use crate::recovery::ShardRecoveryReport;
use crate::router::ShardRouter;
use crate::stats::{merged_global_stats, AggregateWindow};
use nvm_sim::{NvmPool, ThreadStatsSnapshot};
use onll::{Durable, Hooks, KeyedSpec, OnllConfig, OnllError, RecoveryReport, SnapshotSpec};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A keyed sequential specification partitioned across N independent
/// [`Durable`] instances.
///
/// The paper's Theorem 6.3 lower bound is *per object*: one persistent fence
/// per update cannot be avoided. Sharding is the scaling axis that bound
/// leaves open — N independent objects each pay their own (unavoidable) fence,
/// but sustain N times the aggregate update throughput, and every per-shard
/// guarantee (durable linearizability, detectable execution, ≤1 fence per
/// update, 0 per read) carries over to the sharded facade because shards share
/// no state: every update touches exactly one shard, chosen by a
/// [`ShardRouter`] over the spec's routing key ([`KeyedSpec`]).
///
/// Cloning is cheap; all clones refer to the same shards.
pub struct ShardedDurable<S: KeyedSpec> {
    inner: Arc<Inner<S>>,
}

struct Inner<S: KeyedSpec> {
    shards: Vec<Durable<S>>,
    pools: Vec<NvmPool>,
    router: Arc<dyn ShardRouter<S::Key>>,
    config: ShardConfig,
}

impl<S: KeyedSpec> Clone for ShardedDurable<S> {
    fn clone(&self) -> Self {
        ShardedDurable {
            inner: self.inner.clone(),
        }
    }
}

impl<S: KeyedSpec> ShardedDurable<S> {
    /// Formats a fresh sharded object: partitions `config.pmem` into one pool
    /// per shard and creates an ONLL instance in each.
    pub fn create(
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
    ) -> Result<Self, OnllError> {
        Self::create_with_shard_hooks(config, router, |_| Hooks::none())
    }

    /// Like [`ShardedDurable::create`], installing per-shard execution hooks
    /// (used by the crash harness to stall or kill individual shards).
    pub fn create_with_shard_hooks(
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
        hooks_for: impl Fn(usize) -> Hooks,
    ) -> Result<Self, OnllError> {
        Self::check_router(&config, router.as_ref())?;
        let pools = config.provision_pools()?;
        Self::create_in_pools_with_hooks(pools, config, router, hooks_for)
    }

    /// Creates the shards inside caller-provided pools (one per shard). Useful
    /// when pools outlive the object, e.g. across crash/recovery cycles.
    pub fn create_in_pools(
        pools: Vec<NvmPool>,
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
    ) -> Result<Self, OnllError> {
        Self::create_in_pools_with_hooks(pools, config, router, |_| Hooks::none())
    }

    /// [`ShardedDurable::create_in_pools`] with per-shard hooks.
    pub fn create_in_pools_with_hooks(
        pools: Vec<NvmPool>,
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
        hooks_for: impl Fn(usize) -> Hooks,
    ) -> Result<Self, OnllError> {
        Self::check_router(&config, router.as_ref())?;
        Self::check_pools(&config, &pools)?;
        let shards = pools
            .iter()
            .enumerate()
            .map(|(i, pool)| {
                Durable::<S>::create_with_hooks(
                    pool.clone(),
                    config.shard_onll_config(i),
                    hooks_for(i),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedDurable {
            inner: Arc::new(Inner {
                shards,
                pools,
                router,
                config,
            }),
        })
    }

    /// Recovers a sharded object from its pools **in parallel**: one recovery
    /// thread per shard, each rebuilding its shard's execution trace from that
    /// shard's persistent logs, merged into a [`ShardRecoveryReport`].
    ///
    /// Recovery work is proportional to the surviving history, so parallelism
    /// across shards cuts restart latency by up to the shard count — the
    /// recovery-side payoff of partitioning.
    ///
    /// Fails loudly (no silent replay) if any shard exists but was created with
    /// a different geometry than the others — see
    /// [`ShardedDurable::recover_with_checkpoints`] for the checks. Use that
    /// method instead when checkpointing was (or may have been) enabled.
    pub fn recover(
        pools: Vec<NvmPool>,
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
    ) -> Result<(Self, ShardRecoveryReport), OnllError> {
        Self::recover_inner(pools, config, router, Durable::<S>::recover)
    }

    /// [`ShardedDurable::recover`] against pools reopened from the config's
    /// backend ([`ShardConfig::open_pools`]) — the cross-process recovery
    /// entry point: a freshly exec'd process recovers a file-backed sharded
    /// store from its on-disk pools alone.
    pub fn reopen(
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
    ) -> Result<(Self, ShardRecoveryReport), OnllError> {
        let pools = config.open_pools()?;
        Self::recover(pools, config, router)
    }

    fn recover_inner(
        pools: Vec<NvmPool>,
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
        recover_shard: impl Fn(NvmPool, OnllConfig) -> Result<(Durable<S>, RecoveryReport), OnllError>
            + Send
            + Sync,
    ) -> Result<(Self, ShardRecoveryReport), OnllError> {
        Self::check_router(&config, router.as_ref())?;
        Self::check_pools(&config, &pools)?;
        let recover_shard = &recover_shard;
        let results: Vec<Result<(Durable<S>, RecoveryReport), OnllError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = pools
                    .iter()
                    .enumerate()
                    .map(|(i, pool)| {
                        let cfg = config.shard_onll_config(i);
                        let pool = pool.clone();
                        scope.spawn(move || recover_shard(pool, cfg))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard recovery thread panicked"))
                    .collect()
            });
        let mut shards = Vec::with_capacity(results.len());
        let mut per_shard = Vec::with_capacity(results.len());
        for result in results {
            let (durable, report) = result?;
            shards.push(durable);
            per_shard.push(report);
        }
        let report = ShardRecoveryReport { per_shard };
        Self::check_recovered_geometry(&shards, &report)?;
        Ok((
            ShardedDurable {
                inner: Arc::new(Inner {
                    shards,
                    pools,
                    router,
                    config,
                }),
            },
            report,
        ))
    }

    /// Every shard adopts its *persisted* geometry during recovery (the facade's
    /// template is only a hint). If the pools handed to recovery belong to
    /// objects with differing geometry — wrong pool order, pools from another
    /// object, or shards created under different configs — replaying against
    /// the template would silently mis-shape logs and checkpoint areas. Fail
    /// loudly instead, naming the offending shard and field, and reject any
    /// shard whose logs were truncated above its durable tail (watermark
    /// violation: acknowledged state would be missing).
    fn check_recovered_geometry(
        shards: &[Durable<S>],
        report: &ShardRecoveryReport,
    ) -> Result<(), OnllError> {
        if let Some((shard, checkpoint, durable)) = report.watermark_violation() {
            return Err(OnllError::MetadataMismatch(format!(
                "shard {shard}: durable index {durable} is below its checkpoint watermark {checkpoint} — logs were truncated above the durable tail"
            )));
        }
        let Some(first) = shards.first() else {
            return Ok(());
        };
        let reference = first.config();
        for (i, shard) in shards.iter().enumerate().skip(1) {
            let cfg = shard.config();
            for (field, got, want) in [
                ("max_processes", cfg.max_processes, reference.max_processes),
                (
                    "log_capacity_entries",
                    cfg.log_capacity_entries,
                    reference.log_capacity_entries,
                ),
                ("max_group_ops", cfg.max_group_ops, reference.max_group_ops),
                (
                    "checkpoint_slot_bytes",
                    cfg.checkpoint_slot_bytes,
                    reference.checkpoint_slot_bytes,
                ),
            ] {
                if got != want {
                    return Err(OnllError::MetadataMismatch(format!(
                        "shard {i} was created with {field} = {got} but shard 0 has {want}; refusing to recover a geometry-mismatched shard set"
                    )));
                }
            }
        }
        Ok(())
    }

    fn check_router(
        config: &ShardConfig,
        router: &dyn ShardRouter<S::Key>,
    ) -> Result<(), OnllError> {
        if router.shards() != config.shards {
            return Err(OnllError::MetadataMismatch(format!(
                "router distributes over {} shards but the config declares {}",
                router.shards(),
                config.shards
            )));
        }
        Ok(())
    }

    fn check_pools(config: &ShardConfig, pools: &[NvmPool]) -> Result<(), OnllError> {
        if pools.len() != config.shards {
            return Err(OnllError::MetadataMismatch(format!(
                "{} pools provided for {} shards",
                pools.len(),
                config.shards
            )));
        }
        Ok(())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard index owning `key`.
    pub fn shard_of(&self, key: &S::Key) -> usize {
        let s = self.inner.router.route(key);
        debug_assert!(
            s < self.num_shards(),
            "router returned an out-of-range shard"
        );
        s
    }

    /// The ONLL instance of shard `index`.
    pub fn shard(&self, index: usize) -> &Durable<S> {
        &self.inner.shards[index]
    }

    /// All per-shard pools, in shard order.
    pub fn pools(&self) -> &[NvmPool] {
        &self.inner.pools
    }

    /// The configuration this object was created with.
    pub fn config(&self) -> &ShardConfig {
        &self.inner.config
    }

    /// The router partitioning the key space.
    pub fn router(&self) -> &Arc<dyn ShardRouter<S::Key>> {
        &self.inner.router
    }

    /// Registers a process slot on **every** shard and returns the combined
    /// handle. Fails if any shard has no free slot.
    pub fn register(&self) -> Result<ShardedHandle<S>, OnllError> {
        let handles = self
            .inner
            .shards
            .iter()
            .map(|s| s.register())
            .collect::<Result<Vec<_>, _>>()?;
        // Group size comes from the shards' *actual* ONLL configuration, which
        // after a recovery reflects the persisted log geometry rather than the
        // caller's template (core tolerates a template mismatch by adopting
        // the persisted value — the facade must follow it, or auto-flushes
        // would submit groups the log entries cannot hold).
        let group_size = self.inner.shards[0].config().max_group_ops;
        Ok(ShardedHandle::new(
            handles,
            self.inner.router.clone(),
            group_size,
        ))
    }

    /// Reads without a process handle: keyed reads are routed to their shard's
    /// `read_latest`; global reads combine every shard's answer via
    /// [`KeyedSpec::merge_reads`].
    ///
    /// Global reads are **not atomic across shards**: each shard's answer is
    /// individually linearizable, but the combination corresponds to a
    /// per-shard-consistent cut rather than a single point in global time
    /// (the usual contract of sharded stores).
    pub fn read_latest(&self, op: &S::ReadOp) -> S::Value {
        match S::read_key(op) {
            Some(key) => self.shard(self.shard_of(&key)).read_latest(op),
            None => {
                let answers = self
                    .inner
                    .shards
                    .iter()
                    .map(|s| s.read_latest(op))
                    .collect();
                S::merge_reads(op, answers)
            }
        }
    }

    /// Opens an aggregate per-thread statistics window over all shard pools.
    pub fn aggregate_window(&self) -> AggregateWindow<'_> {
        AggregateWindow::open(&self.inner.pools)
    }

    /// Merged global persistence counters across all shard pools.
    pub fn merged_stats(&self) -> ThreadStatsSnapshot {
        merged_global_stats(&self.inner.pools)
    }

    /// Checks every shard's trace invariants (generalized Proposition 5.2).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, shard) in self.inner.shards.iter().enumerate() {
            shard
                .check_invariants()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }
}

impl<S: KeyedSpec + SnapshotSpec> ShardedDurable<S> {
    /// Like [`ShardedDurable::recover`], but each shard loads its newest valid
    /// checkpoint (checksum + torn-write detection with fallback to the
    /// previous slot or full replay) and replays only the log tail above the
    /// watermark. Shards checkpoint independently, so per-shard watermarks and
    /// epochs differ; the merged report surfaces them
    /// ([`ShardRecoveryReport::checkpoint_epochs`]) and the same loud
    /// geometry/watermark validation as plain recovery applies.
    pub fn recover_with_checkpoints(
        pools: Vec<NvmPool>,
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
    ) -> Result<(Self, ShardRecoveryReport), OnllError> {
        Self::recover_inner(
            pools,
            config,
            router,
            Durable::<S>::recover_with_checkpoints,
        )
    }

    /// [`ShardedDurable::recover_with_checkpoints`] against pools reopened
    /// from the config's backend (see [`ShardedDurable::reopen`]).
    pub fn reopen_with_checkpoints(
        config: ShardConfig,
        router: Arc<dyn ShardRouter<S::Key>>,
    ) -> Result<(Self, ShardRecoveryReport), OnllError> {
        let pools = config.open_pools()?;
        Self::recover_with_checkpoints(pools, config, router)
    }

    /// Spawns one background checkpoint thread per shard, so shards compact
    /// independently without blocking updates.
    ///
    /// Each thread claims a process slot on its shard (size `max_processes`
    /// accordingly: workers + 1), then periodically syncs its local view and
    /// checkpoints whenever a configured trigger fires — the ops-count trigger
    /// (`OnllConfig::checkpoint_every`) or the log-bytes trigger
    /// (`OnllConfig::checkpoint_when_log_exceeds`), both settable through
    /// [`crate::ShardConfig`]. Checkpoint fences are maintenance fences: they
    /// are counted in the separate maintenance bucket and never charge the
    /// paper's per-update budget. Worker handles truncate their own logs below
    /// the published watermark on their next update (logs are single-writer).
    ///
    /// The daemon stops (and joins its threads) on [`CheckpointDaemon::stop`]
    /// or drop.
    pub fn spawn_checkpointer(&self, poll: Duration) -> Result<CheckpointDaemon, OnllError> {
        if !self.inner.config.base.checkpointing_enabled() {
            return Err(OnllError::CheckpointingDisabled);
        }
        // Register every shard's handle *before* spawning any thread: a
        // register failure on a later shard (e.g. no free process slot) must
        // not leave earlier shards' threads running detached with no daemon
        // handle to stop them.
        let handles = (0..self.num_shards())
            .map(|i| self.shard(i).register())
            .collect::<Result<Vec<_>, _>>()?;
        let stop = Arc::new(AtomicBool::new(false));
        let checkpoints: Arc<Vec<AtomicU64>> =
            Arc::new((0..self.num_shards()).map(|_| AtomicU64::new(0)).collect());
        let errors: Arc<Vec<Mutex<Option<OnllError>>>> =
            Arc::new((0..self.num_shards()).map(|_| Mutex::new(None)).collect());
        let mut joins = Vec::with_capacity(self.num_shards());
        for (i, mut handle) in handles.into_iter().enumerate() {
            let stop = stop.clone();
            let checkpoints = checkpoints.clone();
            let errors = errors.clone();
            joins.push(std::thread::spawn(move || loop {
                let stopping = stop.load(Ordering::Acquire);
                handle.sync();
                if handle.should_checkpoint() {
                    match handle.checkpoint() {
                        Ok(_) => {
                            checkpoints[i].fetch_add(1, Ordering::Relaxed);
                        }
                        // A persistent failure (e.g. serialized state outgrew
                        // checkpoint_slot_bytes) would otherwise silently stop
                        // all compaction for this shard; keep the latest error
                        // inspectable through the daemon handle.
                        Err(e) => *errors[i].lock().unwrap() = Some(e),
                    }
                }
                if stopping {
                    break;
                }
                std::thread::park_timeout(poll);
            }));
        }
        Ok(CheckpointDaemon {
            stop,
            checkpoints,
            errors,
            joins,
        })
    }
}

/// Handle on the per-shard background checkpoint threads spawned by
/// [`ShardedDurable::spawn_checkpointer`]. Dropping it stops and joins the
/// threads; [`CheckpointDaemon::stop`] does the same and additionally returns
/// the number of checkpoints each shard's thread wrote.
pub struct CheckpointDaemon {
    stop: Arc<AtomicBool>,
    checkpoints: Arc<Vec<AtomicU64>>,
    errors: Arc<Vec<Mutex<Option<OnllError>>>>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

impl CheckpointDaemon {
    /// The most recent checkpoint error per shard (`None` = no failure so
    /// far). A persistently failing shard (e.g. its serialized state outgrew
    /// `checkpoint_slot_bytes`) keeps serving updates but stops compacting;
    /// operators should poll this alongside the checkpoint counts.
    pub fn last_errors(&self) -> Vec<Option<OnllError>> {
        self.errors
            .iter()
            .map(|e| e.lock().unwrap().clone())
            .collect()
    }

    /// Checkpoints written so far, per shard (readable while running).
    pub fn checkpoints_per_shard(&self) -> Vec<u64> {
        self.checkpoints
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Stops the daemon: each thread performs one final sync-and-maybe-checkpoint
    /// pass, then exits. Returns the per-shard checkpoint counts.
    pub fn stop(mut self) -> Vec<u64> {
        self.shutdown();
        self.checkpoints_per_shard()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for join in &self.joins {
            join.thread().unpark();
        }
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
    }
}

impl Drop for CheckpointDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for CheckpointDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointDaemon")
            .field("shards", &self.checkpoints.len())
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

impl<S: KeyedSpec> std::fmt::Debug for ShardedDurable<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDurable")
            .field("name", &self.inner.config.name)
            .field("shards", &self.num_shards())
            .finish()
    }
}
