//! Pluggable shard routing.
//!
//! A [`ShardRouter`] maps every routing key to exactly one shard index in
//! `0..shards()`. Routing must be **total** (no key without a shard) and
//! **stable** (the same key always maps to the same shard for a given router
//! configuration) — recovery depends on it: after a crash, a key's operations
//! are found in the shard its router picked before the crash.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Maps routing keys to shard indices.
pub trait ShardRouter<K: ?Sized>: Send + Sync + 'static {
    /// Number of shards this router distributes over.
    fn shards(&self) -> usize;

    /// The shard owning `key`. Must return a value in `0..self.shards()` for
    /// every key, deterministically.
    fn route(&self, key: &K) -> usize;
}

/// Hash routing: `shard = H(key) mod N` with a fixed-seed hasher.
///
/// Spreads arbitrary key distributions evenly; the right default when keys have
/// no exploitable order.
#[derive(Debug, Clone)]
pub struct HashRouter {
    shards: usize,
}

impl HashRouter {
    /// A router hashing over `shards` shards.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard is required");
        HashRouter { shards }
    }
}

impl<K: Hash + ?Sized> ShardRouter<K> for HashRouter {
    fn shards(&self) -> usize {
        self.shards
    }

    fn route(&self, key: &K) -> usize {
        // DefaultHasher::new() uses fixed keys, so routing is deterministic
        // across processes — a recovery requirement.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards as u64) as usize
    }
}

/// Range routing: shard `i` owns keys in `[boundaries[i-1], boundaries[i])`,
/// with the first shard owning everything below `boundaries[0]` and the last
/// shard everything from `boundaries[N-2]` up.
///
/// Preserves key locality (range scans stay within few shards) at the price of
/// needing boundaries matched to the key distribution.
#[derive(Debug, Clone)]
pub struct RangeRouter<K> {
    /// Strictly increasing upper bounds; `boundaries.len() + 1` shards.
    boundaries: Vec<K>,
}

impl<K: Ord> RangeRouter<K> {
    /// A router with the given strictly increasing split points. `n` boundaries
    /// define `n + 1` shards.
    pub fn new(boundaries: Vec<K>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "range boundaries must be strictly increasing"
        );
        RangeRouter { boundaries }
    }
}

impl<K> ShardRouter<K> for RangeRouter<K>
where
    K: Ord + Send + Sync + 'static,
{
    fn shards(&self) -> usize {
        self.boundaries.len() + 1
    }

    fn route(&self, key: &K) -> usize {
        // Number of boundaries <= key == index of the first range containing it.
        self.boundaries.partition_point(|b| b <= key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_router_is_total_and_stable() {
        let r = HashRouter::new(5);
        for key in 0u64..1000 {
            let s = r.route(&key);
            assert!(s < 5);
            assert_eq!(s, r.route(&key), "same key, same shard");
            assert_eq!(s, HashRouter::new(5).route(&key), "same config, same shard");
        }
    }

    #[test]
    fn hash_router_spreads_keys() {
        let r = HashRouter::new(4);
        let mut counts = [0usize; 4];
        for key in 0u64..4000 {
            counts[ShardRouter::<u64>::route(&r, &key)] += 1;
        }
        for c in counts {
            assert!(c > 500, "severely unbalanced hash routing: {counts:?}");
        }
    }

    #[test]
    fn hash_router_routes_strings() {
        let r = HashRouter::new(3);
        let s = ShardRouter::<str>::route(&r, "user:42");
        assert!(s < 3);
        assert_eq!(ShardRouter::<String>::route(&r, &"user:42".to_string()), {
            // &str and String hash identically, so both key forms agree.
            s
        });
    }

    #[test]
    fn range_router_respects_boundaries() {
        // Shards: [..10), [10..20), [20..).
        let r = RangeRouter::new(vec![10u64, 20]);
        assert_eq!(r.shards(), 3);
        assert_eq!(r.route(&0), 0);
        assert_eq!(r.route(&9), 0);
        assert_eq!(r.route(&10), 1);
        assert_eq!(r.route(&19), 1);
        assert_eq!(r.route(&20), 2);
        assert_eq!(r.route(&u64::MAX), 2);
    }

    #[test]
    fn range_router_single_shard_takes_everything() {
        let r = RangeRouter::<u64>::new(vec![]);
        assert_eq!(r.shards(), 1);
        assert_eq!(r.route(&123), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn range_router_rejects_unsorted_boundaries() {
        let _ = RangeRouter::new(vec![5u64, 5]);
    }

    #[test]
    #[should_panic]
    fn hash_router_rejects_zero_shards() {
        let _ = HashRouter::new(0);
    }
}
