//! Sharded objects on the file backend: per-shard pool files, simulated
//! crash parity, and full cross-"process" reopen from disk (including the
//! checkpoint + truncated-log path).

use durable_objects::{KvOp, KvRead, KvSpec, KvValue};
use nvm_sim::{BackendSpec, PmemConfig, ScratchDir};
use onll::OnllConfig;
use onll_shard::{HashRouter, ShardConfig, ShardedDurable};
use std::sync::Arc;

fn file_config(label: &str, shards: usize) -> (ShardConfig, ScratchDir) {
    let dir = ScratchDir::new(label).unwrap();
    let config = ShardConfig::named("file-kv")
        .shards(shards)
        .base(OnllConfig::default().max_processes(2).log_capacity(1024))
        .pmem(PmemConfig::with_capacity(64 << 20).apply_pending_at_crash(0.0))
        .backend(BackendSpec::file(dir.path()));
    (config, dir)
}

fn put(i: u64) -> KvOp {
    KvOp::Put(format!("key-{i}"), format!("value-{i}"))
}

fn get(object: &ShardedDurable<KvSpec>, i: u64) -> Option<String> {
    match object.read_latest(&KvRead::Get(format!("key-{i}"))) {
        KvValue::Value(v) => v,
        KvValue::Len(_) => None,
    }
}

#[test]
fn create_writes_one_pool_file_per_shard() {
    let (config, cleanup) = file_config("shard-files", 4);
    let object = ShardedDurable::<KvSpec>::create(config, Arc::new(HashRouter::new(4))).unwrap();
    assert_eq!(object.pools().len(), 4);
    for pool in object.pools() {
        assert_eq!(pool.backend_name(), "file");
    }
    let spec = BackendSpec::file(cleanup.path());
    for i in 0..4 {
        let path = spec.pool_path(&format!("file-kv/shard{i}")).unwrap();
        assert!(path.is_file(), "missing shard {i} pool file {path:?}");
    }
}

#[test]
fn sharded_store_reopens_from_disk_alone() {
    let (config, _cleanup) = file_config("shard-reopen", 3);
    let router = Arc::new(HashRouter::new(3));
    {
        let object = ShardedDurable::<KvSpec>::create(config.clone(), router.clone()).unwrap();
        let mut handle = object.register().unwrap();
        for i in 0..60 {
            handle.update(put(i));
        }
        // Everything dropped: the next incarnation shares only the files.
    }
    let (recovered, report) =
        ShardedDurable::<KvSpec>::reopen(config, router).expect("reopen from disk");
    assert_eq!(report.per_shard.len(), 3);
    assert!(report.total_replayed() >= 60);
    for i in 0..60 {
        assert_eq!(
            get(&recovered, i),
            Some(format!("value-{i}")),
            "key-{i} lost across the reopen"
        );
    }
}

#[test]
fn checkpointed_sharded_store_reopens_with_bounded_replay() {
    let (mut config, _cleanup) = file_config("shard-reopen-cp", 2);
    config = config
        .base(OnllConfig::default().max_processes(2).log_capacity(1024))
        .checkpoint_every(16)
        .checkpoint_slot_bytes(64 * 1024);
    let router = Arc::new(HashRouter::new(2));
    {
        let object = ShardedDurable::<KvSpec>::create(config.clone(), router.clone()).unwrap();
        let mut handle = object.register().unwrap();
        for i in 0..100 {
            handle.update(put(i));
        }
        // Publish a checkpoint on every shard, then append a small tail that
        // recovery must replay from the logs.
        for s in 0..2 {
            handle.shard_handle(s).sync();
            handle.shard_handle(s).checkpoint().unwrap();
        }
        for i in 100..120 {
            handle.update(put(i));
        }
    }
    let (recovered, report) = ShardedDurable::<KvSpec>::reopen_with_checkpoints(config, router)
        .expect("checkpointed reopen from disk");
    assert!(
        report.checkpoint_epochs().iter().any(|&e| e > 0),
        "no shard checkpointed: {report:?}"
    );
    assert!(
        report.total_replayed() < 120,
        "checkpoints must bound the replayed tail, replayed {}",
        report.total_replayed()
    );
    for i in 0..120 {
        assert_eq!(get(&recovered, i), Some(format!("value-{i}")));
    }
}

#[test]
fn simulated_crash_on_file_pools_loses_only_unfenced_data() {
    let (config, _cleanup) = file_config("shard-crash", 2);
    let router = Arc::new(HashRouter::new(2));
    let object = ShardedDurable::<KvSpec>::create(config.clone(), router.clone()).unwrap();
    let mut handle = object.register().unwrap();
    for i in 0..30 {
        handle.update(put(i));
    }
    let pools = object.pools().to_vec();
    drop(handle);
    drop(object);
    for pool in &pools {
        pool.crash_and_restart();
    }
    let (recovered, report) =
        ShardedDurable::<KvSpec>::recover(pools, config, router).expect("recover");
    assert_eq!(report.total_replayed(), 30);
    for i in 0..30 {
        assert_eq!(get(&recovered, i), Some(format!("value-{i}")));
    }
}
