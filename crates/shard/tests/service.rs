//! The sharded combining-commit front-end: routing, per-shard amortization,
//! concurrent clients, and exactly-once reply retrieval across a crash.

use durable_objects::{KvOp, KvRead, KvSpec, KvValue};
use nvm_sim::PmemConfig;
use onll::{OnllConfig, ResolveOutcome};
use onll_shard::{HashRouter, ShardConfig, ShardedDurable};
use std::sync::Arc;

fn sharded_kv(shards: usize, clients: usize, group: usize) -> ShardedDurable<KvSpec> {
    let config = ShardConfig::named("svc-kv")
        .shards(shards)
        .base(
            OnllConfig::default()
                .max_processes(clients + 1)
                .log_capacity(1 << 12)
                .group_persist(group),
        )
        .pmem(PmemConfig::with_capacity(512 << 20).apply_pending_at_crash(0.0));
    ShardedDurable::<KvSpec>::create(config, Arc::new(HashRouter::new(shards)))
        .expect("create sharded kv")
}

#[test]
fn submits_route_to_the_owning_shard_only() {
    let object = sharded_kv(4, 1, 4);
    let service = object.service(1).unwrap();
    let mut client = service.client().unwrap();
    for i in 0..32 {
        let key = format!("k{i}");
        let expected_shard = service.shard_of(&key);
        let before: Vec<u64> = object
            .pools()
            .iter()
            .map(|p| p.stats().persistent_fences())
            .collect();
        let (value, shard, op_id) = client
            .submit_routed(KvOp::Put(key.clone(), format!("v{i}")))
            .unwrap();
        assert_eq!(shard, expected_shard);
        for (s, pool) in object.pools().iter().enumerate() {
            let delta = pool.stats().persistent_fences() - before[s];
            assert_eq!(
                delta,
                if s == shard { 1 } else { 0 },
                "update for shard {shard} fenced on shard {s}"
            );
        }
        // The remembered response equals the response the submit returned.
        assert_eq!(
            service.resolve_on(shard, op_id),
            ResolveOutcome::Executed(value)
        );
        assert_eq!(
            client.read(&KvRead::Get(key)),
            KvValue::Value(Some(format!("v{i}")))
        );
    }
    object.check_invariants().unwrap();
}

#[test]
fn concurrent_clients_amortize_within_each_shard() {
    let threads = 4;
    let per_thread = 100;
    let object = sharded_kv(2, threads, threads);
    let service = object.service(threads).unwrap();
    let before = onll_shard::merged_global_stats(object.pools());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let service = service.clone();
            scope.spawn(move || {
                let mut client = service.client().expect("a free client slot per thread");
                for i in 0..per_thread {
                    let key = format!("k{}", (t * per_thread + i) % 16);
                    client.submit(KvOp::Put(key, format!("t{t}i{i}"))).unwrap();
                }
            });
        }
    });
    let fences = onll_shard::merged_global_stats(object.pools())
        .delta(&before)
        .persistent_fences;
    let (batches, ops) = service.batch_stats();
    assert_eq!(ops, (threads * per_thread) as u64);
    assert_eq!(fences, batches, "one fence per combined batch per shard");
    assert!(batches <= ops);
    object.check_invariants().unwrap();
}

#[test]
fn reads_merge_across_shards_with_zero_fences() {
    let object = sharded_kv(4, 1, 2);
    let service = object.service(1).unwrap();
    let mut client = service.client().unwrap();
    for i in 0..20 {
        client
            .submit(KvOp::Put(format!("k{i}"), "x".into()))
            .unwrap();
    }
    let w = object.aggregate_window();
    assert_eq!(client.read(&KvRead::Len), KvValue::Len(20));
    assert_eq!(
        client.read(&KvRead::Get("k3".into())),
        KvValue::Value(Some("x".into()))
    );
    let d = w.close();
    assert_eq!(d.persistent_fences, 0, "reads never fence");
    assert_eq!(d.stores, 0, "reads never touch NVM");
}

#[test]
fn replies_are_resolvable_after_crash_recovery() {
    let shards = 2;
    let config = ShardConfig::named("svc-crash")
        .shards(shards)
        .base(
            OnllConfig::default()
                .max_processes(3)
                .log_capacity(1 << 10)
                .group_persist(4),
        )
        .pmem(PmemConfig::with_capacity(256 << 20).apply_pending_at_crash(0.0));
    let router = Arc::new(HashRouter::new(shards));
    let object = ShardedDurable::<KvSpec>::create(config.clone(), router.clone()).unwrap();
    let service = object.service(2).unwrap();
    let mut client = service.client().unwrap();
    let mut receipts = Vec::new();
    for i in 0..16 {
        let (value, shard, op_id) = client
            .submit_routed(KvOp::Put(format!("k{i}"), format!("v{i}")))
            .unwrap();
        receipts.push((shard, op_id, value));
    }
    let pools = object.pools().to_vec();
    drop(client);
    drop(service);
    drop(object);
    for p in &pools {
        p.crash_and_restart();
    }
    let (object, report) =
        ShardedDurable::<KvSpec>::recover(pools, config, router).expect("recover");
    assert_eq!(report.total_replayed(), 16);
    // Exactly-once: the remembered responses match what the submits returned.
    let service = object.service(2).unwrap();
    for (shard, op_id, value) in receipts {
        assert_eq!(
            service.resolve_on(shard, op_id),
            ResolveOutcome::Executed(value)
        );
    }
}

#[test]
fn deterministic_clients_replay_identities_across_recovery() {
    // The session-layer contract behind the server: claim the same client
    // index after a crash and the per-shard identity spaces line up, so a
    // pre-assigned OpId can be resolved and — when Unknown — replayed.
    let shards = 2;
    let config = ShardConfig::named("svc-replay")
        .shards(shards)
        .base(
            OnllConfig::default()
                .max_processes(4)
                .log_capacity(1 << 10)
                .group_persist(4),
        )
        .pmem(PmemConfig::with_capacity(256 << 20).apply_pending_at_crash(0.0));
    let router = Arc::new(HashRouter::new(shards));
    let object = ShardedDurable::<KvSpec>::create(config.clone(), router.clone()).unwrap();
    let service = object.service(2).unwrap();
    let mut client = service.client_for(1).unwrap();
    // Pre-assign the identity the way a wire client does, then submit it.
    let key = "replayed".to_string();
    let shard = client.shard_of(&key);
    let planned = client.shard_client(shard).peek_next_op_id();
    let (acked_value, acked_shard, acked_id) = client
        .submit_routed_with_id(planned, KvOp::Put(key.clone(), "v1".into()))
        .unwrap();
    assert_eq!((acked_shard, acked_id), (shard, planned));
    // A second identity is minted but never submitted — the "crashed before
    // publish" case.
    let lost = client.shard_client(shard).peek_next_op_id();

    let pools = object.pools().to_vec();
    drop(client);
    drop(service);
    drop(object);
    for p in &pools {
        p.crash_and_restart();
    }
    let (object, _) = ShardedDurable::<KvSpec>::recover(pools, config, router).expect("recover");
    let service = object.service(2).unwrap();
    let mut client = service.client_for(1).unwrap();
    // The acked identity resolves to its remembered response; replaying it
    // would be the client's bug, and the Unknown one replays exactly once.
    assert_eq!(
        service.resolve_on(shard, acked_id),
        ResolveOutcome::Executed(acked_value)
    );
    assert_eq!(service.resolve_on(shard, lost), ResolveOutcome::Unknown);
    let (_, s2, id2) = client
        .submit_routed_with_id(lost, KvOp::Put(key.clone(), "v2".into()))
        .unwrap();
    assert_eq!((s2, id2), (shard, lost));
    assert_eq!(
        client.read(&KvRead::Get(key)),
        KvValue::Value(Some("v2".into()))
    );
    object.check_invariants().unwrap();
}
