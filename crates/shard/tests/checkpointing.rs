//! Sharded checkpoint/compaction tests: the background checkpoint daemon
//! compacts shards independently, checkpoint-aware recovery replays only the
//! per-shard tails and surfaces per-shard epochs, and geometry mismatches fail
//! loudly instead of silently replaying.

use durable_objects::{KvOp, KvRead, KvSpec, KvValue};
use nvm_sim::{NvmPool, PmemConfig};
use onll::{OnllConfig, OnllError};
use onll_shard::{HashRouter, ShardConfig, ShardedDurable};
use std::sync::Arc;
use std::time::Duration;

fn checkpointing_config(name: &str, shards: usize) -> ShardConfig {
    ShardConfig::named(name)
        .shards(shards)
        .base(
            OnllConfig::default()
                // Workers plus one slot per shard for the checkpoint daemon.
                .max_processes(3)
                .log_capacity(4096),
        )
        .checkpoint_every(32)
        .checkpoint_when_log_exceeds(1 << 20)
        .checkpoint_slot_bytes(64 * 1024)
        .pmem(PmemConfig::with_capacity(256 << 20).apply_pending_at_crash(0.0))
}

fn put(i: u64) -> KvOp {
    KvOp::Put(format!("key-{i}"), format!("value-{i}"))
}

#[test]
fn background_daemon_compacts_shards_independently_and_recovery_replays_only_tails() {
    let shards = 4;
    let config = checkpointing_config("daemon", shards);
    let router = Arc::new(HashRouter::new(shards));
    let object = ShardedDurable::<KvSpec>::create(config.clone(), router.clone()).unwrap();
    let pools: Vec<NvmPool> = object.pools().to_vec();

    let daemon = object.spawn_checkpointer(Duration::from_millis(1)).unwrap();
    let total = 600u64;
    {
        let mut handle = object.register().unwrap();
        for i in 0..total {
            handle.update(put(i));
        }
    }
    // Let the daemon catch up, then stop it (it runs one final pass).
    std::thread::sleep(Duration::from_millis(20));
    assert!(
        daemon.last_errors().iter().all(|e| e.is_none()),
        "daemon reported checkpoint errors: {:?}",
        daemon.last_errors()
    );
    let checkpoints = daemon.stop();
    assert!(
        checkpoints.iter().any(|&c| c > 0),
        "the daemon never checkpointed: {checkpoints:?}"
    );
    // Published watermarks compacted the worker logs too (lazy truncate-below
    // runs on the owners' next updates), so log footprint is bounded.
    for i in 0..shards {
        let shard = object.shard(i);
        if shard.checkpoint_watermark() > 0 {
            assert!(
                shard.max_log_live_bytes() < 4096 * 64,
                "shard {i} logs were never compacted"
            );
        }
    }
    drop(object);

    for pool in &pools {
        pool.crash_and_restart();
    }
    let (recovered, report) =
        ShardedDurable::<KvSpec>::recover_with_checkpoints(pools, config, router).unwrap();
    assert_eq!(report.shards(), shards);
    // Shards checkpoint independently: epochs/watermarks are per shard, and
    // every shard that checkpointed replays only its tail.
    for (i, shard_report) in report.per_shard.iter().enumerate() {
        assert!(
            shard_report.durable_index >= shard_report.checkpoint_index,
            "shard {i}: {shard_report:?}"
        );
        if shard_report.checkpoint_index > 0 {
            assert!(shard_report.checkpoint_epoch > 0, "shard {i}");
            assert!(
                (shard_report.replayed_ops() as u64) < shard_report.durable_index,
                "shard {i} replayed its full history despite a checkpoint"
            );
        }
    }
    // No updates lost: every key reads back.
    assert_eq!(
        recovered.read_latest(&KvRead::Len),
        KvValue::Len(total as usize)
    );
    for i in (0..total).step_by(97) {
        assert_eq!(
            recovered.read_latest(&KvRead::Get(format!("key-{i}"))),
            KvValue::Value(Some(format!("value-{i}"))),
        );
    }
}

#[test]
fn spawn_checkpointer_requires_a_trigger() {
    let shards = 2;
    let config = ShardConfig::named("no-triggers")
        .shards(shards)
        .base(OnllConfig::default().max_processes(2))
        .pmem(PmemConfig::with_capacity(64 << 20));
    let router = Arc::new(HashRouter::new(shards));
    let object = ShardedDurable::<KvSpec>::create(config, router).unwrap();
    assert!(matches!(
        object.spawn_checkpointer(Duration::from_millis(1)),
        Err(OnllError::CheckpointingDisabled)
    ));
}

#[test]
fn spawn_checkpointer_with_exhausted_slots_fails_without_leaking_threads() {
    // max_processes = 1 and a registered worker: the daemon cannot claim a
    // slot on any shard. The spawn must fail up front (no thread may be left
    // running detached) and the object must keep working.
    let shards = 2;
    let config = ShardConfig::named("full-slots")
        .shards(shards)
        .base(OnllConfig::default().max_processes(1).log_capacity(256))
        .checkpoint_every(8)
        .pmem(PmemConfig::with_capacity(128 << 20));
    let router = Arc::new(HashRouter::new(shards));
    let object = ShardedDurable::<KvSpec>::create(config, router).unwrap();
    let mut handle = object.register().unwrap();
    assert!(matches!(
        object.spawn_checkpointer(Duration::from_millis(1)),
        Err(OnllError::NoFreeProcessSlot)
    ));
    // All slots are free again after the failed spawn released its claims…
    handle.update(put(1));
    drop(handle);
    // …so a later spawn (with a slot available) succeeds.
    let daemon = object.spawn_checkpointer(Duration::from_millis(1)).unwrap();
    drop(daemon);
}

#[test]
fn geometry_mismatch_fails_loudly_instead_of_silently_replaying() {
    // Two sharded objects with different per-shard geometry in separate pool
    // sets; recovering with a mixed pool vector must be rejected, not replayed.
    let router = Arc::new(HashRouter::new(2));
    let config_a = ShardConfig::named("geo")
        .shards(2)
        .base(OnllConfig::default().max_processes(2).log_capacity(512))
        .pmem(PmemConfig::with_capacity(64 << 20));
    let config_b = ShardConfig::named("geo")
        .shards(2)
        .base(
            OnllConfig::default()
                .max_processes(4)
                .log_capacity(512)
                .group_persist(4),
        )
        .pmem(PmemConfig::with_capacity(64 << 20));

    let a = ShardedDurable::<KvSpec>::create(config_a.clone(), router.clone()).unwrap();
    let b = ShardedDurable::<KvSpec>::create(config_b, router.clone()).unwrap();
    let mut ha = a.register().unwrap();
    let mut hb = b.register().unwrap();
    for i in 0..40 {
        ha.update(put(i));
        hb.update(put(i));
    }
    // Mixed pools: shard 0 from object A, shard 1 from object B.
    let pools = vec![a.pools()[0].clone(), b.pools()[1].clone()];
    drop((ha, hb, a, b));
    for pool in &pools {
        pool.crash_and_restart();
    }
    let err = ShardedDurable::<KvSpec>::recover(pools, config_a, router).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("shard 1") && msg.contains("geometry-mismatched"),
        "expected a loud geometry error, got: {msg}"
    );
}

#[test]
fn recover_with_checkpoints_without_any_checkpoint_is_full_replay() {
    let shards = 2;
    let config = checkpointing_config("no-cp-yet", shards);
    let router = Arc::new(HashRouter::new(shards));
    let object = ShardedDurable::<KvSpec>::create(config.clone(), router.clone()).unwrap();
    let pools: Vec<NvmPool> = object.pools().to_vec();
    {
        let mut handle = object.register().unwrap();
        for i in 0..20 {
            handle.update(put(i));
        }
    }
    drop(object);
    for pool in &pools {
        pool.crash_and_restart();
    }
    let (recovered, report) =
        ShardedDurable::<KvSpec>::recover_with_checkpoints(pools, config, router).unwrap();
    assert_eq!(report.checkpoint_indices(), vec![0, 0]);
    assert_eq!(report.checkpoint_epochs(), vec![0, 0]);
    assert_eq!(report.total_durable(), 20);
    assert_eq!(recovered.read_latest(&KvRead::Len), KvValue::Len(20));
}
