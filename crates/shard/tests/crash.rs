//! Multi-shard crash/recovery tests: a shard killed mid-persist loses only its
//! own in-flight operation, every other shard recovers in full, and group
//! persist is all-or-nothing at its single fence.

use durable_objects::{SetOp, SetRead, SetSpec, SetValue};
use nvm_sim::PmemConfig;
use onll::{Hooks, OnllConfig, Phase};
use onll_shard::{HashRouter, RangeRouter, ShardConfig, ShardedDurable};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn shard_config(name: &str, shards: usize) -> ShardConfig {
    ShardConfig::named(name)
        .shards(shards)
        .base(OnllConfig::default().max_processes(2).log_capacity(1024))
        // Deterministic crashes: pending (unfenced) flushes are always lost.
        .pmem(PmemConfig::with_capacity(256 << 20).apply_pending_at_crash(0.0))
}

/// Kill one shard mid-persist (after its operation is ordered, before its log
/// append fence) and verify the other shards' recovery is unaffected: they
/// recover everything, the victim loses exactly the in-flight operation, and
/// detectable execution reports it as not linearized.
#[test]
fn mid_persist_kill_on_one_shard_leaves_other_shards_unaffected() {
    // Range routing keeps the test deterministic: keys 0..100 → shard 0,
    // 100..200 → shard 1, 200..300 → shard 2, 300.. → shard 3.
    let router = Arc::new(RangeRouter::new(vec![100u64, 200, 300]));
    let config = shard_config("victim", 4);

    // Hooks on shard 0 only: once armed, the next persist parks forever —
    // the "kill" happens while the operation is ordered but not yet durable.
    let armed = Arc::new(AtomicBool::new(false));
    let parked = Arc::new(AtomicBool::new(false));
    let (armed2, parked2) = (armed.clone(), parked.clone());
    let stall_hooks = Hooks::new(move |phase, _pid| {
        if phase == Phase::BeforePersist && armed2.load(Ordering::Acquire) {
            parked2.store(true, Ordering::Release);
            loop {
                std::thread::park();
            }
        }
    });
    let object = ShardedDurable::<SetSpec>::create_with_shard_hooks(
        config.clone(),
        router.clone(),
        |shard| {
            if shard == 0 {
                stall_hooks.clone()
            } else {
                Hooks::none()
            }
        },
    )
    .unwrap();

    // Ten durable updates per shard.
    let mut handle = object.register().unwrap();
    for shard in 0..4u64 {
        for i in 0..10 {
            assert_eq!(
                handle.update(SetOp::Add(shard * 100 + i)),
                SetValue::Bool(true)
            );
        }
    }

    // Arm the stall and launch the doomed update on shard 0 from its own
    // thread. It claims the second process slot, so its identity on shard 0 is
    // (pid 1, seq 1) — checked against detectable execution after recovery.
    armed.store(true, Ordering::Release);
    let object2 = object.clone();
    let _doomed = std::thread::spawn(move || {
        let mut h = object2.register().expect("second slot");
        h.update(SetOp::Add(42)); // key 42 → shard 0; parks mid-persist
    });
    while !parked.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    // Full-system crash: every pool loses its caches; the parked thread never
    // reached its fence, so shard 0's in-flight operation is not durable.
    let pools = object.pools().to_vec();
    drop(handle);
    drop(object);
    for p in &pools {
        p.crash_and_restart();
    }

    // Parallel recovery across all shards.
    let (recovered, report) = ShardedDurable::<SetSpec>::recover(pools, config, router).unwrap();
    assert_eq!(report.shards(), 4);
    assert_eq!(
        report.durable_indices(),
        vec![10, 10, 10, 10],
        "the victim shard lost only its in-flight op; no other shard was affected"
    );
    assert_eq!(report.total_replayed(), 40);

    // State check: all 40 completed adds survive, the doomed add does not.
    assert_eq!(recovered.read_latest(&SetRead::Len), SetValue::Len(40));
    assert_eq!(
        recovered.read_latest(&SetRead::Contains(42)),
        SetValue::Bool(false)
    );
    // Detectable execution on the victim shard: the doomed operation (second
    // process slot, first op) reports as not linearized.
    assert!(!recovered.shard(0).was_linearized(onll::OpId::new(1, 1)));
    for shard in 0..4u64 {
        assert_eq!(
            recovered.read_latest(&SetRead::Contains(shard * 100 + 9)),
            SetValue::Bool(true)
        );
    }
    recovered.check_invariants().unwrap();
}

/// Crash with no in-flight operations: every shard recovers its full history
/// and the merged report accounts for every update.
#[test]
fn quiescent_crash_recovers_every_shard_in_full() {
    let shards = 8;
    let router = Arc::new(HashRouter::new(shards));
    let config = shard_config("full", shards);
    let object = ShardedDurable::<SetSpec>::create(config.clone(), router.clone()).unwrap();
    let mut handle = object.register().unwrap();
    for k in 0..200u64 {
        handle.update(SetOp::Add(k));
    }
    let expected_per_shard: Vec<u64> = (0..shards)
        .map(|s| (0..200u64).filter(|k| object.shard_of(k) == s).count() as u64)
        .collect();

    let pools = object.pools().to_vec();
    drop(handle);
    drop(object);
    for p in &pools {
        p.crash_and_restart();
    }
    let (recovered, report) = ShardedDurable::<SetSpec>::recover(pools, config, router).unwrap();
    assert_eq!(report.total_replayed(), 200);
    assert_eq!(report.durable_indices(), expected_per_shard);
    assert_eq!(recovered.read_latest(&SetRead::Len), SetValue::Len(200));
    for k in 0..200u64 {
        assert_eq!(
            recovered.read_latest(&SetRead::Contains(k)),
            SetValue::Bool(true),
            "key {k} lost"
        );
    }
}

/// Group persist is all-or-nothing at its single fence: an unflushed buffer is
/// lost entirely by a crash; a flushed group survives entirely.
#[test]
fn group_persist_is_all_or_nothing_across_a_crash() {
    let shards = 2;
    let router = Arc::new(RangeRouter::new(vec![1000u64]));
    let config = ShardConfig::named("groups")
        .shards(shards)
        .base(
            OnllConfig::default()
                .max_processes(1)
                .log_capacity(1024)
                .group_persist(8),
        )
        .pmem(PmemConfig::with_capacity(128 << 20).apply_pending_at_crash(0.0));
    let object = ShardedDurable::<SetSpec>::create(config.clone(), router.clone()).unwrap();
    let mut handle = object.register().unwrap();

    // Flushed group on shard 0: one fence, fully durable.
    let w = object.aggregate_window();
    for k in 0..5u64 {
        assert!(handle.buffer_update(SetOp::Add(k)).unwrap().is_none());
    }
    let flushed = handle.flush().unwrap();
    assert_eq!(flushed.len(), 1);
    assert_eq!(flushed[0].0, 0);
    assert_eq!(flushed[0].1.len(), 5);
    assert_eq!(
        w.close().persistent_fences,
        1,
        "a flushed group costs exactly one fence"
    );

    // Unflushed buffer on shard 1: never persisted, lost by the crash.
    for k in 0..4u64 {
        assert!(handle
            .buffer_update(SetOp::Add(1000 + k))
            .unwrap()
            .is_none());
    }
    assert_eq!(handle.pending(), 4);

    let pools = object.pools().to_vec();
    drop(handle);
    drop(object);
    for p in &pools {
        p.crash_and_restart();
    }
    let (recovered, report) = ShardedDurable::<SetSpec>::recover(pools, config, router).unwrap();
    assert_eq!(report.durable_indices(), vec![5, 0]);
    assert_eq!(recovered.read_latest(&SetRead::Len), SetValue::Len(5));
    assert_eq!(
        recovered.read_latest(&SetRead::Contains(1000)),
        SetValue::Bool(false),
        "unflushed buffered updates must not survive"
    );
}

/// A failed group persist must not lose the buffered operations: the persist
/// validates (log capacity, group size) before ordering anything, so the
/// buffer is restored intact and the flush can be retried.
#[test]
fn failed_flush_keeps_the_buffer_for_retry() {
    let router = Arc::new(HashRouter::new(1));
    let config = ShardConfig::named("retry")
        .shards(1)
        .base(
            OnllConfig::default()
                .max_processes(1)
                .log_capacity(2) // tiny: two individual updates fill it
                .group_persist(3),
        )
        .pmem(PmemConfig::with_capacity(64 << 20));
    let object = ShardedDurable::<SetSpec>::create(config, router).unwrap();
    let mut handle = object.register().unwrap();
    handle.update(SetOp::Add(1));
    handle.update(SetOp::Add(2)); // log now full

    assert!(handle.buffer_update(SetOp::Add(10)).unwrap().is_none());
    assert!(handle.buffer_update(SetOp::Add(11)).unwrap().is_none());
    // Third buffered op reaches the group size; the auto-flush hits LogFull.
    let err = handle.buffer_update(SetOp::Add(12)).unwrap_err();
    assert_eq!(err, onll::OnllError::LogFull);
    assert_eq!(
        handle.pending(),
        3,
        "a failed group persist must keep the buffered operations"
    );
    // Explicit flush fails the same way and still keeps the buffer.
    assert_eq!(handle.flush().unwrap_err(), onll::OnllError::LogFull);
    assert_eq!(handle.pending(), 3);
    // Nothing from the buffer leaked into the object.
    assert_eq!(handle.read(&SetRead::Len), SetValue::Len(2));
}

/// A process performing individual updates concurrently with another process's
/// in-flight *group* must tolerate a fuzzy window larger than `max_processes`
/// (the generalized Proposition 5.2 bound is `max_processes * max_group_ops`).
#[test]
fn individual_update_tolerates_a_concurrent_in_flight_group() {
    use onll::Durable;
    use std::sync::{Condvar, Mutex};

    let pool = nvm_sim::NvmPool::new(PmemConfig::with_capacity(64 << 20));
    let gate = Arc::new((Mutex::new(false), Condvar::new())); // true = release
    let parked = Arc::new(AtomicBool::new(false));
    let (gate2, parked2) = (gate.clone(), parked.clone());
    let hooks = Hooks::new(move |phase, pid| {
        if phase == Phase::BeforePersist && pid == 0 {
            parked2.store(true, Ordering::Release);
            let (lock, cvar) = &*gate2;
            let mut released = lock.lock().unwrap();
            while !*released {
                released = cvar.wait(released).unwrap();
            }
        }
    });
    let object = Durable::<SetSpec>::create_with_hooks(
        pool,
        OnllConfig::named("mixed").max_processes(2).group_persist(4),
        hooks,
    )
    .unwrap();

    // Process 0: a group of 4, stalled between order and persist (4 ordered,
    // unavailable nodes in the trace).
    let object2 = object.clone();
    let grouper = std::thread::spawn(move || {
        let mut h = object2.handle_for(0).unwrap();
        h.update_group((0..4).map(SetOp::Add))
    });
    while !parked.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    // Process 1: a plain update sees a fuzzy window of 5 > max_processes = 2.
    // It must help-persist the whole window (entries are sized for 8) rather
    // than asserting or erroring.
    let mut h1 = object.handle_for(1).unwrap();
    assert_eq!(h1.update(SetOp::Add(100)), SetValue::Bool(true));

    // Release the group and let it finish.
    {
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
    let values = grouper.join().unwrap();
    assert_eq!(values, vec![SetValue::Bool(true); 4]);
    assert_eq!(object.read_latest(&SetRead::Len), SetValue::Len(5));
    object.check_invariants().unwrap();
}

/// After recovery, handles must follow the *persisted* group geometry, not the
/// caller's template: auto-flush fires at the recovered group size.
#[test]
fn recovered_handles_use_the_persisted_group_size() {
    let router = Arc::new(HashRouter::new(1));
    let config = ShardConfig::named("geom")
        .shards(1)
        .base(OnllConfig::default().max_processes(1).group_persist(4))
        .pmem(PmemConfig::with_capacity(64 << 20).apply_pending_at_crash(0.0));
    let object = ShardedDurable::<SetSpec>::create(config, router.clone()).unwrap();
    let mut handle = object.register().unwrap();
    handle.update(SetOp::Add(1));
    let pools = object.pools().to_vec();
    drop(handle);
    drop(object);
    for p in &pools {
        p.crash_and_restart();
    }

    // Recover with a template asking for far larger groups than the persisted
    // log entries can hold; core adopts the persisted geometry (4), and the
    // facade must follow it.
    let template = ShardConfig::named("geom")
        .shards(1)
        .base(OnllConfig::default().max_processes(1).group_persist(32))
        .pmem(PmemConfig::with_capacity(64 << 20).apply_pending_at_crash(0.0));
    let (recovered, _report) = ShardedDurable::<SetSpec>::recover(pools, template, router).unwrap();
    assert_eq!(recovered.shard(0).config().max_group_ops, 4);
    let mut handle = recovered.register().unwrap();
    for k in 10..13u64 {
        assert!(handle.buffer_update(SetOp::Add(k)).unwrap().is_none());
    }
    let values = handle
        .buffer_update(SetOp::Add(13))
        .unwrap()
        .expect("auto-flush must fire at the persisted group size (4), not the template's 32");
    assert_eq!(values.len(), 4);
    assert_eq!(recovered.read_latest(&SetRead::Len), SetValue::Len(5));
}

/// Auto-flush at the configured group size: the buffer returns the group's
/// values and the whole group becomes durable with one fence.
#[test]
fn auto_flush_triggers_at_group_size() {
    let shards = 1;
    let router = Arc::new(HashRouter::new(shards));
    let config = ShardConfig::named("auto")
        .shards(shards)
        .base(OnllConfig::default().max_processes(1).group_persist(3))
        .pmem(PmemConfig::with_capacity(64 << 20));
    let object = ShardedDurable::<SetSpec>::create(config, router).unwrap();
    let mut handle = object.register().unwrap();

    let w = object.aggregate_window();
    assert!(handle.buffer_update(SetOp::Add(1)).unwrap().is_none());
    assert!(handle.buffer_update(SetOp::Add(2)).unwrap().is_none());
    let values = handle
        .buffer_update(SetOp::Add(3))
        .unwrap()
        .expect("third buffered update reaches the group size and auto-flushes");
    assert_eq!(values, vec![SetValue::Bool(true); 3]);
    assert_eq!(w.close().persistent_fences, 1);
    assert_eq!(handle.pending(), 0);
    assert_eq!(handle.read(&SetRead::Len), SetValue::Len(3));
}
