//! Property tests for shard routing: totality, stability, determinism across
//! router instances, and end-to-end agreement of a sharded object with its
//! plain sequential specification.

use durable_objects::{KvOp, KvRead, KvSpec, KvValue};
use nvm_sim::PmemConfig;
use onll::{OnllConfig, SequentialSpec};
use onll_shard::{HashRouter, RangeRouter, ShardConfig, ShardRouter, ShardedDurable};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every key maps to exactly one shard, always in range, and the mapping is
    /// identical across router instances with the same configuration (rehash
    /// with the same N is deterministic — a recovery requirement).
    #[test]
    fn hash_routing_is_total_and_stable(
        shards in 1usize..16,
        keys in proptest::collection::vec(proptest::strategy::any::<u64>(), 1..200),
    ) {
        let a = HashRouter::new(shards);
        let b = HashRouter::new(shards);
        for key in &keys {
            let s = a.route(key);
            prop_assert!(s < shards, "route out of range: {s} >= {shards}");
            prop_assert_eq!(s, a.route(key));
            prop_assert_eq!(s, b.route(key));
        }
    }

    /// String keys route identically across instances too (the KV object's key
    /// type).
    #[test]
    fn hash_routing_strings_is_stable(
        shards in 1usize..8,
        keys in proptest::collection::vec(0u32..10_000, 1..100),
    ) {
        let a = HashRouter::new(shards);
        let b = HashRouter::new(shards);
        for k in &keys {
            let key = format!("key-{k}");
            let s = ShardRouter::<String>::route(&a, &key);
            prop_assert!(s < shards);
            prop_assert_eq!(s, ShardRouter::<String>::route(&b, &key));
        }
    }

    /// Range routing is total, stable, and monotone in the key order.
    #[test]
    fn range_routing_is_total_and_monotone(
        raw_bounds in proptest::collection::vec(proptest::strategy::any::<u64>(), 0..10),
        keys in proptest::collection::vec(proptest::strategy::any::<u64>(), 1..100),
    ) {
        let mut bounds = raw_bounds;
        bounds.sort_unstable();
        bounds.dedup();
        let shards = bounds.len() + 1;
        let router = RangeRouter::new(bounds);
        prop_assert_eq!(router.shards(), shards);
        let mut sorted_keys = keys.clone();
        sorted_keys.sort_unstable();
        let mut last = 0usize;
        for key in &sorted_keys {
            let s = router.route(key);
            prop_assert!(s < shards);
            prop_assert_eq!(s, router.route(key));
            prop_assert!(s >= last, "range routing must be monotone in the key");
            last = s;
        }
    }

    /// End-to-end: a sharded KV object with hash routing agrees with the plain
    /// sequential spec on arbitrary op sequences — i.e. routing never sends a
    /// key's operations to a shard that would answer differently.
    #[test]
    fn sharded_kv_equals_sequential_spec(
        shards in 1usize..6,
        ops in proptest::collection::vec((0u8..16, 0u8..4, proptest::strategy::any::<bool>()), 1..60),
    ) {
        let config = ShardConfig::named("kv")
            .shards(shards)
            .base(OnllConfig::default().max_processes(1).log_capacity(256))
            .pmem(PmemConfig::with_capacity(128 << 20));
        let object =
            ShardedDurable::<KvSpec>::create(config, Arc::new(HashRouter::new(shards))).unwrap();
        let mut handle = object.register().unwrap();
        let mut reference = KvSpec::initialize();
        for (k, v, is_put) in &ops {
            let op = if *is_put {
                KvOp::Put(format!("key-{k}"), format!("val-{v}"))
            } else {
                KvOp::Delete(format!("key-{k}"))
            };
            let expected = reference.apply(&op);
            prop_assert_eq!(handle.update(op), expected);
        }
        for k in 0u8..16 {
            let read = KvRead::Get(format!("key-{k}"));
            prop_assert_eq!(handle.read(&read), reference.read(&read));
        }
        prop_assert_eq!(handle.read(&KvRead::Len), reference.read(&KvRead::Len));
        prop_assert_eq!(object.read_latest(&KvRead::Len), reference.read(&KvRead::Len));
        object.check_invariants().unwrap();
    }

    /// Batched (fence-amortized) submission computes the same values and final
    /// state as individual submission.
    #[test]
    fn update_batch_matches_individual_updates(
        ops in proptest::collection::vec((0u8..12, 0u8..4), 1..50),
    ) {
        let shards = 3;
        let make = || {
            let config = ShardConfig::named("kv")
                .shards(shards)
                .base(OnllConfig::default().max_processes(1).log_capacity(512).group_persist(8))
                .pmem(PmemConfig::with_capacity(128 << 20));
            ShardedDurable::<KvSpec>::create(config, Arc::new(HashRouter::new(shards))).unwrap()
        };
        let kv_ops: Vec<KvOp> = ops
            .iter()
            .map(|(k, v)| KvOp::Put(format!("key-{k}"), format!("val-{v}")))
            .collect();

        let individual = make();
        let mut h1 = individual.register().unwrap();
        let individual_values: Vec<KvValue> =
            kv_ops.iter().cloned().map(|op| h1.update(op)).collect();

        let batched = make();
        let mut h2 = batched.register().unwrap();
        let batch_values = h2.update_batch(kv_ops).unwrap();

        prop_assert_eq!(individual_values, batch_values);
        prop_assert_eq!(
            individual.read_latest(&KvRead::Len),
            batched.read_latest(&KvRead::Len)
        );
        batched.check_invariants().unwrap();
    }
}
