//! Point-in-time export of every registered metric, with a hand-rolled JSON
//! serializer (the crate is zero-dependency by design).

use crate::hist::HistogramSnapshot;

/// A named counter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Summed value across all threads.
    pub value: u64,
}

/// A named gauge value (last value set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Everything a [`crate::Telemetry`] sink has measured, frozen at one instant.
///
/// Snapshots are plain data: they can be merged (per-shard rollups), diffed by
/// re-snapshotting, serialized to JSON for bench artifacts, or rendered as
/// tables by the harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// True if nothing was recorded (or telemetry was disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<&CounterSnapshot> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Merges another snapshot into this one: counters and gauge values add,
    /// histogram distributions combine. Metrics present in only one side are
    /// kept. Used for per-shard rollups where each shard's pool carries its
    /// own sink.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|mine| mine.name == g.name) {
                Some(mine) => mine.value += g.value,
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => mine.merge(h),
                None => self.histograms.push(h.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Serializes the snapshot as a JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"combine.resolve_hits": 3},
    ///   "gauges": {"log.live_bytes": 4096},
    ///   "histograms": {
    ///     "sim.fence_ns": {"count": 10, "sum": 1234, "max": 400,
    ///                      "mean": 123.4, "p50": 127, "p90": 255, "p99": 400,
    ///                      "buckets": [[127, 6], [255, 3], [511, 1]]}
    ///   }
    /// }
    /// ```
    ///
    /// Bucket entries are `[inclusive_upper_bound, count]` pairs, empty
    /// buckets omitted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(&c.name), c.value));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(&g.name), g.value));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(idx, &c)| format!("[{}, {}]", crate::hist::bucket_upper_bound(idx), c))
                .collect();
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.1}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                json_string(&h.name),
                h.count,
                h.sum,
                h.max,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                buckets.join(", ")
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }
}

/// Escapes a string as a JSON string literal. Metric names are plain
/// identifiers, but escaping keeps the serializer total.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HistogramSnapshot;

    #[test]
    fn merge_adds_and_unions() {
        let mut a = TelemetrySnapshot {
            counters: vec![CounterSnapshot {
                name: "x".into(),
                value: 2,
            }],
            gauges: vec![],
            histograms: vec![],
        };
        let b = TelemetrySnapshot {
            counters: vec![
                CounterSnapshot {
                    name: "x".into(),
                    value: 3,
                },
                CounterSnapshot {
                    name: "y".into(),
                    value: 1,
                },
            ],
            gauges: vec![],
            histograms: vec![HistogramSnapshot::empty("h")],
        };
        a.merge(&b);
        assert_eq!(a.counter("x").unwrap().value, 5);
        assert_eq!(a.counter("y").unwrap().value, 1);
        assert!(a.histogram("h").is_some());
    }

    #[test]
    fn json_shape_is_parseable_by_eye() {
        let mut h = HistogramSnapshot::empty("lat");
        h.buckets[3] = 2;
        h.count = 2;
        h.sum = 10;
        h.max = 6;
        let snap = TelemetrySnapshot {
            counters: vec![CounterSnapshot {
                name: "hits".into(),
                value: 7,
            }],
            gauges: vec![],
            histograms: vec![h],
        };
        let json = snap.to_json();
        assert!(json.contains("\"hits\": 7"));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("[7, 2]"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
