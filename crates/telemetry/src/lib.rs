//! # onll-telemetry — zero-overhead-when-off metrics for the ONLL stack
//!
//! The paper's argument is about *where* the inherent cost of durable
//! linearizability lands: one persistent fence per detectable update. Fence
//! *counts* are already first-class in this repo (`FenceStats`, `FenceAudit`);
//! this crate adds the missing dimension — *how long* things take and *how
//! big* they are — without perturbing the hot path it measures.
//!
//! ## Model
//!
//! A [`Telemetry`] value is a cheap, cloneable handle to a metric sink. It
//! has exactly two states:
//!
//! * **Disabled** ([`Telemetry::disabled`], the default): the handle holds no
//!   allocation. Every metric handle it creates is a no-op; recording is a
//!   single branch on a `None`. Layers guard their `Instant::now()` calls on
//!   [`Telemetry::is_enabled`] / [`Histogram::is_enabled`], so a disabled
//!   sink costs neither time reads nor atomics. The bench suite enforces
//!   this contract: `BENCH_telemetry.json` asserts < 2% hot-path overhead
//!   with telemetry disabled.
//! * **Enabled** ([`Telemetry::enabled`]): metrics register lazily by name in
//!   a `Mutex`-protected map (locked at *registration* only, never while
//!   recording) and hand out lock-free handles.
//!
//! ## Metric kinds
//!
//! * [`Counter`] — monotone sum, one cache-line-padded slot per thread;
//!   `add` is a relaxed `fetch_add` on the calling thread's own line.
//! * [`Gauge`] — a single last-written value (`store`), for quantities that
//!   are already global (bytes live in a log, etc.).
//! * [`Histogram`] — log2-bucketed distribution with per-thread padded slots
//!   (the same pattern nvm-sim's `FenceStats` uses), merged on snapshot;
//!   reports count/sum/max and p50/p90/p99 at power-of-two resolution.
//!
//! ## What the stack records (when enabled)
//!
//! | layer | metrics |
//! |---|---|
//! | nvm-sim (sim) | `sim.fence_ns`, `sim.wpq_drain_ns` |
//! | nvm-sim (file) | `file.fence_ns`, `file.fsync_ns` |
//! | persist-log | `log.entry_bytes`, `log.ops_per_entry` |
//! | core phases | `phase.order_ns`, `phase.persist_ns`, `phase.linearize_ns`, `phase.response_ns`, `phase.update_ns` |
//! | core/combine | `combine.batch_size`, `combine.submit_ns`, `combine.resolve_hits`, `combine.resolve_misses` |
//! | checkpoint | `ckpt.stage_ns`, `ckpt.publish_ns`, `ckpt.truncate_ns`, `ckpt.truncated_bytes` |
//!
//! [`Telemetry::snapshot`] freezes everything into a [`TelemetrySnapshot`],
//! which merges across shards, serializes to JSON ([`TelemetrySnapshot::to_json`])
//! and renders as tables in the harness.

#![warn(missing_docs)]

mod hist;
mod slot;
mod snapshot;

pub use hist::{bucket_index, bucket_upper_bound, HistogramSnapshot, NUM_BUCKETS};
pub use slot::{telemetry_thread_slot, MAX_TELEMETRY_SLOTS};
pub use snapshot::{CounterSnapshot, GaugeSnapshot, TelemetrySnapshot};

use hist::HistogramCore;
use slot::telemetry_thread_slot as thread_slot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One thread's padded counter cell.
#[derive(Default)]
#[repr(align(128))]
struct PaddedCell(AtomicU64);

struct CounterCore {
    per_thread: Box<[PaddedCell]>,
}

impl CounterCore {
    fn new() -> Self {
        CounterCore {
            per_thread: (0..MAX_TELEMETRY_SLOTS)
                .map(|_| PaddedCell::default())
                .collect(),
        }
    }

    #[inline]
    fn add(&self, n: u64) {
        self.per_thread[thread_slot()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.per_thread
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A monotone counter handle. No-op when its [`Telemetry`] is disabled.
#[derive(Clone, Default)]
pub struct Counter {
    core: Option<Arc<CounterCore>>,
}

impl Counter {
    /// A permanently disabled counter.
    pub fn disabled() -> Self {
        Counter::default()
    }

    /// True if recording reaches a live sink.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Adds `n` (relaxed, contention-free per thread).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.core {
            core.add(n);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter(enabled={})", self.is_enabled())
    }
}

/// A last-value gauge handle. No-op when its [`Telemetry`] is disabled.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A permanently disabled gauge.
    pub fn disabled() -> Self {
        Gauge::default()
    }

    /// True if recording reaches a live sink.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge(enabled={})", self.is_enabled())
    }
}

/// A log-bucketed histogram handle. No-op when its [`Telemetry`] is disabled.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A permanently disabled histogram.
    pub fn disabled() -> Self {
        Histogram::default()
    }

    /// True if recording reaches a live sink. Call sites that need an
    /// `Instant::now()` to produce the value should check this first so a
    /// disabled sink skips the clock read too.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.core {
            core.record(value);
        }
    }

    /// Starts a stopwatch bound to this histogram; [`Stopwatch::stop`]
    /// records the elapsed nanoseconds. Reads the clock only when enabled.
    #[inline]
    pub fn start_timer(&self) -> Stopwatch {
        Stopwatch {
            start: self.core.as_ref().map(|_| Instant::now()),
            hist: self.clone(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(enabled={})", self.is_enabled())
    }
}

/// A running timer from [`Histogram::start_timer`]. Dropping it without
/// calling [`Stopwatch::stop`] records nothing.
pub struct Stopwatch {
    start: Option<Instant>,
    hist: Histogram,
}

impl Stopwatch {
    /// Stops the timer and records the elapsed nanoseconds (no-op when the
    /// histogram is disabled).
    #[inline]
    pub fn stop(self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// The live registry behind an enabled [`Telemetry`]. Name lookups lock a
/// `Mutex`, so layers resolve their handles once (at construction) and record
/// through the lock-free handles afterwards.
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<CounterCore>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

/// A cheap, cloneable handle to a metric sink — the `TelemetrySink` of the
/// stack. Defaults to disabled; see the crate docs for the full contract.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A disabled sink: every metric handle is a no-op (the default).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A live sink with an empty registry.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// True if this handle records anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Identity of the underlying sink (0 when disabled). Clones share an
    /// identity; use it to deduplicate before merging snapshots from pools
    /// that may share one sink (the per-shard pools of a partitioned
    /// `PmemConfig` all record into the same registry).
    pub fn sink_id(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |reg| Arc::as_ptr(reg) as usize)
    }

    /// Resolves (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            core: self.inner.as_ref().map(|reg| {
                reg.counters
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(CounterCore::new()))
                    .clone()
            }),
        }
    }

    /// Resolves (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|reg| {
                reg.gauges
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                    .clone()
            }),
        }
    }

    /// Resolves (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            core: self.inner.as_ref().map(|reg| {
                reg.histograms
                    .lock()
                    .unwrap()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new()))
                    .clone()
            }),
        }
    }

    /// Freezes every registered metric into a [`TelemetrySnapshot`]
    /// (empty when disabled).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(reg) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        TelemetrySnapshot {
            counters: reg
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(name, core)| CounterSnapshot {
                    name: name.clone(),
                    value: core.sum(),
                })
                .collect(),
            gauges: reg
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(name, cell)| GaugeSnapshot {
                    name: name.clone(),
                    value: cell.load(Ordering::Relaxed),
                })
                .collect(),
            histograms: reg
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(name, core)| core.snapshot(name))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Telemetry(enabled={})", self.is_enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_default_and_empty() {
        let t = Telemetry::default();
        assert!(!t.is_enabled());
        let c = t.counter("x");
        assert!(!c.is_enabled());
        c.incr(); // must be a no-op, not a panic
        t.histogram("h").record(5);
        t.gauge("g").set(9);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn counters_sum_across_threads() {
        let t = Telemetry::enabled();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = t.counter("ops");
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.snapshot().counter("ops").unwrap().value, 400);
    }

    #[test]
    fn same_name_resolves_to_same_metric() {
        let t = Telemetry::enabled();
        t.counter("n").add(2);
        t.counter("n").add(3);
        assert_eq!(t.snapshot().counter("n").unwrap().value, 5);
    }

    #[test]
    fn gauge_keeps_last_value() {
        let t = Telemetry::enabled();
        let g = t.gauge("depth");
        g.set(10);
        g.set(4);
        assert_eq!(t.snapshot().gauge("depth").unwrap().value, 4);
    }

    #[test]
    fn stopwatch_records_elapsed() {
        let t = Telemetry::enabled();
        let h = t.histogram("lat");
        let sw = h.start_timer();
        std::thread::sleep(std::time::Duration::from_millis(1));
        sw.stop();
        let snap = t.snapshot();
        let lat = snap.histogram("lat").unwrap();
        assert_eq!(lat.count, 1);
        assert!(lat.max >= 1_000_000, "slept >= 1ms, recorded {}", lat.max);
    }

    #[test]
    fn disabled_stopwatch_reads_no_clock() {
        let h = Histogram::disabled();
        h.start_timer().stop(); // no panic, nothing recorded
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t.counter("c").incr();
        assert_eq!(t2.snapshot().counter("c").unwrap().value, 1);
    }
}
