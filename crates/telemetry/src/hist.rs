//! Log-bucketed histograms with cache-line-padded per-thread slots.
//!
//! Buckets are powers of two: bucket `i` (for `i >= 1`) holds values `v` with
//! `2^(i-1) <= v < 2^i`; bucket 0 holds exactly zero. Recording touches only
//! the calling thread's padded slot (one relaxed `fetch_add` plus a
//! `fetch_max`), so concurrent recorders never share a cache line. Quantiles
//! are extracted from the merged bucket counts and are therefore exact up to
//! bucket resolution (a factor of two), which is the right fidelity for
//! latency distributions spanning nanoseconds to milliseconds.

use crate::slot::{telemetry_thread_slot, MAX_TELEMETRY_SLOTS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: bucket 0 for zero, buckets 1..=64 for each bit
/// length of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index of a value: its bit length (0 for 0).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// One thread's private view of a histogram, padded to its own cache lines so
/// recording never contends with other threads.
#[repr(align(128))]
struct HistSlot {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistSlot {
    fn default() -> Self {
        HistSlot {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The shared core of a named histogram; handles hold it behind an `Arc`.
pub(crate) struct HistogramCore {
    per_thread: Box<[HistSlot]>,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            per_thread: (0..MAX_TELEMETRY_SLOTS)
                .map(|_| HistSlot::default())
                .collect(),
        }
    }

    #[inline]
    pub(crate) fn record(&self, value: u64) {
        let slot = &self.per_thread[telemetry_thread_slot()];
        slot.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
        slot.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merges every thread's slot into one distribution.
    pub(crate) fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        let mut count = 0;
        let mut sum = 0u64;
        let mut max = 0;
        for slot in self.per_thread.iter() {
            if slot.count.load(Ordering::Relaxed) == 0 {
                continue;
            }
            for (merged, bucket) in buckets.iter_mut().zip(slot.buckets.iter()) {
                *merged += bucket.load(Ordering::Relaxed);
            }
            count += slot.count.load(Ordering::Relaxed);
            sum = sum.wrapping_add(slot.sum.load(Ordering::Relaxed));
            max = max.max(slot.max.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            name: name.to_string(),
            buckets,
            count,
            sum,
            max,
        }
    }
}

/// Immutable merged view of a histogram: total bucket counts plus the derived
/// count/sum/max, from which quantiles are computed on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Merged per-bucket counts (`buckets[i]` counts values of bit length `i`).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
    /// Largest recorded value (exact, not bucket-rounded).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the given name.
    pub fn empty(name: &str) -> Self {
        HistogramSnapshot {
            name: name.to_string(),
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, exact up to bucket resolution:
    /// the upper bound of the bucket containing the rank-`ceil(q*count)`
    /// sample, clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket-resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket-resolution).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another snapshot's distribution into this one (used for
    /// per-shard rollups).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let core = HistogramCore::new();
        for v in 1..=100u64 {
            core.record(v);
        }
        let snap = core.snapshot("t");
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        // Ranks 1..=100; p50 falls in bucket of bit length 6 ([32, 63]).
        assert_eq!(snap.p50(), 63);
        // p99 and the top land in [64, 127], clamped to the observed max.
        assert_eq!(snap.p99(), 100);
        assert_eq!(snap.quantile(1.0), 100);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let snap = HistogramCore::new().snapshot("e");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn cross_thread_records_merge() {
        let core = std::sync::Arc::new(HistogramCore::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = core.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        c.record(t * 250 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = core.snapshot("m");
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, 999);
    }

    #[test]
    fn merge_combines_distributions() {
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        a.record(10);
        b.record(1000);
        let mut sa = a.snapshot("x");
        let sb = b.snapshot("x");
        sa.merge(&sb);
        assert_eq!(sa.count, 2);
        assert_eq!(sa.max, 1000);
        assert_eq!(sa.sum, 1010);
    }
}
