//! Per-thread slot assignment for contention-free metric recording.
//!
//! Mirrors nvm-sim's thread-slot scheme (each thread gets a stable index into a
//! cache-line-padded slot array on first use) with one difference: instead of
//! panicking when more threads than slots exist, indices wrap modulo
//! [`MAX_TELEMETRY_SLOTS`]. Telemetry must never abort a workload; two threads
//! sharing a slot merely share its atomics, which stays correct because every
//! slot field is updated with atomic RMW operations.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of per-thread slots in every metric. Threads beyond this stripe onto
/// existing slots (correct, slightly more contended) rather than failing.
pub const MAX_TELEMETRY_SLOTS: usize = 256;

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % MAX_TELEMETRY_SLOTS;
}

/// The calling thread's slot index, assigned on first use and stable for the
/// thread's lifetime.
#[inline]
pub fn telemetry_thread_slot() -> usize {
    SLOT.with(|s| *s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_is_stable_within_a_thread() {
        assert_eq!(telemetry_thread_slot(), telemetry_thread_slot());
    }

    #[test]
    fn slots_stay_in_range() {
        let handles: Vec<_> = (0..16)
            .map(|_| std::thread::spawn(telemetry_thread_slot))
            .collect();
        for h in handles {
            assert!(h.join().unwrap() < MAX_TELEMETRY_SLOTS);
        }
    }
}
