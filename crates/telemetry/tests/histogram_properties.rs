//! Property tests of the lock-free histogram: merging per-thread slots must be
//! equivalent to a single-threaded reference, and the log-scaled bucket
//! boundaries must be strictly monotone and cover every `u64`.

use onll_telemetry::{bucket_index, bucket_upper_bound, Telemetry, NUM_BUCKETS};
use proptest::prelude::*;

/// Records `samples` into one histogram from a single thread and returns its
/// snapshot — the reference the concurrent recording must match.
fn reference_snapshot(samples: &[u64]) -> onll_telemetry::HistogramSnapshot {
    let telemetry = Telemetry::enabled();
    let h = telemetry.histogram("ref");
    for &s in samples {
        h.record(s);
    }
    telemetry
        .snapshot()
        .histogram("ref")
        .expect("recorded histogram")
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting the samples over worker threads (each landing in its own
    /// per-thread slot) and merging at snapshot time yields exactly the
    /// single-threaded distribution: same count, sum, max, buckets — hence
    /// identical quantiles.
    #[test]
    fn merged_per_thread_recording_matches_single_threaded_reference(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        threads in 1usize..6,
    ) {
        let reference = reference_snapshot(&samples);

        let telemetry = Telemetry::enabled();
        let chunk = samples.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in samples.chunks(chunk) {
                let h = telemetry.histogram("conc");
                scope.spawn(move || {
                    for &s in part {
                        h.record(s);
                    }
                });
            }
        });
        let snap = telemetry.snapshot();
        let merged = snap.histogram("conc").expect("recorded histogram");

        prop_assert_eq!(merged.count, reference.count);
        prop_assert_eq!(merged.sum, reference.sum);
        prop_assert_eq!(merged.max, reference.max);
        prop_assert_eq!(&merged.buckets[..], &reference.buckets[..]);
        prop_assert_eq!(merged.p50(), reference.p50());
        prop_assert_eq!(merged.p90(), reference.p90());
        prop_assert_eq!(merged.p99(), reference.p99());
    }

    /// Quantile sanity against a sorted copy of the samples: the histogram's
    /// quantile is an upper bound of the bucket holding the true quantile, so
    /// it is at least the true value and at most the bound of its bucket.
    #[test]
    fn quantiles_bracket_the_true_order_statistics(
        samples in proptest::collection::vec(0u64..1 << 48, 1..200),
    ) {
        let snap = reference_snapshot(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (q, estimate) in [(0.5, snap.p50()), (0.9, snap.p90()), (0.99, snap.p99())] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            prop_assert!(estimate >= truth, "q={q}: {estimate} < true {truth}");
            prop_assert!(
                estimate <= bucket_upper_bound(bucket_index(truth)),
                "q={q}: {estimate} above the true value's bucket bound"
            );
        }
    }

    /// Every value lands in exactly the bucket whose half-open range contains
    /// it: above the previous bucket's bound, at most its own.
    #[test]
    fn bucket_index_respects_the_boundaries(value in any::<u64>()) {
        let i = bucket_index(value);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(value <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(value > bucket_upper_bound(i - 1));
        }
    }
}

#[test]
fn bucket_boundaries_are_strictly_monotone() {
    for i in 1..NUM_BUCKETS {
        assert!(
            bucket_upper_bound(i - 1) < bucket_upper_bound(i),
            "bucket {i} bound not above bucket {}",
            i - 1
        );
    }
    assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
}
