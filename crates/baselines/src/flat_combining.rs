//! Lock-based flat-combining baseline (the Section-8 discussion).
//!
//! Each process announces its update in a per-process slot; whoever acquires the
//! combiner lock applies *all* announced operations to the state, appends the whole
//! batch to an NVM log with a **single persistent fence**, publishes the return
//! values, and releases the lock. Superficially this "costs one fence per batch",
//! but as the paper points out, every pending operation pays the price of that
//! fence anyway — it must wait for the combiner to perform it before it can return —
//! and the construction is blocking: if the combiner stalls, every announced
//! operation stalls with it. The benchmarks use this baseline to illustrate that
//! trade-off against ONLL's lock-free single fence.

use crate::interface::DurableObject;
use nvm_sim::{NvmPool, PAddr};
use onll::{OpCodec, SequentialSpec};
use parking_lot::Mutex;
use persist_log::checksum64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct AnnounceSlot<S: SequentialSpec> {
    /// Operation waiting to be combined, tagged with a ticket.
    pending: Mutex<Option<(u64, S::UpdateOp)>>,
    /// Result of the most recently combined operation, tagged with its ticket.
    result: Mutex<Option<(u64, S::Value)>>,
}

struct Combined<S: SequentialSpec> {
    state: S,
    /// Next NVM log slot.
    next_entry: u64,
    batches: u64,
    combined_ops: u64,
}

struct Inner<S: SequentialSpec> {
    slots: Vec<AnnounceSlot<S>>,
    combiner: Mutex<Combined<S>>,
    pool: NvmPool,
    base: PAddr,
    entry_size: usize,
    capacity_entries: usize,
    tickets: AtomicU64,
}

/// A blocking, flat-combining durable object: one persistent fence per combined
/// batch.
pub struct FlatCombiningDurable<S: SequentialSpec> {
    inner: Arc<Inner<S>>,
}

impl<S: SequentialSpec> Clone for FlatCombiningDurable<S> {
    fn clone(&self) -> Self {
        FlatCombiningDurable {
            inner: self.inner.clone(),
        }
    }
}

impl<S: SequentialSpec> FlatCombiningDurable<S> {
    fn entry_size(max_processes: usize) -> usize {
        // checksum u64 + seq u64 + count u32 + pad + ops
        (24 + max_processes * (4 + S::UpdateOp::MAX_ENCODED_SIZE)).div_ceil(64) * 64
    }

    /// Creates the object for up to `max_processes` concurrent announcers, with a
    /// batch log of `capacity_entries` entries.
    pub fn create(pool: NvmPool, max_processes: usize, capacity_entries: usize) -> Self {
        let entry_size = Self::entry_size(max_processes);
        let base = pool
            .alloc(capacity_entries * entry_size)
            .expect("NVM pool too small for FlatCombiningDurable");
        let slots = (0..max_processes)
            .map(|_| AnnounceSlot {
                pending: Mutex::new(None),
                result: Mutex::new(None),
            })
            .collect();
        FlatCombiningDurable {
            inner: Arc::new(Inner {
                slots,
                combiner: Mutex::new(Combined {
                    state: S::initialize(),
                    next_entry: 0,
                    batches: 0,
                    combined_ops: 0,
                }),
                pool,
                base,
                entry_size,
                capacity_entries,
                tickets: AtomicU64::new(1),
            }),
        }
    }

    /// Creates a handle bound to announce slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn handle(&self, slot: usize) -> FlatCombiningHandle<S> {
        assert!(slot < self.inner.slots.len(), "announce slot out of range");
        FlatCombiningHandle {
            inner: self.inner.clone(),
            slot,
        }
    }

    /// Number of batches combined and number of operations they contained —
    /// `(batches, operations)`. The average batch size is the amortization factor
    /// of the single per-batch fence.
    pub fn batch_stats(&self) -> (u64, u64) {
        let c = self.inner.combiner.lock();
        (c.batches, c.combined_ops)
    }
}

/// Per-process handle on a [`FlatCombiningDurable`].
pub struct FlatCombiningHandle<S: SequentialSpec> {
    inner: Arc<Inner<S>>,
    slot: usize,
}

impl<S: SequentialSpec> FlatCombiningHandle<S> {
    /// Runs one combining pass: applies every announced operation, persists the
    /// batch with one fence, and publishes results.
    fn combine(&self, combined: &mut Combined<S>) {
        let inner = &*self.inner;
        let mut batch: Vec<(usize, u64, S::UpdateOp)> = Vec::new();
        for (i, slot) in inner.slots.iter().enumerate() {
            if let Some((ticket, op)) = slot.pending.lock().take() {
                batch.push((i, ticket, op));
            }
        }
        if batch.is_empty() {
            return;
        }
        // Apply in announce-slot order (the linearization order of the batch).
        let mut values = Vec::with_capacity(batch.len());
        for (_, _, op) in &batch {
            values.push(combined.state.apply(op));
        }
        // Persist the whole batch with a single fence.
        let slot_idx = combined.next_entry % inner.capacity_entries as u64;
        let addr = inner.base + slot_idx * inner.entry_size as u64;
        let mut buf = vec![0u8; inner.entry_size];
        buf[8..16].copy_from_slice(&(combined.next_entry + 1).to_le_bytes());
        buf[16..20].copy_from_slice(&(batch.len() as u32).to_le_bytes());
        let mut off = 24;
        for (_, _, op) in &batch {
            let encoded = op.encode_to_vec();
            buf[off..off + 4].copy_from_slice(&(encoded.len() as u32).to_le_bytes());
            buf[off + 4..off + 4 + encoded.len()].copy_from_slice(&encoded);
            off += 4 + S::UpdateOp::MAX_ENCODED_SIZE;
        }
        let csum = checksum64(&buf[8..]);
        buf[0..8].copy_from_slice(&csum.to_le_bytes());
        inner.pool.write(addr, &buf);
        inner.pool.flush(addr, buf.len());
        inner.pool.fence();
        combined.next_entry += 1;
        combined.batches += 1;
        combined.combined_ops += batch.len() as u64;
        // Publish results.
        for ((i, ticket, _), value) in batch.into_iter().zip(values) {
            *inner.slots[i].result.lock() = Some((ticket, value));
        }
    }
}

impl<S: SequentialSpec> DurableObject<S> for FlatCombiningHandle<S> {
    fn update(&mut self, op: S::UpdateOp) -> S::Value {
        let inner = &*self.inner;
        let ticket = inner.tickets.fetch_add(1, Ordering::Relaxed);
        *inner.slots[self.slot].pending.lock() = Some((ticket, op));
        loop {
            // Did a combiner already serve us?
            if let Some((t, v)) = inner.slots[self.slot].result.lock().take() {
                if t == ticket {
                    return v;
                }
            }
            // Try to become the combiner.
            if let Some(mut combined) = inner.combiner.try_lock() {
                self.combine(&mut combined);
                drop(combined);
                if let Some((t, v)) = inner.slots[self.slot].result.lock().take() {
                    if t == ticket {
                        return v;
                    }
                }
            }
            std::thread::yield_now();
        }
    }

    fn read(&mut self, op: &S::ReadOp) -> S::Value {
        // Reads are served from the combined state under the lock (blocking, but no
        // persistence cost).
        self.inner.combiner.lock().state.read(op)
    }

    fn implementation_name(&self) -> &'static str {
        "flat-combining"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_objects::{CounterOp, CounterRead, CounterSpec};
    use nvm_sim::PmemConfig;

    fn pool() -> NvmPool {
        NvmPool::new(PmemConfig::with_capacity(16 << 20))
    }

    #[test]
    fn single_threaded_updates_cost_one_fence_each() {
        // With no concurrency every batch has size 1, so flat combining degrades to
        // one fence per update (plus blocking).
        let p = pool();
        let obj = FlatCombiningDurable::<CounterSpec>::create(p.clone(), 4, 1024);
        let mut h = obj.handle(0);
        for i in 1..=10 {
            let w = p.stats().op_window();
            assert_eq!(h.update(CounterOp::Increment), i);
            assert_eq!(w.close().persistent_fences, 1);
        }
        let (batches, ops) = obj.batch_stats();
        assert_eq!((batches, ops), (10, 10));
    }

    #[test]
    fn reads_do_not_fence() {
        let p = pool();
        let obj = FlatCombiningDurable::<CounterSpec>::create(p.clone(), 2, 64);
        let mut h = obj.handle(0);
        h.update(CounterOp::Add(3));
        let w = p.stats().op_window();
        assert_eq!(h.read(&CounterRead::Get), 3);
        assert_eq!(w.close().persistent_fences, 0);
    }

    #[test]
    fn concurrent_updates_are_all_applied_and_batched() {
        let p = pool();
        let threads = 4;
        let per_thread = 100;
        let obj = FlatCombiningDurable::<CounterSpec>::create(p.clone(), threads, 4096);
        let fences_after_setup = p.stats().persistent_fences();
        let mut joins = Vec::new();
        for t in 0..threads {
            let obj = obj.clone();
            joins.push(std::thread::spawn(move || {
                let mut h = obj.handle(t);
                for _ in 0..per_thread {
                    h.update(CounterOp::Increment);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(
            obj.handle(0).read(&CounterRead::Get),
            (threads * per_thread) as i64
        );
        let (batches, ops) = obj.batch_stats();
        assert_eq!(ops, (threads * per_thread) as u64);
        assert!(batches <= ops, "batches combine one or more ops each");
        // Total persistent fences (beyond setup) equals the number of batches (one
        // per batch).
        assert_eq!(p.stats().persistent_fences() - fences_after_setup, batches);
    }

    #[test]
    #[should_panic(expected = "announce slot out of range")]
    fn out_of_range_slot_panics() {
        let p = pool();
        let obj = FlatCombiningDurable::<CounterSpec>::create(p, 2, 64);
        let _ = obj.handle(5);
    }
}
