//! Lock-based flat-combining baseline (the Section-8 discussion).
//!
//! Each process announces its update in a per-process slot; whoever acquires the
//! combiner lock applies *all* announced operations to the state, appends the whole
//! batch to an NVM log with a **single persistent fence**, publishes the return
//! values, and releases the lock. Superficially this "costs one fence per batch",
//! but as the paper points out, every pending operation pays the price of that
//! fence anyway — it must wait for the combiner to perform it before it can return —
//! and the construction is blocking: if the combiner stalls, every announced
//! operation stalls with it. The benchmarks use this baseline to illustrate that
//! trade-off against ONLL's lock-free single fence (and against the lock-free
//! combining front-end `onll::DurableService`, which amortizes the same way
//! without a state copy under a lock).
//!
//! The batch log is a [`persist_log::PersistentLog`] — the same
//! one-fence-per-append, variable-length-entry, zero-copy encode path ONLL
//! uses — rather than a hand-rolled entry format, so benchmark comparisons
//! against ONLL measure the *construction*, not two different serializers.

use crate::interface::DurableObject;
use nvm_sim::NvmPool;
use onll::{OnllError, OpCodec, SequentialSpec};
use parking_lot::Mutex;
use persist_log::{LogConfig, LogError, PersistentLog};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn log_error(e: LogError) -> OnllError {
    match e {
        LogError::Full => OnllError::LogFull,
        LogError::EntryTooLarge(msg) => OnllError::Nvm(msg),
        LogError::Backend(err) => OnllError::Nvm(err.to_string()),
    }
}

/// A combined operation's published outcome, tagged with its ticket: the
/// value, or the backend failure that prevented persisting the batch (every
/// waiter of a failed batch learns the same error).
type SlotOutcome<S> = Option<(u64, Result<<S as SequentialSpec>::Value, OnllError>)>;

struct AnnounceSlot<S: SequentialSpec> {
    /// Operation waiting to be combined, tagged with a ticket.
    pending: Mutex<Option<(u64, S::UpdateOp)>>,
    /// Outcome of the most recently combined operation.
    result: Mutex<SlotOutcome<S>>,
}

struct Combined<S: SequentialSpec> {
    state: S,
    /// The batch log: one entry (and one persistent fence) per combined batch.
    log: PersistentLog,
    /// Monotone execution index stamped on batch entries (the index of the
    /// batch's last operation).
    next_index: u64,
    batches: u64,
    combined_ops: u64,
}

struct Inner<S: SequentialSpec> {
    slots: Vec<AnnounceSlot<S>>,
    combiner: Mutex<Combined<S>>,
    tickets: AtomicU64,
}

/// A blocking, flat-combining durable object: one persistent fence per combined
/// batch.
pub struct FlatCombiningDurable<S: SequentialSpec> {
    inner: Arc<Inner<S>>,
}

impl<S: SequentialSpec> Clone for FlatCombiningDurable<S> {
    fn clone(&self) -> Self {
        FlatCombiningDurable {
            inner: self.inner.clone(),
        }
    }
}

impl<S: SequentialSpec> FlatCombiningDurable<S> {
    /// Geometry of the batch log: one entry holds at most one announced
    /// operation per process.
    fn log_config(max_processes: usize, capacity_entries: usize) -> LogConfig {
        LogConfig::for_processes(max_processes)
            .op_slot_size(S::UpdateOp::MAX_ENCODED_SIZE)
            .capacity_entries(capacity_entries)
    }

    /// Creates the object for up to `max_processes` concurrent announcers, with a
    /// batch log of `capacity_entries` entries (a bounded ring: when it fills,
    /// the **entire** live window is dropped with one maintenance truncation
    /// fence and logging starts over — this baseline demonstrates the
    /// one-fence-per-batch cost model, not recovery, which is ONLL's
    /// department).
    pub fn create(pool: NvmPool, max_processes: usize, capacity_entries: usize) -> Self {
        let cfg = Self::log_config(max_processes, capacity_entries);
        let base = pool
            .alloc(PersistentLog::region_size(&cfg))
            .expect("NVM pool too small for FlatCombiningDurable");
        let log = PersistentLog::create(pool, cfg, base);
        let slots = (0..max_processes)
            .map(|_| AnnounceSlot {
                pending: Mutex::new(None),
                result: Mutex::new(None),
            })
            .collect();
        FlatCombiningDurable {
            inner: Arc::new(Inner {
                slots,
                combiner: Mutex::new(Combined {
                    state: S::initialize(),
                    log,
                    next_index: 0,
                    batches: 0,
                    combined_ops: 0,
                }),
                tickets: AtomicU64::new(1),
            }),
        }
    }

    /// Creates a handle bound to announce slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn handle(&self, slot: usize) -> FlatCombiningHandle<S> {
        assert!(slot < self.inner.slots.len(), "announce slot out of range");
        FlatCombiningHandle {
            inner: self.inner.clone(),
            slot,
        }
    }

    /// Number of batches combined and number of operations they contained —
    /// `(batches, operations)`. The average batch size is the amortization factor
    /// of the single per-batch fence.
    pub fn batch_stats(&self) -> (u64, u64) {
        let c = self.inner.combiner.lock();
        (c.batches, c.combined_ops)
    }
}

/// Per-process handle on a [`FlatCombiningDurable`].
pub struct FlatCombiningHandle<S: SequentialSpec> {
    inner: Arc<Inner<S>>,
    slot: usize,
}

impl<S: SequentialSpec> FlatCombiningHandle<S> {
    /// Runs one combining pass: persists every announced operation as one
    /// batch with a single fence, applies them, and publishes results. When
    /// the batch cannot be made durable (poisoned backend, frozen fence),
    /// **every** waiter of the batch receives the error — leaving their
    /// announce slots parked would hang them on a combiner that can never
    /// succeed, and applying unpersisted operations would let the in-memory
    /// state run ahead of the log.
    fn combine(&self, combined: &mut Combined<S>) {
        let inner = &*self.inner;
        let mut batch: Vec<(usize, u64, S::UpdateOp)> = Vec::new();
        for (i, slot) in inner.slots.iter().enumerate() {
            if let Some((ticket, op)) = slot.pending.lock().take() {
                batch.push((i, ticket, op));
            }
        }
        if batch.is_empty() {
            return;
        }
        match Self::commit_batch(combined, &batch) {
            Ok(values) => {
                for ((i, ticket, _), value) in batch.into_iter().zip(values) {
                    *inner.slots[i].result.lock() = Some((ticket, Ok(value)));
                }
            }
            Err(e) => {
                for (i, ticket, _) in batch {
                    *inner.slots[i].result.lock() = Some((ticket, Err(e.clone())));
                }
            }
        }
    }

    /// Persists `batch` as one log entry (one fence), then applies it in
    /// announce-slot order (the linearization order of the batch). Nothing is
    /// applied unless the whole batch became durable.
    fn commit_batch(
        combined: &mut Combined<S>,
        batch: &[(usize, u64, S::UpdateOp)],
    ) -> Result<Vec<S::Value>, OnllError> {
        // A full ring is wholly truncated and restarted — see `create`.
        if combined.log.free_slots() == 0 {
            combined.log.truncate().map_err(log_error)?;
        }
        let index = combined.next_index + batch.len() as u64;
        let mut writer = combined.log.begin(index).map_err(log_error)?;
        for (_, _, op) in batch {
            writer
                .push_op_with(|buf| op.encode(buf))
                .map_err(log_error)?;
        }
        writer.commit().map_err(log_error)?;
        combined.next_index = index;
        combined.batches += 1;
        combined.combined_ops += batch.len() as u64;
        Ok(batch
            .iter()
            .map(|(_, _, op)| combined.state.apply(op))
            .collect())
    }
}

impl<S: SequentialSpec> DurableObject<S> for FlatCombiningHandle<S> {
    fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        let inner = &*self.inner;
        let ticket = inner.tickets.fetch_add(1, Ordering::Relaxed);
        *inner.slots[self.slot].pending.lock() = Some((ticket, op));
        loop {
            // Did a combiner already serve us?
            if let Some((t, outcome)) = inner.slots[self.slot].result.lock().take() {
                if t == ticket {
                    return outcome;
                }
            }
            // Try to become the combiner.
            if let Some(mut combined) = inner.combiner.try_lock() {
                self.combine(&mut combined);
                drop(combined);
                if let Some((t, outcome)) = inner.slots[self.slot].result.lock().take() {
                    if t == ticket {
                        return outcome;
                    }
                }
            }
            std::thread::yield_now();
        }
    }

    fn read(&mut self, op: &S::ReadOp) -> S::Value {
        // Reads are served from the combined state under the lock (blocking, but no
        // persistence cost).
        self.inner.combiner.lock().state.read(op)
    }

    fn implementation_name(&self) -> &'static str {
        "flat-combining"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_objects::{CounterOp, CounterRead, CounterSpec};
    use nvm_sim::PmemConfig;

    fn pool() -> NvmPool {
        NvmPool::new(PmemConfig::with_capacity(16 << 20))
    }

    #[test]
    fn single_threaded_updates_cost_one_fence_each() {
        // With no concurrency every batch has size 1, so flat combining degrades to
        // one fence per update (plus blocking).
        let p = pool();
        let obj = FlatCombiningDurable::<CounterSpec>::create(p.clone(), 4, 1024);
        let mut h = obj.handle(0);
        for i in 1..=10 {
            let w = p.stats().op_window();
            assert_eq!(h.update(CounterOp::Increment), i);
            assert_eq!(w.close().persistent_fences, 1);
        }
        let (batches, ops) = obj.batch_stats();
        assert_eq!((batches, ops), (10, 10));
    }

    #[test]
    fn reads_do_not_fence() {
        let p = pool();
        let obj = FlatCombiningDurable::<CounterSpec>::create(p.clone(), 2, 64);
        let mut h = obj.handle(0);
        h.update(CounterOp::Add(3));
        let w = p.stats().op_window();
        assert_eq!(h.read(&CounterRead::Get), 3);
        assert_eq!(w.close().persistent_fences, 0);
    }

    #[test]
    fn concurrent_updates_are_all_applied_and_batched() {
        let p = pool();
        let threads = 4;
        let per_thread = 100;
        let obj = FlatCombiningDurable::<CounterSpec>::create(p.clone(), threads, 4096);
        let fences_after_setup = p.stats().persistent_fences();
        let mut joins = Vec::new();
        for t in 0..threads {
            let obj = obj.clone();
            joins.push(std::thread::spawn(move || {
                let mut h = obj.handle(t);
                for _ in 0..per_thread {
                    h.update(CounterOp::Increment);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(
            obj.handle(0).read(&CounterRead::Get),
            (threads * per_thread) as i64
        );
        let (batches, ops) = obj.batch_stats();
        assert_eq!(ops, (threads * per_thread) as u64);
        assert!(batches <= ops, "batches combine one or more ops each");
        // Total persistent fences (beyond setup) equals the number of batches (one
        // per batch).
        assert_eq!(p.stats().persistent_fences() - fences_after_setup, batches);
    }

    #[test]
    #[should_panic(expected = "announce slot out of range")]
    fn out_of_range_slot_panics() {
        let p = pool();
        let obj = FlatCombiningDurable::<CounterSpec>::create(p, 2, 64);
        let _ = obj.handle(5);
    }
}
