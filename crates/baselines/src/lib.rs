//! # baselines — comparison implementations for the ONLL benchmarks
//!
//! The paper's claims are comparative: ONLL needs *one* persistent fence per update
//! where natural alternatives need more (or give up lock-freedom). This crate
//! provides those alternatives, all generic over the same [`onll::SequentialSpec`]
//! so the benchmark harness can run identical workloads against each:
//!
//! | Implementation | Fences per update | Progress | Durable? |
//! |---|---|---|---|
//! | [`TransientObject`] | 0 | lock-free (trivially) | no — throughput ceiling |
//! | [`NaiveDurable`] | 2 (state write-back + commit mark) | blocking (per-object lock) | yes |
//! | [`WalDurable`] | 2 (log record + commit mark) | blocking (per-object lock) | yes |
//! | [`FlatCombiningDurable`] | 1 per *batch*, but all waiters stall on it | blocking (combiner lock) | yes |
//! | ONLL (crate `onll`) | **1** | **lock-free** | yes |
//!
//! `FlatCombiningDurable` implements the Section-8 discussion of lock-based
//! implementations: a combiner applies all announced operations and issues a single
//! persistent fence for the batch — but every pending operation pays the latency of
//! that fence by waiting for the combiner, so the *per-operation* cost is not
//! actually reduced, and the construction is blocking.
//!
//! All baselines implement the common [`DurableObject`] trait used by the
//! harness and benchmarks (ONLL handles implement it too, via
//! `harness::OnllAdapter`).

#![warn(missing_docs)]

mod flat_combining;
mod interface;
mod naive;
mod transient;
mod wal;

pub use flat_combining::{FlatCombiningDurable, FlatCombiningHandle};
pub use interface::DurableObject;
pub use naive::{NaiveDurable, NaiveHandle};
pub use transient::{TransientHandle, TransientObject};
pub use wal::{WalDurable, WalHandle};
