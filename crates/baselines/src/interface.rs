//! The common interface the harness and benchmarks drive.

use onll::{OnllError, SequentialSpec};

/// A per-process handle on a durable (or deliberately non-durable, for the
/// transient baseline) implementation of a sequential object.
///
/// The harness and benchmarks are written against this trait so the exact same
/// workload can be executed by ONLL and by every baseline.
pub trait DurableObject<S: SequentialSpec>: Send {
    /// Performs an update operation and returns its value, or the backend
    /// failure that prevented making it durable.
    ///
    /// Implementations must not swallow a failed persistence fence: an update
    /// whose fence reported an IO error was **not** made durable, and a run
    /// that kept counting it as committed would under-report the fences the
    /// workload actually needs (each retry pays again). A fence that is merely
    /// *frozen* by a simulated crash (`Ok(false)` from `NvmPool::fence`) is
    /// not an error — the crash harness freezes mid-update on purpose and
    /// recovery discards whatever was not yet durable.
    fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError>;

    /// Infallible convenience wrapper over [`DurableObject::try_update`] for
    /// workloads that treat a backend failure as fatal.
    ///
    /// # Panics
    ///
    /// Panics if the update could not be made durable.
    fn update(&mut self, op: S::UpdateOp) -> S::Value {
        self.try_update(op)
            .unwrap_or_else(|e| panic!("durable update failed: {e}"))
    }

    /// Performs a read-only operation and returns its value.
    fn read(&mut self, op: &S::ReadOp) -> S::Value;

    /// A short, stable name identifying the implementation (used in reports).
    fn implementation_name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::TransientObject;
    use durable_objects::{CounterOp, CounterRead, CounterSpec};

    #[test]
    fn trait_objects_are_usable() {
        let obj = TransientObject::<CounterSpec>::new();
        let mut h: Box<dyn DurableObject<CounterSpec>> = Box::new(obj.handle());
        assert_eq!(h.update(CounterOp::Increment), 1);
        assert_eq!(h.read(&CounterRead::Get), 1);
        assert!(!h.implementation_name().is_empty());
    }
}
