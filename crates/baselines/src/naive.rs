//! Naive durable baseline: persist the whole updated state on every update.
//!
//! This models a straightforward port of an in-memory object to NVM: take a lock,
//! apply the update in DRAM, write the full serialized state to NVM, flush and
//! fence it, then write and persist a commit marker (so a torn state write is
//! detected). Cost per update: **two persistent fences** plus data writes
//! proportional to the state size — both worse than ONLL's single fence and
//! O(operation)-sized log append — and the object is blocking.

use crate::interface::DurableObject;
use nvm_sim::{NvmPool, PAddr};
use onll::{OnllError, SequentialSpec, SnapshotSpec};
use parking_lot::Mutex;
use persist_log::checksum64;
use std::sync::Arc;

struct Inner<S> {
    state: S,
    version: u64,
    pool: NvmPool,
    base: PAddr,
    capacity: usize,
}

/// A blocking, naively persisted object (full-state write-back per update).
pub struct NaiveDurable<S: SequentialSpec> {
    inner: Arc<Mutex<Inner<S>>>,
}

impl<S: SequentialSpec> Clone for NaiveDurable<S> {
    fn clone(&self) -> Self {
        NaiveDurable {
            inner: self.inner.clone(),
        }
    }
}

/// Layout: two alternating slots, each `[checksum u64][version u64][len u32][pad][state...]`.
const SLOT_HEADER: usize = 24;

impl<S: SnapshotSpec> NaiveDurable<S> {
    /// Creates the object, reserving `state_capacity` bytes per state slot in `pool`.
    pub fn create(pool: NvmPool, state_capacity: usize) -> Self {
        let slot = SLOT_HEADER + state_capacity;
        let base = pool
            .alloc(2 * slot)
            .expect("NVM pool too small for NaiveDurable");
        NaiveDurable {
            inner: Arc::new(Mutex::new(Inner {
                state: S::initialize(),
                version: 0,
                pool,
                base,
                capacity: state_capacity,
            })),
        }
    }

    /// Recovers the object from its newest valid state slot.
    pub fn recover(pool: NvmPool, base: PAddr, state_capacity: usize) -> Self {
        let slot = SLOT_HEADER + state_capacity;
        let mut best: Option<(u64, S)> = None;
        for which in 0..2u64 {
            let addr = base + which * slot as u64;
            let header = pool.read_vec(addr, SLOT_HEADER);
            let csum = u64::from_le_bytes(header[0..8].try_into().unwrap());
            let version = u64::from_le_bytes(header[8..16].try_into().unwrap());
            let len = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
            if len > state_capacity {
                continue;
            }
            let full = pool.read_vec(addr, SLOT_HEADER + len);
            if checksum64(&full[8..]) != csum {
                continue;
            }
            if let Some(state) = S::decode_state(&full[SLOT_HEADER..]) {
                if best.as_ref().is_none_or(|(v, _)| version > *v) {
                    best = Some((version, state));
                }
            }
        }
        let (version, state) = best.unwrap_or((0, S::initialize()));
        NaiveDurable {
            inner: Arc::new(Mutex::new(Inner {
                state,
                version,
                pool,
                base,
                capacity: state_capacity,
            })),
        }
    }

    /// Base address of the object's state slots (needed for recovery).
    pub fn base(&self) -> PAddr {
        self.inner.lock().base
    }

    /// Creates a per-thread handle.
    pub fn handle(&self) -> NaiveHandle<S> {
        NaiveHandle {
            inner: self.inner.clone(),
        }
    }
}

/// Per-thread handle on a [`NaiveDurable`].
pub struct NaiveHandle<S: SequentialSpec> {
    inner: Arc<Mutex<Inner<S>>>,
}

impl<S: SnapshotSpec> DurableObject<S> for NaiveHandle<S> {
    fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        let mut inner = self.inner.lock();
        let value = inner.state.apply(&op);
        inner.version += 1;
        let mut state_bytes = Vec::new();
        inner.state.encode_state(&mut state_bytes);
        assert!(
            state_bytes.len() <= inner.capacity,
            "state outgrew the NaiveDurable slot capacity"
        );
        let slot = SLOT_HEADER + inner.capacity;
        let addr = inner.base + (inner.version % 2) * slot as u64;
        // Persist the payload (fence #1), then the validating header (fence #2): the
        // header must not become durable before the payload it describes.
        let mut payload = vec![0u8; SLOT_HEADER + state_bytes.len()];
        payload[8..16].copy_from_slice(&inner.version.to_le_bytes());
        payload[16..20].copy_from_slice(&(state_bytes.len() as u32).to_le_bytes());
        payload[SLOT_HEADER..].copy_from_slice(&state_bytes);
        inner.pool.write(addr + 8, &payload[8..]);
        inner.pool.flush(addr + 8, payload.len() - 8);
        // A frozen (crash-armed) fence is tolerated: the crash tests freeze
        // mid-update on purpose and recovery discards the torn slot via its
        // checksum. A backend IO error propagates — the DRAM state already
        // contains the update (full-state write-back applies first), exactly
        // the divergence a crash would leave, and recovery falls back to the
        // previous durable slot either way.
        inner.pool.fence()?;
        let csum = checksum64(&payload[8..]);
        inner.pool.write(addr, &csum.to_le_bytes());
        inner.pool.flush(addr, 8);
        inner.pool.fence()?;
        Ok(value)
    }

    fn read(&mut self, op: &S::ReadOp) -> S::Value {
        self.inner.lock().state.read(op)
    }

    fn implementation_name(&self) -> &'static str {
        "naive-full-state"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_objects::{CounterOp, CounterRead, CounterSpec};
    use nvm_sim::PmemConfig;

    fn pool() -> NvmPool {
        NvmPool::new(PmemConfig::with_capacity(8 << 20).apply_pending_at_crash(0.0))
    }

    #[test]
    fn updates_cost_two_persistent_fences() {
        let p = pool();
        let obj = NaiveDurable::<CounterSpec>::create(p.clone(), 64);
        let mut h = obj.handle();
        for _ in 0..5 {
            let w = p.stats().op_window();
            h.update(CounterOp::Increment);
            assert_eq!(w.close().persistent_fences, 2);
        }
        let w = p.stats().op_window();
        h.read(&CounterRead::Get);
        assert_eq!(w.close().persistent_fences, 0);
    }

    #[test]
    fn state_survives_crash() {
        let p = pool();
        let obj = NaiveDurable::<CounterSpec>::create(p.clone(), 64);
        let base = obj.base();
        let mut h = obj.handle();
        for _ in 0..7 {
            h.update(CounterOp::Increment);
        }
        p.crash_and_restart();
        let recovered = NaiveDurable::<CounterSpec>::recover(p, base, 64);
        assert_eq!(recovered.handle().read(&CounterRead::Get), 7);
    }

    #[test]
    fn torn_update_falls_back_to_previous_version() {
        let p = pool();
        let obj = NaiveDurable::<CounterSpec>::create(p.clone(), 64);
        let base = obj.base();
        let mut h = obj.handle();
        h.update(CounterOp::Add(5));
        // Crash between the two fences of the next update: payload durable, header not.
        p.arm_crash(nvm_sim::CrashTrigger::AfterFences(1));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.update(CounterOp::Add(100));
        }));
        p.crash_and_restart();
        let recovered = NaiveDurable::<CounterSpec>::recover(p, base, 64);
        assert_eq!(recovered.handle().read(&CounterRead::Get), 5);
    }

    #[test]
    fn concurrent_updates_serialize_correctly() {
        let p = pool();
        let obj = NaiveDurable::<CounterSpec>::create(p.clone(), 64);
        let mut joins = Vec::new();
        for _ in 0..4 {
            let obj = obj.clone();
            joins.push(std::thread::spawn(move || {
                let mut h = obj.handle();
                for _ in 0..50 {
                    h.update(CounterOp::Increment);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(obj.handle().read(&CounterRead::Get), 200);
    }
}
