//! Write-ahead-log baseline: per-update redo logging with a separate commit mark.
//!
//! This is the classic transactional recipe (compare the paper's Section 7
//! "Transactions"): append the operation to a redo log, fence it, then persist a
//! commit mark for the entry, fence again. Cost per update: **two persistent
//! fences** (one to order the record before its commit mark, one to make the commit
//! mark durable), and the object is blocking. ONLL's contribution is precisely that
//! the second fence is avoidable (by making entries self-validating and ordering
//! operations before persisting them), while also being lock-free.

use crate::interface::DurableObject;
use nvm_sim::{NvmPool, PAddr};
use onll::{OnllError, OpCodec, SequentialSpec};
use parking_lot::Mutex;
use std::sync::Arc;

/// Per-entry layout: `[committed u64][len u32][pad u32][payload ...]`, rounded up to
/// a whole number of cache lines.
const ENTRY_HEADER: usize = 16;

struct Inner<S: SequentialSpec> {
    state: S,
    pool: NvmPool,
    base: PAddr,
    entry_size: usize,
    capacity_entries: usize,
    next: u64,
}

/// A blocking durable object using per-update write-ahead logging.
pub struct WalDurable<S: SequentialSpec> {
    inner: Arc<Mutex<Inner<S>>>,
}

impl<S: SequentialSpec> Clone for WalDurable<S> {
    fn clone(&self) -> Self {
        WalDurable {
            inner: self.inner.clone(),
        }
    }
}

impl<S: SequentialSpec> WalDurable<S> {
    fn entry_size() -> usize {
        (ENTRY_HEADER + S::UpdateOp::MAX_ENCODED_SIZE).div_ceil(64) * 64
    }

    /// Creates the object with a redo log of `capacity_entries` entries.
    pub fn create(pool: NvmPool, capacity_entries: usize) -> Self {
        let entry_size = Self::entry_size();
        let base = pool
            .alloc(capacity_entries * entry_size)
            .expect("NVM pool too small for WalDurable");
        WalDurable {
            inner: Arc::new(Mutex::new(Inner {
                state: S::initialize(),
                pool,
                base,
                entry_size,
                capacity_entries,
                next: 0,
            })),
        }
    }

    /// Recovers the object by replaying every committed log entry in order.
    ///
    /// Only valid while the log has not wrapped (this baseline does not checkpoint;
    /// its purpose is cost comparison, not production use).
    pub fn recover(pool: NvmPool, base: PAddr, capacity_entries: usize) -> Self {
        let entry_size = Self::entry_size();
        let mut state = S::initialize();
        let mut next = 0u64;
        for slot in 0..capacity_entries as u64 {
            let addr = base + slot * entry_size as u64;
            let header = pool.read_vec(addr, ENTRY_HEADER);
            let committed = u64::from_le_bytes(header[0..8].try_into().unwrap());
            let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
            if committed != slot + 1 || len > S::UpdateOp::MAX_ENCODED_SIZE {
                break;
            }
            let payload = pool.read_vec(addr + ENTRY_HEADER as u64, len);
            match S::UpdateOp::decode(&payload) {
                Some(op) => {
                    state.apply(&op);
                    next = slot + 1;
                }
                None => break,
            }
        }
        WalDurable {
            inner: Arc::new(Mutex::new(Inner {
                state,
                pool,
                base,
                entry_size,
                capacity_entries,
                next,
            })),
        }
    }

    /// Base address of the redo log (needed for recovery).
    pub fn base(&self) -> PAddr {
        self.inner.lock().base
    }

    /// Number of updates applied so far.
    pub fn len(&self) -> u64 {
        self.inner.lock().next
    }

    /// True if no update has been applied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates a per-thread handle.
    pub fn handle(&self) -> WalHandle<S> {
        WalHandle {
            inner: self.inner.clone(),
        }
    }
}

/// Per-thread handle on a [`WalDurable`].
pub struct WalHandle<S: SequentialSpec> {
    inner: Arc<Mutex<Inner<S>>>,
}

impl<S: SequentialSpec> DurableObject<S> for WalHandle<S> {
    fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        let mut inner = self.inner.lock();
        let slot = inner.next % inner.capacity_entries as u64;
        let addr = inner.base + slot * inner.entry_size as u64;
        let encoded = op.encode_to_vec();
        // 1. Write the redo record and fence it (fence #1): the record must be
        //    durable before its commit mark.
        let mut record = vec![0u8; ENTRY_HEADER + encoded.len()];
        record[8..12].copy_from_slice(&(encoded.len() as u32).to_le_bytes());
        record[ENTRY_HEADER..].copy_from_slice(&encoded);
        inner.pool.write(addr + 8, &record[8..]);
        inner.pool.flush(addr + 8, record.len() - 8);
        // A frozen (crash-armed) fence is tolerated: the crash tests freeze
        // mid-update on purpose and recovery discards any record without a
        // matching commit mark. A backend IO error is a real failure — the
        // update was not made durable and must not be acknowledged.
        inner.pool.fence()?;
        // 2. Persist the commit mark (fence #2).
        let commit = inner.next + 1;
        inner.pool.write(addr, &commit.to_le_bytes());
        inner.pool.flush(addr, 8);
        inner.pool.fence()?;
        inner.next += 1;
        Ok(inner.state.apply(&op))
    }

    fn read(&mut self, op: &S::ReadOp) -> S::Value {
        self.inner.lock().state.read(op)
    }

    fn implementation_name(&self) -> &'static str {
        "wal-2-fence"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_objects::{CounterOp, CounterRead, CounterSpec, KvOp, KvRead, KvSpec, KvValue};
    use nvm_sim::PmemConfig;

    fn pool() -> NvmPool {
        NvmPool::new(PmemConfig::with_capacity(16 << 20).apply_pending_at_crash(0.0))
    }

    #[test]
    fn updates_cost_two_persistent_fences_reads_zero() {
        let p = pool();
        let obj = WalDurable::<CounterSpec>::create(p.clone(), 128);
        let mut h = obj.handle();
        for _ in 0..10 {
            let w = p.stats().op_window();
            h.update(CounterOp::Increment);
            assert_eq!(w.close().persistent_fences, 2);
        }
        let w = p.stats().op_window();
        h.read(&CounterRead::Get);
        assert_eq!(w.close().persistent_fences, 0);
    }

    #[test]
    fn committed_updates_survive_a_crash() {
        let p = pool();
        let obj = WalDurable::<KvSpec>::create(p.clone(), 128);
        let base = obj.base();
        let mut h = obj.handle();
        h.update(KvOp::Put("a".into(), "1".into()));
        h.update(KvOp::Put("b".into(), "2".into()));
        h.update(KvOp::Delete("a".into()));
        p.crash_and_restart();
        let rec = WalDurable::<KvSpec>::recover(p, base, 128);
        assert_eq!(rec.len(), 3);
        let mut h = rec.handle();
        assert_eq!(h.read(&KvRead::Get("a".into())), KvValue::Value(None));
        assert_eq!(
            h.read(&KvRead::Get("b".into())),
            KvValue::Value(Some("2".into()))
        );
    }

    #[test]
    fn uncommitted_record_is_not_replayed() {
        let p = pool();
        let obj = WalDurable::<CounterSpec>::create(p.clone(), 64);
        let base = obj.base();
        let mut h = obj.handle();
        h.update(CounterOp::Add(10));
        // Crash after fence #1 of the second update (record durable, commit mark not).
        p.arm_crash(nvm_sim::CrashTrigger::AfterFences(1));
        h.update(CounterOp::Add(100));
        p.crash_and_restart();
        let rec = WalDurable::<CounterSpec>::recover(p, base, 64);
        assert_eq!(rec.handle().read(&CounterRead::Get), 10);
    }

    #[test]
    fn concurrent_updates_serialize() {
        let p = pool();
        let obj = WalDurable::<CounterSpec>::create(p.clone(), 1024);
        let mut joins = Vec::new();
        for _ in 0..4 {
            let obj = obj.clone();
            joins.push(std::thread::spawn(move || {
                let mut h = obj.handle();
                for _ in 0..100 {
                    h.update(CounterOp::Increment);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(obj.handle().read(&CounterRead::Get), 400);
        assert_eq!(obj.len(), 400);
    }
}
