//! Transient baseline: a concurrent but non-durable object.
//!
//! This is the throughput ceiling: no NVM writes, no flushes, no fences. Any
//! durable implementation's cost relative to this baseline is the "cost of
//! remembering"; the paper's result is that the unavoidable part of that cost is
//! one persistent fence per update.

use crate::interface::DurableObject;
use onll::{OnllError, SequentialSpec};
use parking_lot::Mutex;
use std::sync::Arc;

/// A shared, in-DRAM (non-durable) object.
pub struct TransientObject<S: SequentialSpec> {
    state: Arc<Mutex<S>>,
}

impl<S: SequentialSpec> Clone for TransientObject<S> {
    fn clone(&self) -> Self {
        TransientObject {
            state: self.state.clone(),
        }
    }
}

impl<S: SequentialSpec> Default for TransientObject<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: SequentialSpec> TransientObject<S> {
    /// Creates the object in its initial state.
    pub fn new() -> Self {
        TransientObject {
            state: Arc::new(Mutex::new(S::initialize())),
        }
    }

    /// Creates a per-thread handle.
    pub fn handle(&self) -> TransientHandle<S> {
        TransientHandle {
            state: self.state.clone(),
        }
    }
}

/// Per-thread handle on a [`TransientObject`].
pub struct TransientHandle<S: SequentialSpec> {
    state: Arc<Mutex<S>>,
}

impl<S: SequentialSpec> DurableObject<S> for TransientHandle<S> {
    fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        // Nothing is persisted, so nothing can fail to persist.
        Ok(self.state.lock().apply(&op))
    }

    fn read(&mut self, op: &S::ReadOp) -> S::Value {
        self.state.lock().read(op)
    }

    fn implementation_name(&self) -> &'static str {
        "transient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_objects::{CounterOp, CounterRead, CounterSpec};

    #[test]
    fn sequential_behaviour_matches_spec() {
        let obj = TransientObject::<CounterSpec>::new();
        let mut h = obj.handle();
        assert_eq!(h.update(CounterOp::Add(5)), 5);
        assert_eq!(h.update(CounterOp::Add(-2)), 3);
        assert_eq!(h.read(&CounterRead::Get), 3);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let obj = TransientObject::<CounterSpec>::new();
        let mut joins = Vec::new();
        for _ in 0..4 {
            let obj = obj.clone();
            joins.push(std::thread::spawn(move || {
                let mut h = obj.handle();
                for _ in 0..500 {
                    h.update(CounterOp::Increment);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(obj.handle().read(&CounterRead::Get), 2000);
    }
}
