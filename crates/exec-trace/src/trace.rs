//! The lock-free execution trace (Listing 2 of the paper).

use crate::node::TraceNode;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// A lock-free, prepend-only execution trace.
///
/// The trace owns its nodes: they are allocated on insert and deallocated when the
/// trace is dropped (or, for the Section-8 reclamation extension, when
/// [`ExecutionTrace::free_retired`] is invoked at a quiescent point after
/// [`ExecutionTrace::reclaim_prefix`]).
pub struct ExecutionTrace<T> {
    /// Latest inserted node (the youngest); traversals go from here towards the
    /// sentinel via `next` pointers.
    tail: AtomicPtr<TraceNode<T>>,
    /// The sentinel INITIALIZE node (execution index 0, always available).
    sentinel: *mut TraceNode<T>,
    /// Oldest index that has NOT been reclaimed (sentinel excluded). Everything
    /// strictly below this (except the sentinel) has been unlinked.
    reclaim_floor: AtomicU64,
    /// Unlinked nodes awaiting deallocation at a quiescent point.
    retired: Mutex<Vec<*mut TraceNode<T>>>,
}

// SAFETY: the raw pointers are only ever dereferenced while the trace is alive, and
// nodes are only deallocated under the reclamation contract documented on
// `reclaim_prefix` / `free_retired`.
unsafe impl<T: Send + Sync> Send for ExecutionTrace<T> {}
unsafe impl<T: Send + Sync> Sync for ExecutionTrace<T> {}

impl<T> ExecutionTrace<T> {
    /// Creates a trace containing only the INITIALIZE sentinel (index 0,
    /// available), mirroring the constructor in Listing 2.
    pub fn new(initialize_op: T) -> Self {
        Self::with_base(initialize_op, 0)
    }

    /// Creates a trace whose sentinel carries execution index `base_idx`.
    ///
    /// Used when recovering from a checkpoint (Section 8): the sentinel then stands
    /// for "the object state after the first `base_idx` updates", and newly inserted
    /// nodes continue the original execution-index sequence, so persistent log
    /// entries written before and after the crash remain mutually consistent.
    pub fn with_base(initialize_op: T, base_idx: u64) -> Self {
        let sentinel = Box::into_raw(Box::new(TraceNode::new(initialize_op, base_idx, true)));
        ExecutionTrace {
            tail: AtomicPtr::new(sentinel),
            sentinel,
            reclaim_floor: AtomicU64::new(base_idx + 1),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Execution index of the sentinel (0 for a fresh object, the checkpoint index
    /// after a checkpoint-based recovery).
    pub fn base_idx(&self) -> u64 {
        self.sentinel().idx()
    }

    /// The sentinel (INITIALIZE) node.
    pub fn sentinel(&self) -> &TraceNode<T> {
        unsafe { &*self.sentinel }
    }

    /// The youngest node in the trace (the sentinel if no operation was inserted).
    pub fn tail(&self) -> &TraceNode<T> {
        unsafe { &*self.tail.load(Ordering::Acquire) }
    }

    /// Execution index of the youngest node (0 if only the sentinel exists).
    pub fn tail_idx(&self) -> u64 {
        self.tail().idx()
    }

    /// Number of update operations ever inserted (excludes the sentinel; with a
    /// non-zero base index, counts only operations inserted into *this* trace).
    pub fn len(&self) -> u64 {
        self.tail_idx() - self.base_idx()
    }

    /// True if no update operation has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a new node carrying `op` at the tail and returns it. This is the
    /// *order* stage of an ONLL update: the node's execution index fixes the
    /// operation's position in the linearization order, but the node is not yet
    /// available (not yet linearized, not yet visible to readers).
    ///
    /// Lock-free: a CAS loop on the tail pointer (Listing 2, `insert`).
    pub fn insert(&self, op: T) -> &TraceNode<T> {
        let node = Box::into_raw(Box::new(TraceNode::new(op, 0, false)));
        loop {
            let ltail = self.tail.load(Ordering::Acquire);
            // SAFETY: ltail is either the sentinel or a node owned by this trace, and
            // `node` is unpublished, so writing its idx/next fields is race-free.
            unsafe {
                let ltail_idx = (*ltail).idx();
                (*node).set_idx(ltail_idx + 1);
                (*node).set_next(ltail);
            }
            if self
                .tail
                .compare_exchange_weak(ltail, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return unsafe { &*node };
            }
        }
    }

    /// Sets the node's available flag. This is the *linearize* stage: the operation
    /// (and all unavailable operations ordered before it) become visible to readers
    /// and are considered linearized.
    pub fn set_available(&self, node: &TraceNode<T>) {
        node.set_available();
    }

    /// Returns the youngest node with a set available flag, walking back from the
    /// tail (Listing 2, `latestAvailable`). Wait-free: terminates within
    /// MAX_PROCESSES steps by Proposition 5.2 (and at the sentinel in any case).
    pub fn latest_available(&self) -> &TraceNode<T> {
        let mut cur = self.tail();
        loop {
            if cur.is_available() {
                return cur;
            }
            match cur.prev() {
                Some(prev) => cur = prev,
                None => return cur, // the sentinel is always available; defensive
            }
        }
    }

    /// Collects the fuzzy-window operations starting at `node`: `node`'s own
    /// operation followed by the operations of consecutively older nodes whose
    /// available flag is unset, stopping (exclusive) at the first available node
    /// (Listing 2, `getFuzzyOps`). `node` itself is included regardless of its flag
    /// state only if its flag is unset — in ONLL it is always unset at this point.
    pub fn fuzzy_nodes_from<'a>(&'a self, node: &'a TraceNode<T>) -> Vec<&'a TraceNode<T>> {
        let mut out = Vec::new();
        let mut cur = node;
        while !cur.is_available() {
            out.push(cur);
            match cur.prev() {
                Some(prev) => cur = prev,
                None => break,
            }
        }
        out
    }

    /// Iterates from `node` towards the sentinel (inclusive of both ends).
    pub fn iter_from<'a>(&'a self, node: &'a TraceNode<T>) -> TraceIter<'a, T> {
        TraceIter {
            cur: Some(node),
            _trace: self,
        }
    }

    /// Iterates from the current tail towards the sentinel.
    pub fn iter(&self) -> TraceIter<'_, T> {
        self.iter_from(self.tail())
    }

    /// Returns the nodes with execution index in `(after_idx, node.idx()]`, oldest
    /// first. Used by local views to replay only the missing suffix.
    pub fn nodes_between<'a>(
        &'a self,
        after_idx: u64,
        node: &'a TraceNode<T>,
    ) -> Vec<&'a TraceNode<T>> {
        let mut out: Vec<&TraceNode<T>> = self
            .iter_from(node)
            .take_while(|n| n.idx() > after_idx)
            .collect();
        out.reverse();
        out
    }

    /// Oldest non-reclaimed execution index (1 if nothing was reclaimed).
    pub fn reclaim_floor(&self) -> u64 {
        self.reclaim_floor.load(Ordering::Acquire)
    }

    /// Number of nodes retired by [`ExecutionTrace::reclaim_prefix`] and not yet
    /// freed.
    pub fn retired_count(&self) -> usize {
        self.retired.lock().len()
    }

    /// Unlinks every node with execution index strictly below `min_idx` (the
    /// sentinel always stays), re-pointing the oldest surviving node at the
    /// sentinel. This is the Section-8 memory-reclamation extension: it is safe to
    /// call once every process's local view has advanced to at least `min_idx`,
    /// because such processes never traverse below their own view again.
    ///
    /// The unlinked nodes are *retired*, not freed — concurrent traversals that
    /// started before the unlink may still be walking them. Call
    /// [`ExecutionTrace::free_retired`] from a quiescent point to release the
    /// memory. Returns the number of nodes retired by this call.
    pub fn reclaim_prefix(&self, min_idx: u64) -> usize {
        let floor = self.reclaim_floor.load(Ordering::Acquire);
        if min_idx <= floor {
            return 0;
        }
        // Find the oldest surviving node (idx >= min_idx) by walking from the tail.
        // Everything strictly older gets unlinked.
        let tail = self.tail();
        if tail.idx() < min_idx {
            // Nothing old enough is linked after the cut point; nothing to do (we
            // never reclaim the tail itself to keep the structure simple).
            return 0;
        }
        let mut cut = tail;
        while cut.idx() > min_idx {
            match cut.prev() {
                Some(prev) if prev.idx() >= min_idx => cut = prev,
                _ => break,
            }
        }
        // `cut` is now the oldest surviving node. Retire everything between it and
        // the sentinel.
        let mut retired = Vec::new();
        let mut cur = cut.next_ptr();
        while !cur.is_null() && cur != self.sentinel {
            retired.push(cur);
            cur = unsafe { (*cur).next_ptr() };
        }
        cut.set_next(self.sentinel);
        let count = retired.len();
        self.retired.lock().extend(retired);
        self.reclaim_floor.store(min_idx, Ordering::Release);
        count
    }

    /// Frees nodes retired by [`ExecutionTrace::reclaim_prefix`].
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no thread still holds references to retired
    /// nodes (i.e. every traversal that could have observed them has completed).
    pub unsafe fn free_retired(&self) -> usize {
        let mut retired = self.retired.lock();
        let n = retired.len();
        for ptr in retired.drain(..) {
            drop(unsafe { Box::from_raw(ptr) });
        }
        n
    }

    /// Length of the longest run of consecutive unavailable nodes ending at the
    /// tail (the fuzzy window size). Proposition 5.2 bounds this by the number of
    /// processes.
    pub fn fuzzy_window_len(&self) -> usize {
        self.fuzzy_nodes_from(self.tail()).len()
    }
}

impl<T> Drop for ExecutionTrace<T> {
    fn drop(&mut self) {
        // Free the retired nodes.
        for ptr in self.retired.get_mut().drain(..) {
            drop(unsafe { Box::from_raw(ptr) });
        }
        // Free the linked chain from tail to sentinel (inclusive).
        let mut cur = *self.tail.get_mut();
        while !cur.is_null() {
            let next = unsafe { (*cur).next_ptr() };
            drop(unsafe { Box::from_raw(cur) });
            cur = next;
        }
    }
}

/// Iterator over trace nodes from a starting node towards the sentinel.
pub struct TraceIter<'a, T> {
    cur: Option<&'a TraceNode<T>>,
    _trace: &'a ExecutionTrace<T>,
}

impl<'a, T> Iterator for TraceIter<'a, T> {
    type Item = &'a TraceNode<T>;

    fn next(&mut self) -> Option<Self::Item> {
        let cur = self.cur?;
        self.cur = cur.prev();
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn new_trace_contains_only_the_sentinel() {
        let t: ExecutionTrace<u32> = ExecutionTrace::new(0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.tail_idx(), 0);
        assert!(t.sentinel().is_available());
        assert_eq!(t.latest_available().idx(), 0);
    }

    #[test]
    fn insert_assigns_consecutive_indices() {
        let t = ExecutionTrace::new("init");
        let a = t.insert("a");
        let b = t.insert("b");
        let c = t.insert("c");
        assert_eq!((a.idx(), b.idx(), c.idx()), (1, 2, 3));
        assert_eq!(t.len(), 3);
        assert_eq!(*t.tail().op(), "c");
    }

    #[test]
    fn latest_available_skips_unavailable_suffix() {
        let t = ExecutionTrace::new(0u32);
        let n1 = t.insert(1);
        t.set_available(n1);
        let _n2 = t.insert(2);
        let _n3 = t.insert(3);
        assert_eq!(t.latest_available().idx(), 1);
        assert_eq!(t.fuzzy_window_len(), 2);
    }

    #[test]
    fn setting_later_available_flag_shrinks_the_fuzzy_window() {
        // Figure 2: op2 available makes op1 non-fuzzy even though op1's flag is unset.
        let t = ExecutionTrace::new(());
        let _op1 = t.insert(());
        let op2 = t.insert(());
        let _op3 = t.insert(());
        let _op4 = t.insert(());
        t.set_available(op2);
        assert_eq!(t.latest_available().idx(), 2);
        assert_eq!(t.fuzzy_window_len(), 2); // op3 and op4
    }

    #[test]
    fn fuzzy_nodes_from_collects_own_then_older_unavailable() {
        let t = ExecutionTrace::new("init");
        let a = t.insert("a");
        t.set_available(a);
        let b = t.insert("b");
        let c = t.insert("c");
        let fuzzy = t.fuzzy_nodes_from(c);
        let ops: Vec<&str> = fuzzy.iter().map(|n| *n.op()).collect();
        assert_eq!(ops, vec!["c", "b"]);
        assert_eq!(fuzzy[0].idx(), 3);
        assert_eq!(fuzzy[1].idx(), 2);
        let _ = b;
    }

    #[test]
    fn fuzzy_nodes_from_available_node_is_empty() {
        let t = ExecutionTrace::new(());
        let a = t.insert(());
        t.set_available(a);
        assert!(t.fuzzy_nodes_from(a).is_empty());
    }

    #[test]
    fn iter_walks_back_to_the_sentinel() {
        let t = ExecutionTrace::new(0u32);
        for i in 1..=4 {
            t.insert(i);
        }
        let idxs: Vec<u64> = t.iter().map(|n| n.idx()).collect();
        assert_eq!(idxs, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn nodes_between_returns_suffix_oldest_first() {
        let t = ExecutionTrace::new(0u32);
        for i in 1..=5 {
            t.insert(i * 10);
        }
        let tail = t.tail();
        let between = t.nodes_between(2, tail);
        let idxs: Vec<u64> = between.iter().map(|n| n.idx()).collect();
        assert_eq!(idxs, vec![3, 4, 5]);
        let empty = t.nodes_between(5, tail);
        assert!(empty.is_empty());
    }

    #[test]
    fn concurrent_inserts_get_unique_indices() {
        let t = Arc::new(ExecutionTrace::new(0u64));
        let threads = 4;
        let per_thread = 200;
        let mut handles = Vec::new();
        for tid in 0..threads {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                let mut idxs = Vec::new();
                for i in 0..per_thread {
                    let n = t.insert((tid * per_thread + i) as u64);
                    idxs.push(n.idx());
                    t.set_available(n);
                }
                idxs
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (1..=(threads * per_thread) as u64).collect();
        assert_eq!(all, expected, "every index assigned exactly once");
        assert_eq!(t.len(), (threads * per_thread) as u64);
        // Chain is intact: walking from the tail reaches the sentinel in len steps.
        assert_eq!(t.iter().count() as u64, t.len() + 1);
    }

    #[test]
    fn concurrent_inserts_preserve_prefix_ordering() {
        // Each node's prev must have exactly idx-1: the chain encodes the total
        // insertion order.
        let t = Arc::new(ExecutionTrace::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let n = t.insert(i);
                    t.set_available(n);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for node in t.iter() {
            if let Some(prev) = node.prev() {
                assert_eq!(prev.idx() + 1, node.idx());
            }
        }
    }

    #[test]
    fn reclaim_prefix_unlinks_old_nodes_but_keeps_sentinel() {
        let t = ExecutionTrace::new(0u32);
        let mut nodes = Vec::new();
        for i in 1..=10 {
            let n = t.insert(i);
            t.set_available(n);
            nodes.push(n);
        }
        let retired = t.reclaim_prefix(6);
        assert_eq!(retired, 5, "indices 1..=5 retired");
        assert_eq!(t.retired_count(), 5);
        assert_eq!(t.reclaim_floor(), 6);
        // Walking from the tail now reaches the sentinel after the surviving nodes.
        let idxs: Vec<u64> = t.iter().map(|n| n.idx()).collect();
        assert_eq!(idxs, vec![10, 9, 8, 7, 6, 0]);
        // Reclaiming again with the same floor is a no-op.
        assert_eq!(t.reclaim_prefix(6), 0);
        // Freeing retired nodes at a quiescent point.
        assert_eq!(unsafe { t.free_retired() }, 5);
        assert_eq!(t.retired_count(), 0);
    }

    #[test]
    fn reclaim_prefix_does_not_cut_beyond_the_tail() {
        let t = ExecutionTrace::new(0u32);
        let n = t.insert(1);
        t.set_available(n);
        assert_eq!(t.reclaim_prefix(100), 0);
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn latest_available_still_works_after_reclamation() {
        let t = ExecutionTrace::new(0u32);
        for i in 1..=5 {
            let n = t.insert(i);
            t.set_available(n);
        }
        t.reclaim_prefix(4);
        let _unavail = t.insert(6);
        assert_eq!(t.latest_available().idx(), 5);
    }

    #[test]
    fn drop_frees_all_nodes_without_leaking_or_crashing() {
        // Smoke test: a large trace with retired nodes dropped cleanly.
        let t = ExecutionTrace::new(0u64);
        for i in 1..=1000 {
            let n = t.insert(i);
            t.set_available(n);
        }
        t.reclaim_prefix(500);
        drop(t);
    }

    #[test]
    fn with_base_continues_the_index_sequence() {
        let t = ExecutionTrace::with_base("checkpoint", 41);
        assert_eq!(t.base_idx(), 41);
        assert_eq!(t.tail_idx(), 41);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let n = t.insert("next");
        assert_eq!(n.idx(), 42);
        assert_eq!(t.latest_available().idx(), 41);
        t.set_available(n);
        assert_eq!(t.latest_available().idx(), 42);
    }

    #[test]
    fn insert_preserves_op_payloads() {
        let t = ExecutionTrace::new(String::from("init"));
        let a = t.insert(String::from("hello"));
        let b = t.insert(String::from("world"));
        assert_eq!(a.op(), "hello");
        assert_eq!(b.op(), "world");
        assert_eq!(t.sentinel().op(), "init");
    }
}
