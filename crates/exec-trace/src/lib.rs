//! # exec-trace — the transient lock-free execution trace
//!
//! ONLL keeps the state of a durable object as the sequence of update operations
//! applied to it. That sequence lives in a *transient* (DRAM) lock-free execution
//! trace (Listing 2 of the paper): a prepend-only list of nodes, each carrying an
//! operation, its execution index, and an `available` flag.
//!
//! * **Insert** ("order" stage): a CAS loop on the tail assigns the node the next
//!   execution index and links it to the previous tail. The `available` flag starts
//!   unset, so the node is not yet visible to readers.
//! * **Fuzzy window**: the maximal suffix of nodes with no later available node.
//!   These are operations whose persistence and linearization are not yet
//!   guaranteed. Proposition 5.2: among any `MAX_PROCESSES + 1` consecutive nodes at
//!   least one is available, so the fuzzy window never exceeds `MAX_PROCESSES`
//!   nodes (this crate exposes the invariant as a checkable property).
//! * **`latest_available`** ("linearize later"): readers walk back from the tail to
//!   the first available node and compute their return value from the prefix ending
//!   there. Setting a node's available flag is the linearization point of its
//!   operation (and, transitively, of every unavailable operation ordered before
//!   it).
//!
//! The trace also implements the Section-8 extension: prefix reclamation driven by
//! per-process progress, so long-lived objects do not hold their entire history in
//! memory once every process's local view has advanced past a prefix.
//!
//! ```
//! use exec_trace::ExecutionTrace;
//!
//! let trace: ExecutionTrace<&'static str> = ExecutionTrace::new("INIT");
//! let n1 = trace.insert("increment");
//! assert_eq!(n1.idx(), 1);
//! // Not yet linearized: readers still see the sentinel.
//! assert_eq!(trace.latest_available().idx(), 0);
//! trace.set_available(n1);
//! assert_eq!(trace.latest_available().idx(), 1);
//! ```

#![warn(missing_docs)]

mod fuzzy;
mod node;
mod trace;

pub use fuzzy::{check_fuzzy_invariant, fuzzy_window_indices, partition_indices, FuzzyViolation};
pub use node::TraceNode;
pub use trace::{ExecutionTrace, TraceIter};
