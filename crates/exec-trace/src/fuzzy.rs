//! Fuzzy-window invariants (Figure 2 and Proposition 5.2 of the paper).
//!
//! The execution trace is partitioned into a *non-fuzzy prefix* (operations whose
//! linearization point has passed and whose persistence is guaranteed) and a *fuzzy
//! window* postfix (currently executing operations). The fuzzy window spans from
//! the tail back to — but not including — the youngest node with a set available
//! flag. Proposition 5.2: at any time, among any `MAX_PROCESSES + 1` consecutive
//! nodes at least one is available, because a process must set its previous node's
//! flag before invoking a new operation; hence the fuzzy window holds at most
//! `MAX_PROCESSES` nodes.

use crate::node::TraceNode;
use crate::trace::ExecutionTrace;

/// A violation of the fuzzy-window bound, reported by [`check_fuzzy_invariant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyViolation {
    /// Execution index of the youngest node of the offending run.
    pub start_idx: u64,
    /// Length of the run of consecutive unavailable nodes.
    pub run_len: usize,
    /// The bound that was exceeded.
    pub bound: usize,
}

/// Checks Proposition 5.2 over the whole trace: every run of consecutive
/// unavailable nodes has length at most `max_processes`.
///
/// Note this checks *runs anywhere in the trace*, which is stronger than only
/// checking the window at the tail; the proposition as stated covers any
/// `MAX_PROCESSES + 1` consecutive nodes.
pub fn check_fuzzy_invariant<T>(
    trace: &ExecutionTrace<T>,
    max_processes: usize,
) -> Result<(), FuzzyViolation> {
    let mut run_len = 0usize;
    let mut run_start: u64 = 0;
    for node in trace.iter() {
        if node.is_available() {
            run_len = 0;
        } else {
            if run_len == 0 {
                run_start = node.idx();
            }
            run_len += 1;
            if run_len > max_processes {
                return Err(FuzzyViolation {
                    start_idx: run_start,
                    run_len,
                    bound: max_processes,
                });
            }
        }
    }
    Ok(())
}

/// Returns the execution indices of the nodes currently in the fuzzy window
/// (youngest first). Convenience for diagnostics and the Figure 2 example.
pub fn fuzzy_window_indices<T>(trace: &ExecutionTrace<T>) -> Vec<u64> {
    trace
        .fuzzy_nodes_from(trace.tail())
        .iter()
        .map(|n| n.idx())
        .collect()
}

/// Splits the trace into `(non_fuzzy_indices, fuzzy_indices)`, both youngest first.
/// A node is non-fuzzy iff some node with an index `>=` its own is available.
pub fn partition_indices<T>(trace: &ExecutionTrace<T>) -> (Vec<u64>, Vec<u64>) {
    let mut fuzzy = Vec::new();
    let mut non_fuzzy = Vec::new();
    let mut seen_available = false;
    for node in trace.iter() {
        if node.is_available() {
            seen_available = true;
        }
        if seen_available {
            non_fuzzy.push(node.idx());
        } else {
            fuzzy.push(node.idx());
        }
    }
    (non_fuzzy, fuzzy)
}

#[allow(dead_code)]
fn is_fuzzy<T>(trace: &ExecutionTrace<T>, node: &TraceNode<T>) -> bool {
    fuzzy_window_indices(trace).contains(&node.idx())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the exact trace of Figure 2: INIT (available), op1 (unset), op2 (set),
    /// op3 (unset), op4 (unset).
    fn figure2_trace() -> ExecutionTrace<&'static str> {
        let t = ExecutionTrace::new("INIT");
        let _op1 = t.insert("op1");
        let op2 = t.insert("op2");
        let _op3 = t.insert("op3");
        let _op4 = t.insert("op4");
        t.set_available(op2);
        t
    }

    #[test]
    fn figure2_partition_matches_the_paper() {
        let t = figure2_trace();
        let (non_fuzzy, fuzzy) = partition_indices(&t);
        // Fuzzy window: op4 and op3. Non-fuzzy: op2, op1 (flag unset but an
        // operation after it is available), INIT.
        assert_eq!(fuzzy, vec![4, 3]);
        assert_eq!(non_fuzzy, vec![2, 1, 0]);
        assert_eq!(fuzzy_window_indices(&t), vec![4, 3]);
    }

    #[test]
    fn figure2_satisfies_prop52_for_two_processes() {
        let t = figure2_trace();
        assert!(check_fuzzy_invariant(&t, 2).is_ok());
    }

    #[test]
    fn long_unavailable_run_is_reported() {
        let t = ExecutionTrace::new(());
        for _ in 0..5 {
            t.insert(());
        }
        let violation = check_fuzzy_invariant(&t, 3).unwrap_err();
        assert_eq!(violation.bound, 3);
        assert_eq!(violation.run_len, 4);
    }

    #[test]
    fn empty_trace_trivially_satisfies_the_invariant() {
        let t: ExecutionTrace<u8> = ExecutionTrace::new(0);
        assert!(check_fuzzy_invariant(&t, 1).is_ok());
        assert_eq!(fuzzy_window_indices(&t), Vec::<u64>::new());
    }

    #[test]
    fn fully_available_trace_has_empty_fuzzy_window() {
        let t = ExecutionTrace::new(0u32);
        for i in 1..=10 {
            let n = t.insert(i);
            t.set_available(n);
        }
        assert!(fuzzy_window_indices(&t).is_empty());
        let (non_fuzzy, fuzzy) = partition_indices(&t);
        assert_eq!(non_fuzzy.len(), 11);
        assert!(fuzzy.is_empty());
        assert!(check_fuzzy_invariant(&t, 1).is_ok());
    }

    #[test]
    fn interior_gap_counts_against_the_bound() {
        // available, unset, unset, available: max run is 2.
        let t = ExecutionTrace::new(());
        let a = t.insert(());
        t.set_available(a);
        let _b = t.insert(());
        let _c = t.insert(());
        let d = t.insert(());
        t.set_available(d);
        assert!(check_fuzzy_invariant(&t, 2).is_ok());
        assert!(check_fuzzy_invariant(&t, 1).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Simulates `n_procs` processes each performing `ops_per_proc` updates where
    /// "perform" means insert-then-set-available in program order per process, with
    /// an arbitrary interleaving of the two steps across processes. Proposition 5.2
    /// must hold at every intermediate point.
    fn simulate(interleaving: Vec<usize>, n_procs: usize) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Phase {
            Idle,
            Inserted,
        }
        let trace = ExecutionTrace::new(0usize);
        let mut phases = vec![Phase::Idle; n_procs];
        let mut pending: Vec<Option<u64>> = vec![None; n_procs];
        for step in interleaving {
            let p = step % n_procs;
            match phases[p] {
                Phase::Idle => {
                    let node = trace.insert(p);
                    pending[p] = Some(node.idx());
                    phases[p] = Phase::Inserted;
                }
                Phase::Inserted => {
                    // Find the node again (indices are unique) and set it available.
                    let idx = pending[p].take().unwrap();
                    let node = trace.iter().find(|n| n.idx() == idx).unwrap();
                    trace.set_available(node);
                    phases[p] = Phase::Idle;
                }
            }
            if check_fuzzy_invariant(&trace, n_procs).is_err() {
                return false;
            }
        }
        true
    }

    proptest! {
        #[test]
        fn prop52_holds_for_arbitrary_interleavings(
            interleaving in proptest::collection::vec(0usize..8, 0..200),
            n_procs in 1usize..8,
        ) {
            prop_assert!(simulate(interleaving, n_procs));
        }

        #[test]
        fn fuzzy_window_never_exceeds_process_count(
            interleaving in proptest::collection::vec(0usize..6, 0..150),
            n_procs in 1usize..6,
        ) {
            // Re-simulate and check the tail window length directly.
            #[derive(Clone, Copy, PartialEq)]
            enum Phase { Idle, Inserted }
            let trace = ExecutionTrace::new(0usize);
            let mut phases = vec![Phase::Idle; n_procs];
            let mut pending: Vec<Option<u64>> = vec![None; n_procs];
            for step in interleaving {
                let p = step % n_procs;
                match phases[p] {
                    Phase::Idle => {
                        let node = trace.insert(p);
                        pending[p] = Some(node.idx());
                        phases[p] = Phase::Inserted;
                    }
                    Phase::Inserted => {
                        let idx = pending[p].take().unwrap();
                        let node = trace.iter().find(|n| n.idx() == idx).unwrap();
                        trace.set_available(node);
                        phases[p] = Phase::Idle;
                    }
                }
                prop_assert!(trace.fuzzy_window_len() <= n_procs);
            }
        }

        #[test]
        fn partition_is_a_partition(
            avail_mask in proptest::collection::vec(any::<bool>(), 0..64),
        ) {
            // Build a trace with arbitrary available flags and check that partition
            // indices cover every node exactly once and respect the boundary rule.
            let t = ExecutionTrace::new(0usize);
            for (i, &avail) in avail_mask.iter().enumerate() {
                let n = t.insert(i);
                if avail {
                    t.set_available(n);
                }
            }
            let (non_fuzzy, fuzzy) = partition_indices(&t);
            let total = non_fuzzy.len() + fuzzy.len();
            prop_assert_eq!(total as u64, t.len() + 1);
            // Every fuzzy node is younger than every non-fuzzy node.
            if let (Some(min_fuzzy), Some(max_non_fuzzy)) =
                (fuzzy.iter().min(), non_fuzzy.iter().max())
            {
                prop_assert!(min_fuzzy > max_non_fuzzy);
            }
            // No fuzzy node is available.
            for idx in &fuzzy {
                let node = t.iter().find(|n| n.idx() == *idx).unwrap();
                prop_assert!(!node.is_available());
            }
        }
    }
}
