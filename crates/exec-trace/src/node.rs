//! Execution-trace nodes.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

/// One node of the execution trace (`queueNode` in Listing 2).
///
/// A node records one update operation, its execution index (the number of update
/// operations ordered before it, plus one), an `available` flag whose setting is the
/// operation's linearization point, and a link to the node ordered immediately
/// before it (towards the sentinel).
pub struct TraceNode<T> {
    op: T,
    /// Atomic only because the inserting thread (re)writes it inside the CAS retry
    /// loop before the node is published; it is immutable once the node is linked.
    idx: AtomicU64,
    available: AtomicBool,
    /// Pointer towards the *older* neighbour (the tail at insertion time). Atomic
    /// because prefix reclamation may re-link it to the sentinel.
    next: AtomicPtr<TraceNode<T>>,
}

impl<T> TraceNode<T> {
    pub(crate) fn new(op: T, idx: u64, available: bool) -> Self {
        TraceNode {
            op,
            idx: AtomicU64::new(idx),
            available: AtomicBool::new(available),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// The operation recorded by this node.
    pub fn op(&self) -> &T {
        &self.op
    }

    /// The node's execution index. The sentinel (INITIALIZE) has index 0.
    pub fn idx(&self) -> u64 {
        self.idx.load(Ordering::Acquire)
    }

    pub(crate) fn set_idx(&self, idx: u64) {
        self.idx.store(idx, Ordering::Release);
    }

    /// Whether the node's operation has been linearized (its available flag set).
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::Acquire)
    }

    /// Sets the available flag. A set flag is never cleared (paper §4.1.2).
    pub(crate) fn set_available(&self) {
        self.available.store(true, Ordering::SeqCst);
    }

    pub(crate) fn next_ptr(&self) -> *mut TraceNode<T> {
        self.next.load(Ordering::Acquire)
    }

    pub(crate) fn set_next(&self, next: *mut TraceNode<T>) {
        self.next.store(next, Ordering::Release);
    }

    /// The node ordered immediately before this one, if any (the sentinel has none).
    ///
    /// # Safety contract (internal)
    ///
    /// The returned reference is valid because nodes are only deallocated when the
    /// trace is dropped or after they have been unlinked *and* all processes have
    /// advanced past them (see `ExecutionTrace::reclaim_prefix`).
    pub fn prev(&self) -> Option<&TraceNode<T>> {
        let p = self.next_ptr();
        if p.is_null() {
            None
        } else {
            Some(unsafe { &*p })
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TraceNode<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceNode")
            .field("idx", &self.idx)
            .field("available", &self.is_available())
            .field("op", &self.op)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_fields() {
        let n = TraceNode::new("op", 3, false);
        assert_eq!(*n.op(), "op");
        assert_eq!(n.idx(), 3);
        assert!(!n.is_available());
        assert!(n.prev().is_none());
    }

    #[test]
    fn set_available_is_sticky() {
        let n = TraceNode::new((), 1, false);
        n.set_available();
        assert!(n.is_available());
        // There is deliberately no API to clear it.
        n.set_available();
        assert!(n.is_available());
    }

    #[test]
    fn debug_shows_index_and_flag() {
        let n = TraceNode::new(7u32, 2, true);
        let s = format!("{n:?}");
        assert!(s.contains("idx: 2"));
        assert!(s.contains("available: true"));
    }
}
