//! On-NVM entry layout and (de)serialization.
//!
//! # Layout (variable-length, length-prefixed, checksummed)
//!
//! Every ring slot is [`LogConfig::entry_size`](crate::LogConfig::entry_size)
//! bytes wide (fixed stride, so slot addresses stay computable), but an entry
//! only *occupies* — and the append path only writes and flushes — the bytes it
//! actually needs:
//!
//! ```text
//! offset 0   checksum     u64   FNV-1a over buf[8 .. 16 + payload_len]
//! offset 8   payload_len  u32   bytes of payload following the 16-byte header
//! offset 12  num_ops      u32   1 ..= max_ops_per_entry
//! offset 16  payload:
//!            execution_index  u64   index of ops[0] in the execution trace
//!            seq              u64   per-log monotone append sequence number
//!            num_ops × ( op_len u32, op bytes )   — unpadded, back to back
//! ```
//!
//! A single 16-byte operation therefore occupies ~52 bytes instead of the
//! worst-case slot capacity (`max_ops_per_entry × op slots`, kilobytes at group
//! geometries) the previous fixed-geometry format zero-filled, checksummed and
//! flushed on every append.
//!
//! The entry is valid iff `payload_len` fits the slot **and** the checksum over
//! the occupied bytes matches; a torn write (only some cache lines of the entry
//! reached NVM before a crash) is detected and the entry ignored. Bytes beyond
//! `16 + payload_len` are dead: never checksummed, never read — a slot may
//! carry arbitrary residue from a longer entry of a previous ring lap. A stale
//! entry from a previous lap that survives *intact* in a reused slot still
//! checksums correctly; the ring's monotone sequence numbers reject it (see
//! [`crate::PersistentLog::scan_live`]).
//!
//! **Compatibility:** this on-NVM layout replaced the fixed-geometry format
//! (checksum over the whole slot, one padded slot per op) and is not readable
//! by — nor able to read — logs written by earlier versions. No cross-version
//! log compatibility is promised; recover and drain logs with the version that
//! wrote them.

use crate::config::LogConfig;

/// Fixed per-entry header: checksum (8) + payload_len (4) + num_ops (4).
pub(crate) const ENTRY_HEADER: usize = 16;
/// Fixed payload prefix: execution_index (8) + seq (8).
pub(crate) const PAYLOAD_PREFIX: usize = 16;

/// A decoded, validated log entry.
///
/// Operations are stored as one contiguous buffer plus offsets — decoding
/// performs two allocations per entry regardless of how many operations it
/// records (the old format allocated a `Vec` per op).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Execution index of `op(0)`; `op(k)` has execution index `execution_index - k`.
    pub execution_index: u64,
    /// Per-log monotone sequence number assigned at append time.
    pub seq: u64,
    /// Bytes this entry occupies on NVM (header + payload; excludes the dead
    /// remainder of its slot). Feeds the log's live-byte accounting.
    pub stored_bytes: u32,
    /// Concatenated operation payloads, own operation first, then helped
    /// fuzzy-window operations (most recent first).
    payload: Vec<u8>,
    /// `num_ops + 1` offsets into `payload`: op `k` is `payload[bounds[k]..bounds[k+1]]`.
    bounds: Vec<u32>,
}

impl LogEntry {
    /// Builds an entry from explicit operation slices (tests and the recovery
    /// suite construct entries directly; the log itself only decodes them).
    pub fn from_ops(execution_index: u64, seq: u64, ops: &[&[u8]]) -> LogEntry {
        let mut payload = Vec::with_capacity(ops.iter().map(|o| o.len()).sum());
        let mut bounds = Vec::with_capacity(ops.len() + 1);
        bounds.push(0);
        for op in ops {
            payload.extend_from_slice(op);
            bounds.push(payload.len() as u32);
        }
        let stored_bytes = occupied_size(ops.len(), payload.len()) as u32;
        LogEntry {
            execution_index,
            seq,
            stored_bytes,
            payload,
            bounds,
        }
    }

    /// Number of operations this entry records.
    pub fn num_ops(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The `k`-th recorded operation (0 = the appender's own operation).
    pub fn op(&self, k: usize) -> &[u8] {
        &self.payload[self.bounds[k] as usize..self.bounds[k + 1] as usize]
    }

    /// Iterates over the recorded operations, own operation first.
    pub fn ops(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.num_ops()).map(|k| self.op(k))
    }

    /// Execution index of `op(k)`.
    pub fn index_of(&self, k: usize) -> u64 {
        self.execution_index - k as u64
    }

    /// Lowest execution index covered by this entry.
    pub fn lowest_index(&self) -> u64 {
        self.execution_index + 1 - self.num_ops() as u64
    }

    /// Returns the encoded operation with execution index `idx`, if covered.
    pub fn op_with_index(&self, idx: u64) -> Option<&[u8]> {
        if idx > self.execution_index || idx < self.lowest_index() {
            return None;
        }
        let k = (self.execution_index - idx) as usize;
        Some(self.op(k))
    }
}

/// FNV-1a 64-bit checksum, offset by a non-zero constant so that an all-zero buffer
/// never checksums to zero (an all-zero slot must read as invalid).
pub fn checksum64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ 0xA5A5_5A5A_DEAD_BEEF
}

/// Bytes a finished entry with `num_ops` operations totalling `op_bytes`
/// occupies on NVM.
pub(crate) fn occupied_size(num_ops: usize, op_bytes: usize) -> usize {
    ENTRY_HEADER + PAYLOAD_PREFIX + num_ops * 4 + op_bytes
}

/// Encodes an entry into `buf` (reused scratch; cleared and filled with exactly
/// the occupied bytes — callers write/flush only `buf.len()` bytes to NVM).
///
/// `ops` are the encoded operations, own operation first. Returns `Err` if an op is
/// larger than the configured per-op bound, there are too many ops, or the total
/// occupied size exceeds the slot capacity.
pub(crate) fn encode_entry(
    cfg: &LogConfig,
    buf: &mut Vec<u8>,
    ops: &[&[u8]],
    execution_index: u64,
    seq: u64,
) -> Result<(), String> {
    if ops.is_empty() {
        return Err("an entry must record at least one operation".into());
    }
    if ops.len() > cfg.max_ops_per_entry {
        return Err(format!(
            "too many ops for one entry: {} > {}",
            ops.len(),
            cfg.max_ops_per_entry
        ));
    }
    begin_encode(buf, execution_index, seq);
    for op in ops {
        push_op(cfg, buf, op)?;
    }
    finish_encode(buf, ops.len() as u32);
    Ok(())
}

/// Starts an in-place encode: header placeholder + payload prefix.
pub(crate) fn begin_encode(buf: &mut Vec<u8>, execution_index: u64, seq: u64) {
    buf.clear();
    buf.resize(ENTRY_HEADER, 0);
    buf.extend_from_slice(&execution_index.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
}

/// Appends one length-prefixed operation to an in-progress encode.
pub(crate) fn push_op(cfg: &LogConfig, buf: &mut Vec<u8>, op: &[u8]) -> Result<(), String> {
    if op.len() > cfg.op_slot_size {
        return Err(format!(
            "op too large: {} > {} bytes (LogConfig::op_slot_size bounds one encoded operation)",
            op.len(),
            cfg.op_slot_size
        ));
    }
    if buf.len() + 4 + op.len() > cfg.entry_size() {
        return Err(format!(
            "entry payload overflows its {}-byte slot (occupied {} + op {})",
            cfg.entry_size(),
            buf.len(),
            4 + op.len()
        ));
    }
    buf.extend_from_slice(&(op.len() as u32).to_le_bytes());
    buf.extend_from_slice(op);
    Ok(())
}

/// Finalizes an in-place encode: length, op count and checksum.
pub(crate) fn finish_encode(buf: &mut [u8], num_ops: u32) {
    let payload_len = (buf.len() - ENTRY_HEADER) as u32;
    buf[8..12].copy_from_slice(&payload_len.to_le_bytes());
    buf[12..16].copy_from_slice(&num_ops.to_le_bytes());
    let csum = checksum64(&buf[8..]);
    buf[0..8].copy_from_slice(&csum.to_le_bytes());
}

/// Reads the occupied size of the (unvalidated) entry starting at `buf`, if its
/// length field is plausible for `cfg`. Lets the scan read only occupied bytes.
pub(crate) fn peek_occupied(cfg: &LogConfig, header: &[u8]) -> Option<usize> {
    if header.len() < ENTRY_HEADER {
        return None;
    }
    let payload_len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    if payload_len < PAYLOAD_PREFIX + 4 || ENTRY_HEADER + payload_len > cfg.entry_size() {
        return None;
    }
    Some(ENTRY_HEADER + payload_len)
}

/// Decodes and validates an entry from `buf` (which must hold at least the
/// entry's occupied bytes; trailing slot residue is ignored). Returns `None` if
/// the entry is torn, empty or otherwise invalid.
pub(crate) fn decode_entry(cfg: &LogConfig, buf: &[u8]) -> Option<LogEntry> {
    if buf.len() < ENTRY_HEADER + PAYLOAD_PREFIX {
        return None;
    }
    let payload_len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    let occupied = ENTRY_HEADER + payload_len;
    if payload_len < PAYLOAD_PREFIX + 4 || occupied > cfg.entry_size() || occupied > buf.len() {
        return None;
    }
    let stored_csum = u64::from_le_bytes(buf[0..8].try_into().unwrap());
    if stored_csum != checksum64(&buf[8..occupied]) {
        return None;
    }
    let num_ops = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    if num_ops == 0 || num_ops > cfg.max_ops_per_entry {
        return None;
    }
    // The payload must at least hold its fixed prefix plus one length word per
    // claimed op — checked *before* any arithmetic trusts these fields (the
    // checksum is unkeyed, so a consistent-looking but nonsensical header can
    // reach this point from a corrupted or hand-crafted image).
    if payload_len < PAYLOAD_PREFIX + 4 * num_ops {
        return None;
    }
    let execution_index = u64::from_le_bytes(buf[16..24].try_into().unwrap());
    let seq = u64::from_le_bytes(buf[24..32].try_into().unwrap());
    // Entries record ops[k] with execution index execution_index - k >= 1.
    if execution_index == 0 || (execution_index as u128) < num_ops as u128 {
        return None;
    }
    let mut payload = Vec::with_capacity(payload_len - PAYLOAD_PREFIX - 4 * num_ops);
    let mut bounds = Vec::with_capacity(num_ops + 1);
    bounds.push(0u32);
    let mut off = ENTRY_HEADER + PAYLOAD_PREFIX;
    for _ in 0..num_ops {
        if off + 4 > occupied {
            return None;
        }
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
        if len > cfg.op_slot_size || off + 4 + len > occupied {
            return None;
        }
        payload.extend_from_slice(&buf[off + 4..off + 4 + len]);
        bounds.push(payload.len() as u32);
        off += 4 + len;
    }
    if off != occupied {
        // The length field claims more payload than the ops consume: corrupt.
        return None;
    }
    Some(LogEntry {
        execution_index,
        seq,
        stored_bytes: occupied as u32,
        payload,
        bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LogConfig {
        LogConfig::default()
    }

    fn encode_to_vec(
        cfg: &LogConfig,
        ops: &[&[u8]],
        execution_index: u64,
        seq: u64,
    ) -> Result<Vec<u8>, String> {
        let mut buf = Vec::new();
        encode_entry(cfg, &mut buf, ops, execution_index, seq)?;
        Ok(buf)
    }

    #[test]
    fn encode_decode_roundtrip_single_op() {
        let cfg = cfg();
        let buf = encode_to_vec(&cfg, &[b"op-payload"], 7, 3).unwrap();
        let e = decode_entry(&cfg, &buf).unwrap();
        assert_eq!(e.execution_index, 7);
        assert_eq!(e.seq, 3);
        assert_eq!(e.num_ops(), 1);
        assert_eq!(e.op(0), b"op-payload");
        assert_eq!(e.stored_bytes as usize, buf.len());
    }

    #[test]
    fn encode_writes_only_occupied_bytes() {
        let cfg = cfg();
        let buf = encode_to_vec(&cfg, &[b"0123456789abcdef"], 1, 1).unwrap();
        assert_eq!(buf.len(), occupied_size(1, 16));
        assert!(
            buf.len() < cfg.entry_size() / 4,
            "a single-op entry must occupy a small fraction of its {}-byte slot, got {}",
            cfg.entry_size(),
            buf.len()
        );
    }

    #[test]
    fn encode_decode_roundtrip_multiple_ops() {
        let cfg = cfg();
        let ops: Vec<&[u8]> = vec![b"own", b"helped-1", b"helped-2"];
        let buf = encode_to_vec(&cfg, &ops, 10, 1).unwrap();
        let e = decode_entry(&cfg, &buf).unwrap();
        assert_eq!(e.num_ops(), 3);
        assert_eq!(e.index_of(0), 10);
        assert_eq!(e.index_of(2), 8);
        assert_eq!(e.lowest_index(), 8);
        assert_eq!(e.op_with_index(9).unwrap(), b"helped-1");
        assert_eq!(e.op_with_index(11), None);
        assert_eq!(e.op_with_index(7), None);
        assert_eq!(
            e.ops().collect::<Vec<_>>(),
            vec![b"own" as &[u8], b"helped-1", b"helped-2"]
        );
    }

    #[test]
    fn decode_tolerates_slot_residue_after_the_entry() {
        // A shorter entry rewritten over a longer one leaves stale bytes in the
        // slot tail; they must not affect validation.
        let cfg = cfg();
        let mut buf = encode_to_vec(&cfg, &[b"short"], 2, 1).unwrap();
        buf.resize(cfg.entry_size(), 0xEE);
        let e = decode_entry(&cfg, &buf).unwrap();
        assert_eq!(e.op(0), b"short");
    }

    #[test]
    fn empty_op_is_representable() {
        let cfg = cfg();
        let buf = encode_to_vec(&cfg, &[b""], 1, 0).unwrap();
        let e = decode_entry(&cfg, &buf).unwrap();
        assert_eq!(e.num_ops(), 1);
        assert_eq!(e.op(0), b"");
    }

    #[test]
    fn all_zero_slot_is_invalid() {
        let cfg = cfg();
        let buf = vec![0u8; cfg.entry_size()];
        assert!(decode_entry(&cfg, &buf).is_none());
    }

    #[test]
    fn corrupting_any_occupied_byte_invalidates_the_entry() {
        let cfg = cfg();
        let buf = encode_to_vec(&cfg, &[b"abcdef", b"ghi"], 5, 9).unwrap();
        for victim in 0..buf.len() {
            let mut torn = buf.clone();
            torn[victim] ^= 0xFF;
            assert!(
                decode_entry(&cfg, &torn).is_none(),
                "corruption at byte {victim} went undetected"
            );
        }
    }

    #[test]
    fn torn_line_is_detected() {
        // Simulate a crash where only the first cache line of the entry reached NVM.
        let cfg = cfg();
        let buf = encode_to_vec(&cfg, &[b"a".repeat(40).as_slice(), b"bbbb"], 6, 2).unwrap();
        assert!(buf.len() > 64, "entry must span more than one line");
        let mut torn = vec![0u8; buf.len()];
        torn[..64].copy_from_slice(&buf[..64]);
        assert!(decode_entry(&cfg, &torn).is_none());
    }

    #[test]
    fn truncated_buffer_is_invalid() {
        let cfg = cfg();
        let buf = encode_to_vec(&cfg, &[b"some-operation-bytes"], 3, 1).unwrap();
        for cut in 0..buf.len() {
            assert!(
                decode_entry(&cfg, &buf[..cut]).is_none(),
                "entry truncated to {cut} bytes still decoded"
            );
        }
    }

    #[test]
    fn oversized_op_rejected() {
        let cfg = cfg();
        let mut buf = Vec::new();
        let big = vec![1u8; cfg.op_slot_size + 1];
        assert!(encode_entry(&cfg, &mut buf, &[&big], 1, 0).is_err());
    }

    #[test]
    fn too_many_ops_rejected() {
        let cfg = LogConfig::for_processes(2);
        let mut buf = Vec::new();
        let ops: Vec<&[u8]> = vec![b"a", b"b", b"c"];
        assert!(encode_entry(&cfg, &mut buf, &ops, 3, 0).is_err());
    }

    #[test]
    fn zero_ops_rejected() {
        let cfg = cfg();
        let mut buf = Vec::new();
        assert!(encode_entry(&cfg, &mut buf, &[], 1, 0).is_err());
    }

    #[test]
    fn execution_index_smaller_than_num_ops_is_invalid() {
        // ops[k] would have index <= 0, which cannot happen in a real execution; a
        // decoded entry claiming it is treated as corrupt.
        let cfg = cfg();
        let buf = encode_to_vec(&cfg, &[b"a", b"b"], 1, 0).unwrap();
        assert!(decode_entry(&cfg, &buf).is_none());
    }

    #[test]
    fn checksum_is_never_zero_for_zero_buffer() {
        assert_ne!(checksum64(&[0u8; 128]), 0);
    }

    #[test]
    fn rechecksummed_entry_with_inconsistent_num_ops_is_rejected_not_panicking() {
        // A checksum-valid header whose num_ops cannot fit its payload_len
        // (2 ops need PAYLOAD_PREFIX + 8 bytes; only 20 are claimed) must be
        // rejected — the unkeyed checksum proves nothing about consistency.
        let cfg = cfg();
        let mut buf = vec![0u8; ENTRY_HEADER + 20];
        buf[8..12].copy_from_slice(&20u32.to_le_bytes()); // payload_len
        buf[12..16].copy_from_slice(&2u32.to_le_bytes()); // num_ops
        buf[16..24].copy_from_slice(&5u64.to_le_bytes()); // execution_index
        buf[24..32].copy_from_slice(&1u64.to_le_bytes()); // seq
        let csum = checksum64(&buf[8..]);
        buf[0..8].copy_from_slice(&csum.to_le_bytes());
        assert!(decode_entry(&cfg, &buf).is_none());
    }

    #[test]
    fn max_size_op_fits_exactly() {
        let cfg = cfg();
        let op = vec![0xABu8; cfg.op_slot_size];
        let buf = encode_to_vec(&cfg, &[&op], 2, 0).unwrap();
        let e = decode_entry(&cfg, &buf).unwrap();
        assert_eq!(e.op(0), op.as_slice());
    }

    #[test]
    fn worst_case_geometry_fits_the_slot() {
        // max_ops_per_entry ops of op_slot_size bytes each must encode into one
        // slot — the capacity formula in LogConfig::entry_size guarantees it.
        let cfg = cfg();
        let op = vec![0x5Au8; cfg.op_slot_size];
        let ops: Vec<&[u8]> = (0..cfg.max_ops_per_entry).map(|_| op.as_slice()).collect();
        let buf = encode_to_vec(&cfg, &ops, cfg.max_ops_per_entry as u64, 1).unwrap();
        assert!(buf.len() <= cfg.entry_size());
        let e = decode_entry(&cfg, &buf).unwrap();
        assert_eq!(e.num_ops(), cfg.max_ops_per_entry);
    }

    #[test]
    fn from_ops_matches_decoded_shape() {
        let cfg = cfg();
        let buf = encode_to_vec(&cfg, &[b"x", b"yz"], 4, 7).unwrap();
        let decoded = decode_entry(&cfg, &buf).unwrap();
        let built = LogEntry::from_ops(4, 7, &[b"x", b"yz"]);
        assert_eq!(decoded, built);
    }
}
