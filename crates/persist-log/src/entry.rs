//! On-NVM entry layout and (de)serialization.
//!
//! Entry layout (see [`LogConfig::entry_size`](crate::LogConfig::entry_size)):
//!
//! ```text
//! offset 0   checksum          u64   FNV-1a over the rest of the entry
//! offset 8   execution_index   u64   index of ops[0] in the execution trace
//! offset 16  seq               u64   per-log monotone append sequence number
//! offset 24  num_ops           u32   1 ..= max_ops_per_entry
//! offset 28  pad               u32
//! offset 32  slots             num_ops × (len: u32, bytes: [u8; op_slot_size])
//! ```
//!
//! The entry is valid iff the checksum matches; a torn write (only some cache lines
//! of the entry reached NVM before a crash) is detected and the entry ignored.

use crate::config::LogConfig;

/// A decoded, validated log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Execution index of `ops[0]`; `ops[k]` has execution index `execution_index - k`.
    pub execution_index: u64,
    /// Per-log monotone sequence number assigned at append time.
    pub seq: u64,
    /// The recorded operations: `ops[0]` is the appender's own operation, the rest
    /// are helped fuzzy-window operations (most recent first).
    pub ops: Vec<Vec<u8>>,
}

impl LogEntry {
    /// Execution index of `ops[k]`.
    pub fn index_of(&self, k: usize) -> u64 {
        self.execution_index - k as u64
    }

    /// Lowest execution index covered by this entry.
    pub fn lowest_index(&self) -> u64 {
        self.execution_index + 1 - self.ops.len() as u64
    }

    /// Returns the encoded operation with execution index `idx`, if covered.
    pub fn op_with_index(&self, idx: u64) -> Option<&[u8]> {
        if idx > self.execution_index || idx < self.lowest_index() {
            return None;
        }
        let k = (self.execution_index - idx) as usize;
        Some(&self.ops[k])
    }
}

/// FNV-1a 64-bit checksum, offset by a non-zero constant so that an all-zero buffer
/// never checksums to zero (an all-zero slot must read as invalid).
pub fn checksum64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ 0xA5A5_5A5A_DEAD_BEEF
}

/// Encodes an entry into `buf` (which must be exactly `cfg.entry_size()` bytes).
///
/// `ops` are the encoded operations, own operation first. Returns `Err` if an op is
/// larger than the configured slot size or there are too many ops.
pub(crate) fn encode_entry(
    cfg: &LogConfig,
    buf: &mut [u8],
    ops: &[&[u8]],
    execution_index: u64,
    seq: u64,
) -> Result<(), String> {
    assert_eq!(buf.len(), cfg.entry_size());
    if ops.is_empty() {
        return Err("an entry must record at least one operation".into());
    }
    if ops.len() > cfg.max_ops_per_entry {
        return Err(format!(
            "too many ops for one entry: {} > {}",
            ops.len(),
            cfg.max_ops_per_entry
        ));
    }
    for (i, op) in ops.iter().enumerate() {
        if op.len() > cfg.op_slot_size {
            return Err(format!(
                "op {i} too large: {} > {} bytes",
                op.len(),
                cfg.op_slot_size
            ));
        }
    }
    buf.fill(0);
    buf[8..16].copy_from_slice(&execution_index.to_le_bytes());
    buf[16..24].copy_from_slice(&seq.to_le_bytes());
    buf[24..28].copy_from_slice(&(ops.len() as u32).to_le_bytes());
    let mut off = cfg.entry_header_size();
    for op in ops {
        buf[off..off + 4].copy_from_slice(&(op.len() as u32).to_le_bytes());
        buf[off + 4..off + 4 + op.len()].copy_from_slice(op);
        off += 4 + cfg.op_slot_size;
    }
    let csum = checksum64(&buf[8..]);
    buf[0..8].copy_from_slice(&csum.to_le_bytes());
    Ok(())
}

/// Decodes and validates an entry from `buf`. Returns `None` if the entry is torn,
/// empty or otherwise invalid.
pub(crate) fn decode_entry(cfg: &LogConfig, buf: &[u8]) -> Option<LogEntry> {
    if buf.len() != cfg.entry_size() {
        return None;
    }
    let stored_csum = u64::from_le_bytes(buf[0..8].try_into().unwrap());
    if stored_csum != checksum64(&buf[8..]) {
        return None;
    }
    let execution_index = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let seq = u64::from_le_bytes(buf[16..24].try_into().unwrap());
    let num_ops = u32::from_le_bytes(buf[24..28].try_into().unwrap()) as usize;
    if num_ops == 0 || num_ops > cfg.max_ops_per_entry {
        return None;
    }
    // Entries record ops[k] with execution index execution_index - k >= 1.
    if execution_index == 0 || (execution_index as u128) < num_ops as u128 {
        return None;
    }
    let mut ops = Vec::with_capacity(num_ops);
    let mut off = cfg.entry_header_size();
    for _ in 0..num_ops {
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
        if len > cfg.op_slot_size {
            return None;
        }
        ops.push(buf[off + 4..off + 4 + len].to_vec());
        off += 4 + cfg.op_slot_size;
    }
    Some(LogEntry {
        execution_index,
        seq,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LogConfig {
        LogConfig::default()
    }

    #[test]
    fn encode_decode_roundtrip_single_op() {
        let cfg = cfg();
        let mut buf = vec![0u8; cfg.entry_size()];
        encode_entry(&cfg, &mut buf, &[b"op-payload"], 7, 3).unwrap();
        let e = decode_entry(&cfg, &buf).unwrap();
        assert_eq!(e.execution_index, 7);
        assert_eq!(e.seq, 3);
        assert_eq!(e.ops, vec![b"op-payload".to_vec()]);
    }

    #[test]
    fn encode_decode_roundtrip_multiple_ops() {
        let cfg = cfg();
        let mut buf = vec![0u8; cfg.entry_size()];
        let ops: Vec<&[u8]> = vec![b"own", b"helped-1", b"helped-2"];
        encode_entry(&cfg, &mut buf, &ops, 10, 1).unwrap();
        let e = decode_entry(&cfg, &buf).unwrap();
        assert_eq!(e.ops.len(), 3);
        assert_eq!(e.index_of(0), 10);
        assert_eq!(e.index_of(2), 8);
        assert_eq!(e.lowest_index(), 8);
        assert_eq!(e.op_with_index(9).unwrap(), b"helped-1");
        assert_eq!(e.op_with_index(11), None);
        assert_eq!(e.op_with_index(7), None);
    }

    #[test]
    fn empty_op_is_representable() {
        let cfg = cfg();
        let mut buf = vec![0u8; cfg.entry_size()];
        encode_entry(&cfg, &mut buf, &[b""], 1, 0).unwrap();
        let e = decode_entry(&cfg, &buf).unwrap();
        assert_eq!(e.ops, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn all_zero_slot_is_invalid() {
        let cfg = cfg();
        let buf = vec![0u8; cfg.entry_size()];
        assert!(decode_entry(&cfg, &buf).is_none());
    }

    #[test]
    fn corrupting_any_byte_invalidates_the_entry() {
        let cfg = cfg();
        let mut buf = vec![0u8; cfg.entry_size()];
        encode_entry(&cfg, &mut buf, &[b"abcdef", b"ghi"], 5, 9).unwrap();
        for victim in [0usize, 9, 17, 25, 40, cfg.entry_size() - 1] {
            let mut torn = buf.clone();
            torn[victim] ^= 0xFF;
            assert!(
                decode_entry(&cfg, &torn).is_none(),
                "corruption at byte {victim} went undetected"
            );
        }
    }

    #[test]
    fn torn_line_is_detected() {
        // Simulate a crash where only the first cache line of the entry reached NVM.
        let cfg = cfg();
        let mut buf = vec![0u8; cfg.entry_size()];
        encode_entry(&cfg, &mut buf, &[b"a".repeat(40).as_slice(), b"bbbb"], 6, 2).unwrap();
        let mut torn = vec![0u8; cfg.entry_size()];
        torn[..64].copy_from_slice(&buf[..64]);
        assert!(decode_entry(&cfg, &torn).is_none());
    }

    #[test]
    fn oversized_op_rejected() {
        let cfg = cfg();
        let mut buf = vec![0u8; cfg.entry_size()];
        let big = vec![1u8; cfg.op_slot_size + 1];
        assert!(encode_entry(&cfg, &mut buf, &[&big], 1, 0).is_err());
    }

    #[test]
    fn too_many_ops_rejected() {
        let cfg = LogConfig::for_processes(2);
        let mut buf = vec![0u8; cfg.entry_size()];
        let ops: Vec<&[u8]> = vec![b"a", b"b", b"c"];
        assert!(encode_entry(&cfg, &mut buf, &ops, 3, 0).is_err());
    }

    #[test]
    fn zero_ops_rejected() {
        let cfg = cfg();
        let mut buf = vec![0u8; cfg.entry_size()];
        assert!(encode_entry(&cfg, &mut buf, &[], 1, 0).is_err());
    }

    #[test]
    fn execution_index_smaller_than_num_ops_is_invalid() {
        // ops[k] would have index <= 0, which cannot happen in a real execution; a
        // decoded entry claiming it is treated as corrupt.
        let cfg = cfg();
        let mut buf = vec![0u8; cfg.entry_size()];
        encode_entry(&cfg, &mut buf, &[b"a", b"b"], 1, 0).unwrap();
        assert!(decode_entry(&cfg, &buf).is_none());
    }

    #[test]
    fn checksum_is_never_zero_for_zero_buffer() {
        assert_ne!(checksum64(&[0u8; 128]), 0);
    }

    #[test]
    fn max_size_op_fits_exactly() {
        let cfg = cfg();
        let mut buf = vec![0u8; cfg.entry_size()];
        let op = vec![0xABu8; cfg.op_slot_size];
        encode_entry(&cfg, &mut buf, &[&op], 2, 0).unwrap();
        let e = decode_entry(&cfg, &buf).unwrap();
        assert_eq!(e.ops[0], op);
    }
}
