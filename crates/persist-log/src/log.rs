//! The per-process persistent log.

use crate::config::LogConfig;
use crate::entry::{
    begin_encode, decode_entry, encode_entry, finish_encode, peek_occupied, push_op, LogEntry,
    ENTRY_HEADER,
};
use nvm_sim::{Histogram, NvmError, NvmPool, PAddr};
use std::fmt;

/// Errors returned by [`PersistentLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The circular log has no free slot (truncate before appending more).
    Full,
    /// The operations passed to an append do not fit one entry slot: either a
    /// single op exceeds `LogConfig::op_slot_size`, the op count exceeds
    /// `LogConfig::max_ops_per_entry`, or the total variable-length payload
    /// overflows the slot capacity (`LogConfig::entry_size`).
    EntryTooLarge(String),
    /// The backend failed to make the entry durable: the publishing fence
    /// returned an IO error (poisoned backend), or the machine froze under a
    /// simulated crash before the fence completed ([`NvmError::Crashed`]).
    /// Either way the entry must not be acknowledged.
    Backend(NvmError),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Full => write!(f, "persistent log is full"),
            LogError::EntryTooLarge(msg) => write!(f, "log entry does not fit: {msg}"),
            LogError::Backend(e) => write!(f, "log publish failed: {e}"),
        }
    }
}

impl std::error::Error for LogError {}

/// Layout of the log header (one cache line at the base address):
/// ```text
/// offset 0   start_slot  u64   first live slot of the circular log
/// offset 8   start_seq   u64   sequence number expected at start_slot
/// offset 16  truncations u64   number of truncate calls (diagnostics)
/// ```
const HDR_START_SLOT: u64 = 0;
const HDR_START_SEQ: u64 = 8;
const HDR_TRUNCATIONS: u64 = 16;

/// A per-process, single-writer, append-only persistent log with exactly one
/// persistent fence per append.
///
/// The log is *owned* by one process (the `&mut self` receiver on
/// [`PersistentLog::append`] encodes single-writer-ness); other processes never
/// write to it, matching the paper's per-process logs.
///
/// Entries are variable-length within fixed-stride ring slots (see
/// [`crate::entry`]): appends encode into a scratch buffer owned by the log and
/// write/flush only the occupied bytes, so the store cost of an append is
/// proportional to the operations it records, not to the worst-case slot
/// geometry. The steady-state append path performs **no heap allocation**.
pub struct PersistentLog {
    pool: NvmPool,
    cfg: LogConfig,
    base: PAddr,
    /// Next slot to append into (volatile; recomputed by recovery).
    next_slot: u64,
    /// Sequence number to assign to the next append (volatile; recomputed).
    next_seq: u64,
    /// First live slot (cached copy of the persistent header).
    start_slot: u64,
    /// Sequence number of the first live slot.
    start_seq: u64,
    /// Bytes occupied on NVM by live entries (headers + payloads; excludes the
    /// dead slot remainders). Maintained by append/truncate, recomputed on open.
    live_bytes: u64,
    /// Reusable encode buffer for appends (capacity settles at one slot).
    scratch: Vec<u8>,
    /// Occupied bytes of every published entry ("log.entry_bytes").
    entry_bytes_hist: Histogram,
    /// Operations recorded per published entry ("log.ops_per_entry") — the
    /// fuzzy-window helping factor made visible.
    ops_per_entry_hist: Histogram,
}

impl PersistentLog {
    /// Bytes of NVM needed for a log with configuration `cfg`.
    pub fn region_size(cfg: &LogConfig) -> usize {
        cfg.region_size()
    }

    /// Formats a fresh, empty log at `base` (which must point at
    /// [`PersistentLog::region_size`] bytes of allocated NVM).
    pub fn create(pool: NvmPool, cfg: LogConfig, base: PAddr) -> Self {
        // Zero the header and persist it. Entry slots are lazily overwritten; their
        // validity is determined by checksum + sequence number, so stale bytes from
        // a previous life of this region are harmless only if they can't collide
        // with (slot, seq) pairs we will produce. A fresh create zeroes the first
        // entry of each slot's header line to be safe.
        let header = vec![0u8; cfg.log_header_size()];
        pool.write(base, &header);
        pool.flush(base, header.len());
        pool.fence().expect("log format fence failed");
        PersistentLog {
            entry_bytes_hist: pool.telemetry().histogram("log.entry_bytes"),
            ops_per_entry_hist: pool.telemetry().histogram("log.ops_per_entry"),
            pool,
            cfg,
            base,
            next_slot: 0,
            next_seq: 1,
            start_slot: 0,
            start_seq: 1,
            live_bytes: 0,
            scratch: Vec::new(),
        }
    }

    /// Opens a log after a crash: scans the live window, returns the log (ready for
    /// further appends) and the valid entries in append order.
    pub fn open(pool: NvmPool, cfg: LogConfig, base: PAddr) -> (Self, Vec<LogEntry>) {
        let start_slot = read_u64(&pool, base + HDR_START_SLOT);
        let start_seq = read_u64(&pool, base + HDR_START_SEQ).max(1);
        let mut log = PersistentLog {
            entry_bytes_hist: pool.telemetry().histogram("log.entry_bytes"),
            ops_per_entry_hist: pool.telemetry().histogram("log.ops_per_entry"),
            pool,
            cfg,
            base,
            next_slot: start_slot,
            next_seq: start_seq,
            start_slot,
            start_seq,
            live_bytes: 0,
            scratch: Vec::new(),
        };
        let entries = log.scan_live();
        // Continue appending after the last valid entry.
        if let Some(last) = entries.last() {
            log.next_seq = last.seq + 1;
            log.next_slot = (start_slot + entries.len() as u64) % log.cfg.capacity_entries as u64;
        }
        log.live_bytes = entries.iter().map(|e| e.stored_bytes as u64).sum();
        (log, entries)
    }

    fn entry_addr(&self, slot: u64) -> PAddr {
        self.base + self.cfg.log_header_size() as u64 + slot * self.cfg.entry_size() as u64
    }

    /// Number of live (appended and not truncated) entries.
    pub fn live_len(&self) -> usize {
        (self.next_seq - self.start_seq) as usize
    }

    /// True if no live entries exist.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// Remaining free slots before the circular log refuses appends.
    pub fn free_slots(&self) -> usize {
        self.cfg.capacity_entries - self.live_len()
    }

    /// The log's geometry.
    pub fn config(&self) -> &LogConfig {
        &self.cfg
    }

    /// Base address of the log region in its pool.
    pub fn base(&self) -> PAddr {
        self.base
    }

    /// Appends an entry recording `ops` (own operation first, then helped ones) with
    /// the given execution index for `ops[0]`.
    ///
    /// Cost: stores + flushes of the entry's **occupied bytes only** (free in the
    /// paper's model) + **exactly one persistent fence**. Steady-state, no heap
    /// allocation (the encode buffer is owned by the log and reused).
    ///
    /// Callers that already hold the operations as separate encodable values can
    /// skip assembling a `&[&[u8]]` entirely with [`PersistentLog::begin`], which
    /// encodes each op directly into the log's entry buffer.
    pub fn append(&mut self, ops: &[&[u8]], execution_index: u64) -> Result<(), LogError> {
        if self.live_len() >= self.cfg.capacity_entries {
            return Err(LogError::Full);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let encoded = encode_entry(&self.cfg, &mut scratch, ops, execution_index, self.next_seq)
            .map_err(LogError::EntryTooLarge);
        let result = match encoded {
            Ok(()) => self.publish_scratch(&scratch, ops.len() as u32),
            Err(e) => Err(e),
        };
        self.scratch = scratch;
        result
    }

    /// Begins a zero-copy append of the entry for `execution_index`: the caller
    /// pushes each operation's bytes directly into the log's entry buffer via
    /// the returned [`EntryWriter`], then [`EntryWriter::commit`]s (one
    /// persistent fence). Dropping the writer without committing abandons the
    /// append without touching NVM or the log's counters.
    pub fn begin(&mut self, execution_index: u64) -> Result<EntryWriter<'_>, LogError> {
        if self.live_len() >= self.cfg.capacity_entries {
            return Err(LogError::Full);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        begin_encode(&mut scratch, execution_index, self.next_seq);
        Ok(EntryWriter {
            log: self,
            scratch,
            num_ops: 0,
        })
    }

    /// Writes the finished scratch entry into the next slot: stores + flushes of
    /// the occupied bytes, one fence, then advances the volatile counters.
    /// The counters advance only if the fence confirmed durability: a frozen
    /// no-op fence (the thread had flushed, so `Ok(false)` means the machine
    /// crashed underneath us) and a backend IO failure both surface as
    /// [`LogError::Backend`], and the entry is not acknowledged.
    fn publish_scratch(&mut self, entry: &[u8], num_ops: u32) -> Result<(), LogError> {
        let addr = self.entry_addr(self.next_slot);
        self.pool.write(addr, entry);
        self.pool.flush(addr, entry.len());
        match self.pool.fence() {
            Ok(true) => {}
            Ok(false) => return Err(LogError::Backend(NvmError::Crashed)),
            Err(e) => return Err(LogError::Backend(e)),
        }
        self.next_seq += 1;
        self.next_slot = (self.next_slot + 1) % self.cfg.capacity_entries as u64;
        self.live_bytes += entry.len() as u64;
        self.entry_bytes_hist.record(entry.len() as u64);
        self.ops_per_entry_hist.record(num_ops as u64);
        Ok(())
    }

    /// Drops all live entries: the next recovery will start from the current append
    /// position. Used by the Section-8 checkpointing extension after the object
    /// state has been persisted elsewhere.
    ///
    /// Cost: one persistent fence (it is an explicit maintenance operation, not part
    /// of the per-update fence budget).
    pub fn truncate(&mut self) -> Result<(), LogError> {
        self.publish_start(self.next_slot, self.next_seq)?;
        self.live_bytes = 0;
        Ok(())
    }

    /// Drops the live prefix of entries whose `execution_index` is at most
    /// `watermark`, freeing their ring slots for reuse by subsequent appends.
    /// Returns the number of entries dropped.
    ///
    /// A log's entries carry strictly increasing execution indices (each append
    /// records the appender's newest operation), so the droppable entries always
    /// form a prefix of the live window. Callers use this after a checkpoint
    /// covering indices `<= watermark` has been *published*: every dropped entry
    /// is then redundant with the checkpoint, which is the truncation safety
    /// argument (see `onll::Checkpointer`).
    ///
    /// Cost: **zero** fences when nothing is droppable, one persistent fence
    /// otherwise (the start-mark publish). Maintenance, not per-update budget.
    pub fn truncate_below(&mut self, watermark: u64) -> Result<usize, LogError> {
        let mut dropped = 0u64;
        let mut dropped_bytes = 0u64;
        let mut slot = self.start_slot;
        let mut seq = self.start_seq;
        let mut buf = Vec::new();
        while seq < self.next_seq {
            match self.read_entry(slot, &mut buf) {
                Some(e) if e.seq == seq && e.execution_index <= watermark => {
                    dropped += 1;
                    dropped_bytes += e.stored_bytes as u64;
                    seq += 1;
                    slot = (slot + 1) % self.cfg.capacity_entries as u64;
                }
                _ => break,
            }
        }
        if dropped > 0 {
            self.publish_start(slot, seq)?;
            self.live_bytes = self.live_bytes.saturating_sub(dropped_bytes);
        }
        Ok(dropped as usize)
    }

    /// Execution index of the oldest live entry, if any. A cheap pre-check for
    /// [`PersistentLog::truncate_below`]: if the oldest entry is already above
    /// the watermark, truncation would be a no-op.
    pub fn first_live_index(&self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let mut buf = Vec::new();
        self.read_entry(self.start_slot, &mut buf)
            .map(|e| e.execution_index)
    }

    /// Bytes of NVM occupied by live entries (the log-bytes checkpoint-trigger
    /// input). Counts each entry's occupied bytes — header plus variable-length
    /// payload — not the fixed slot capacity it is ring-addressed by.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Persists a new start mark (one persistent fence).
    fn publish_start(&mut self, slot: u64, seq: u64) -> Result<(), LogError> {
        self.start_slot = slot;
        self.start_seq = seq;
        let mut hdr = vec![0u8; self.cfg.log_header_size()];
        hdr[HDR_START_SLOT as usize..8].copy_from_slice(&self.start_slot.to_le_bytes());
        hdr[HDR_START_SEQ as usize..16].copy_from_slice(&self.start_seq.to_le_bytes());
        let truncations = read_u64(&self.pool, self.base + HDR_TRUNCATIONS) + 1;
        hdr[HDR_TRUNCATIONS as usize..24].copy_from_slice(&truncations.to_le_bytes());
        self.pool.write(self.base, &hdr);
        self.pool.flush(self.base, hdr.len());
        match self.pool.fence() {
            Ok(true) => Ok(()),
            Ok(false) => Err(LogError::Backend(NvmError::Crashed)),
            Err(e) => Err(LogError::Backend(e)),
        }
    }

    /// Number of truncations performed over the log's lifetime (diagnostics).
    pub fn truncations(&self) -> u64 {
        read_u64(&self.pool, self.base + HDR_TRUNCATIONS)
    }

    /// Reads and validates the entry in `slot`, reusing `buf` as scratch. Reads
    /// the slot header first and then only the entry's occupied bytes — never
    /// the dead slot remainder.
    fn read_entry(&self, slot: u64, buf: &mut Vec<u8>) -> Option<LogEntry> {
        let addr = self.entry_addr(slot);
        let header_len = ENTRY_HEADER.min(self.cfg.entry_size());
        buf.resize(header_len, 0);
        self.pool.read(addr, buf);
        let occupied = peek_occupied(&self.cfg, buf)?;
        buf.resize(occupied, 0);
        self.pool
            .read(addr + header_len as u64, &mut buf[header_len..]);
        decode_entry(&self.cfg, buf)
    }

    /// Scans the live window and returns all valid entries in append order.
    ///
    /// Validation stops at the first slot whose entry is missing, torn, or carries
    /// an unexpected sequence number — appends are sequential, so valid entries
    /// always form a prefix of the live window. The sequence check is also what
    /// rejects a stale entry from a previous ring lap that survives intact in a
    /// reused slot (its checksum matches, its sequence number cannot).
    pub fn scan_live(&self) -> Vec<LogEntry> {
        let mut entries = Vec::new();
        let mut slot = self.start_slot;
        let mut expect_seq = self.start_seq;
        let mut buf = Vec::new();
        for _ in 0..self.cfg.capacity_entries {
            match self.read_entry(slot, &mut buf) {
                Some(e) if e.seq == expect_seq => {
                    entries.push(e);
                    expect_seq += 1;
                    slot = (slot + 1) % self.cfg.capacity_entries as u64;
                }
                _ => break,
            }
        }
        entries
    }
}

/// An in-progress zero-copy append started by [`PersistentLog::begin`].
///
/// Operations are encoded directly into the log's reusable entry buffer;
/// nothing reaches NVM until [`EntryWriter::commit`]. Dropping the writer
/// abandons the append (the buffer is returned to the log for reuse).
///
/// This is the encode path behind every ONLL persist: a single update's fuzzy
/// window, a caller-side group persist, and a cross-thread *combined* batch
/// (`onll::DurableService`, where one entry carries many clients' operations)
/// all assemble their one-fence entries through it — which is also why the
/// entry format needs no notion of who submitted an operation: each op's
/// payload carries its own identity.
pub struct EntryWriter<'a> {
    log: &'a mut PersistentLog,
    scratch: Vec<u8>,
    num_ops: u32,
}

impl EntryWriter<'_> {
    /// Appends one operation's already-encoded bytes.
    pub fn push_op(&mut self, op: &[u8]) -> Result<(), LogError> {
        self.check_op_count()?;
        push_op(&self.log.cfg, &mut self.scratch, op).map_err(LogError::EntryTooLarge)?;
        self.num_ops += 1;
        Ok(())
    }

    /// Appends one operation by letting `fill` encode it directly into the
    /// entry buffer (no intermediate allocation). The bytes `fill` appends
    /// become the operation's payload.
    pub fn push_op_with(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> Result<(), LogError> {
        self.check_op_count()?;
        let cfg_entry_size = self.log.cfg.entry_size();
        let start = self.scratch.len();
        self.scratch.extend_from_slice(&[0u8; 4]); // length back-patched below
        fill(&mut self.scratch);
        let op_len = self.scratch.len() - start - 4;
        if op_len > self.log.cfg.op_slot_size {
            self.scratch.truncate(start);
            return Err(LogError::EntryTooLarge(format!(
                "op too large: {} > {} bytes (LogConfig::op_slot_size bounds one encoded operation)",
                op_len, self.log.cfg.op_slot_size
            )));
        }
        if self.scratch.len() > cfg_entry_size {
            self.scratch.truncate(start);
            return Err(LogError::EntryTooLarge(format!(
                "entry payload overflows its {cfg_entry_size}-byte slot"
            )));
        }
        self.scratch[start..start + 4].copy_from_slice(&(op_len as u32).to_le_bytes());
        self.num_ops += 1;
        Ok(())
    }

    fn check_op_count(&self) -> Result<(), LogError> {
        if (self.num_ops as usize) >= self.log.cfg.max_ops_per_entry {
            return Err(LogError::EntryTooLarge(format!(
                "too many ops for one entry: {} > {}",
                self.num_ops as usize + 1,
                self.log.cfg.max_ops_per_entry
            )));
        }
        Ok(())
    }

    /// Number of operations pushed so far.
    pub fn num_ops(&self) -> usize {
        self.num_ops as usize
    }

    /// Finalizes the entry (length, op count, checksum), writes and flushes its
    /// occupied bytes and issues **the one persistent fence** of the append.
    pub fn commit(mut self) -> Result<(), LogError> {
        if self.num_ops == 0 {
            return Err(LogError::EntryTooLarge(
                "an entry must record at least one operation".into(),
            ));
        }
        finish_encode(&mut self.scratch, self.num_ops);
        let scratch = std::mem::take(&mut self.scratch);
        let result = self.log.publish_scratch(&scratch, self.num_ops);
        self.log.scratch = scratch;
        result
    }
}

impl Drop for EntryWriter<'_> {
    fn drop(&mut self) {
        // Hand the buffer back for reuse (no-op after commit took it).
        if !self.scratch.is_empty() {
            self.log.scratch = std::mem::take(&mut self.scratch);
        }
    }
}

impl fmt::Debug for PersistentLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PersistentLog")
            .field("base", &self.base)
            .field("live_len", &self.live_len())
            .field("live_bytes", &self.live_bytes)
            .field("capacity", &self.cfg.capacity_entries)
            .finish()
    }
}

fn read_u64(pool: &NvmPool, addr: PAddr) -> u64 {
    pool.read_u64(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::{CrashTrigger, PmemConfig};

    fn setup(cfg: LogConfig) -> (NvmPool, PersistentLog) {
        let pool = NvmPool::new(PmemConfig::with_capacity(16 << 20).apply_pending_at_crash(0.0));
        let base = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let log = PersistentLog::create(pool.clone(), cfg, base);
        (pool, log)
    }

    #[test]
    fn append_costs_exactly_one_persistent_fence() {
        let (pool, mut log) = setup(LogConfig::default());
        for i in 1..=10u64 {
            let w = pool.stats().op_window();
            log.append(&[b"op", b"helped"], i).unwrap();
            let d = w.close();
            assert_eq!(
                d.persistent_fences, 1,
                "append #{i} used more than one fence"
            );
            assert_eq!(d.fences, 1);
        }
    }

    #[test]
    fn append_writes_only_occupied_bytes() {
        let (pool, mut log) = setup(LogConfig::default());
        let w = pool.stats().op_window();
        log.append(&[b"0123456789abcdef"], 1).unwrap();
        let d = w.close();
        let occupied = crate::entry::occupied_size(1, 16) as u64;
        assert_eq!(
            d.stored_bytes, occupied,
            "append must not write slot padding"
        );
        assert!(
            d.stored_bytes < log.config().entry_size() as u64 / 4,
            "a single-op append wrote {} of a {}-byte slot",
            d.stored_bytes,
            log.config().entry_size()
        );
        // Flush covers only the occupied lines (1 line here), not the slot.
        assert_eq!(d.flushed_lines, 1);
    }

    #[test]
    fn writer_api_appends_without_intermediate_buffers() {
        let (pool, mut log) = setup(LogConfig::default());
        let base = log.base();
        let mut w = log.begin(2).unwrap();
        w.push_op_with(|buf| buf.extend_from_slice(b"own-op"))
            .unwrap();
        w.push_op(b"helped-op").unwrap();
        assert_eq!(w.num_ops(), 2);
        w.commit().unwrap();
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, LogConfig::default(), base);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].op(0), b"own-op");
        assert_eq!(entries[0].op(1), b"helped-op");
        assert_eq!(entries[0].execution_index, 2);
    }

    #[test]
    fn abandoned_writer_leaves_the_log_untouched() {
        let (pool, mut log) = setup(LogConfig::default());
        {
            let mut w = log.begin(1).unwrap();
            w.push_op(b"never-committed").unwrap();
            // Dropped without commit.
        }
        assert!(log.is_empty());
        assert_eq!(log.live_bytes(), 0);
        // The log is still fully usable and the next append gets seq 1.
        log.append(&[b"real"], 1).unwrap();
        let base = log.base();
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, LogConfig::default(), base);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].op(0), b"real");
    }

    #[test]
    fn writer_rejects_oversized_op_without_touching_nvm() {
        let cfg = LogConfig::default().op_slot_size(8);
        let (_pool, mut log) = setup(cfg);
        let mut w = log.begin(1).unwrap();
        assert!(matches!(
            w.push_op_with(|buf| buf.extend_from_slice(&[0u8; 16])),
            Err(LogError::EntryTooLarge(_))
        ));
        // The failed op was rolled back; a valid one still fits.
        w.push_op(b"ok").unwrap();
        w.commit().unwrap();
        assert_eq!(log.live_len(), 1);
    }

    #[test]
    fn entries_survive_crash_and_reopen_in_order() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        for i in 1..=5u64 {
            log.append(&[format!("op{i}").as_bytes()], i).unwrap();
        }
        pool.crash_and_restart();
        let (reopened, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 5);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.execution_index, i as u64 + 1);
            assert_eq!(e.op(0), format!("op{}", i + 1).as_bytes());
        }
        assert_eq!(reopened.live_len(), 5);
    }

    #[test]
    fn unfenced_append_is_lost_but_earlier_ones_survive() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        log.append(&[b"first"], 1).unwrap();
        // Crash in the middle of the second append: after its stores but before its
        // fence. AfterFlushes(1) fires on the append's flush, i.e. pre-fence.
        pool.arm_crash(CrashTrigger::AfterFlushes(1));
        let _ = log.append(&[b"second"], 2);
        assert!(pool.is_frozen());
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].op(0), b"first");
    }

    #[test]
    fn torn_append_mid_stores_is_ignored() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        log.append(&[b"first"], 1).unwrap();
        // Crash after only a couple of stores of the next entry.
        pool.arm_crash(CrashTrigger::AfterStores(1));
        let _ = log.append(&[b"second"], 2);
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn appends_continue_after_recovery() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        log.append(&[b"a"], 1).unwrap();
        log.append(&[b"b"], 2).unwrap();
        pool.crash_and_restart();
        let (mut reopened, entries) = PersistentLog::open(pool.clone(), cfg.clone(), base);
        assert_eq!(entries.len(), 2);
        reopened.append(&[b"c"], 3).unwrap();
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(
            entries.iter().map(|e| e.op(0).to_vec()).collect::<Vec<_>>(),
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]
        );
    }

    #[test]
    fn log_reports_full_when_capacity_exhausted() {
        let cfg = LogConfig::default().capacity_entries(4);
        let (_pool, mut log) = setup(cfg);
        for i in 1..=4u64 {
            log.append(&[b"x"], i).unwrap();
        }
        assert_eq!(log.free_slots(), 0);
        assert_eq!(log.append(&[b"x"], 5), Err(LogError::Full));
        assert!(matches!(log.begin(5), Err(LogError::Full)));
    }

    #[test]
    fn truncate_frees_slots_and_survives_crash() {
        let cfg = LogConfig::default().capacity_entries(4);
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        for i in 1..=4u64 {
            log.append(&[b"x"], i).unwrap();
        }
        log.truncate().unwrap();
        assert!(log.is_empty());
        assert_eq!(log.truncations(), 1);
        // Wrap around: four more appends fit.
        for i in 5..=8u64 {
            log.append(&[format!("y{i}").as_bytes()], i).unwrap();
        }
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].execution_index, 5);
        assert_eq!(entries[3].op(0), b"y8");
    }

    #[test]
    fn truncate_below_drops_only_the_covered_prefix() {
        let cfg = LogConfig::default().capacity_entries(8);
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        for i in 1..=6u64 {
            log.append(&[format!("op{i}").as_bytes()], i).unwrap();
        }
        // Checkpoint covered indices <= 4: four entries become droppable.
        assert_eq!(log.truncate_below(4).unwrap(), 4);
        assert_eq!(log.live_len(), 2);
        assert_eq!(log.first_live_index(), Some(5));
        // Idempotent: nothing below the watermark remains, and no fence is paid.
        let w = pool.stats().op_window();
        assert_eq!(log.truncate_below(4).unwrap(), 0);
        assert_eq!(w.close().persistent_fences, 0);
        // The freed ring slots are reusable: capacity 8, 2 live, 6 free.
        assert_eq!(log.free_slots(), 6);
        for i in 7..=12u64 {
            log.append(&[format!("op{i}").as_bytes()], i).unwrap();
        }
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 8);
        assert_eq!(entries[0].execution_index, 5);
        assert_eq!(entries[7].execution_index, 12);
    }

    #[test]
    fn truncate_below_survives_crash() {
        let cfg = LogConfig::default().capacity_entries(8);
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        for i in 1..=5u64 {
            log.append(&[b"x"], i).unwrap();
        }
        assert_eq!(log.truncate_below(3).unwrap(), 3);
        pool.crash_and_restart();
        let (reopened, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].execution_index, 4);
        assert_eq!(reopened.first_live_index(), Some(4));
    }

    #[test]
    fn truncate_below_whole_log_behaves_like_truncate() {
        let cfg = LogConfig::default().capacity_entries(4);
        let (_pool, mut log) = setup(cfg);
        for i in 1..=4u64 {
            log.append(&[b"x"], i).unwrap();
        }
        assert_eq!(log.truncate_below(u64::MAX).unwrap(), 4);
        assert!(log.is_empty());
        assert_eq!(log.first_live_index(), None);
        assert_eq!(log.live_bytes(), 0);
    }

    #[test]
    fn live_bytes_tracks_occupied_bytes_not_slot_capacity() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        assert_eq!(log.live_bytes(), 0);
        log.append(&[b"a"], 1).unwrap();
        log.append(&[b"bc"], 2).unwrap();
        let expected =
            (crate::entry::occupied_size(1, 1) + crate::entry::occupied_size(1, 2)) as u64;
        assert_eq!(log.live_bytes(), expected);
        assert!(
            log.live_bytes() < 2 * cfg.entry_size() as u64 / 4,
            "live bytes must reflect occupancy, not slot stride"
        );
        // Accounting is rebuilt exactly on reopen …
        pool.crash_and_restart();
        let (mut reopened, _) = PersistentLog::open(pool, cfg, base);
        assert_eq!(reopened.live_bytes(), expected);
        // … and shrinks by the dropped entries' occupied bytes on truncation.
        reopened.truncate_below(1).unwrap();
        assert_eq!(
            reopened.live_bytes(),
            crate::entry::occupied_size(1, 2) as u64
        );
    }

    #[test]
    fn stale_pre_truncation_entries_are_not_resurrected() {
        let cfg = LogConfig::default().capacity_entries(8);
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        for i in 1..=3u64 {
            log.append(&[b"old"], i).unwrap();
        }
        log.truncate().unwrap();
        log.append(&[b"new"], 4).unwrap();
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].op(0), b"new");
    }

    #[test]
    fn stale_longer_entry_under_a_shorter_rewrite_is_rejected() {
        // A slot reused across a ring lap keeps the old (longer) entry's tail
        // bytes beyond the new entry's occupied range. The new entry must decode
        // (residue is dead), and after a crash that tears the *new* write the
        // old entry must not resurrect (its seq is from a previous lap).
        let cfg = LogConfig::default().capacity_entries(2);
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        log.append(&[b"a-rather-long-first-operation-payload", b"helped-op"], 1)
            .unwrap();
        log.append(&[b"x"], 2).unwrap();
        log.truncate().unwrap();
        // Slot 0 is rewritten with a much shorter entry.
        log.append(&[b"s"], 3).unwrap();
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].op(0), b"s");
        assert_eq!(entries[0].execution_index, 3);
    }

    #[test]
    fn oversized_ops_are_rejected_without_touching_the_log() {
        let cfg = LogConfig::default().op_slot_size(8);
        let (_pool, mut log) = setup(cfg);
        let big = vec![0u8; 16];
        assert!(matches!(
            log.append(&[&big], 1),
            Err(LogError::EntryTooLarge(_))
        ));
        assert!(log.is_empty());
    }

    #[test]
    fn helped_ops_recoverable_with_correct_indices() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        // Entry records own op (index 5) and two helped ops (indices 4 and 3).
        log.append(&[b"own", b"helped4", b"helped3"], 5).unwrap();
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        let e = &entries[0];
        assert_eq!(e.op_with_index(5).unwrap(), b"own");
        assert_eq!(e.op_with_index(4).unwrap(), b"helped4");
        assert_eq!(e.op_with_index(3).unwrap(), b"helped3");
        assert_eq!(e.op_with_index(2), None);
    }

    #[test]
    fn two_logs_in_one_pool_do_not_interfere() {
        let cfg = LogConfig::default().capacity_entries(16);
        let pool = NvmPool::new(PmemConfig::with_capacity(16 << 20));
        let base1 = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let base2 = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let mut l1 = PersistentLog::create(pool.clone(), cfg.clone(), base1);
        let mut l2 = PersistentLog::create(pool.clone(), cfg.clone(), base2);
        l1.append(&[b"l1-op"], 1).unwrap();
        l2.append(&[b"l2-op"], 2).unwrap();
        pool.crash_and_restart();
        let (_, e1) = PersistentLog::open(pool.clone(), cfg.clone(), base1);
        let (_, e2) = PersistentLog::open(pool, cfg, base2);
        assert_eq!(e1[0].op(0), b"l1-op");
        assert_eq!(e2[0].op(0), b"l2-op");
    }

    #[test]
    fn debug_output_mentions_len() {
        let (_p, log) = setup(LogConfig::default());
        assert!(format!("{log:?}").contains("live_len"));
    }
}
