//! The per-process persistent log.

use crate::config::LogConfig;
use crate::entry::{decode_entry, encode_entry, LogEntry};
use nvm_sim::{NvmPool, PAddr};
use std::fmt;

/// Errors returned by [`PersistentLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The circular log has no free slot (truncate before appending more).
    Full,
    /// The operations passed to `append` do not fit the configured entry geometry.
    EntryTooLarge(String),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Full => write!(f, "persistent log is full"),
            LogError::EntryTooLarge(msg) => write!(f, "log entry does not fit: {msg}"),
        }
    }
}

impl std::error::Error for LogError {}

/// Layout of the log header (one cache line at the base address):
/// ```text
/// offset 0   start_slot  u64   first live slot of the circular log
/// offset 8   start_seq   u64   sequence number expected at start_slot
/// offset 16  truncations u64   number of truncate calls (diagnostics)
/// ```
const HDR_START_SLOT: u64 = 0;
const HDR_START_SEQ: u64 = 8;
const HDR_TRUNCATIONS: u64 = 16;

/// A per-process, single-writer, append-only persistent log with exactly one
/// persistent fence per append.
///
/// The log is *owned* by one process (the `&mut self` receiver on
/// [`PersistentLog::append`] encodes single-writer-ness); other processes never
/// write to it, matching the paper's per-process logs.
pub struct PersistentLog {
    pool: NvmPool,
    cfg: LogConfig,
    base: PAddr,
    /// Next slot to append into (volatile; recomputed by recovery).
    next_slot: u64,
    /// Sequence number to assign to the next append (volatile; recomputed).
    next_seq: u64,
    /// First live slot (cached copy of the persistent header).
    start_slot: u64,
    /// Sequence number of the first live slot.
    start_seq: u64,
}

impl PersistentLog {
    /// Bytes of NVM needed for a log with configuration `cfg`.
    pub fn region_size(cfg: &LogConfig) -> usize {
        cfg.region_size()
    }

    /// Formats a fresh, empty log at `base` (which must point at
    /// [`PersistentLog::region_size`] bytes of allocated NVM).
    pub fn create(pool: NvmPool, cfg: LogConfig, base: PAddr) -> Self {
        // Zero the header and persist it. Entry slots are lazily overwritten; their
        // validity is determined by checksum + sequence number, so stale bytes from
        // a previous life of this region are harmless only if they can't collide
        // with (slot, seq) pairs we will produce. A fresh create zeroes the first
        // entry of each slot's header line to be safe.
        let header = vec![0u8; cfg.log_header_size()];
        pool.write(base, &header);
        pool.flush(base, header.len());
        pool.fence();
        PersistentLog {
            pool,
            cfg,
            base,
            next_slot: 0,
            next_seq: 1,
            start_slot: 0,
            start_seq: 1,
        }
    }

    /// Opens a log after a crash: scans the live window, returns the log (ready for
    /// further appends) and the valid entries in append order.
    pub fn open(pool: NvmPool, cfg: LogConfig, base: PAddr) -> (Self, Vec<LogEntry>) {
        let start_slot = read_u64(&pool, base + HDR_START_SLOT);
        let start_seq = read_u64(&pool, base + HDR_START_SEQ).max(1);
        let mut log = PersistentLog {
            pool,
            cfg,
            base,
            next_slot: start_slot,
            next_seq: start_seq,
            start_slot,
            start_seq,
        };
        let entries = log.scan_live();
        // Continue appending after the last valid entry.
        if let Some(last) = entries.last() {
            log.next_seq = last.seq + 1;
            log.next_slot = (start_slot + entries.len() as u64) % log.cfg.capacity_entries as u64;
        }
        (log, entries)
    }

    fn entry_addr(&self, slot: u64) -> PAddr {
        self.base + self.cfg.log_header_size() as u64 + slot * self.cfg.entry_size() as u64
    }

    /// Number of live (appended and not truncated) entries.
    pub fn live_len(&self) -> usize {
        (self.next_seq - self.start_seq) as usize
    }

    /// True if no live entries exist.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// Remaining free slots before the circular log refuses appends.
    pub fn free_slots(&self) -> usize {
        self.cfg.capacity_entries - self.live_len()
    }

    /// The log's geometry.
    pub fn config(&self) -> &LogConfig {
        &self.cfg
    }

    /// Base address of the log region in its pool.
    pub fn base(&self) -> PAddr {
        self.base
    }

    /// Appends an entry recording `ops` (own operation first, then helped ones) with
    /// the given execution index for `ops[0]`.
    ///
    /// Cost: stores + flushes (free in the paper's model) + **exactly one persistent
    /// fence**.
    pub fn append(&mut self, ops: &[&[u8]], execution_index: u64) -> Result<(), LogError> {
        if self.live_len() >= self.cfg.capacity_entries {
            return Err(LogError::Full);
        }
        let mut buf = vec![0u8; self.cfg.entry_size()];
        encode_entry(&self.cfg, &mut buf, ops, execution_index, self.next_seq)
            .map_err(LogError::EntryTooLarge)?;
        let addr = self.entry_addr(self.next_slot);
        self.pool.write(addr, &buf);
        self.pool.flush(addr, buf.len());
        self.pool.fence();
        self.next_seq += 1;
        self.next_slot = (self.next_slot + 1) % self.cfg.capacity_entries as u64;
        Ok(())
    }

    /// Drops all live entries: the next recovery will start from the current append
    /// position. Used by the Section-8 checkpointing extension after the object
    /// state has been persisted elsewhere.
    ///
    /// Cost: one persistent fence (it is an explicit maintenance operation, not part
    /// of the per-update fence budget).
    pub fn truncate(&mut self) {
        self.publish_start(self.next_slot, self.next_seq);
    }

    /// Drops the live prefix of entries whose `execution_index` is at most
    /// `watermark`, freeing their ring slots for reuse by subsequent appends.
    /// Returns the number of entries dropped.
    ///
    /// A log's entries carry strictly increasing execution indices (each append
    /// records the appender's newest operation), so the droppable entries always
    /// form a prefix of the live window. Callers use this after a checkpoint
    /// covering indices `<= watermark` has been *published*: every dropped entry
    /// is then redundant with the checkpoint, which is the truncation safety
    /// argument (see `onll::Checkpointer`).
    ///
    /// Cost: **zero** fences when nothing is droppable, one persistent fence
    /// otherwise (the start-mark publish). Maintenance, not per-update budget.
    pub fn truncate_below(&mut self, watermark: u64) -> usize {
        let mut dropped = 0u64;
        let mut slot = self.start_slot;
        let mut seq = self.start_seq;
        while seq < self.next_seq {
            let addr = self.entry_addr(slot);
            let buf = self.pool.read_vec(addr, self.cfg.entry_size());
            match decode_entry(&self.cfg, &buf) {
                Some(e) if e.seq == seq && e.execution_index <= watermark => {
                    dropped += 1;
                    seq += 1;
                    slot = (slot + 1) % self.cfg.capacity_entries as u64;
                }
                _ => break,
            }
        }
        if dropped > 0 {
            self.publish_start(slot, seq);
        }
        dropped as usize
    }

    /// Execution index of the oldest live entry, if any. A cheap pre-check for
    /// [`PersistentLog::truncate_below`]: if the oldest entry is already above
    /// the watermark, truncation would be a no-op.
    pub fn first_live_index(&self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let addr = self.entry_addr(self.start_slot);
        let buf = self.pool.read_vec(addr, self.cfg.entry_size());
        decode_entry(&self.cfg, &buf).map(|e| e.execution_index)
    }

    /// Bytes of NVM occupied by live entries (the log-bytes checkpoint-trigger
    /// input).
    pub fn live_bytes(&self) -> u64 {
        self.live_len() as u64 * self.cfg.entry_size() as u64
    }

    /// Persists a new start mark (one persistent fence).
    fn publish_start(&mut self, slot: u64, seq: u64) {
        self.start_slot = slot;
        self.start_seq = seq;
        let mut hdr = vec![0u8; self.cfg.log_header_size()];
        hdr[HDR_START_SLOT as usize..8].copy_from_slice(&self.start_slot.to_le_bytes());
        hdr[HDR_START_SEQ as usize..16].copy_from_slice(&self.start_seq.to_le_bytes());
        let truncations = read_u64(&self.pool, self.base + HDR_TRUNCATIONS) + 1;
        hdr[HDR_TRUNCATIONS as usize..24].copy_from_slice(&truncations.to_le_bytes());
        self.pool.write(self.base, &hdr);
        self.pool.flush(self.base, hdr.len());
        self.pool.fence();
    }

    /// Number of truncations performed over the log's lifetime (diagnostics).
    pub fn truncations(&self) -> u64 {
        read_u64(&self.pool, self.base + HDR_TRUNCATIONS)
    }

    /// Scans the live window and returns all valid entries in append order.
    ///
    /// Validation stops at the first slot whose entry is missing, torn, or carries
    /// an unexpected sequence number — appends are sequential, so valid entries
    /// always form a prefix of the live window.
    pub fn scan_live(&self) -> Vec<LogEntry> {
        let mut entries = Vec::new();
        let mut slot = self.start_slot;
        let mut expect_seq = self.start_seq;
        for _ in 0..self.cfg.capacity_entries {
            let addr = self.entry_addr(slot);
            let buf = self.pool.read_vec(addr, self.cfg.entry_size());
            match decode_entry(&self.cfg, &buf) {
                Some(e) if e.seq == expect_seq => {
                    entries.push(e);
                    expect_seq += 1;
                    slot = (slot + 1) % self.cfg.capacity_entries as u64;
                }
                _ => break,
            }
        }
        entries
    }
}

impl fmt::Debug for PersistentLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PersistentLog")
            .field("base", &self.base)
            .field("live_len", &self.live_len())
            .field("capacity", &self.cfg.capacity_entries)
            .finish()
    }
}

fn read_u64(pool: &NvmPool, addr: PAddr) -> u64 {
    pool.read_u64(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::{CrashTrigger, PmemConfig};

    fn setup(cfg: LogConfig) -> (NvmPool, PersistentLog) {
        let pool = NvmPool::new(PmemConfig::with_capacity(16 << 20).apply_pending_at_crash(0.0));
        let base = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let log = PersistentLog::create(pool.clone(), cfg, base);
        (pool, log)
    }

    #[test]
    fn append_costs_exactly_one_persistent_fence() {
        let (pool, mut log) = setup(LogConfig::default());
        for i in 1..=10u64 {
            let w = pool.stats().op_window();
            log.append(&[b"op", b"helped"], i).unwrap();
            let d = w.close();
            assert_eq!(
                d.persistent_fences, 1,
                "append #{i} used more than one fence"
            );
            assert_eq!(d.fences, 1);
        }
    }

    #[test]
    fn entries_survive_crash_and_reopen_in_order() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        for i in 1..=5u64 {
            log.append(&[format!("op{i}").as_bytes()], i).unwrap();
        }
        pool.crash_and_restart();
        let (reopened, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 5);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.execution_index, i as u64 + 1);
            assert_eq!(e.ops[0], format!("op{}", i + 1).into_bytes());
        }
        assert_eq!(reopened.live_len(), 5);
    }

    #[test]
    fn unfenced_append_is_lost_but_earlier_ones_survive() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        log.append(&[b"first"], 1).unwrap();
        // Crash in the middle of the second append: after its stores but before its
        // fence. AfterFlushes(1) fires on the append's flush, i.e. pre-fence.
        pool.arm_crash(CrashTrigger::AfterFlushes(1));
        let _ = log.append(&[b"second"], 2);
        assert!(pool.is_frozen());
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].ops[0], b"first");
    }

    #[test]
    fn torn_append_mid_stores_is_ignored() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        log.append(&[b"first"], 1).unwrap();
        // Crash after only a couple of stores of the next entry.
        pool.arm_crash(CrashTrigger::AfterStores(1));
        let _ = log.append(&[b"second"], 2);
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn appends_continue_after_recovery() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        log.append(&[b"a"], 1).unwrap();
        log.append(&[b"b"], 2).unwrap();
        pool.crash_and_restart();
        let (mut reopened, entries) = PersistentLog::open(pool.clone(), cfg.clone(), base);
        assert_eq!(entries.len(), 2);
        reopened.append(&[b"c"], 3).unwrap();
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(
            entries.iter().map(|e| e.ops[0].clone()).collect::<Vec<_>>(),
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]
        );
    }

    #[test]
    fn log_reports_full_when_capacity_exhausted() {
        let cfg = LogConfig::default().capacity_entries(4);
        let (_pool, mut log) = setup(cfg);
        for i in 1..=4u64 {
            log.append(&[b"x"], i).unwrap();
        }
        assert_eq!(log.free_slots(), 0);
        assert_eq!(log.append(&[b"x"], 5), Err(LogError::Full));
    }

    #[test]
    fn truncate_frees_slots_and_survives_crash() {
        let cfg = LogConfig::default().capacity_entries(4);
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        for i in 1..=4u64 {
            log.append(&[b"x"], i).unwrap();
        }
        log.truncate();
        assert!(log.is_empty());
        assert_eq!(log.truncations(), 1);
        // Wrap around: four more appends fit.
        for i in 5..=8u64 {
            log.append(&[format!("y{i}").as_bytes()], i).unwrap();
        }
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].execution_index, 5);
        assert_eq!(entries[3].ops[0], b"y8");
    }

    #[test]
    fn truncate_below_drops_only_the_covered_prefix() {
        let cfg = LogConfig::default().capacity_entries(8);
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        for i in 1..=6u64 {
            log.append(&[format!("op{i}").as_bytes()], i).unwrap();
        }
        // Checkpoint covered indices <= 4: four entries become droppable.
        assert_eq!(log.truncate_below(4), 4);
        assert_eq!(log.live_len(), 2);
        assert_eq!(log.first_live_index(), Some(5));
        // Idempotent: nothing below the watermark remains, and no fence is paid.
        let w = pool.stats().op_window();
        assert_eq!(log.truncate_below(4), 0);
        assert_eq!(w.close().persistent_fences, 0);
        // The freed ring slots are reusable: capacity 8, 2 live, 6 free.
        assert_eq!(log.free_slots(), 6);
        for i in 7..=12u64 {
            log.append(&[format!("op{i}").as_bytes()], i).unwrap();
        }
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 8);
        assert_eq!(entries[0].execution_index, 5);
        assert_eq!(entries[7].execution_index, 12);
    }

    #[test]
    fn truncate_below_survives_crash() {
        let cfg = LogConfig::default().capacity_entries(8);
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        for i in 1..=5u64 {
            log.append(&[b"x"], i).unwrap();
        }
        assert_eq!(log.truncate_below(3), 3);
        pool.crash_and_restart();
        let (reopened, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].execution_index, 4);
        assert_eq!(reopened.first_live_index(), Some(4));
    }

    #[test]
    fn truncate_below_whole_log_behaves_like_truncate() {
        let cfg = LogConfig::default().capacity_entries(4);
        let (_pool, mut log) = setup(cfg);
        for i in 1..=4u64 {
            log.append(&[b"x"], i).unwrap();
        }
        assert_eq!(log.truncate_below(u64::MAX), 4);
        assert!(log.is_empty());
        assert_eq!(log.first_live_index(), None);
        assert_eq!(log.live_bytes(), 0);
    }

    #[test]
    fn live_bytes_tracks_entry_geometry() {
        let cfg = LogConfig::default();
        let entry = cfg.entry_size() as u64;
        let (_pool, mut log) = setup(cfg);
        assert_eq!(log.live_bytes(), 0);
        log.append(&[b"a"], 1).unwrap();
        log.append(&[b"b"], 2).unwrap();
        assert_eq!(log.live_bytes(), 2 * entry);
    }

    #[test]
    fn stale_pre_truncation_entries_are_not_resurrected() {
        let cfg = LogConfig::default().capacity_entries(8);
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        for i in 1..=3u64 {
            log.append(&[b"old"], i).unwrap();
        }
        log.truncate();
        log.append(&[b"new"], 4).unwrap();
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].ops[0], b"new");
    }

    #[test]
    fn oversized_ops_are_rejected_without_touching_the_log() {
        let cfg = LogConfig::default().op_slot_size(8);
        let (_pool, mut log) = setup(cfg);
        let big = vec![0u8; 16];
        assert!(matches!(
            log.append(&[&big], 1),
            Err(LogError::EntryTooLarge(_))
        ));
        assert!(log.is_empty());
    }

    #[test]
    fn helped_ops_recoverable_with_correct_indices() {
        let cfg = LogConfig::default();
        let (pool, mut log) = setup(cfg.clone());
        let base = log.base();
        // Entry records own op (index 5) and two helped ops (indices 4 and 3).
        log.append(&[b"own", b"helped4", b"helped3"], 5).unwrap();
        pool.crash_and_restart();
        let (_, entries) = PersistentLog::open(pool, cfg, base);
        let e = &entries[0];
        assert_eq!(e.op_with_index(5).unwrap(), b"own");
        assert_eq!(e.op_with_index(4).unwrap(), b"helped4");
        assert_eq!(e.op_with_index(3).unwrap(), b"helped3");
        assert_eq!(e.op_with_index(2), None);
    }

    #[test]
    fn two_logs_in_one_pool_do_not_interfere() {
        let cfg = LogConfig::default().capacity_entries(16);
        let pool = NvmPool::new(PmemConfig::with_capacity(16 << 20));
        let base1 = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let base2 = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let mut l1 = PersistentLog::create(pool.clone(), cfg.clone(), base1);
        let mut l2 = PersistentLog::create(pool.clone(), cfg.clone(), base2);
        l1.append(&[b"l1-op"], 1).unwrap();
        l2.append(&[b"l2-op"], 2).unwrap();
        pool.crash_and_restart();
        let (_, e1) = PersistentLog::open(pool.clone(), cfg.clone(), base1);
        let (_, e2) = PersistentLog::open(pool, cfg, base2);
        assert_eq!(e1[0].ops[0], b"l1-op");
        assert_eq!(e2[0].ops[0], b"l2-op");
    }

    #[test]
    fn debug_output_mentions_len() {
        let (_p, log) = setup(LogConfig::default());
        assert!(format!("{log:?}").contains("live_len"));
    }
}
