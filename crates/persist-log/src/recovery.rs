//! Post-crash history reconstruction (Listing 5 of the paper).
//!
//! Given the valid entries of every process's persistent log, recovery rebuilds the
//! prefix of the execution trace that was made durable before the crash: for each
//! execution index `i = 1, 2, ...` it looks for the log entry with the *lowest*
//! execution index `j >= i` and, if that entry covers `i` (it recorded `ops[j-i]`),
//! recovers that operation. The iteration stops at the first index that no log
//! entry covers — by Proposition 5.10 every operation linearized before the crash
//! is found this way, in linearization order.

use crate::entry::LogEntry;

/// One operation recovered from the logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredOp {
    /// The operation's execution index (1-based; index 0 is INITIALIZE).
    pub execution_index: u64,
    /// The encoded operation payload as it was appended.
    pub encoded_op: Vec<u8>,
}

/// Reconstructs the durable history from the per-process log contents.
///
/// `logs` contains, for each process, the valid entries of its log (in append
/// order, as returned by [`crate::PersistentLog::open`]). The result is the ordered
/// list of operations with execution indices `1..=n` for the largest `n` such that
/// every index in that range is covered by some log entry.
pub fn reconstruct_history(logs: &[Vec<LogEntry>]) -> Vec<RecoveredOp> {
    reconstruct_history_from(logs, 1)
}

/// Like [`reconstruct_history`] but starting the reconstruction at
/// `first_index` instead of 1. Used by the checkpointing extension (Section 8):
/// after a checkpoint covering indices `< c`, only indices `>= c` need to be
/// replayed from the logs.
pub fn reconstruct_history_from(logs: &[Vec<LogEntry>], first_index: u64) -> Vec<RecoveredOp> {
    // Flatten all entries; recovery per the paper scans all processes' logs.
    let mut all: Vec<&LogEntry> = logs.iter().flatten().collect();
    // Sorting by execution index makes "lowest execution index j >= i" a cursor
    // that only moves forward: as `i` increases, entries it passed can never
    // become candidates again, so the whole reconstruction is a single O(n)
    // sweep instead of re-scanning the entry list per recovered index.
    all.sort_by_key(|e| e.execution_index);

    let mut result = Vec::new();
    let mut i: u64 = first_index.max(1);
    let mut cursor = 0usize;
    loop {
        // Advance to the entry with the lowest execution index j >= i.
        while cursor < all.len() && all[cursor].execution_index < i {
            cursor += 1;
        }
        let Some(entry) = all.get(cursor) else { break };
        match entry.op_with_index(i) {
            Some(op) => {
                result.push(RecoveredOp {
                    execution_index: i,
                    encoded_op: op.to_vec(),
                });
                i += 1;
            }
            None => {
                // The lowest entry with index >= i does not cover i: operation i was
                // never persisted, so the durable history ends at i-1.
                break;
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(execution_index: u64, ops: &[&str]) -> LogEntry {
        let ops: Vec<&[u8]> = ops.iter().map(|s| s.as_bytes()).collect();
        LogEntry::from_ops(execution_index, 0, &ops)
    }

    #[test]
    fn empty_logs_recover_empty_history() {
        assert!(reconstruct_history(&[]).is_empty());
        assert!(reconstruct_history(&[vec![], vec![]]).is_empty());
    }

    #[test]
    fn single_process_sequential_history() {
        let log = vec![entry(1, &["a"]), entry(2, &["b"]), entry(3, &["c"])];
        let h = reconstruct_history(&[log]);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0].encoded_op, b"a");
        assert_eq!(h[2].encoded_op, b"c");
        assert_eq!(h[2].execution_index, 3);
    }

    #[test]
    fn helped_operation_found_in_later_entry() {
        // Process 1 appended op with index 1; process 2 appended an entry for index 3
        // helping indices 2 and 1. Index 2 exists only as a helped op.
        let log1 = vec![entry(1, &["op1"])];
        let log2 = vec![entry(3, &["op3", "op2", "op1"])];
        let h = reconstruct_history(&[log1, log2]);
        assert_eq!(
            h.iter().map(|r| r.encoded_op.clone()).collect::<Vec<_>>(),
            vec![b"op1".to_vec(), b"op2".to_vec(), b"op3".to_vec()]
        );
    }

    #[test]
    fn figure1_execution4_shape() {
        // Paper Figure 1, execution 4: p1 appended nothing, p2's entry covers
        // indices 1 and 2, p3 never finished its append. Recovery yields ops 1, 2.
        let p1: Vec<LogEntry> = vec![];
        let p2 = vec![entry(2, &["inc_p2", "inc_p1"])];
        let p3: Vec<LogEntry> = vec![];
        let h = reconstruct_history(&[p1, p2, p3]);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].encoded_op, b"inc_p1");
        assert_eq!(h[1].encoded_op, b"inc_p2");
    }

    #[test]
    fn gap_truncates_the_recovered_history() {
        // Index 2 is covered nowhere: history stops after index 1 even though an
        // entry for index 4 exists (that entry only helps back to index 3).
        let log1 = vec![entry(1, &["op1"])];
        let log2 = vec![entry(4, &["op4", "op3"])];
        let h = reconstruct_history(&[log1, log2]);
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].encoded_op, b"op1");
    }

    #[test]
    fn duplicate_coverage_prefers_lowest_execution_index() {
        // Index 1 is covered by its own entry and helped by a later one; the value
        // must come from the entry with the lowest execution index >= 1 (its own),
        // which also equals the helped copy in a correct execution. Here we make
        // them differ to pin down the selection rule.
        let log1 = vec![entry(1, &["own1"])];
        let log2 = vec![entry(2, &["op2", "helped1"])];
        let h = reconstruct_history(&[log1, log2]);
        assert_eq!(h[0].encoded_op, b"own1");
        assert_eq!(h[1].encoded_op, b"op2");
    }

    #[test]
    fn interleaved_processes_reconstruct_total_order() {
        // p1 did indices 1, 3, 5; p2 did 2, 4, 6, each helping the previous index.
        let p1 = vec![
            entry(1, &["u1"]),
            entry(3, &["u3", "u2"]),
            entry(5, &["u5", "u4"]),
        ];
        let p2 = vec![
            entry(2, &["u2", "u1"]),
            entry(4, &["u4", "u3"]),
            entry(6, &["u6", "u5"]),
        ];
        let h = reconstruct_history(&[p1, p2]);
        assert_eq!(h.len(), 6);
        for (k, r) in h.iter().enumerate() {
            assert_eq!(r.execution_index, k as u64 + 1);
            assert_eq!(r.encoded_op, format!("u{}", k + 1).into_bytes());
        }
    }

    #[test]
    fn unordered_log_entries_are_handled() {
        // Entries within a log are normally in append order, but recovery must not
        // rely on it (helping can make indices non-monotone across processes).
        let p1 = vec![entry(3, &["u3", "u2", "u1"]), entry(1, &["u1"])];
        let h = reconstruct_history(&[p1]);
        assert_eq!(h.len(), 3);
        assert_eq!(h[1].encoded_op, b"u2");
    }

    #[test]
    fn history_never_contains_index_zero() {
        let p1 = vec![entry(1, &["u1"])];
        let h = reconstruct_history(&[p1]);
        assert!(h.iter().all(|r| r.execution_index >= 1));
    }

    #[test]
    fn reconstruction_from_checkpoint_index_skips_older_ops() {
        let p1 = vec![entry(3, &["u3"]), entry(5, &["u5", "u4"])];
        let h = reconstruct_history_from(&[p1], 3);
        assert_eq!(
            h.iter().map(|r| r.encoded_op.clone()).collect::<Vec<_>>(),
            vec![b"u3".to_vec(), b"u4".to_vec(), b"u5".to_vec()]
        );
        assert_eq!(h[0].execution_index, 3);
    }

    #[test]
    fn reconstruction_from_uncovered_start_is_empty() {
        // Logs were truncated past index 4; starting at 2 finds the lowest entry
        // with index >= 2 (which is 4) but it does not cover 2, so nothing is
        // recovered — the caller must start from its checkpoint index instead.
        let p1 = vec![entry(4, &["u4"])];
        assert!(reconstruct_history_from(&[p1], 2).is_empty());
    }

    #[test]
    fn reconstruction_from_zero_behaves_like_from_one() {
        let p1 = vec![entry(1, &["u1"]), entry(2, &["u2"])];
        assert_eq!(
            reconstruct_history_from(std::slice::from_ref(&p1), 0),
            reconstruct_history_from(&[p1], 1)
        );
    }
}
