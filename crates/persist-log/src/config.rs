//! Log geometry configuration.

use nvm_sim::CACHE_LINE_SIZE;

/// Geometry of a per-process persistent log.
///
/// The ring is made of fixed-**stride** slots so entry addresses stay
/// computable ([`LogConfig::entry_size`] is the stride), but entries stored in
/// those slots are **variable-length**: an append writes and flushes only the
/// bytes the entry occupies (see [`crate::entry`]). The stride is sized from
/// `max_ops_per_entry` and `op_slot_size` so the worst-case fuzzy window —
/// every op at its maximum encoded size — always fits; typical entries occupy
/// a small fraction of it, and the slack costs address space, not write
/// bandwidth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogConfig {
    /// Maximum number of operations a single entry can record: the process's own
    /// operation plus helped fuzzy-window operations. Corresponds to
    /// `MAX_PROCESSES` in Listing 1 — Proposition 5.2 bounds the fuzzy window by
    /// the number of processes.
    pub max_ops_per_entry: usize,
    /// Maximum encoded size, in bytes, of one operation. Bounds each op's
    /// variable-length payload; together with `max_ops_per_entry` it sizes the
    /// slot stride (capacity), not what an append actually writes.
    pub op_slot_size: usize,
    /// Number of entry slots in the (circular) log.
    pub capacity_entries: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            max_ops_per_entry: 8,
            op_slot_size: 56,
            capacity_entries: 4096,
        }
    }
}

impl LogConfig {
    /// Creates a configuration sized for `max_processes` helpers.
    pub fn for_processes(max_processes: usize) -> Self {
        LogConfig {
            max_ops_per_entry: max_processes.max(1),
            ..Default::default()
        }
    }

    /// Sets the per-operation slot size.
    pub fn op_slot_size(mut self, size: usize) -> Self {
        self.op_slot_size = size;
        self
    }

    /// Sets the number of entry slots.
    pub fn capacity_entries(mut self, n: usize) -> Self {
        self.capacity_entries = n;
        self
    }

    /// Size in bytes of one ring slot (the entry *stride*), rounded up to cache
    /// lines: the fixed header plus the worst case of `max_ops_per_entry`
    /// maximum-size length-prefixed operations. An entry may occupy anywhere
    /// from a few dozen bytes up to this capacity; appends write and flush only
    /// the occupied prefix. Use [`crate::PersistentLog::live_bytes`] for actual
    /// occupancy accounting.
    pub fn entry_size(&self) -> usize {
        let raw = crate::entry::ENTRY_HEADER
            + crate::entry::PAYLOAD_PREFIX
            + self.max_ops_per_entry * (4 + self.op_slot_size);
        raw.div_ceil(CACHE_LINE_SIZE) * CACHE_LINE_SIZE
    }

    /// Size in bytes of the log's own header (start mark).
    pub(crate) fn log_header_size(&self) -> usize {
        CACHE_LINE_SIZE
    }

    /// Total region size needed for a log with this configuration (the address
    /// space reserved for the ring, not the bytes appends will write).
    pub fn region_size(&self) -> usize {
        self.log_header_size() + self.capacity_entries * self.entry_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_size_is_cache_line_multiple() {
        let cfg = LogConfig::default();
        assert_eq!(cfg.entry_size() % CACHE_LINE_SIZE, 0);
        assert!(cfg.entry_size() >= crate::entry::ENTRY_HEADER + crate::entry::PAYLOAD_PREFIX);
    }

    #[test]
    fn entry_size_covers_the_worst_case_payload() {
        let cfg = LogConfig::default();
        assert!(
            cfg.entry_size()
                >= crate::entry::occupied_size(
                    cfg.max_ops_per_entry,
                    cfg.max_ops_per_entry * cfg.op_slot_size
                )
        );
    }

    #[test]
    fn region_size_accounts_for_all_entries() {
        let cfg = LogConfig::default().capacity_entries(10);
        assert_eq!(
            cfg.region_size(),
            cfg.log_header_size() + 10 * cfg.entry_size()
        );
    }

    #[test]
    fn for_processes_sets_helper_capacity() {
        let cfg = LogConfig::for_processes(3);
        assert_eq!(cfg.max_ops_per_entry, 3);
        let cfg = LogConfig::for_processes(0);
        assert_eq!(cfg.max_ops_per_entry, 1);
    }

    #[test]
    fn builders_compose() {
        let cfg = LogConfig::for_processes(4)
            .op_slot_size(16)
            .capacity_entries(128);
        assert_eq!(cfg.op_slot_size, 16);
        assert_eq!(cfg.capacity_entries, 128);
        assert_eq!(cfg.max_ops_per_entry, 4);
    }

    #[test]
    fn bigger_slots_grow_the_entry() {
        let small = LogConfig::default().op_slot_size(8);
        let large = LogConfig::default().op_slot_size(512);
        assert!(large.entry_size() > small.entry_size());
    }
}
