//! # persist-log — a single-persistent-fence per-process append-only log
//!
//! ONLL's persist stage relies on a per-process persistent log whose `append`
//! operation costs **exactly one persistent fence** (Section 4.1.1 of the paper,
//! building on Cohen, Friedman and Larus, OOPSLA 2017). Each append records:
//!
//! * the update operation being executed by the owning process, and
//! * up to `MAX_PROCESSES - 1` *helped* operations — the fuzzy-window operations of
//!   other processes that are not yet guaranteed durable (Listing 1), and
//! * the execution index of the first operation (the helped operation with offset
//!   `k` in the array has execution index `executionIndex - k`).
//!
//! ## How one fence suffices
//!
//! The hardware gives no ordering between the entry's payload lines reaching NVM
//! and a separate "valid" flag reaching NVM, unless two fences are used. Instead,
//! an entry is *self-validating*: its header carries a checksum over the whole
//! entry, and recovery treats an entry as present iff the checksum matches (and the
//! per-log sequence number is the expected one). A torn entry — some lines written
//! back, others not — fails validation and is ignored, which is exactly the
//! "operation not persisted" outcome the paper's recovery handles. Appending is
//! therefore: write the entry (stores), flush its lines (free), one fence.
//!
//! The log is circular. A persistent *start mark* (slot + sequence number) written
//! only by explicit [`PersistentLog::truncate`] calls supports the checkpointing /
//! memory-reclamation extension of Section 8.
//!
//! Ring slots have a fixed stride (so slot addresses stay computable) but hold
//! **variable-length** entries: an append encodes into a scratch buffer owned by
//! the log — or directly via the zero-copy [`EntryWriter`] — and writes/flushes
//! only the occupied bytes, so the store cost of an update is proportional to
//! the operations it records, not to the worst-case slot geometry.
//!
//! ```
//! use nvm_sim::{NvmPool, PmemConfig};
//! use persist_log::{LogConfig, PersistentLog};
//!
//! let pool = NvmPool::new(PmemConfig::default());
//! let cfg = LogConfig::default();
//! let base = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
//! let mut log = PersistentLog::create(pool.clone(), cfg.clone(), base);
//!
//! let w = pool.stats().op_window();
//! log.append(&[b"increment"], 1).unwrap();
//! assert_eq!(w.close().persistent_fences, 1); // exactly one fence per append
//!
//! pool.crash_and_restart();
//! let (recovered, entries) = PersistentLog::open(pool.clone(), cfg, base);
//! assert_eq!(entries.len(), 1);
//! assert_eq!(entries[0].execution_index, 1);
//! assert_eq!(entries[0].op(0), b"increment");
//! # drop(recovered);
//! ```

#![warn(missing_docs)]

mod config;
mod entry;
mod log;
mod recovery;

pub use config::LogConfig;
pub use entry::{checksum64, LogEntry};
pub use log::{EntryWriter, LogError, PersistentLog};
pub use recovery::{reconstruct_history, reconstruct_history_from, RecoveredOp};
