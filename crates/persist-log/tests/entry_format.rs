//! Property tests of the variable-length entry format.
//!
//! Three angles on the same contract — the log must never return an entry it
//! did not append, whatever the bytes in the ring look like:
//!
//! 1. **Roundtrip**: arbitrary op counts and op sizes (including empty ops and
//!    max-size ops) survive append → crash → reopen byte-for-byte, through both
//!    the slice-based `append` and the zero-copy `EntryWriter` path.
//! 2. **Torn-write fuzzing**: flipping arbitrary bytes inside committed
//!    entries' occupied ranges must invalidate exactly the corrupted suffix —
//!    recovery returns an intact prefix, never garbage.
//! 3. **Truncated-tail fuzzing**: an entry whose occupied bytes were only
//!    partially persisted (the torn-append shape a crash produces) must be
//!    rejected at every cut point, while corruption confined to the *dead*
//!    remainder of a slot must not affect the entry at all.

use nvm_sim::{NvmPool, PmemConfig, CACHE_LINE_SIZE};
use persist_log::{LogConfig, PersistentLog};
use proptest::prelude::*;

fn pool() -> NvmPool {
    NvmPool::new(PmemConfig::with_capacity(32 << 20).apply_pending_at_crash(0.0))
}

/// Address of ring slot `slot` (the log header occupies the first cache line
/// of the region — white-box knowledge used only to inject corruption).
fn slot_addr(base: u64, cfg: &LogConfig, slot: u64) -> u64 {
    base + CACHE_LINE_SIZE as u64 + slot * cfg.entry_size() as u64
}

/// Persists `bytes` at `addr` directly (corruption injection).
fn clobber(pool: &NvmPool, addr: u64, bytes: &[u8]) {
    pool.write(addr, bytes);
    pool.flush(addr, bytes.len());
    pool.fence().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_ops_roundtrip_through_both_append_paths(
        // Per entry: number of ops (1..=4) and a size seed per op.
        shapes in proptest::collection::vec((1usize..=4, 0usize..=56, 0u8..255), 1..12),
        use_writer in any::<bool>(),
    ) {
        let cfg = LogConfig::for_processes(4).op_slot_size(56).capacity_entries(32);
        let pool = pool();
        let base = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let mut log = PersistentLog::create(pool.clone(), cfg.clone(), base);

        let mut appended: Vec<Vec<Vec<u8>>> = Vec::new();
        for (i, (num_ops, size_seed, fill)) in shapes.iter().enumerate() {
            let idx = i as u64 + *num_ops as u64; // keep execution_index >= num_ops
            let ops: Vec<Vec<u8>> = (0..*num_ops)
                .map(|k| vec![fill.wrapping_add(k as u8); (size_seed + k * 7) % 57])
                .collect();
            if use_writer {
                let mut w = log.begin(idx).unwrap();
                for op in &ops {
                    w.push_op_with(|buf| buf.extend_from_slice(op)).unwrap();
                }
                w.commit().unwrap();
            } else {
                let refs: Vec<&[u8]> = ops.iter().map(|o| o.as_slice()).collect();
                log.append(&refs, idx).unwrap();
            }
            appended.push(ops);
        }

        pool.crash_and_restart();
        let (_reopened, entries) = PersistentLog::open(pool, cfg, base);
        prop_assert_eq!(entries.len(), appended.len());
        for (entry, ops) in entries.iter().zip(&appended) {
            prop_assert_eq!(entry.num_ops(), ops.len());
            for (k, op) in ops.iter().enumerate() {
                prop_assert_eq!(entry.op(k), op.as_slice());
            }
        }
    }

    #[test]
    fn byte_flips_in_occupied_ranges_never_yield_garbage(
        entries_to_append in 2usize..10,
        victim_seed in 0usize..1000,
        flip_offset_seed in 0usize..1000,
        flip_len in 1usize..16,
    ) {
        let cfg = LogConfig::for_processes(2).op_slot_size(24).capacity_entries(16);
        let pool = pool();
        let base = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let mut log = PersistentLog::create(pool.clone(), cfg.clone(), base);
        for i in 0..entries_to_append {
            let own = vec![i as u8; 8 + i % 16];
            log.append(&[&own], i as u64 + 1).unwrap();
        }
        let occupied = log.live_bytes() as usize / entries_to_append;

        // Flip bytes inside the victim entry's occupied range.
        let victim = victim_seed % entries_to_append;
        let flip_at = flip_offset_seed % occupied;
        let addr = slot_addr(base, &cfg, victim as u64) + flip_at as u64;
        let mut garbage = vec![0u8; flip_len];
        pool.read(addr, &mut garbage);
        for b in &mut garbage {
            *b ^= 0xA5;
        }
        clobber(&pool, addr, &garbage);

        pool.crash_and_restart();
        let (_reopened, recovered) = PersistentLog::open(pool, cfg, base);
        // The corrupted entry kills itself and (by the prefix rule) everything
        // after it; entries before it must survive byte-for-byte.
        prop_assert!(recovered.len() <= entries_to_append);
        prop_assert!(recovered.len() >= victim.min(entries_to_append));
        for (i, entry) in recovered.iter().enumerate() {
            prop_assert_eq!(entry.execution_index, i as u64 + 1);
            prop_assert_eq!(entry.op(0), &vec![i as u8; 8 + i % 16][..]);
        }
    }

    #[test]
    fn truncated_tail_is_rejected_at_every_cut_point(
        keep_entries in 1usize..6,
        cut_seed in 0usize..1000,
    ) {
        let cfg = LogConfig::for_processes(2).op_slot_size(40).capacity_entries(16);
        let pool = pool();
        let base = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let mut log = PersistentLog::create(pool.clone(), cfg.clone(), base);
        for i in 0..keep_entries {
            log.append(&[&[0xC3u8; 30], &[0x3Cu8; 20]], i as u64 + 2)
                .unwrap();
        }
        let occupied = log.live_bytes() as usize / keep_entries;

        // Zero the tail of the *last* entry from an arbitrary cut point — the
        // exact shape of an append whose later cache lines never reached NVM.
        let cut = 1 + cut_seed % (occupied - 1);
        let last = keep_entries as u64 - 1;
        let addr = slot_addr(base, &cfg, last) + cut as u64;
        clobber(&pool, addr, &vec![0u8; occupied - cut]);

        pool.crash_and_restart();
        let (_reopened, recovered) = PersistentLog::open(pool.clone(), cfg.clone(), base);
        prop_assert_eq!(
            recovered.len(),
            keep_entries - 1,
            "a torn tail must invalidate exactly the torn entry"
        );

        // Corruption strictly beyond the occupied range (the dead slot
        // remainder) must leave every entry valid.
        if occupied + 8 <= cfg.entry_size() {
            let dead = slot_addr(base, &cfg, 0) + occupied as u64;
            clobber(&pool, dead, &[0xFFu8; 8]);
            pool.crash_and_restart();
            let (_log2, again) = PersistentLog::open(pool, cfg, base);
            prop_assert_eq!(again.len(), keep_entries - 1);
            if let Some(first) = again.first() {
                prop_assert_eq!(first.op(0), &vec![0xC3u8; 30][..]);
            }
        }
    }
}
