//! The single-fence log on the file backend: identical crash properties, real
//! on-disk durability.
//!
//! The log code is backend-agnostic (it only speaks `NvmPool`); these tests
//! pin that down by re-running the core crash property against a file-backed
//! pool and by reopening the pool from disk — the path a restarted process
//! takes — to recover the same entries.

use nvm_sim::{BackendSpec, CrashTrigger, NvmPool, PmemConfig, ScratchDir};
use persist_log::{LogConfig, PersistentLog};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn file_pool(label: &str) -> (NvmPool, BackendSpec, ScratchDir) {
    let unique = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = ScratchDir::new(&format!("plog-{label}-{unique}")).unwrap();
    let spec = BackendSpec::file(dir.path());
    let pool = NvmPool::provision(
        &spec,
        PmemConfig::with_capacity(16 << 20).apply_pending_at_crash(0.0),
        "log",
    )
    .unwrap();
    (pool, spec, dir)
}

#[test]
fn appended_entries_survive_a_pool_reopen_from_disk() {
    let (pool, spec, _cleanup) = file_pool("reopen");
    let cfg = LogConfig::for_processes(2)
        .op_slot_size(16)
        .capacity_entries(64);
    let base = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
    let mut log = PersistentLog::create(pool.clone(), cfg.clone(), base);
    for i in 0..10u64 {
        let own = vec![i as u8; 8];
        log.append(&[&own], i + 1).unwrap();
    }
    drop(log);
    drop(pool);

    // A restarted process: nothing shared but the file.
    let reopened = NvmPool::reopen(
        &spec,
        PmemConfig::with_capacity(16 << 20).apply_pending_at_crash(0.0),
        "log",
    )
    .unwrap();
    let (_log, entries) = PersistentLog::open(reopened, cfg, base);
    assert_eq!(entries.len(), 10);
    for (k, entry) in entries.iter().enumerate() {
        assert_eq!(entry.execution_index, k as u64 + 1);
        assert_eq!(entry.op(0), &vec![k as u8; 8][..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn file_backend_recovery_yields_a_prefix_of_completed_appends(
        payload_seeds in proptest::collection::vec(0u8..255, 1..20),
        crash_after_events in 1u64..200,
    ) {
        let (pool, _spec, _cleanup) = file_pool("crash");
        let cfg = LogConfig::for_processes(2).op_slot_size(16).capacity_entries(64);
        let base = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let mut log = PersistentLog::create(pool.clone(), cfg.clone(), base);

        pool.arm_crash(CrashTrigger::AfterEvents(crash_after_events));
        let mut completed = 0usize;
        for (i, seed) in payload_seeds.iter().enumerate() {
            let own = vec![*seed; 8];
            let _ = log.append(&[&own], i as u64 + 1);
            if pool.is_frozen() {
                break;
            }
            completed = i + 1;
        }
        pool.disarm_crash();
        pool.crash_and_restart();

        let (_reopened, entries) = PersistentLog::open(pool, cfg, base);
        prop_assert!(entries.len() <= payload_seeds.len());
        prop_assert!(
            entries.len() >= completed,
            "a completed append was lost on the file backend: {} recovered < {} completed",
            entries.len(),
            completed
        );
        for (k, entry) in entries.iter().enumerate() {
            prop_assert_eq!(entry.execution_index, k as u64 + 1);
            prop_assert_eq!(entry.op(0), &vec![payload_seeds[k]; 8][..]);
        }
    }
}
