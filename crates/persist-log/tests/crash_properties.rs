//! Property tests of the single-fence log under randomized crash points.
//!
//! Whatever prefix of an append sequence the crash interrupts, recovery must
//! return a *prefix* of the appended entries, must include every append that
//! completed (returned) before the crash, and must never invent or reorder
//! entries.

use nvm_sim::{CrashTrigger, NvmPool, PmemConfig};
use persist_log::{LogConfig, PersistentLog};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_yields_a_prefix_containing_all_completed_appends(
        payload_seeds in proptest::collection::vec(0u8..255, 1..30),
        crash_after_events in 1u64..300,
        pending_prob in 0.0f64..=1.0,
    ) {
        let pool = NvmPool::new(
            PmemConfig::with_capacity(32 << 20).apply_pending_at_crash(pending_prob),
        );
        let cfg = LogConfig::for_processes(2).op_slot_size(16).capacity_entries(64);
        let base = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let mut log = PersistentLog::create(pool.clone(), cfg.clone(), base);

        pool.arm_crash(CrashTrigger::AfterEvents(crash_after_events));
        let mut completed = 0usize;
        for (i, seed) in payload_seeds.iter().enumerate() {
            let own = vec![*seed; 8];
            let helped = vec![seed.wrapping_add(1); 4];
            let _ = log.append(&[&own, &helped], i as u64 + 2);
            if pool.is_frozen() {
                break;
            }
            completed = i + 1;
        }
        pool.disarm_crash();
        pool.crash_and_restart();

        let (_reopened, entries) = PersistentLog::open(pool, cfg, base);
        // Prefix property: entry k corresponds to append k, verbatim and in order.
        prop_assert!(entries.len() <= payload_seeds.len());
        prop_assert!(
            entries.len() >= completed,
            "a completed append was lost: {} recovered < {} completed",
            entries.len(),
            completed
        );
        for (k, entry) in entries.iter().enumerate() {
            prop_assert_eq!(entry.execution_index, k as u64 + 2);
            prop_assert_eq!(entry.num_ops(), 2);
            prop_assert_eq!(entry.op(0), &vec![payload_seeds[k]; 8][..]);
            prop_assert_eq!(entry.op(1), &vec![payload_seeds[k].wrapping_add(1); 4][..]);
        }
    }

    #[test]
    fn truncation_point_is_respected_across_crashes(
        first_batch in 1usize..20,
        second_batch in 1usize..20,
    ) {
        let pool = NvmPool::new(PmemConfig::with_capacity(32 << 20).apply_pending_at_crash(0.0));
        let cfg = LogConfig::for_processes(1).op_slot_size(8).capacity_entries(64);
        let base = pool.alloc(PersistentLog::region_size(&cfg)).unwrap();
        let mut log = PersistentLog::create(pool.clone(), cfg.clone(), base);
        for i in 0..first_batch {
            log.append(&[&[0xAA, i as u8]], i as u64 + 1).unwrap();
        }
        log.truncate().unwrap();
        for i in 0..second_batch {
            log.append(&[&[0xBB, i as u8]], (first_batch + i) as u64 + 1).unwrap();
        }
        pool.crash_and_restart();
        let (_reopened, entries) = PersistentLog::open(pool, cfg, base);
        prop_assert_eq!(entries.len(), second_batch);
        for (k, entry) in entries.iter().enumerate() {
            prop_assert_eq!(entry.op(0), &vec![0xBB, k as u8][..]);
        }
    }
}
