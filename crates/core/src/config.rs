//! Construction configuration.

use nvm_sim::BackendSpec;

/// Configuration of one ONLL-constructed durable object.
#[derive(Debug, Clone)]
pub struct OnllConfig {
    /// Name of the object; used to derive the NVM root under which its metadata,
    /// logs and checkpoint areas are registered, so several objects can share one
    /// pool.
    pub name: String,
    /// Maximum number of processes (handles). Bounds the fuzzy window
    /// (Proposition 5.2) and therefore the number of helped operations a log entry
    /// must accommodate (`MAX_PROCESSES` in Listing 1).
    pub max_processes: usize,
    /// Capacity, in entries, of each per-process persistent log.
    pub log_capacity_entries: usize,
    /// If `true`, each handle maintains a materialized *local view* of the object
    /// state and reads replay only the missing suffix of the execution trace
    /// (Section 8 read-performance extension). If `false`, every read replays the
    /// whole trace prefix, exactly as in the base construction.
    pub use_local_views: bool,
    /// Ops-count checkpoint trigger: checkpoint whenever at least this many
    /// updates have been linearized past the newest published checkpoint
    /// watermark (requires the spec to implement `SnapshotSpec`; the trigger is
    /// evaluated by `ProcessHandle::maybe_checkpoint`, the automatic variant
    /// `update_with_checkpoint`, or a background checkpointer). `None` disables
    /// the ops-count trigger; if the log-bytes trigger is also `None`, the logs
    /// retain the full history, as in the base construction.
    pub checkpoint_interval: Option<u64>,
    /// Log-bytes checkpoint trigger: a handle checkpoints whenever **its own**
    /// persistent log holds at least this many bytes of live entries (logs are
    /// single-writer, so only the owner's checkpoint can truncate its log
    /// immediately — the trigger is self-correcting per process). Bounds the
    /// NVM footprint independently of the update rate. `None` disables it.
    pub checkpoint_log_bytes: Option<u64>,
    /// Size in bytes reserved for one serialized checkpoint of the object state.
    pub checkpoint_slot_bytes: usize,
    /// When prefix reclamation is enabled (checkpointing active), the trace prefix
    /// below the minimum of all handles' local-view indices is unlinked whenever it
    /// exceeds this many nodes.
    pub reclaim_batch: u64,
    /// Maximum number of own operations a handle may persist in one *group*
    /// (`ProcessHandle::update_group`): the whole group is appended as a single
    /// log entry and covered by **one** persistent fence. Sizes the log's entry
    /// slots — with groups, *every* process may have up to this many unpersisted
    /// operations in the fuzzy window, so entries hold
    /// `max_processes * max_group_ops` operations. Fixed at creation and
    /// persisted in the object metadata.
    ///
    /// `1` (the default) reproduces the paper's base construction exactly.
    pub max_group_ops: usize,
    /// Which persistence backend carries the object's pool when the pool is
    /// built from this config (`Durable::create_in` / `Durable::recover_in`).
    /// Ignored by the `create`/`recover` entry points that take an existing
    /// pool — there the caller already chose the backend.
    pub backend: BackendSpec,
    /// Extra attempts at the fuzzy-window log append when its persistent fence
    /// fails (e.g. a transient `EIO` injected by `nvm_sim::FaultPlan`, or a
    /// device hiccup on a real file backend). A failed publish leaves the log's
    /// slot and sequence number unconsumed, so each retry overwrites exactly
    /// the same entry — retrying is idempotent. If every attempt fails the
    /// commit path **poisons itself** and all further updates are rejected;
    /// see `ProcessHandle::try_update` for why that is required for
    /// exactly-once (the ordered-but-unpersisted window must never be
    /// linearized past).
    pub persist_retries: u32,
}

impl Default for OnllConfig {
    fn default() -> Self {
        OnllConfig {
            name: "onll-object".to_string(),
            max_processes: 8,
            log_capacity_entries: 4096,
            use_local_views: true,
            checkpoint_interval: None,
            checkpoint_log_bytes: None,
            checkpoint_slot_bytes: 64 * 1024,
            reclaim_batch: 1024,
            max_group_ops: 1,
            backend: BackendSpec::Sim,
            persist_retries: 3,
        }
    }
}

impl OnllConfig {
    /// Creates a configuration for an object named `name`.
    pub fn named(name: &str) -> Self {
        OnllConfig {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Sets the maximum number of processes.
    pub fn max_processes(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one process is required");
        self.max_processes = n;
        self
    }

    /// Sets the per-process log capacity in entries.
    pub fn log_capacity(mut self, entries: usize) -> Self {
        self.log_capacity_entries = entries;
        self
    }

    /// Enables or disables local-view reads.
    pub fn local_views(mut self, enabled: bool) -> Self {
        self.use_local_views = enabled;
        self
    }

    /// Enables the ops-count checkpoint trigger: checkpoint every `interval`
    /// linearized updates past the newest published watermark.
    pub fn checkpoint_every(mut self, interval: u64) -> Self {
        assert!(interval >= 1);
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Enables the log-bytes checkpoint trigger: a handle checkpoints whenever
    /// its own log holds at least `bytes` of live entries.
    pub fn checkpoint_when_log_exceeds(mut self, bytes: u64) -> Self {
        assert!(bytes >= 1);
        self.checkpoint_log_bytes = Some(bytes);
        self
    }

    /// True if any checkpoint trigger is configured.
    pub fn checkpointing_enabled(&self) -> bool {
        self.checkpoint_interval.is_some() || self.checkpoint_log_bytes.is_some()
    }

    /// Sets the size reserved for one serialized checkpoint.
    pub fn checkpoint_slot_bytes(mut self, bytes: usize) -> Self {
        self.checkpoint_slot_bytes = bytes;
        self
    }

    /// Selects the persistence backend used when the pool is built from this
    /// config (see [`OnllConfig::backend`]).
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        self.backend = spec;
        self
    }

    /// Allows up to `n` operations per fence-amortized group persist
    /// (`ProcessHandle::update_group`). Grows each log entry to hold the group
    /// plus helped operations.
    pub fn group_persist(mut self, n: usize) -> Self {
        assert!(n >= 1, "a group holds at least one operation");
        self.max_group_ops = n;
        self
    }

    /// Sets how many extra attempts a failed fuzzy-window persist gets before
    /// the commit path poisons itself (see [`OnllConfig::persist_retries`]).
    pub fn persist_retries(mut self, retries: u32) -> Self {
        self.persist_retries = retries;
        self
    }

    /// Maximum operations one log entry must hold: the generalized Proposition
    /// 5.2 bound on the fuzzy window — every process may have a full group
    /// (up to `max_group_ops` operations) ordered but not yet persisted.
    pub(crate) fn ops_per_entry(&self) -> usize {
        self.max_processes * self.max_group_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = OnllConfig::default();
        assert!(c.max_processes >= 1);
        assert!(c.log_capacity_entries > 0);
        assert!(c.use_local_views);
        assert!(c.checkpoint_interval.is_none());
        assert!(c.checkpoint_log_bytes.is_none());
        assert!(!c.checkpointing_enabled());
    }

    #[test]
    fn either_trigger_enables_checkpointing() {
        assert!(OnllConfig::default()
            .checkpoint_every(10)
            .checkpointing_enabled());
        assert!(OnllConfig::default()
            .checkpoint_when_log_exceeds(1 << 20)
            .checkpointing_enabled());
        let both = OnllConfig::default()
            .checkpoint_every(10)
            .checkpoint_when_log_exceeds(4096);
        assert_eq!(both.checkpoint_interval, Some(10));
        assert_eq!(both.checkpoint_log_bytes, Some(4096));
    }

    #[test]
    fn builders_compose() {
        let c = OnllConfig::named("counter")
            .max_processes(4)
            .log_capacity(128)
            .local_views(false)
            .checkpoint_every(100)
            .checkpoint_slot_bytes(1024);
        assert_eq!(c.name, "counter");
        assert_eq!(c.max_processes, 4);
        assert_eq!(c.log_capacity_entries, 128);
        assert!(!c.use_local_views);
        assert_eq!(c.checkpoint_interval, Some(100));
        assert_eq!(c.checkpoint_slot_bytes, 1024);
    }

    #[test]
    fn group_persist_sizes_log_entries() {
        let c = OnllConfig::default();
        assert_eq!(c.max_group_ops, 1);
        assert_eq!(c.ops_per_entry(), c.max_processes);
        let c = OnllConfig::named("g").max_processes(4).group_persist(16);
        assert_eq!(c.max_group_ops, 16);
        assert_eq!(c.ops_per_entry(), 64);
    }

    #[test]
    #[should_panic]
    fn zero_group_rejected() {
        let _ = OnllConfig::default().group_persist(0);
    }

    #[test]
    #[should_panic]
    fn zero_processes_rejected() {
        let _ = OnllConfig::default().max_processes(0);
    }

    #[test]
    #[should_panic]
    fn zero_checkpoint_interval_rejected() {
        let _ = OnllConfig::default().checkpoint_every(0);
    }
}
