//! Execution hooks: controlled pause/crash points inside operations.
//!
//! The paper's arguments repeatedly construct *specific* executions: Figure 1 pauses
//! a process right after it appended to its persistent log; the lower-bound proof
//! (Theorem 6.3) runs a process solo and preempts it "just before the response" or
//! "just before its first persistent fence". Reproducing those executions requires a
//! way to stop a process at a precise point inside `update` without changing the
//! algorithm. [`Hooks`] provides that: a callback invoked at each [`Phase`] of an
//! update or read, which the harness uses to park threads, inject crashes, or record
//! schedules. Production users simply leave it empty (the default), in which case
//! the hook is a no-op.

use std::sync::Arc;

/// The points inside ONLL operations at which the hook fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Start of an update, before the execution-trace insert (the *order* stage).
    BeforeOrder,
    /// After the node was inserted into the execution trace (ordered, not yet
    /// persistent, not yet linearized).
    AfterOrder,
    /// After the fuzzy window was computed, immediately before the persistent-log
    /// append (i.e. before the update's single persistent fence).
    BeforePersist,
    /// After the persistent-log append returned (the operation and its helped
    /// operations are durable).
    AfterPersist,
    /// Immediately before the node's available flag is set (before the
    /// linearization point).
    BeforeLinearize,
    /// Immediately after the available flag was set (the operation is linearized).
    AfterLinearize,
    /// After the return value was computed, immediately before `update` returns.
    BeforeResponse,
    /// Start of a read-only operation, before locating the latest available node.
    BeforeReadSnapshot,
    /// End of a read-only operation, immediately before it returns.
    BeforeReadResponse,
    /// Start of a checkpoint, before the state is staged into the inactive slot.
    BeforeCheckpointStage,
    /// After the checkpoint state was staged (written + flushed, not yet valid).
    AfterCheckpointStage,
    /// Immediately before the checkpoint's publish fence (the watermark is about
    /// to become durable).
    BeforeCheckpointPublish,
    /// After the publish fence: the checkpoint is durable and recovery-visible.
    AfterCheckpointPublish,
    /// Immediately before the persistent log's prefix below the published
    /// watermark is truncated.
    BeforeLogTruncate,
    /// After the log truncation's start mark was persisted.
    AfterLogTruncate,
}

impl Phase {
    /// All phases, in the order they occur within an update followed by the read
    /// phases and the checkpoint phases. Useful for exhaustive crash-point sweeps.
    pub const ALL: [Phase; 15] = [
        Phase::BeforeOrder,
        Phase::AfterOrder,
        Phase::BeforePersist,
        Phase::AfterPersist,
        Phase::BeforeLinearize,
        Phase::AfterLinearize,
        Phase::BeforeResponse,
        Phase::BeforeReadSnapshot,
        Phase::BeforeReadResponse,
        Phase::BeforeCheckpointStage,
        Phase::AfterCheckpointStage,
        Phase::BeforeCheckpointPublish,
        Phase::AfterCheckpointPublish,
        Phase::BeforeLogTruncate,
        Phase::AfterLogTruncate,
    ];

    /// The checkpoint/compaction phases, in the order they occur within one
    /// `ProcessHandle::checkpoint` call. The crash-matrix suite injects a crash
    /// at every one of these points (plus mid-write crashes between them).
    pub const CHECKPOINT_PHASES: [Phase; 6] = [
        Phase::BeforeCheckpointStage,
        Phase::AfterCheckpointStage,
        Phase::BeforeCheckpointPublish,
        Phase::AfterCheckpointPublish,
        Phase::BeforeLogTruncate,
        Phase::AfterLogTruncate,
    ];

    /// The update-only phases, in execution order.
    pub const UPDATE_PHASES: [Phase; 7] = [
        Phase::BeforeOrder,
        Phase::AfterOrder,
        Phase::BeforePersist,
        Phase::AfterPersist,
        Phase::BeforeLinearize,
        Phase::AfterLinearize,
        Phase::BeforeResponse,
    ];
}

/// A shareable hook invoked at every [`Phase`] of every operation, with the
/// invoking process id.
#[derive(Clone, Default)]
pub struct Hooks {
    callback: Option<Arc<dyn Fn(Phase, u32) + Send + Sync>>,
}

impl Hooks {
    /// No-op hooks (the default).
    pub fn none() -> Self {
        Hooks { callback: None }
    }

    /// Hooks invoking `f(phase, pid)` at every phase.
    pub fn new(f: impl Fn(Phase, u32) + Send + Sync + 'static) -> Self {
        Hooks {
            callback: Some(Arc::new(f)),
        }
    }

    /// True if a callback is installed.
    pub fn is_active(&self) -> bool {
        self.callback.is_some()
    }

    /// Hooks firing `first`'s callback then `second`'s at every phase. If
    /// either side is inactive the other is returned as-is, so chaining a
    /// no-op keeps `fire` a single branch (telemetry composes with
    /// user-installed crash/pause hooks through this).
    pub fn chain(first: &Hooks, second: &Hooks) -> Hooks {
        match (&first.callback, &second.callback) {
            (None, _) => second.clone(),
            (_, None) => first.clone(),
            (Some(a), Some(b)) => {
                let (a, b) = (a.clone(), b.clone());
                Hooks::new(move |phase, pid| {
                    a(phase, pid);
                    b(phase, pid);
                })
            }
        }
    }

    /// Fires the hook (no-op when none is installed).
    #[inline]
    pub fn fire(&self, phase: Phase, pid: u32) {
        if let Some(cb) = &self.callback {
            cb(phase, pid);
        }
    }
}

impl std::fmt::Debug for Hooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hooks(active={})", self.is_active())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn default_hooks_are_inactive_and_cheap() {
        let h = Hooks::default();
        assert!(!h.is_active());
        h.fire(Phase::AfterPersist, 0); // must not panic
    }

    #[test]
    fn installed_hook_receives_phase_and_pid() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let h = Hooks::new(move |phase, pid| seen2.lock().unwrap().push((phase, pid)));
        assert!(h.is_active());
        h.fire(Phase::BeforeOrder, 3);
        h.fire(Phase::BeforeResponse, 5);
        assert_eq!(
            *seen.lock().unwrap(),
            vec![(Phase::BeforeOrder, 3), (Phase::BeforeResponse, 5)]
        );
    }

    #[test]
    fn hooks_are_cloneable_and_share_the_callback() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let h = Hooks::new(move |_, _| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        let h2 = h.clone();
        h.fire(Phase::AfterOrder, 0);
        h2.fire(Phase::AfterOrder, 1);
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn chained_hooks_fire_in_order() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let (s1, s2) = (seen.clone(), seen.clone());
        let a = Hooks::new(move |_, _| s1.lock().unwrap().push("a"));
        let b = Hooks::new(move |_, _| s2.lock().unwrap().push("b"));
        Hooks::chain(&a, &b).fire(Phase::BeforeOrder, 0);
        assert_eq!(*seen.lock().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn chaining_with_inactive_side_is_identity() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let h = Hooks::new(move |_, _| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        let left = Hooks::chain(&Hooks::none(), &h);
        let right = Hooks::chain(&h, &Hooks::none());
        left.fire(Phase::BeforeOrder, 0);
        right.fire(Phase::BeforeOrder, 0);
        assert_eq!(count.load(Ordering::Relaxed), 2);
        assert!(!Hooks::chain(&Hooks::none(), &Hooks::none()).is_active());
    }

    #[test]
    fn phase_lists_are_consistent() {
        assert_eq!(Phase::ALL.len(), 15);
        assert_eq!(Phase::UPDATE_PHASES.len(), 7);
        assert_eq!(Phase::CHECKPOINT_PHASES.len(), 6);
        for p in Phase::UPDATE_PHASES {
            assert!(Phase::ALL.contains(&p));
        }
        for p in Phase::CHECKPOINT_PHASES {
            assert!(Phase::ALL.contains(&p));
            assert!(!Phase::UPDATE_PHASES.contains(&p));
        }
    }
}
