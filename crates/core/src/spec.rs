//! Sequential object specifications.
//!
//! ONLL is a *universal construction*: it takes a deterministic sequential
//! specification of an object and produces a lock-free, durably linearizable
//! implementation of it. The specification is captured by [`SequentialSpec`]:
//! the object's state, its update operations (which change the state and return a
//! value) and its read-only operations (which return a value without influencing
//! later operations). The paper's `compute` method corresponds to folding the
//! sequence of update operations with [`SequentialSpec::apply`] and finishing with
//! [`SequentialSpec::read`].
//!
//! Update operations must be storable in NVM log entries, hence the [`OpCodec`]
//! bound: a compact, fixed-maximum-size binary encoding.

/// Binary codec for update operations stored in persistent log entries.
///
/// Encodings must be self-contained (decodable without out-of-band information) and
/// bounded by [`OpCodec::MAX_ENCODED_SIZE`] bytes, which sizes the log's operation
/// slots.
pub trait OpCodec: Sized {
    /// Upper bound on the encoded size in bytes.
    const MAX_ENCODED_SIZE: usize;

    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes an operation previously produced by [`OpCodec::encode`]. Returns
    /// `None` on malformed input (e.g. corrupted NVM contents).
    fn decode(bytes: &[u8]) -> Option<Self>;

    /// Convenience: encodes into a fresh vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(Self::MAX_ENCODED_SIZE);
        self.encode(&mut buf);
        debug_assert!(
            buf.len() <= Self::MAX_ENCODED_SIZE,
            "encoded op exceeds MAX_ENCODED_SIZE"
        );
        buf
    }
}

/// A deterministic sequential object specification.
///
/// Determinism is required by the paper's model: the state of the object *is* the
/// sequence of update operations applied to it, so replaying the same sequence must
/// always produce the same state and the same return values.
pub trait SequentialSpec: Send + Sync + 'static {
    /// Update operations: influence the results of subsequent operations.
    type UpdateOp: OpCodec + Clone + std::fmt::Debug + PartialEq + Send + Sync + 'static;
    /// Read-only operations: do not influence later operations.
    type ReadOp: Clone + std::fmt::Debug + Send + Sync + 'static;
    /// Values returned by both kinds of operations.
    type Value: Clone + std::fmt::Debug + PartialEq + Send + Sync + 'static;

    /// The state corresponding to the INITIALIZE operation.
    fn initialize() -> Self;

    /// Applies an update operation, mutating the state and returning the
    /// operation's return value (computed on the state immediately *after* the
    /// update, per the paper's `compute` definition).
    fn apply(&mut self, op: &Self::UpdateOp) -> Self::Value;

    /// Computes the return value of a read-only operation on the current state.
    fn read(&self, op: &Self::ReadOp) -> Self::Value;
}

/// Specifications whose operations address disjoint per-key state, enabling
/// horizontal partitioning across independent ONLL instances (the `onll-shard`
/// crate).
///
/// The paper's lower bound (Theorem 6.3) is *per object*: every durably
/// linearizable object costs at least one persistent fence per update. Sharding
/// does not evade the bound — it multiplies throughput by running N independent
/// objects, each still paying exactly one fence per update. A spec qualifies when
/// every update touches state identified by a single key, and every read either
/// addresses a single key or can be answered by combining independent per-shard
/// answers (e.g. a length is the sum of per-shard lengths).
pub trait KeyedSpec: SequentialSpec {
    /// The routing key. Hashable (for hash routing) and ordered (for range
    /// routing).
    type Key: std::hash::Hash + Ord + Clone + std::fmt::Debug + Send + Sync + 'static;

    /// The key whose state an update operation touches.
    fn update_key(op: &Self::UpdateOp) -> Self::Key;

    /// The key a read-only operation addresses, or `None` for a *global* read
    /// that must be answered by combining every shard's answer via
    /// [`KeyedSpec::merge_reads`].
    fn read_key(op: &Self::ReadOp) -> Option<Self::Key>;

    /// Combines per-shard answers to a global read (one answer per shard, in
    /// shard order). Only invoked for operations whose
    /// [`KeyedSpec::read_key`] is `None`.
    fn merge_reads(op: &Self::ReadOp, shard_values: Vec<Self::Value>) -> Self::Value;
}

/// Specifications whose state has a compact object-specific representation that can
/// be persisted wholesale (Section 8: "compressing the execution trace").
///
/// Implementing this enables **checkpointing**: the state materialized after the
/// first `n` updates is serialized into a dedicated pmem region, stamped with an
/// epoch and the execution-index watermark `n`, and published with a single
/// persistent fence. Once published, every persistent-log entry whose operations
/// all have execution indices `<= n` is redundant with the checkpoint and may be
/// truncated (`persist_log::PersistentLog::truncate_below`), bounding both the NVM
/// footprint and the recovery cost at O(updates since the last checkpoint).
///
/// ## Contract
///
/// `decode_state(encode_state(s)) == Some(s)` must hold for every state reachable
/// by applying update operations from [`SequentialSpec::initialize`], and
/// `decode_state` must return `None` (never panic, never return a wrong state) on
/// any other input — recovery feeds it bytes that passed a checksum, but defends
/// in depth against checksum collisions by re-validating through decoding.
///
/// Snapshots also must be *complete*: replaying any suffix of updates on a decoded
/// snapshot must yield the same state as replaying the full history from the
/// initial state. The property-test suite (`checkpoint_equivalence`) checks this
/// for every object shipped in `durable-objects`.
pub trait SnapshotSpec: SequentialSpec {
    /// Serializes the state into `buf`.
    fn encode_state(&self, buf: &mut Vec<u8>);

    /// Reconstructs a state serialized by [`SnapshotSpec::encode_state`].
    fn decode_state(bytes: &[u8]) -> Option<Self>
    where
        Self: Sized;
}

/// Replays a sequence of update operations from the initial state, returning the
/// resulting state. This is the paper's "the state of the object is the sequence of
/// update operations applied to the object".
pub fn replay<S: SequentialSpec>(
    ops: impl IntoIterator<Item = impl std::borrow::Borrow<S::UpdateOp>>,
) -> S {
    let mut state = S::initialize();
    for op in ops {
        state.apply(op.borrow());
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal test spec: an integer register supporting add/set.
    #[derive(Debug, PartialEq)]
    struct Adder {
        total: i64,
    }

    #[derive(Debug, Clone, PartialEq)]
    enum AdderOp {
        Add(i64),
        Set(i64),
    }

    impl OpCodec for AdderOp {
        const MAX_ENCODED_SIZE: usize = 9;

        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                AdderOp::Add(v) => {
                    buf.push(0);
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                AdderOp::Set(v) => {
                    buf.push(1);
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }

        fn decode(bytes: &[u8]) -> Option<Self> {
            if bytes.len() != 9 {
                return None;
            }
            let v = i64::from_le_bytes(bytes[1..9].try_into().ok()?);
            match bytes[0] {
                0 => Some(AdderOp::Add(v)),
                1 => Some(AdderOp::Set(v)),
                _ => None,
            }
        }
    }

    impl SequentialSpec for Adder {
        type UpdateOp = AdderOp;
        type ReadOp = ();
        type Value = i64;

        fn initialize() -> Self {
            Adder { total: 0 }
        }

        fn apply(&mut self, op: &AdderOp) -> i64 {
            match op {
                AdderOp::Add(v) => self.total += v,
                AdderOp::Set(v) => self.total = *v,
            }
            self.total
        }

        fn read(&self, _op: &()) -> i64 {
            self.total
        }
    }

    #[test]
    fn op_codec_roundtrip() {
        for op in [AdderOp::Add(-5), AdderOp::Set(i64::MAX), AdderOp::Add(0)] {
            let bytes = op.encode_to_vec();
            assert!(bytes.len() <= AdderOp::MAX_ENCODED_SIZE);
            assert_eq!(AdderOp::decode(&bytes), Some(op));
        }
    }

    #[test]
    fn op_codec_rejects_garbage() {
        assert_eq!(AdderOp::decode(&[]), None);
        assert_eq!(AdderOp::decode(&[9u8; 9]), None);
        assert_eq!(AdderOp::decode(&[0u8; 4]), None);
    }

    #[test]
    fn replay_is_deterministic() {
        let ops = [
            AdderOp::Add(3),
            AdderOp::Add(4),
            AdderOp::Set(10),
            AdderOp::Add(1),
        ];
        let a: Adder = replay::<Adder>(ops.iter());
        let b: Adder = replay::<Adder>(ops.iter());
        assert_eq!(a, b);
        assert_eq!(a.read(&()), 11);
    }

    #[test]
    fn apply_returns_value_on_state_after_update() {
        let mut s = Adder::initialize();
        assert_eq!(s.apply(&AdderOp::Add(7)), 7);
        assert_eq!(s.apply(&AdderOp::Add(3)), 10);
        assert_eq!(s.apply(&AdderOp::Set(2)), 2);
    }
}
