//! Lock-free published read snapshots: the zero-fence read path of the
//! combining service.
//!
//! The paper's read cost (Listing 4, Theorem 5.1) is **zero persistent
//! fences** — a read only traverses transient state. The combining front-end
//! ([`crate::DurableService`]) originally kept the zero-*fence* half of that
//! bargain but lost the concurrency half: every read took the commit lock and
//! therefore serialized behind in-flight write batches *and* behind other
//! readers. This module restores lock-free reads without giving up the
//! linearized-prefix guarantee:
//!
//! * After each batch linearizes (and before any waiter's reply is posted),
//!   the combiner publishes an immutable [`ReadSnapshot`] — the object state
//!   as of a linearized prefix plus the execution index that prefix covers —
//!   into a [`SnapshotCell`] with a single atomic pointer swap.
//! * Readers take one `Acquire` load, pin the pointer with a hazard slot, and
//!   run a pure `state.read(op)` against the immutable snapshot. No lock, no
//!   persistent fence, no NVM access, no trace traversal.
//!
//! Reclamation is hazard-pointer based (we vendor no `arc-swap`): each reader
//! owns one hazard slot; a publisher retires the previous snapshot into a
//! limbo list and frees every limbo entry no hazard slot still protects.
//! Publishers are serialized by the commit lock, so retirement is
//! single-threaded and the limbo list is bounded by the hazard-slot count —
//! but nothing here *relies* on that serialization for memory safety (the
//! limbo list carries its own mutex), only for snapshot monotonicity.
//!
//! ## Consistency contract
//!
//! A snapshot is a **linearized prefix** of the execution: reads through it
//! are sequentially consistent (monotone per reader, never observing an
//! unlinearized or rolled-back write) but may lag the latest linearized
//! operation by in-flight batches. The recency half of the contract is
//! publish-after-linearize ordering: the combiner publishes *before* posting
//! replies, so a client that has observed its own update's acknowledgement is
//! guaranteed to find that update in any snapshot it subsequently loads.
//! Reads needing full linearizability take the commit lock via
//! `read_latest` instead.

use crate::spec::SequentialSpec;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// An immutable state snapshot covering a linearized prefix of the execution.
///
/// Produced by the combiner after each committed batch (and once at
/// enablement, seeding from the recovered state); consumed lock-free by
/// [`crate::SnapshotReader`]s and the `read_snapshot` methods.
pub struct ReadSnapshot<S: SequentialSpec> {
    state: S,
    idx: u64,
}

impl<S: SequentialSpec> ReadSnapshot<S> {
    pub(crate) fn new(state: S, idx: u64) -> Self {
        ReadSnapshot { state, idx }
    }

    /// Evaluates a read-only operation against the snapshot state. Pure:
    /// no lock, no fence, no shared-memory write.
    pub fn read(&self, op: &S::ReadOp) -> S::Value {
        self.state.read(op)
    }

    /// Execution index of the newest operation this snapshot reflects.
    pub fn index(&self) -> u64 {
        self.idx
    }
}

impl<S: SequentialSpec> std::fmt::Debug for ReadSnapshot<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadSnapshot")
            .field("idx", &self.idx)
            .finish()
    }
}

/// One reader's hazard slot: `claimed` arbitrates slot ownership between
/// readers; `protected` names the snapshot pointer the owner is currently
/// dereferencing (null when idle).
struct HazardSlot<S: SequentialSpec> {
    claimed: AtomicBool,
    protected: AtomicPtr<ReadSnapshot<S>>,
}

impl<S: SequentialSpec> HazardSlot<S> {
    fn new() -> Self {
        HazardSlot {
            claimed: AtomicBool::new(false),
            protected: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// The publish cell: an `ArcSwap`-style single-pointer snapshot holder,
/// hand-rolled on `AtomicPtr` + hazard slots (no external dependency).
///
/// Slots `0..reserved` are owned one-to-one by service clients (slot index =
/// publication-slot index); slots `reserved..` form a claimable pool for
/// [`crate::SnapshotReader`] handles and ad-hoc service-level reads.
pub(crate) struct SnapshotCell<S: SequentialSpec> {
    current: AtomicPtr<ReadSnapshot<S>>,
    hazards: Box<[HazardSlot<S>]>,
    /// First pool (claimable) slot; lower slots are statically reserved.
    pool_start: usize,
    /// Retired-but-possibly-still-read snapshots, freed on the next publish
    /// once no hazard slot protects them. Bounded by the hazard-slot count.
    limbo: Mutex<Vec<*mut ReadSnapshot<S>>>,
}

// SAFETY: the raw pointers in `current`/`hazards`/`limbo` all point at
// heap-allocated `ReadSnapshot<S>` values; `S` (and thus the snapshot) is
// `Send + Sync` by the `SequentialSpec` supertraits, and every cross-thread
// hand-off goes through the atomics with the orderings argued in
// `load_protected`/`publish`.
unsafe impl<S: SequentialSpec> Send for SnapshotCell<S> {}
unsafe impl<S: SequentialSpec> Sync for SnapshotCell<S> {}

impl<S: SequentialSpec> SnapshotCell<S> {
    /// A cell with `reserved` statically owned hazard slots (one per service
    /// client) plus `pool` claimable slots for snapshot readers.
    pub(crate) fn new(reserved: usize, pool: usize) -> Self {
        SnapshotCell {
            current: AtomicPtr::new(std::ptr::null_mut()),
            hazards: (0..reserved + pool).map(|_| HazardSlot::new()).collect(),
            pool_start: reserved,
            limbo: Mutex::new(Vec::new()),
        }
    }

    /// True once a snapshot has been published (the read path is live).
    pub(crate) fn is_published(&self) -> bool {
        !self.current.load(Ordering::Acquire).is_null()
    }

    /// Publishes `snapshot` with a single pointer swap and retires the
    /// previous one. Callers are expected to be serialized (the commit lock);
    /// concurrent publishes would still be memory-safe but could regress the
    /// visible execution index.
    pub(crate) fn publish(&self, snapshot: ReadSnapshot<S>) {
        let fresh = Box::into_raw(Box::new(snapshot));
        // SeqCst swap: totally ordered against the readers' hazard-validate
        // sequence (see `load_protected`) so a reader that re-validated `old`
        // after protecting it is guaranteed visible to the scan below.
        let old = self.current.swap(fresh, Ordering::SeqCst);
        let mut limbo = self.limbo.lock();
        if !old.is_null() {
            limbo.push(old);
        }
        limbo.retain(|&p| {
            let protected = self
                .hazards
                .iter()
                .any(|h| h.protected.load(Ordering::SeqCst) == p);
            if !protected {
                // SAFETY: `p` was retired from `current` (unreachable to new
                // readers) and no hazard slot protects it; publishers are the
                // only freers and hold the limbo lock.
                unsafe { drop(Box::from_raw(p)) };
            }
            protected
        });
    }

    /// Claims a pool hazard slot for a long-lived reader. `None` when every
    /// pool slot is taken.
    pub(crate) fn claim_pool_slot(&self) -> Option<usize> {
        (self.pool_start..self.hazards.len()).find(|&i| {
            self.hazards[i]
                .claimed
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        })
    }

    /// Releases a pool slot claimed with [`SnapshotCell::claim_pool_slot`].
    pub(crate) fn release_pool_slot(&self, slot: usize) {
        debug_assert!(slot >= self.pool_start);
        self.hazards[slot]
            .protected
            .store(std::ptr::null_mut(), Ordering::Release);
        self.hazards[slot].claimed.store(false, Ordering::Release);
    }

    /// Pins the current snapshot through hazard slot `slot` and returns a
    /// guard dereferencing it. `None` until the first publish.
    ///
    /// The caller must own `slot` exclusively for the guard's lifetime (slot
    /// ownership is what the `&mut self` receivers on the public read APIs
    /// enforce). Cost: one `Acquire` load, one hazard store, one validating
    /// load — no lock, no fence, no NVM access.
    pub(crate) fn load_protected(&self, slot: usize) -> Option<SnapshotGuard<'_, S>> {
        let hazard = &self.hazards[slot].protected;
        loop {
            let p = self.current.load(Ordering::Acquire);
            if p.is_null() {
                return None;
            }
            hazard.store(p, Ordering::SeqCst);
            // Validate: if `p` is still current, its swap-out (and the
            // publisher's hazard scan) is after this load in the SeqCst total
            // order, so the scan observes our hazard and keeps `p` alive.
            if self.current.load(Ordering::SeqCst) == p {
                return Some(SnapshotGuard {
                    cell: self,
                    slot,
                    ptr: p,
                });
            }
            // A publish raced between load and protect; retry on the newer
            // snapshot (the stale hazard value is overwritten next round).
        }
    }
}

impl<S: SequentialSpec> Drop for SnapshotCell<S> {
    fn drop(&mut self) {
        // No readers can exist (&mut self), so every pointer is exclusively
        // ours: the current snapshot plus whatever limbo still holds.
        let current = *self.current.get_mut();
        if !current.is_null() {
            // SAFETY: exclusive access per above; pointers are Box-allocated.
            unsafe { drop(Box::from_raw(current)) };
        }
        for p in self.limbo.get_mut().drain(..) {
            // SAFETY: same argument.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

/// A pinned, immutable view of the published snapshot. Dropping the guard
/// releases the hazard slot; holding it keeps the snapshot alive (and keeps
/// one limbo entry pinned), so guards should be short-lived.
pub struct SnapshotGuard<'a, S: SequentialSpec> {
    cell: &'a SnapshotCell<S>,
    slot: usize,
    ptr: *const ReadSnapshot<S>,
}

impl<S: SequentialSpec> std::ops::Deref for SnapshotGuard<'_, S> {
    type Target = ReadSnapshot<S>;
    fn deref(&self) -> &ReadSnapshot<S> {
        // SAFETY: the hazard slot protects `ptr` from being freed for the
        // guard's lifetime (see `load_protected`/`publish`).
        unsafe { &*self.ptr }
    }
}

impl<S: SequentialSpec> Drop for SnapshotGuard<'_, S> {
    fn drop(&mut self) {
        self.cell.hazards[self.slot]
            .protected
            .store(std::ptr::null_mut(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Reg(u64);

    #[derive(Debug, Clone, PartialEq)]
    struct Set(u64);

    impl crate::spec::OpCodec for Set {
        const MAX_ENCODED_SIZE: usize = 8;
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            Some(Set(u64::from_le_bytes(bytes.try_into().ok()?)))
        }
    }

    impl SequentialSpec for Reg {
        type UpdateOp = Set;
        type ReadOp = ();
        type Value = u64;
        fn initialize() -> Self {
            Reg(0)
        }
        fn apply(&mut self, op: &Set) -> u64 {
            self.0 = op.0;
            self.0
        }
        fn read(&self, _: &()) -> u64 {
            self.0
        }
    }

    #[test]
    fn empty_cell_returns_none_and_publish_makes_it_live() {
        let cell = SnapshotCell::<Reg>::new(1, 1);
        assert!(!cell.is_published());
        assert!(cell.load_protected(0).is_none());
        cell.publish(ReadSnapshot::new(Reg(7), 1));
        assert!(cell.is_published());
        let guard = cell.load_protected(0).unwrap();
        assert_eq!(guard.read(&()), 7);
        assert_eq!(guard.index(), 1);
    }

    #[test]
    fn publish_retires_old_snapshots_not_under_hazard() {
        let cell = SnapshotCell::<Reg>::new(1, 0);
        cell.publish(ReadSnapshot::new(Reg(1), 1));
        {
            let guard = cell.load_protected(0).unwrap();
            // Published while a reader pins the old snapshot: the old value
            // stays readable through the guard.
            cell.publish(ReadSnapshot::new(Reg(2), 2));
            assert_eq!(guard.read(&()), 1);
        }
        // Guard dropped: the next publish frees the pinned-then-released one.
        cell.publish(ReadSnapshot::new(Reg(3), 3));
        assert_eq!(cell.load_protected(0).unwrap().read(&()), 3);
        assert!(cell.limbo.lock().len() <= 1);
    }

    #[test]
    fn pool_slots_are_bounded_and_reusable() {
        let cell = SnapshotCell::<Reg>::new(2, 2);
        let a = cell.claim_pool_slot().unwrap();
        let b = cell.claim_pool_slot().unwrap();
        assert!(a >= 2 && b >= 2 && a != b);
        assert!(cell.claim_pool_slot().is_none());
        cell.release_pool_slot(a);
        assert_eq!(cell.claim_pool_slot(), Some(a));
    }

    #[test]
    fn concurrent_readers_never_observe_freed_state() {
        let cell = std::sync::Arc::new(SnapshotCell::<Reg>::new(4, 0));
        cell.publish(ReadSnapshot::new(Reg(0), 0));
        std::thread::scope(|scope| {
            for slot in 0..4 {
                let cell = cell.clone();
                scope.spawn(move || {
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let guard = cell.load_protected(slot).unwrap();
                        let v = guard.read(&());
                        // Snapshots are published in increasing order, so a
                        // reader's view is monotone.
                        assert!(v >= last, "snapshot regressed: {v} < {last}");
                        assert_eq!(guard.index(), v);
                        last = v;
                    }
                });
            }
            let cell = cell.clone();
            scope.spawn(move || {
                for v in 1..=5_000u64 {
                    cell.publish(ReadSnapshot::new(Reg(v), v));
                }
            });
        });
        assert_eq!(cell.load_protected(0).unwrap().read(&()), 5_000);
    }
}
