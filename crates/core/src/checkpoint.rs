//! Persistent checkpoints of the object state (Section 8 extension).
//!
//! A checkpoint is an object-specific, serialized representation of the state after
//! the first `n` updates. Each process owns a small double-buffered checkpoint area
//! in NVM; writing a checkpoint costs one persistent fence (it is an explicit
//! maintenance operation, outside the per-update fence budget), after which the
//! process may truncate its persistent log and the shared trace prefix may be
//! reclaimed once every process's local view has advanced past `n`.
//!
//! Checkpoint slots are self-validating (checksummed), like log entries, so a torn
//! checkpoint is simply ignored by recovery and the previous slot (or the empty
//! state) is used instead — which is always a correct, if older, consistent cut.

use nvm_sim::{NvmPool, PAddr, CACHE_LINE_SIZE};
use persist_log::checksum64;

/// Header bytes preceding the serialized state in one checkpoint slot.
const SLOT_HEADER: usize = 24; // checksum u64 + execution_index u64 + state_len u32 + pad u32

/// Size in bytes of one checkpoint slot for a configured state capacity.
pub(crate) fn slot_size(state_capacity: usize) -> usize {
    (SLOT_HEADER + state_capacity).div_ceil(CACHE_LINE_SIZE) * CACHE_LINE_SIZE
}

/// Size in bytes of one process's (double-buffered) checkpoint area.
pub(crate) fn area_size(state_capacity: usize) -> usize {
    2 * slot_size(state_capacity)
}

/// Writes a checkpoint of `state_bytes` reflecting execution index `execution_index`
/// into slot `which` (0 or 1) of the area at `base`. Exactly one persistent fence.
pub(crate) fn write_checkpoint(
    pool: &NvmPool,
    base: PAddr,
    state_capacity: usize,
    which: u64,
    execution_index: u64,
    state_bytes: &[u8],
) -> Result<(), String> {
    if state_bytes.len() > state_capacity {
        return Err(format!(
            "serialized state ({} bytes) exceeds the configured checkpoint slot capacity ({state_capacity} bytes)",
            state_bytes.len()
        ));
    }
    let slot = slot_size(state_capacity);
    let addr = base + (which % 2) * slot as u64;
    let mut buf = vec![0u8; SLOT_HEADER + state_bytes.len()];
    buf[8..16].copy_from_slice(&execution_index.to_le_bytes());
    buf[16..20].copy_from_slice(&(state_bytes.len() as u32).to_le_bytes());
    buf[24..].copy_from_slice(state_bytes);
    let csum = checksum64(&buf[8..]);
    buf[0..8].copy_from_slice(&csum.to_le_bytes());
    pool.write(addr, &buf);
    pool.flush(addr, buf.len());
    pool.fence();
    Ok(())
}

/// Reads the newest valid checkpoint from one process's area. Returns
/// `(execution_index, state_bytes)`.
pub(crate) fn read_area(
    pool: &NvmPool,
    base: PAddr,
    state_capacity: usize,
) -> Option<(u64, Vec<u8>)> {
    let slot = slot_size(state_capacity);
    let mut best: Option<(u64, Vec<u8>)> = None;
    for which in 0..2u64 {
        let addr = base + which * slot as u64;
        let header = pool.read_vec(addr, SLOT_HEADER);
        let stored_csum = u64::from_le_bytes(header[0..8].try_into().unwrap());
        let execution_index = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let state_len = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
        if state_len > state_capacity {
            continue;
        }
        let full = pool.read_vec(addr, SLOT_HEADER + state_len);
        if checksum64(&full[8..]) != stored_csum {
            continue;
        }
        let state = full[SLOT_HEADER..].to_vec();
        if best.as_ref().is_none_or(|(idx, _)| execution_index > *idx) {
            best = Some((execution_index, state));
        }
    }
    best
}

/// Reads the newest valid checkpoint across all processes' areas.
pub(crate) fn read_best(
    pool: &NvmPool,
    bases: &[PAddr],
    state_capacity: usize,
) -> Option<(u64, Vec<u8>)> {
    bases
        .iter()
        .filter_map(|b| read_area(pool, *b, state_capacity))
        .max_by_key(|(idx, _)| *idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::{CrashTrigger, PmemConfig};

    fn pool() -> NvmPool {
        NvmPool::new(PmemConfig::with_capacity(8 << 20).apply_pending_at_crash(0.0))
    }

    #[test]
    fn slot_and_area_sizes_are_line_aligned() {
        assert_eq!(slot_size(100) % CACHE_LINE_SIZE, 0);
        assert_eq!(area_size(100), 2 * slot_size(100));
    }

    #[test]
    fn roundtrip_single_checkpoint() {
        let p = pool();
        let base = p.alloc(area_size(256)).unwrap();
        write_checkpoint(&p, base, 256, 0, 17, b"state-at-17").unwrap();
        let (idx, state) = read_area(&p, base, 256).unwrap();
        assert_eq!(idx, 17);
        assert_eq!(state, b"state-at-17");
    }

    #[test]
    fn newest_of_two_slots_wins() {
        let p = pool();
        let base = p.alloc(area_size(64)).unwrap();
        write_checkpoint(&p, base, 64, 0, 10, b"old").unwrap();
        write_checkpoint(&p, base, 64, 1, 20, b"new").unwrap();
        assert_eq!(read_area(&p, base, 64).unwrap(), (20, b"new".to_vec()));
        // Overwriting the older slot with an even newer checkpoint flips the winner.
        write_checkpoint(&p, base, 64, 0, 30, b"newest").unwrap();
        assert_eq!(read_area(&p, base, 64).unwrap(), (30, b"newest".to_vec()));
    }

    #[test]
    fn checkpoint_survives_crash_and_costs_one_fence() {
        let p = pool();
        let base = p.alloc(area_size(64)).unwrap();
        let w = p.stats().op_window();
        write_checkpoint(&p, base, 64, 0, 5, b"abc").unwrap();
        assert_eq!(w.close().persistent_fences, 1);
        p.crash_and_restart();
        assert_eq!(read_area(&p, base, 64).unwrap(), (5, b"abc".to_vec()));
    }

    #[test]
    fn torn_checkpoint_falls_back_to_previous_slot() {
        let p = pool();
        let base = p.alloc(area_size(2048)).unwrap();
        write_checkpoint(&p, base, 2048, 0, 5, &[1u8; 1500]).unwrap();
        // Crash in the middle of the second checkpoint (before its fence).
        p.arm_crash(CrashTrigger::AfterFlushes(1));
        let _ = write_checkpoint(&p, base, 2048, 1, 9, &[2u8; 1500]);
        p.crash_and_restart();
        let (idx, state) = read_area(&p, base, 2048).unwrap();
        assert_eq!(idx, 5);
        assert_eq!(state, vec![1u8; 1500]);
    }

    #[test]
    fn oversized_state_rejected() {
        let p = pool();
        let base = p.alloc(area_size(16)).unwrap();
        assert!(write_checkpoint(&p, base, 16, 0, 1, &[0u8; 17]).is_err());
    }

    #[test]
    fn best_across_processes_is_the_global_maximum() {
        let p = pool();
        let b1 = p.alloc(area_size(64)).unwrap();
        let b2 = p.alloc(area_size(64)).unwrap();
        let b3 = p.alloc(area_size(64)).unwrap();
        write_checkpoint(&p, b1, 64, 0, 12, b"p1").unwrap();
        write_checkpoint(&p, b2, 64, 0, 40, b"p2").unwrap();
        // p3 never checkpointed.
        let (idx, state) = read_best(&p, &[b1, b2, b3], 64).unwrap();
        assert_eq!(idx, 40);
        assert_eq!(state, b"p2");
    }

    #[test]
    fn empty_area_yields_none() {
        let p = pool();
        let base = p.alloc(area_size(64)).unwrap();
        assert!(read_area(&p, base, 64).is_none());
        assert!(read_best(&p, &[base], 64).is_none());
    }
}
