//! Epoch-based persistent checkpoints of the object state (Section 8 extension).
//!
//! A checkpoint is an object-specific, serialized representation of the state after
//! the first `n` updates, stamped with a monotonically increasing *epoch* and the
//! execution-index *watermark* `n`. Each process owns a small double-buffered
//! checkpoint area in NVM managed by a [`Checkpointer`]; writing a checkpoint is
//! split into two steps so crash-injection harnesses can stop between them:
//!
//! 1. **stage** — the serialized state is written into the inactive slot and its
//!    cache lines flushed (no fence). Staging overwrites the *older* of the two
//!    slots, so the newest published checkpoint is never at risk.
//! 2. **publish** — the slot header (checksum, epoch, watermark, length) is
//!    written, flushed, and made durable with **one persistent fence**. The
//!    checksum covers the header fields and the state bytes, so the slot is
//!    self-validating: a crash anywhere before the publish fence leaves a slot
//!    that fails validation and is simply ignored by recovery.
//!
//! ## Truncation safety (why truncate-after-publish is crash-safe)
//!
//! Log truncation below a watermark `n` is only performed *after* the checkpoint
//! covering `n` has been published. Consider any crash:
//!
//! * **Before the publish fence** — the staged slot may be torn or unfenced, so
//!   recovery may not see it. But no truncation has happened yet, so the previous
//!   checkpoint (or the empty state) plus the *complete* log tail reconstructs
//!   everything. Staging only ever overwrites the older slot, so the newest
//!   published checkpoint always survives staging crashes intact.
//! * **After the publish fence, before (or during) truncation** — recovery finds
//!   the new checkpoint valid and replays only entries above `n`; whether the
//!   truncation's start-mark update reached NVM is irrelevant, because entries
//!   below `n` are skipped either way.
//! * **After truncation** — entries below `n` are gone, and recovery starts from
//!   the checkpoint at `n`, which the publish fence made durable *before* the
//!   truncation was allowed to run.
//!
//! In every case the recovered state covers exactly the acknowledged history: no
//! acknowledged update is lost, and no truncated operation can be resurrected
//! (recovery never replays indices at or below the checkpoint watermark it starts
//! from).

use nvm_sim::{NvmPool, PAddr, CACHE_LINE_SIZE};
use persist_log::checksum64;

/// Header bytes preceding the serialized state in one checkpoint slot:
/// checksum u64 + epoch u64 + execution_index u64 + state_len u32 + pad u32.
/// The header is followed by `max_processes` little-endian u64 *sequence
/// floors* (highest per-process operation sequence number the checkpoint
/// covers, as applied by the checkpointing view), then the state bytes. The
/// checksum covers floors and state, so a torn floor write invalidates the
/// slot like a torn state write would.
const SLOT_HEADER: usize = 32;

/// Identity of a published checkpoint: which epoch it belongs to and the
/// execution-index watermark it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CheckpointStamp {
    /// Execution index of the newest update the checkpoint covers (compared
    /// first: across processes, the furthest-ahead checkpoint wins).
    pub execution_index: u64,
    /// Monotone per-area checkpoint counter (tie-breaker within one area).
    pub epoch: u64,
}

/// Size in bytes of one checkpoint slot for a configured state capacity and
/// process count (the per-process sequence floors live in the slot).
pub(crate) fn slot_size(state_capacity: usize, num_pids: usize) -> usize {
    (SLOT_HEADER + 8 * num_pids + state_capacity).div_ceil(CACHE_LINE_SIZE) * CACHE_LINE_SIZE
}

/// Size in bytes of one process's (double-buffered) checkpoint area.
pub(crate) fn area_size(state_capacity: usize, num_pids: usize) -> usize {
    2 * slot_size(state_capacity, num_pids)
}

/// Checksum over a slot's validated content: epoch, watermark, length,
/// sequence floors and state.
fn slot_checksum(epoch: u64, execution_index: u64, seq_floors: &[u64], state: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(24 + 8 * seq_floors.len() + state.len());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&execution_index.to_le_bytes());
    buf.extend_from_slice(&(state.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]);
    for f in seq_floors {
        buf.extend_from_slice(&f.to_le_bytes());
    }
    buf.extend_from_slice(state);
    checksum64(&buf)
}

/// A staged-but-unpublished checkpoint (volatile bookkeeping only).
struct Staged {
    epoch: u64,
    execution_index: u64,
    state_len: usize,
    checksum: u64,
}

/// A validated checkpoint slot: its stamp, per-process sequence floors and
/// serialized state.
pub(crate) struct ValidSlot {
    pub(crate) stamp: CheckpointStamp,
    pub(crate) seq_floors: Vec<u64>,
    pub(crate) state: Vec<u8>,
}

/// Writes epoch-stamped checkpoints into one process's double-buffered NVM area
/// and reads them back after a crash.
///
/// The two-step [`Checkpointer::stage`] / [`Checkpointer::publish`] protocol
/// costs exactly **one persistent fence per checkpoint** (the publish fence);
/// see the module documentation for the crash-safety argument.
pub(crate) struct Checkpointer {
    pool: NvmPool,
    base: PAddr,
    state_capacity: usize,
    /// Number of per-process sequence floors stored in each slot (the object's
    /// `max_processes`).
    num_pids: usize,
    /// Slot (0 or 1) the next checkpoint will be staged into — always the one
    /// *not* holding the newest valid checkpoint.
    next_slot: u64,
    /// Epoch to stamp on the next checkpoint.
    next_epoch: u64,
    staged: Option<Staged>,
}

impl Checkpointer {
    /// Opens the checkpoint area at `base`, resuming after whatever the area
    /// already holds: the next checkpoint gets a fresh (higher) epoch and is
    /// staged into the slot not holding the newest valid checkpoint, so the
    /// newest published checkpoint is never overwritten before a newer one is
    /// durable.
    pub(crate) fn resume(
        pool: NvmPool,
        base: PAddr,
        state_capacity: usize,
        num_pids: usize,
    ) -> Self {
        let mut newest: Option<(u64, CheckpointStamp)> = None;
        let mut max_epoch = 0u64;
        for which in 0..2u64 {
            if let Some(slot) = read_slot(&pool, base, state_capacity, num_pids, which) {
                max_epoch = max_epoch.max(slot.stamp.epoch);
                if newest.is_none_or(|(_, best)| slot.stamp > best) {
                    newest = Some((which, slot.stamp));
                }
            }
        }
        let next_slot = match newest {
            Some((slot, _)) => 1 - slot,
            None => 0,
        };
        Checkpointer {
            pool,
            base,
            state_capacity,
            num_pids,
            next_slot,
            next_epoch: max_epoch + 1,
            staged: None,
        }
    }

    /// Stage a checkpoint of `state_bytes` covering execution index
    /// `execution_index`, carrying `seq_floors` (one per process slot): write
    /// floors and state into the inactive slot and flush them. No fence; the
    /// slot stays invalid until [`Checkpointer::publish`].
    pub(crate) fn stage(
        &mut self,
        execution_index: u64,
        seq_floors: &[u64],
        state_bytes: &[u8],
    ) -> Result<(), String> {
        if state_bytes.len() > self.state_capacity {
            return Err(format!(
                "serialized state ({} bytes) exceeds the configured checkpoint slot capacity ({} bytes); raise OnllConfig::checkpoint_slot_bytes",
                state_bytes.len(),
                self.state_capacity
            ));
        }
        debug_assert_eq!(seq_floors.len(), self.num_pids);
        let addr = self.slot_addr(self.next_slot);
        let mut body = Vec::with_capacity(8 * self.num_pids + state_bytes.len());
        for f in seq_floors {
            body.extend_from_slice(&f.to_le_bytes());
        }
        body.extend_from_slice(state_bytes);
        self.pool.write(addr + SLOT_HEADER as u64, &body);
        self.pool.flush(addr + SLOT_HEADER as u64, body.len());
        self.staged = Some(Staged {
            epoch: self.next_epoch,
            execution_index,
            state_len: state_bytes.len(),
            checksum: slot_checksum(self.next_epoch, execution_index, seq_floors, state_bytes),
        });
        Ok(())
    }

    /// Publish the staged checkpoint: write the self-validating slot header and
    /// make it durable with **one persistent fence**. Returns the published
    /// stamp, or an error if the fence failed (poisoned backend) or was frozen
    /// by a crash — the checkpoint must then not be considered published (the
    /// slot's validity is governed by its checksummed header, which never got
    /// its covering fence).
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint is staged.
    pub(crate) fn publish(&mut self) -> Result<CheckpointStamp, String> {
        let staged = self
            .staged
            .take()
            .expect("publish without a staged checkpoint");
        let addr = self.slot_addr(self.next_slot);
        let mut header = [0u8; SLOT_HEADER];
        header[0..8].copy_from_slice(&staged.checksum.to_le_bytes());
        header[8..16].copy_from_slice(&staged.epoch.to_le_bytes());
        header[16..24].copy_from_slice(&staged.execution_index.to_le_bytes());
        header[24..28].copy_from_slice(&(staged.state_len as u32).to_le_bytes());
        self.pool.write(addr, &header);
        self.pool.flush(addr, header.len());
        match self.pool.fence() {
            Ok(true) => {}
            Ok(false) => return Err("checkpoint publish fence hit a crash".into()),
            Err(e) => return Err(format!("checkpoint publish fence failed: {e}")),
        }
        self.next_slot = 1 - self.next_slot;
        self.next_epoch = staged.epoch + 1;
        Ok(CheckpointStamp {
            execution_index: staged.execution_index,
            epoch: staged.epoch,
        })
    }

    fn slot_addr(&self, which: u64) -> PAddr {
        self.base + (which % 2) * slot_size(self.state_capacity, self.num_pids) as u64
    }
}

/// Reads and validates one slot of an area.
fn read_slot(
    pool: &NvmPool,
    base: PAddr,
    state_capacity: usize,
    num_pids: usize,
    which: u64,
) -> Option<ValidSlot> {
    let addr = base + (which % 2) * slot_size(state_capacity, num_pids) as u64;
    let header = pool.read_vec(addr, SLOT_HEADER);
    let stored_csum = u64::from_le_bytes(header[0..8].try_into().unwrap());
    let epoch = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let execution_index = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let state_len = u32::from_le_bytes(header[24..28].try_into().unwrap()) as usize;
    if state_len > state_capacity {
        return None;
    }
    let floors_bytes = pool.read_vec(addr + SLOT_HEADER as u64, 8 * num_pids);
    let seq_floors: Vec<u64> = floors_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let state = pool.read_vec(addr + (SLOT_HEADER + 8 * num_pids) as u64, state_len);
    if slot_checksum(epoch, execution_index, &seq_floors, &state) != stored_csum {
        return None;
    }
    Some(ValidSlot {
        stamp: CheckpointStamp {
            execution_index,
            epoch,
        },
        seq_floors,
        state,
    })
}

/// Reads the newest valid checkpoint from one process's area.
pub(crate) fn read_area(
    pool: &NvmPool,
    base: PAddr,
    state_capacity: usize,
    num_pids: usize,
) -> Option<ValidSlot> {
    (0..2u64)
        .filter_map(|which| read_slot(pool, base, state_capacity, num_pids, which))
        .max_by_key(|slot| slot.stamp)
}

/// Reads **all** valid checkpoints across all processes' areas, newest first
/// (by watermark, then epoch). Recovery walks this list: the first entry whose
/// state decodes wins; later entries are the torn-write / decode-failure
/// fallback chain, and an empty list means full log replay.
pub(crate) fn read_all_valid(
    pool: &NvmPool,
    bases: &[PAddr],
    state_capacity: usize,
    num_pids: usize,
) -> Vec<ValidSlot> {
    let mut all: Vec<ValidSlot> = bases
        .iter()
        .flat_map(|b| {
            (0..2u64).filter_map(|which| read_slot(pool, *b, state_capacity, num_pids, which))
        })
        .collect();
    all.sort_by_key(|slot| std::cmp::Reverse(slot.stamp));
    all
}

/// Reads the newest valid checkpoint across all processes' areas.
pub(crate) fn read_best(
    pool: &NvmPool,
    bases: &[PAddr],
    state_capacity: usize,
    num_pids: usize,
) -> Option<ValidSlot> {
    bases
        .iter()
        .filter_map(|b| read_area(pool, *b, state_capacity, num_pids))
        .max_by_key(|slot| slot.stamp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::{CrashTrigger, PmemConfig};

    /// Process-slot count used by every test area.
    const PIDS: usize = 2;

    fn pool() -> NvmPool {
        NvmPool::new(PmemConfig::with_capacity(8 << 20).apply_pending_at_crash(0.0))
    }

    fn write(cp: &mut Checkpointer, idx: u64, state: &[u8]) -> CheckpointStamp {
        cp.stage(idx, &[idx, 0], state).unwrap();
        cp.publish().unwrap()
    }

    #[test]
    fn slot_and_area_sizes_are_line_aligned() {
        assert_eq!(slot_size(100, PIDS) % CACHE_LINE_SIZE, 0);
        assert_eq!(area_size(100, PIDS), 2 * slot_size(100, PIDS));
    }

    #[test]
    fn roundtrip_single_checkpoint() {
        let p = pool();
        let base = p.alloc(area_size(256, PIDS)).unwrap();
        let mut cp = Checkpointer::resume(p.clone(), base, 256, PIDS);
        let stamp = write(&mut cp, 17, b"state-at-17");
        assert_eq!(stamp.execution_index, 17);
        assert_eq!(stamp.epoch, 1);
        let slot = read_area(&p, base, 256, PIDS).unwrap();
        assert_eq!(slot.stamp, stamp);
        assert_eq!(slot.state, b"state-at-17");
        assert_eq!(slot.seq_floors, vec![17, 0]);
    }

    #[test]
    fn newest_of_two_slots_wins_and_epochs_advance() {
        let p = pool();
        let base = p.alloc(area_size(64, PIDS)).unwrap();
        let mut cp = Checkpointer::resume(p.clone(), base, 64, PIDS);
        write(&mut cp, 10, b"old");
        write(&mut cp, 20, b"new");
        let slot = read_area(&p, base, 64, PIDS).unwrap();
        assert_eq!((slot.stamp.execution_index, slot.stamp.epoch), (20, 2));
        assert_eq!(slot.state, b"new");
        // A third checkpoint overwrites the older slot and flips the winner.
        write(&mut cp, 30, b"newest");
        let slot = read_area(&p, base, 64, PIDS).unwrap();
        assert_eq!((slot.stamp.execution_index, slot.stamp.epoch), (30, 3));
        assert_eq!(slot.state, b"newest");
        assert_eq!(slot.seq_floors, vec![30, 0]);
    }

    #[test]
    fn checkpoint_survives_crash_and_costs_one_fence() {
        let p = pool();
        let base = p.alloc(area_size(64, PIDS)).unwrap();
        let mut cp = Checkpointer::resume(p.clone(), base, 64, PIDS);
        let w = p.stats().op_window();
        write(&mut cp, 5, b"abc");
        assert_eq!(w.close().persistent_fences, 1);
        p.crash_and_restart();
        let slot = read_area(&p, base, 64, PIDS).unwrap();
        assert_eq!(slot.stamp.execution_index, 5);
        assert_eq!(slot.state, b"abc");
    }

    #[test]
    fn crash_between_stage_and_publish_preserves_previous_checkpoint() {
        let p = pool();
        let base = p.alloc(area_size(2048, PIDS)).unwrap();
        let mut cp = Checkpointer::resume(p.clone(), base, 2048, PIDS);
        write(&mut cp, 5, &[1u8; 1500]);
        // Stage the next checkpoint but crash before its publish fence.
        cp.stage(9, &[9, 0], &[2u8; 1500]).unwrap();
        p.crash_and_restart();
        let slot = read_area(&p, base, 2048, PIDS).unwrap();
        assert_eq!(slot.stamp.execution_index, 5);
        assert_eq!(slot.state, vec![1u8; 1500]);
        assert_eq!(slot.seq_floors, vec![5, 0]);
    }

    #[test]
    fn torn_publish_falls_back_to_previous_slot() {
        let p = pool();
        let base = p.alloc(area_size(2048, PIDS)).unwrap();
        let mut cp = Checkpointer::resume(p.clone(), base, 2048, PIDS);
        write(&mut cp, 5, &[1u8; 1500]);
        // Crash in the middle of the second checkpoint's publish (header flushed
        // but never fenced; the pending line is dropped at the crash).
        cp.stage(9, &[9, 0], &[2u8; 1500]).unwrap();
        p.arm_crash(CrashTrigger::AfterFlushes(1));
        let _ = cp.publish();
        assert!(p.is_frozen());
        p.crash_and_restart();
        let slot = read_area(&p, base, 2048, PIDS).unwrap();
        assert_eq!(slot.stamp.execution_index, 5);
        assert_eq!(slot.state, vec![1u8; 1500]);
    }

    #[test]
    fn resume_continues_epochs_and_spares_the_newest_slot() {
        let p = pool();
        let base = p.alloc(area_size(64, PIDS)).unwrap();
        let mut cp = Checkpointer::resume(p.clone(), base, 64, PIDS);
        write(&mut cp, 10, b"a");
        write(&mut cp, 20, b"b");
        p.crash_and_restart();
        let mut cp = Checkpointer::resume(p.clone(), base, 64, PIDS);
        // Staging after resume must not touch the newest checkpoint (idx 20).
        cp.stage(30, &[30, 0], b"c").unwrap();
        let slot = read_area(&p, base, 64, PIDS).unwrap();
        assert_eq!(slot.stamp.execution_index, 20);
        let stamp = cp.publish().unwrap();
        assert_eq!((stamp.execution_index, stamp.epoch), (30, 3));
    }

    #[test]
    fn oversized_state_rejected() {
        let p = pool();
        let base = p.alloc(area_size(16, PIDS)).unwrap();
        let mut cp = Checkpointer::resume(p.clone(), base, 16, PIDS);
        assert!(cp.stage(1, &[1, 0], &[0u8; 17]).is_err());
    }

    #[test]
    fn best_across_processes_is_the_global_maximum() {
        let p = pool();
        let b1 = p.alloc(area_size(64, PIDS)).unwrap();
        let b2 = p.alloc(area_size(64, PIDS)).unwrap();
        let b3 = p.alloc(area_size(64, PIDS)).unwrap();
        write(
            &mut Checkpointer::resume(p.clone(), b1, 64, PIDS),
            12,
            b"p1",
        );
        write(
            &mut Checkpointer::resume(p.clone(), b2, 64, PIDS),
            40,
            b"p2",
        );
        // p3 never checkpointed.
        let slot = read_best(&p, &[b1, b2, b3], 64, PIDS).unwrap();
        assert_eq!(slot.stamp.execution_index, 40);
        assert_eq!(slot.state, b"p2");
    }

    #[test]
    fn read_all_valid_is_newest_first() {
        let p = pool();
        let b1 = p.alloc(area_size(64, PIDS)).unwrap();
        let b2 = p.alloc(area_size(64, PIDS)).unwrap();
        let mut cp1 = Checkpointer::resume(p.clone(), b1, 64, PIDS);
        write(&mut cp1, 12, b"old");
        write(&mut cp1, 25, b"mid");
        write(
            &mut Checkpointer::resume(p.clone(), b2, 64, PIDS),
            40,
            b"new",
        );
        let all = read_all_valid(&p, &[b1, b2], 64, PIDS);
        let indices: Vec<u64> = all.iter().map(|s| s.stamp.execution_index).collect();
        assert_eq!(indices, vec![40, 25, 12]);
    }

    #[test]
    fn empty_area_yields_none() {
        let p = pool();
        let base = p.alloc(area_size(64, PIDS)).unwrap();
        assert!(read_area(&p, base, 64, PIDS).is_none());
        assert!(read_best(&p, &[base], 64, PIDS).is_none());
        assert!(read_all_valid(&p, &[base], 64, PIDS).is_empty());
    }
}
