//! Phase-level span timing: turns the [`Phase`] hook stream into latency
//! histograms, without touching the algorithm.
//!
//! Every update already announces its progress through [`crate::Hooks`]
//! (`BeforeOrder` → … → `BeforeResponse`); this module listens to that stream
//! and measures the gap between matching phase pairs with thread-local start
//! marks (phases of one operation all fire on the invoking thread). The
//! construction installs these hooks only when the pool's telemetry sink is
//! enabled — with telemetry off, `Hooks` stays exactly what the caller
//! supplied (by default `None`), so the hot path keeps its single-branch
//! `fire`.
//!
//! Recorded spans (nanoseconds):
//!
//! * `phase.order_ns` — `BeforeOrder` → `AfterOrder`: the execution-trace
//!   insert.
//! * `phase.persist_ns` — `BeforePersist` → `AfterPersist`: the fuzzy-window
//!   log append, including the update's one persistent fence.
//! * `phase.linearize_ns` — `BeforeLinearize` → `AfterLinearize`: setting the
//!   available flag.
//! * `phase.response_ns` — `AfterLinearize` → `BeforeResponse`: computing the
//!   return value and publishing progress.
//! * `phase.update_ns` — `BeforeOrder` → `BeforeResponse`: the whole update.
//! * `phase.read_ns` — `BeforeReadSnapshot` → `BeforeReadResponse`.
//! * `ckpt.stage_ns` / `ckpt.publish_ns` / `ckpt.truncate_ns` — the three
//!   checkpoint stages, bracketed by their own phases.

use crate::hooks::{Hooks, Phase};
use nvm_sim::Telemetry;
use std::cell::Cell;
use std::time::Instant;

/// One thread-local start mark per measured span. `take()` on record means an
/// unmatched end phase (e.g. an update that failed before its start mark was
/// set) records nothing instead of garbage.
struct Marks {
    order: Cell<Option<Instant>>,
    persist: Cell<Option<Instant>>,
    linearize: Cell<Option<Instant>>,
    response: Cell<Option<Instant>>,
    update: Cell<Option<Instant>>,
    read: Cell<Option<Instant>>,
    ckpt_stage: Cell<Option<Instant>>,
    ckpt_publish: Cell<Option<Instant>>,
    ckpt_truncate: Cell<Option<Instant>>,
}

thread_local! {
    static MARKS: Marks = const {
        Marks {
            order: Cell::new(None),
            persist: Cell::new(None),
            linearize: Cell::new(None),
            response: Cell::new(None),
            update: Cell::new(None),
            read: Cell::new(None),
            ckpt_stage: Cell::new(None),
            ckpt_publish: Cell::new(None),
            ckpt_truncate: Cell::new(None),
        }
    };
}

fn elapsed_ns(mark: &Cell<Option<Instant>>) -> Option<u64> {
    mark.take().map(|start| start.elapsed().as_nanos() as u64)
}

/// Builds hooks recording every phase span into `telemetry`. Returns inactive
/// hooks when the sink is disabled.
pub fn span_hooks(telemetry: &Telemetry) -> Hooks {
    if !telemetry.is_enabled() {
        return Hooks::none();
    }
    let order = telemetry.histogram("phase.order_ns");
    let persist = telemetry.histogram("phase.persist_ns");
    let linearize = telemetry.histogram("phase.linearize_ns");
    let response = telemetry.histogram("phase.response_ns");
    let update = telemetry.histogram("phase.update_ns");
    let read = telemetry.histogram("phase.read_ns");
    let ckpt_stage = telemetry.histogram("ckpt.stage_ns");
    let ckpt_publish = telemetry.histogram("ckpt.publish_ns");
    let ckpt_truncate = telemetry.histogram("ckpt.truncate_ns");
    Hooks::new(move |phase, _pid| {
        MARKS.with(|m| match phase {
            Phase::BeforeOrder => {
                m.update.set(Some(Instant::now()));
                m.order.set(Some(Instant::now()));
            }
            Phase::AfterOrder => {
                if let Some(ns) = elapsed_ns(&m.order) {
                    order.record(ns);
                }
            }
            Phase::BeforePersist => m.persist.set(Some(Instant::now())),
            Phase::AfterPersist => {
                if let Some(ns) = elapsed_ns(&m.persist) {
                    persist.record(ns);
                }
            }
            Phase::BeforeLinearize => m.linearize.set(Some(Instant::now())),
            Phase::AfterLinearize => {
                if let Some(ns) = elapsed_ns(&m.linearize) {
                    linearize.record(ns);
                }
                m.response.set(Some(Instant::now()));
            }
            Phase::BeforeResponse => {
                if let Some(ns) = elapsed_ns(&m.response) {
                    response.record(ns);
                }
                if let Some(ns) = elapsed_ns(&m.update) {
                    update.record(ns);
                }
            }
            Phase::BeforeReadSnapshot => m.read.set(Some(Instant::now())),
            Phase::BeforeReadResponse => {
                if let Some(ns) = elapsed_ns(&m.read) {
                    read.record(ns);
                }
            }
            Phase::BeforeCheckpointStage => m.ckpt_stage.set(Some(Instant::now())),
            Phase::AfterCheckpointStage => {
                if let Some(ns) = elapsed_ns(&m.ckpt_stage) {
                    ckpt_stage.record(ns);
                }
            }
            Phase::BeforeCheckpointPublish => m.ckpt_publish.set(Some(Instant::now())),
            Phase::AfterCheckpointPublish => {
                if let Some(ns) = elapsed_ns(&m.ckpt_publish) {
                    ckpt_publish.record(ns);
                }
            }
            Phase::BeforeLogTruncate => m.ckpt_truncate.set(Some(Instant::now())),
            Phase::AfterLogTruncate => {
                if let Some(ns) = elapsed_ns(&m.ckpt_truncate) {
                    ckpt_truncate.record(ns);
                }
            }
        })
    })
}

/// Composes user-supplied hooks with phase-span telemetry: user hooks fire
/// first (so pause/crash injection sees phases exactly as before), span marks
/// second. Identity when the sink is disabled.
pub(crate) fn install(telemetry: &Telemetry, user: Hooks) -> Hooks {
    Hooks::chain(&user, &span_hooks(telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire_update(hooks: &Hooks) {
        for p in Phase::UPDATE_PHASES {
            hooks.fire(p, 0);
        }
    }

    #[test]
    fn disabled_sink_installs_nothing() {
        assert!(!span_hooks(&Telemetry::disabled()).is_active());
        assert!(!install(&Telemetry::disabled(), Hooks::none()).is_active());
    }

    #[test]
    fn update_phases_record_all_update_spans() {
        let t = Telemetry::enabled();
        let hooks = span_hooks(&t);
        fire_update(&hooks);
        fire_update(&hooks);
        let snap = t.snapshot();
        for name in [
            "phase.order_ns",
            "phase.persist_ns",
            "phase.linearize_ns",
            "phase.response_ns",
            "phase.update_ns",
        ] {
            assert_eq!(snap.histogram(name).unwrap().count, 2, "{name}");
        }
        assert_eq!(snap.histogram("phase.read_ns").unwrap().count, 0);
    }

    #[test]
    fn checkpoint_phases_record_checkpoint_spans() {
        let t = Telemetry::enabled();
        let hooks = span_hooks(&t);
        for p in Phase::CHECKPOINT_PHASES {
            hooks.fire(p, 0);
        }
        let snap = t.snapshot();
        for name in ["ckpt.stage_ns", "ckpt.publish_ns", "ckpt.truncate_ns"] {
            assert_eq!(snap.histogram(name).unwrap().count, 1, "{name}");
        }
    }

    #[test]
    fn unmatched_end_phase_records_nothing() {
        let t = Telemetry::enabled();
        let hooks = span_hooks(&t);
        hooks.fire(Phase::AfterPersist, 0); // no BeforePersist mark
        assert_eq!(t.snapshot().histogram("phase.persist_ns").unwrap().count, 0);
    }

    #[test]
    fn install_preserves_user_hooks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let user = Hooks::new(move |_, _| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        let t = Telemetry::enabled();
        let hooks = install(&t, user);
        fire_update(&hooks);
        assert_eq!(count.load(Ordering::Relaxed), Phase::UPDATE_PHASES.len());
        assert_eq!(t.snapshot().histogram("phase.update_ns").unwrap().count, 1);
    }
}
