//! Per-process handles: `update` (Listing 3), `read` (Listing 4) and the Section-8
//! checkpointing / reclamation extension.

use crate::checkpoint;
use crate::construction::Shared;
use crate::error::OnllError;
use crate::hooks::Phase;
use crate::local_view::LocalView;
use crate::op_id::{encode_record, OpId, Record};
use crate::spec::{CheckpointableSpec, SequentialSpec};
use exec_trace::TraceNode;
use persist_log::{LogError, PersistentLog};
use std::sync::atomic::Ordering;
use std::sync::Arc;

enum ReadStrategy<S: SequentialSpec> {
    /// Base construction: every value computation replays the trace prefix from the
    /// sentinel ("readers traverse the entire execution trace").
    FullReplay,
    /// Section-8 extension: a per-process materialized state that replays only the
    /// missing suffix.
    LocalView(LocalView<S>),
}

/// A per-process handle on a [`crate::Durable`] object.
///
/// Exactly one handle exists per process slot at a time (handles are not `Clone`;
/// dropping a handle releases its slot). The `&mut self` receivers encode the
/// paper's model in which a process has at most one operation in flight.
pub struct ProcessHandle<S: SequentialSpec> {
    shared: Arc<Shared<S>>,
    pid: usize,
    log: PersistentLog,
    strategy: ReadStrategy<S>,
    /// Own updates since the last checkpoint (for `update_with_checkpoint`).
    updates_since_checkpoint: u64,
    /// Which checkpoint slot to write next (double buffering).
    checkpoint_toggle: u64,
    /// Identity of the most recent update invoked through this handle.
    last_op_id: Option<OpId>,
}

pub(crate) fn new_handle<S: SequentialSpec>(
    shared: Arc<Shared<S>>,
    pid: usize,
) -> Result<ProcessHandle<S>, OnllError> {
    let (log, _existing) = PersistentLog::open(
        shared.pool.clone(),
        shared.log_cfg.clone(),
        shared.log_bases[pid],
    );
    let strategy = if shared.config.use_local_views {
        ReadStrategy::LocalView(LocalView::new((shared.base_state)(), shared.base_index))
    } else {
        ReadStrategy::FullReplay
    };
    shared.progress[pid].store(shared.base_index, Ordering::Release);
    Ok(ProcessHandle {
        shared,
        pid,
        log,
        strategy,
        updates_since_checkpoint: 0,
        checkpoint_toggle: 0,
        last_op_id: None,
    })
}

impl<S: SequentialSpec> ProcessHandle<S> {
    /// This handle's process identifier (`0 .. max_processes`).
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Identity assigned to the most recent update invoked through this handle.
    /// Useful for detectable-execution queries after a crash.
    pub fn last_op_id(&self) -> Option<OpId> {
        self.last_op_id
    }

    /// Identity that will be assigned to the *next* update invoked through this
    /// handle. Test harnesses record it before invoking an operation so that even
    /// operations interrupted by a crash can be matched against the recovery's
    /// detectable-execution report.
    pub fn peek_next_op_id(&self) -> OpId {
        OpId::new(
            self.pid as u32,
            self.shared.last_op_seq[self.pid].load(Ordering::Acquire) + 1,
        )
    }

    /// Execution index this handle's local view reflects (0 / the checkpoint index
    /// if no operation has been observed yet). With local views disabled this is
    /// the index of the last operation whose effect this handle computed.
    pub fn view_index(&self) -> u64 {
        match &self.strategy {
            ReadStrategy::LocalView(v) => v.idx(),
            ReadStrategy::FullReplay => self.shared.progress[self.pid].load(Ordering::Acquire),
        }
    }

    /// Number of live entries in this process's persistent log.
    pub fn log_len(&self) -> usize {
        self.log.live_len()
    }

    /// Performs an update operation (Listing 3): order, persist, linearize.
    ///
    /// Cost in the paper's model: **exactly one persistent fence** (the log
    /// append's), regardless of how many other processes' operations were helped.
    ///
    /// # Panics
    ///
    /// Panics if the persistent log is full (see [`ProcessHandle::try_update`] for
    /// the non-panicking variant).
    pub fn update(&mut self, op: S::UpdateOp) -> S::Value {
        self.try_update(op).expect("ONLL update failed")
    }

    /// Fallible variant of [`ProcessHandle::update`].
    pub fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        let pid = self.pid as u32;
        // Work through a local clone of the shared Arc so references into the trace
        // do not pin `self` immutably across the `&mut self` calls below.
        let shared = self.shared.clone();
        let hooks = shared.hooks.clone();
        hooks.fire(Phase::BeforeOrder, pid);

        // Refuse before touching shared state if the log cannot take another entry;
        // otherwise we would order an operation we cannot persist.
        if self.log.free_slots() == 0 {
            return Err(OnllError::LogFull);
        }

        // --- Order: fix the linearization order by appending to the trace. ---
        let seq = shared.last_op_seq[self.pid].fetch_add(1, Ordering::AcqRel) + 1;
        let op_id = OpId::new(pid, seq);
        self.last_op_id = Some(op_id);
        let node = shared.trace.insert(Some(Record::new(op_id, op)));
        hooks.fire(Phase::AfterOrder, pid);

        // --- Persist: append the fuzzy window (own op + unpersisted predecessors)
        //     to the private persistent log. One persistent fence. ---
        let fuzzy = shared.trace.fuzzy_nodes_from(node);
        debug_assert!(!fuzzy.is_empty() && std::ptr::eq(fuzzy[0], node));
        debug_assert!(
            fuzzy.len() <= shared.config.ops_per_entry(),
            "fuzzy window exceeded the group-extended bound (Proposition 5.2 generalization violated)"
        );
        let encoded: Vec<Vec<u8>> = fuzzy
            .iter()
            .map(|n| {
                encode_record(
                    n.op()
                        .as_ref()
                        .expect("fuzzy-window nodes always carry an operation record"),
                )
            })
            .collect();
        let refs: Vec<&[u8]> = encoded.iter().map(|v| v.as_slice()).collect();
        hooks.fire(Phase::BeforePersist, pid);
        self.log.append(&refs, node.idx()).map_err(|e| match e {
            LogError::Full => OnllError::LogFull,
            LogError::EntryTooLarge(msg) => OnllError::Nvm(msg),
        })?;
        hooks.fire(Phase::AfterPersist, pid);

        // --- Linearize: make the operation visible to readers. ---
        hooks.fire(Phase::BeforeLinearize, pid);
        shared.trace.set_available(node);
        hooks.fire(Phase::AfterLinearize, pid);

        // Return value: computed on the object state immediately after this update,
        // according to the order fixed in the order stage.
        let value = self.value_after(node);
        self.publish_progress();
        self.updates_since_checkpoint += 1;
        hooks.fire(Phase::BeforeResponse, pid);
        Ok(value)
    }

    /// Persists a *group* of update operations with **one** persistent fence
    /// (fence-amortized group persist, the batching layer under `onll-shard`).
    ///
    /// All operations are ordered consecutively-as-a-unit is *not* guaranteed —
    /// other processes' operations may interleave between them in the
    /// linearization order — but they are persisted together: a single log entry
    /// whose fuzzy window covers the whole group plus any unpersisted
    /// predecessors, followed by a single linearization sweep. Return values are
    /// computed per operation on the state immediately after it, exactly as for
    /// individual updates.
    ///
    /// Durability is all-or-nothing at the group's single fence: a crash before
    /// it may lose the whole group (each operation individually reports as
    /// not-linearized via detectable execution); a crash after it loses nothing.
    ///
    /// Cost: **one persistent fence for the whole group**, i.e. `1/len` fences
    /// per update — the Theorem 5.1 per-update bound of one fence is preserved
    /// (and beaten) as long as `len <= OnllConfig::max_group_ops`.
    pub fn try_update_group(
        &mut self,
        ops: impl IntoIterator<Item = S::UpdateOp>,
    ) -> Result<Vec<S::Value>, OnllError> {
        let ops: Vec<S::UpdateOp> = ops.into_iter().collect();
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let max = self.shared.config.max_group_ops;
        if ops.len() > max {
            return Err(OnllError::GroupTooLarge {
                len: ops.len(),
                max,
            });
        }
        let pid = self.pid as u32;
        let group_len = ops.len();
        let shared = self.shared.clone();
        let hooks = shared.hooks.clone();
        hooks.fire(Phase::BeforeOrder, pid);

        // The whole group lands in one log entry; refuse before ordering
        // anything we could not persist.
        if self.log.free_slots() == 0 {
            return Err(OnllError::LogFull);
        }

        // --- Order: append every operation of the group to the trace. ---
        let nodes: Vec<_> = ops
            .into_iter()
            .map(|op| {
                let seq = shared.last_op_seq[self.pid].fetch_add(1, Ordering::AcqRel) + 1;
                let op_id = OpId::new(pid, seq);
                self.last_op_id = Some(op_id);
                shared.trace.insert(Some(Record::new(op_id, op)))
            })
            .collect();
        hooks.fire(Phase::AfterOrder, pid);

        // --- Persist: one log entry covering the group's fuzzy window (the whole
        //     group plus unpersisted predecessors). One persistent fence. ---
        let newest = *nodes.last().expect("group is non-empty");
        let fuzzy = shared.trace.fuzzy_nodes_from(newest);
        debug_assert!(!fuzzy.is_empty() && std::ptr::eq(fuzzy[0], newest));
        debug_assert!(
            fuzzy.len() <= shared.config.ops_per_entry(),
            "fuzzy window exceeded the group-extended bound (Proposition 5.2 generalization)"
        );
        let encoded: Vec<Vec<u8>> = fuzzy
            .iter()
            .map(|n| {
                encode_record(
                    n.op()
                        .as_ref()
                        .expect("fuzzy-window nodes always carry an operation record"),
                )
            })
            .collect();
        let refs: Vec<&[u8]> = encoded.iter().map(|v| v.as_slice()).collect();
        hooks.fire(Phase::BeforePersist, pid);
        self.log.append(&refs, newest.idx()).map_err(|e| match e {
            LogError::Full => OnllError::LogFull,
            LogError::EntryTooLarge(msg) => OnllError::Nvm(msg),
        })?;
        hooks.fire(Phase::AfterPersist, pid);

        // --- Linearize: sweep the group's available flags oldest to newest, so
        //     linearized prefixes are always contiguous. ---
        hooks.fire(Phase::BeforeLinearize, pid);
        for node in &nodes {
            shared.trace.set_available(node);
        }
        hooks.fire(Phase::AfterLinearize, pid);

        // Return values: one per operation, computed on the state right after it.
        let values = nodes.iter().map(|node| self.value_after(node)).collect();
        self.publish_progress();
        self.updates_since_checkpoint += group_len as u64;
        hooks.fire(Phase::BeforeResponse, pid);
        Ok(values)
    }

    /// Panicking variant of [`ProcessHandle::try_update_group`].
    pub fn update_group(&mut self, ops: impl IntoIterator<Item = S::UpdateOp>) -> Vec<S::Value> {
        self.try_update_group(ops)
            .expect("ONLL group update failed")
    }

    /// Performs a read-only operation (Listing 4).
    ///
    /// Cost in the paper's model: **zero persistent fences** — the read touches
    /// neither NVM nor shared mutable memory; it only traverses the transient trace
    /// (or, with local views, replays the missing suffix into process-private
    /// state).
    pub fn read(&mut self, op: &S::ReadOp) -> S::Value {
        let pid = self.pid as u32;
        let hooks = self.shared.hooks.clone();
        hooks.fire(Phase::BeforeReadSnapshot, pid);
        let node = self.shared.trace.latest_available();
        let value = match &mut self.strategy {
            ReadStrategy::LocalView(view) => {
                view.advance_to(&self.shared.trace, node);
                view.state().read(op)
            }
            ReadStrategy::FullReplay => {
                let state = self.replay_to(node);
                state.read(op)
            }
        };
        self.publish_progress();
        hooks.fire(Phase::BeforeReadResponse, pid);
        value
    }

    /// Computes the return value of the update recorded at `node`.
    fn value_after(&mut self, node: &TraceNode<Option<Record<S::UpdateOp>>>) -> S::Value {
        match &mut self.strategy {
            ReadStrategy::LocalView(view) => view
                .advance_to(&self.shared.trace, node)
                .expect("the handle's own new operation is always ahead of its view"),
            ReadStrategy::FullReplay => {
                let mut state = (self.shared.base_state)();
                let mut last = None;
                for n in self
                    .shared
                    .trace
                    .nodes_between(self.shared.base_index, node)
                {
                    if let Some(record) = n.op() {
                        last = Some(state.apply(&record.op));
                    }
                }
                last.expect("at least this handle's own operation is replayed")
            }
        }
    }

    /// Replays the trace prefix ending at `node` from the base state.
    fn replay_to(&self, node: &TraceNode<Option<Record<S::UpdateOp>>>) -> S {
        let mut state = (self.shared.base_state)();
        for n in self
            .shared
            .trace
            .nodes_between(self.shared.base_index, node)
        {
            if let Some(record) = n.op() {
                state.apply(&record.op);
            }
        }
        state
    }

    fn publish_progress(&self) {
        if let ReadStrategy::LocalView(view) = &self.strategy {
            self.shared.progress[self.pid].store(view.idx(), Ordering::Release);
        }
    }
}

impl<S: CheckpointableSpec> ProcessHandle<S> {
    /// Persists a checkpoint of this handle's local view, truncates this process's
    /// persistent log, and reclaims the shared trace prefix that every registered
    /// process has already incorporated into its local view (Section 8 extension).
    ///
    /// Cost: two persistent fences (checkpoint write + log-header truncation) —
    /// explicit maintenance, amortized over `checkpoint_interval` updates; the
    /// per-update bound of Theorem 5.1 is unaffected.
    ///
    /// Returns the execution index the checkpoint covers.
    pub fn checkpoint(&mut self) -> Result<u64, OnllError> {
        if self.shared.config.checkpoint_interval.is_none() {
            return Err(OnllError::CheckpointingDisabled);
        }
        let ReadStrategy::LocalView(view) = &self.strategy else {
            return Err(OnllError::CheckpointingDisabled);
        };
        let idx = view.idx();
        let mut bytes = Vec::new();
        view.state().encode_state(&mut bytes);
        checkpoint::write_checkpoint(
            &self.shared.pool,
            self.shared.cp_bases[self.pid],
            self.shared.config.checkpoint_slot_bytes,
            self.checkpoint_toggle,
            idx,
            &bytes,
        )
        .map_err(OnllError::Nvm)?;
        self.checkpoint_toggle = self.checkpoint_toggle.wrapping_add(1);
        // All of this process's log entries carry execution indices <= idx (its own
        // updates are already reflected in its local view), so the whole log is now
        // redundant with the checkpoint.
        self.log.truncate();
        self.updates_since_checkpoint = 0;

        // Reclaim the shared trace prefix below the slowest registered process.
        if let Some(min) = self.shared.min_progress() {
            let floor = self.shared.trace.reclaim_floor();
            if min > floor && min - floor >= self.shared.config.reclaim_batch {
                self.shared.trace.reclaim_prefix(min);
            }
        }
        Ok(idx)
    }

    /// [`ProcessHandle::try_update`] followed by an automatic [`ProcessHandle::checkpoint`]
    /// every `checkpoint_interval` updates.
    pub fn update_with_checkpoint(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        let value = self.try_update(op)?;
        if let Some(interval) = self.shared.config.checkpoint_interval {
            if self.updates_since_checkpoint >= interval {
                self.checkpoint()?;
            }
        }
        Ok(value)
    }
}

impl<S: SequentialSpec> Drop for ProcessHandle<S> {
    fn drop(&mut self) {
        // Release the slot so the process identifier can be claimed again (e.g.
        // after recovery or when worker threads are re-spawned).
        self.shared.claimed[self.pid].store(false, Ordering::Release);
    }
}

impl<S: SequentialSpec> std::fmt::Debug for ProcessHandle<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessHandle")
            .field("pid", &self.pid)
            .field("view_index", &self.view_index())
            .field("log_len", &self.log_len())
            .finish()
    }
}
