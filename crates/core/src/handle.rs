//! Per-process handles: `update` (Listing 3), `read` (Listing 4) and the Section-8
//! checkpointing / reclamation extension.

use crate::checkpoint::Checkpointer;
use crate::construction::Shared;
use crate::error::OnllError;
use crate::hooks::Phase;
use crate::local_view::LocalView;
use crate::op_id::{encode_record_into, OpId, Record};
use crate::spec::{SequentialSpec, SnapshotSpec};
use exec_trace::TraceNode;
use persist_log::{LogError, PersistentLog};
use std::sync::atomic::Ordering;
use std::sync::Arc;

enum ReadStrategy<S: SequentialSpec> {
    /// Base construction: every value computation replays the trace prefix from the
    /// sentinel ("readers traverse the entire execution trace").
    FullReplay,
    /// Section-8 extension: a per-process materialized state that replays only the
    /// missing suffix.
    LocalView(LocalView<S>),
}

/// A per-process handle on a [`crate::Durable`] object.
///
/// Exactly one handle exists per process slot at a time (handles are not `Clone`;
/// dropping a handle releases its slot). The `&mut self` receivers encode the
/// paper's model in which a process has at most one operation in flight.
pub struct ProcessHandle<S: SequentialSpec> {
    shared: Arc<Shared<S>>,
    pid: usize,
    log: PersistentLog,
    strategy: ReadStrategy<S>,
    /// Epoch-stamped writer for this process's double-buffered checkpoint area.
    checkpointer: Checkpointer,
    /// Watermark this handle last compacted its own log below (volatile cache of
    /// the shared watermark, so the compaction check is one atomic load).
    truncated_below: u64,
    /// Identity of the most recent update invoked through this handle.
    last_op_id: Option<OpId>,
}

pub(crate) fn new_handle<S: SequentialSpec>(
    shared: Arc<Shared<S>>,
    pid: usize,
) -> Result<ProcessHandle<S>, OnllError> {
    let (log, _existing) = PersistentLog::open(
        shared.pool.clone(),
        shared.log_cfg.clone(),
        shared.log_bases[pid],
    );
    shared.log_live_entries[pid].store(log.live_len() as u64, Ordering::Release);
    let strategy = if shared.config.use_local_views {
        // Seed the fresh view from the newest published snapshot, not the
        // base: after trace-prefix reclamation the history below the snapshot
        // is unlinked, and a base-seeded view would silently miss it. The
        // conservative progress floor published by `try_claim` keeps
        // reclamation from advancing past the seed until this store.
        let (seed_idx, seed_state) = shared.view_seed();
        shared.progress[pid].store(seed_idx, Ordering::Release);
        ReadStrategy::LocalView(LocalView::new(seed_state, seed_idx))
    } else {
        ReadStrategy::FullReplay
    };
    let checkpointer = Checkpointer::resume(
        shared.pool.clone(),
        shared.cp_bases[pid],
        shared.config.checkpoint_slot_bytes,
        shared.config.max_processes,
    );
    let truncated_below = shared.checkpoint_watermark.load(Ordering::Acquire).min(
        // A freshly opened log may still hold entries below the watermark (the
        // owner crashed before compacting); start at 0 so the first update
        // compacts them.
        log.first_live_index()
            .map_or(u64::MAX, |i| i.saturating_sub(1)),
    );
    Ok(ProcessHandle {
        shared,
        pid,
        log,
        strategy,
        checkpointer,
        truncated_below,
        last_op_id: None,
    })
}

impl<S: SequentialSpec> ProcessHandle<S> {
    /// This handle's process identifier (`0 .. max_processes`).
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Identity assigned to the most recent update invoked through this handle.
    /// Useful for detectable-execution queries after a crash.
    pub fn last_op_id(&self) -> Option<OpId> {
        self.last_op_id
    }

    /// Identity that will be assigned to the *next* update invoked through this
    /// handle. Test harnesses record it before invoking an operation so that even
    /// operations interrupted by a crash can be matched against the recovery's
    /// detectable-execution report.
    pub fn peek_next_op_id(&self) -> OpId {
        OpId::new(
            self.pid as u32,
            self.shared.last_op_seq[self.pid].load(Ordering::Acquire) + 1,
        )
    }

    /// Execution index this handle's local view reflects (0 / the checkpoint index
    /// if no operation has been observed yet). With local views disabled this is
    /// the index of the last operation whose effect this handle computed.
    pub fn view_index(&self) -> u64 {
        match &self.strategy {
            ReadStrategy::LocalView(v) => v.idx(),
            ReadStrategy::FullReplay => self.shared.progress[self.pid].load(Ordering::Acquire),
        }
    }

    /// Number of live entries in this process's persistent log.
    pub fn log_len(&self) -> usize {
        self.log.live_len()
    }

    /// Performs an update operation (Listing 3): order, persist, linearize.
    ///
    /// Cost in the paper's model: **exactly one persistent fence** (the log
    /// append's), regardless of how many other processes' operations were helped.
    ///
    /// # Panics
    ///
    /// Panics if the persistent log is full (see [`ProcessHandle::try_update`] for
    /// the non-panicking variant).
    pub fn update(&mut self, op: S::UpdateOp) -> S::Value {
        self.try_update(op).expect("ONLL update failed")
    }

    /// Fallible variant of [`ProcessHandle::update`].
    pub fn try_update(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        let pid = self.pid as u32;
        // Work through a local clone of the shared Arc so references into the trace
        // do not pin `self` immutably across the `&mut self` calls below.
        let shared = self.shared.clone();
        let hooks = shared.hooks.clone();
        hooks.fire(Phase::BeforeOrder, pid);

        // Refuse before ordering anything we could not persist: a poisoned
        // commit path (an earlier window failed its fence even after retries),
        // then reclaim ring slots covered by a newly published checkpoint and
        // check the log can take another entry.
        self.check_commit_poisoned()?;
        self.compact_log_below_watermark();
        if self.log.free_slots() == 0 {
            return Err(OnllError::LogFull);
        }

        // --- Order: fix the linearization order by appending to the trace. ---
        let seq = shared.last_op_seq[self.pid].fetch_add(1, Ordering::AcqRel) + 1;
        let op_id = OpId::new(pid, seq);
        self.last_op_id = Some(op_id);
        let node = shared.trace.insert(Some(Record::new(op_id, op)));
        hooks.fire(Phase::AfterOrder, pid);

        // --- Persist: append the fuzzy window (own op + unpersisted predecessors)
        //     to the private persistent log. One persistent fence. ---
        self.persist_fuzzy_window_with_retry(node)?;

        // --- Linearize: make the operation visible to readers. ---
        hooks.fire(Phase::BeforeLinearize, pid);
        shared.trace.set_available(node);
        hooks.fire(Phase::AfterLinearize, pid);

        // Return value: computed on the object state immediately after this update,
        // according to the order fixed in the order stage.
        let value = self.value_after(node);
        self.publish_progress();
        hooks.fire(Phase::BeforeResponse, pid);
        Ok(value)
    }

    /// Persists a *group* of update operations with **one** persistent fence
    /// (fence-amortized group persist, the batching layer under `onll-shard`).
    ///
    /// All operations are ordered consecutively-as-a-unit is *not* guaranteed —
    /// other processes' operations may interleave between them in the
    /// linearization order — but they are persisted together: a single log entry
    /// whose fuzzy window covers the whole group plus any unpersisted
    /// predecessors, followed by a single linearization sweep. Return values are
    /// computed per operation on the state immediately after it, exactly as for
    /// individual updates.
    ///
    /// Durability is all-or-nothing at the group's single fence: a crash before
    /// it may lose the whole group (each operation individually reports as
    /// not-linearized via detectable execution); a crash after it loses nothing.
    ///
    /// Cost: **one persistent fence for the whole group**, i.e. `1/len` fences
    /// per update — the Theorem 5.1 per-update bound of one fence is preserved
    /// (and beaten) as long as `len <= OnllConfig::max_group_ops`.
    pub fn try_update_group(
        &mut self,
        ops: impl IntoIterator<Item = S::UpdateOp>,
    ) -> Result<Vec<S::Value>, OnllError> {
        let pid = self.pid as u32;
        let ops: Vec<S::UpdateOp> = ops.into_iter().collect();
        // Validate the size before drawing identities, so an oversized group
        // leaves no gap in this slot's sequence numbers.
        let max = self.shared.config.max_group_ops;
        if ops.len() > max {
            return Err(OnllError::GroupTooLarge {
                len: ops.len(),
                max,
            });
        }
        let records: Vec<Record<S::UpdateOp>> = ops
            .into_iter()
            .map(|op| {
                let seq = self.shared.last_op_seq[self.pid].fetch_add(1, Ordering::AcqRel) + 1;
                Record::new(OpId::new(pid, seq), op)
            })
            .collect();
        let replies = self.commit_batch(records)?;
        // Only a committed group moves last_op_id: after e.g. LogFull it must
        // keep naming the last operation that was actually ordered, so the
        // post-crash detectable-execution idiom (last_op_id + was_linearized)
        // stays truthful. (A failed group does burn the drawn sequence
        // numbers — identities stay unique, gaps are harmless.)
        if let Some((op_id, _)) = replies.last() {
            self.last_op_id = Some(*op_id);
        }
        Ok(replies.into_iter().map(|(_, value)| value).collect())
    }

    /// Orders, persists and linearizes a batch of *pre-identified* operations
    /// as one unit: one log entry, **one persistent fence**, one linearization
    /// sweep. Returns `(identity, value)` per operation, values computed on
    /// the state immediately after each operation in linearization order.
    ///
    /// This is the single commit path behind [`ProcessHandle::try_update_group`]
    /// (identities drawn from this handle's process slot) and the combiner of
    /// [`crate::DurableService`] (identities pre-assigned by the submitting
    /// clients, from *their* claimed slots) — there is deliberately no second
    /// persist code path to keep correct: everything flows through
    /// `persist_fuzzy_window`.
    ///
    /// Fails **before ordering anything** (group too large, log full, commit
    /// path poisoned), so a failed batch leaves no trace of itself and the
    /// caller can retry — except when the persist itself fails after
    /// exhausting `OnllConfig::persist_retries`, which poisons the commit
    /// path so the orphaned window can never be linearized past (see
    /// [`ProcessHandle::persist_fuzzy_window_with_retry`]).
    pub(crate) fn commit_batch(
        &mut self,
        records: Vec<Record<S::UpdateOp>>,
    ) -> Result<Vec<(OpId, S::Value)>, OnllError> {
        if records.is_empty() {
            return Ok(Vec::new());
        }
        let max = self.shared.config.max_group_ops;
        if records.len() > max {
            return Err(OnllError::GroupTooLarge {
                len: records.len(),
                max,
            });
        }
        let pid = self.pid as u32;
        let shared = self.shared.clone();
        let hooks = shared.hooks.clone();
        hooks.fire(Phase::BeforeOrder, pid);

        // The whole batch lands in one log entry; refuse before ordering
        // anything we could not persist (poisoned commit path, full log —
        // see `try_update` for the same gate), reclaiming checkpoint-covered
        // slots first.
        self.check_commit_poisoned()?;
        self.compact_log_below_watermark();
        if self.log.free_slots() == 0 {
            return Err(OnllError::LogFull);
        }

        // --- Order: append every operation of the batch to the trace. ---
        let nodes: Vec<_> = records
            .into_iter()
            .map(|record| {
                let op_id = record.op_id;
                let node = shared.trace.insert(Some(record));
                (op_id, node)
            })
            .collect();
        hooks.fire(Phase::AfterOrder, pid);

        // --- Persist: one log entry covering the batch's fuzzy window (the whole
        //     batch plus unpersisted predecessors). One persistent fence. ---
        let newest = nodes.last().expect("batch is non-empty").1;
        self.persist_fuzzy_window_with_retry(newest)?;

        // --- Linearize: sweep the batch's available flags oldest to newest, so
        //     linearized prefixes are always contiguous. ---
        hooks.fire(Phase::BeforeLinearize, pid);
        for (_, node) in &nodes {
            shared.trace.set_available(node);
        }
        hooks.fire(Phase::AfterLinearize, pid);

        // Return values: one per operation, computed on the state right after it.
        let replies = nodes
            .iter()
            .map(|(op_id, node)| (*op_id, self.value_after(node)))
            .collect();
        self.publish_progress();
        hooks.fire(Phase::BeforeResponse, pid);
        Ok(replies)
    }

    /// Panicking variant of [`ProcessHandle::try_update_group`].
    pub fn update_group(&mut self, ops: impl IntoIterator<Item = S::UpdateOp>) -> Vec<S::Value> {
        self.try_update_group(ops)
            .expect("ONLL group update failed")
    }

    /// Persists the fuzzy window ending at `newest` — the caller's newly
    /// ordered operation(s) plus consecutively older not-yet-linearized
    /// operations (Listing 2, `getFuzzyOps`) — as **one** log entry with
    /// **one** persistent fence. This is the persist stage shared by
    /// [`ProcessHandle::try_update`] and [`ProcessHandle::try_update_group`].
    ///
    /// Allocation-free on the steady path: the trace is walked directly (no
    /// collected node list) and each record is encoded straight into the log's
    /// reusable entry buffer, so the entry's occupied bytes — the only bytes
    /// written and flushed — are assembled without any intermediate
    /// `Vec<Vec<u8>>`/`Vec<&[u8]>`.
    /// [`ProcessHandle::persist_fuzzy_window`] with fault absorption: a failed
    /// publish leaves the log's slot and sequence counters unconsumed, so the
    /// append is retried — overwriting exactly the same entry — up to
    /// `OnllConfig::persist_retries` extra times. Transient backend faults
    /// (injected `EIO`s that recover, a device hiccup) therefore cost latency,
    /// not the operation.
    ///
    /// If *every* attempt fails, the commit path poisons itself before
    /// propagating the error. This is a correctness requirement, not a
    /// convenience: the failed window's nodes are already ordered in the
    /// volatile trace but will never become available, so if any later commit
    /// were allowed to linearize past them, replay would apply them — and a
    /// client that was told "error, never executed" (resolve says `Unknown`)
    /// would resubmit under the same identity, double-applying the operation.
    /// With the poison gate no later commit can succeed, the orphaned window
    /// stays forever unobservable, and a restart recovers cleanly from the
    /// logs (the window was never durably appended), after which resubmission
    /// under the same identity is safe again.
    fn persist_fuzzy_window_with_retry(
        &mut self,
        newest: &TraceNode<Option<Record<S::UpdateOp>>>,
    ) -> Result<(), OnllError> {
        let mut attempts_left = self.shared.config.persist_retries;
        loop {
            match self.persist_fuzzy_window(newest) {
                Ok(()) => return Ok(()),
                Err(_) if attempts_left > 0 => attempts_left -= 1,
                Err(e) => {
                    self.shared.commit_poisoned.store(true, Ordering::Release);
                    return Err(e);
                }
            }
        }
    }

    /// Fast-fail gate for the commit paths: errors if an earlier persist
    /// failure poisoned the object (see
    /// [`ProcessHandle::persist_fuzzy_window_with_retry`]).
    fn check_commit_poisoned(&self) -> Result<(), OnllError> {
        if self.shared.commit_poisoned.load(Ordering::Acquire) {
            return Err(OnllError::Nvm(
                "persist path poisoned: an earlier log-append fence failed after retries; \
                 updates on this object are rejected until restart (reads and resolve \
                 still serve the linearized prefix)"
                    .into(),
            ));
        }
        Ok(())
    }

    fn persist_fuzzy_window(
        &mut self,
        newest: &TraceNode<Option<Record<S::UpdateOp>>>,
    ) -> Result<(), OnllError> {
        let pid = self.pid as u32;
        debug_assert!(!newest.is_available(), "own operation not yet linearized");
        self.shared.hooks.fire(Phase::BeforePersist, pid);
        let mut writer = self.log.begin(newest.idx()).map_err(log_error)?;
        let mut cur = newest;
        loop {
            let record = cur
                .op()
                .as_ref()
                .expect("fuzzy-window nodes always carry an operation record");
            writer
                .push_op_with(|buf| encode_record_into(record, buf))
                .map_err(log_error)?;
            match cur.prev() {
                Some(prev) if !prev.is_available() => cur = prev,
                _ => break,
            }
        }
        debug_assert!(
            writer.num_ops() <= self.shared.config.ops_per_entry(),
            "fuzzy window exceeded the group-extended bound (Proposition 5.2 generalization violated)"
        );
        writer.commit().map_err(log_error)?;
        self.shared.log_live_entries[self.pid].store(self.log.live_len() as u64, Ordering::Release);
        self.shared.hooks.fire(Phase::AfterPersist, pid);
        Ok(())
    }

    /// Performs a read-only operation (Listing 4).
    ///
    /// Cost in the paper's model: **zero persistent fences** — the read touches
    /// neither NVM nor shared mutable memory; it only traverses the transient trace
    /// (or, with local views, replays the missing suffix into process-private
    /// state).
    pub fn read(&mut self, op: &S::ReadOp) -> S::Value {
        let pid = self.pid as u32;
        let hooks = self.shared.hooks.clone();
        hooks.fire(Phase::BeforeReadSnapshot, pid);
        let node = self.shared.trace.latest_available();
        let value = match &mut self.strategy {
            ReadStrategy::LocalView(view) => {
                view.advance_to(&self.shared.trace, node);
                view.state().read(op)
            }
            ReadStrategy::FullReplay => {
                let state = self.replay_to(node);
                state.read(op)
            }
        };
        self.publish_progress();
        hooks.fire(Phase::BeforeReadResponse, pid);
        value
    }

    /// Computes the return value of the update recorded at `node`.
    fn value_after(&mut self, node: &TraceNode<Option<Record<S::UpdateOp>>>) -> S::Value {
        match &mut self.strategy {
            ReadStrategy::LocalView(view) => view
                .advance_to(&self.shared.trace, node)
                .expect("the handle's own new operation is always ahead of its view"),
            ReadStrategy::FullReplay => {
                let mut state = (self.shared.base_state)();
                let mut last = None;
                for n in self
                    .shared
                    .trace
                    .nodes_between(self.shared.base_index, node)
                {
                    if let Some(record) = n.op() {
                        last = Some(state.apply(&record.op));
                    }
                }
                last.expect("at least this handle's own operation is replayed")
            }
        }
    }

    /// Replays the trace prefix ending at `node` from the base state.
    fn replay_to(&self, node: &TraceNode<Option<Record<S::UpdateOp>>>) -> S {
        let mut state = (self.shared.base_state)();
        for n in self
            .shared
            .trace
            .nodes_between(self.shared.base_index, node)
        {
            if let Some(record) = n.op() {
                state.apply(&record.op);
            }
        }
        state
    }

    fn publish_progress(&self) {
        if let ReadStrategy::LocalView(view) = &self.strategy {
            self.shared.progress[self.pid].store(view.idx(), Ordering::Release);
        }
    }

    /// Advances this handle's local view to the latest linearized operation
    /// without performing a read operation, and returns the view's new execution
    /// index. Background checkpointers use this to materialize fresh state to
    /// snapshot; for full-replay handles it only publishes progress.
    pub fn sync(&mut self) -> u64 {
        let node = self.shared.trace.latest_available();
        if let ReadStrategy::LocalView(view) = &mut self.strategy {
            view.advance_to(&self.shared.trace, node);
        }
        self.publish_progress();
        self.view_index()
    }

    /// Materializes an owned copy of the state at the latest linearized
    /// operation plus that operation's execution index — the raw material for
    /// a published [`crate::ReadSnapshot`].
    ///
    /// With local views (the default) this is a clone of the already-advanced
    /// view state: `O(|state|)`, no trace traversal beyond the newest suffix.
    /// Full-replay handles (`use_local_views = false`) fall back to replaying
    /// the whole retained trace prefix — correct, but `O(history)`; snapshot
    /// publication is best paired with local views.
    pub(crate) fn snapshot_state(&mut self) -> (S, u64)
    where
        S: Clone,
    {
        let node = self.shared.trace.latest_available();
        match &mut self.strategy {
            ReadStrategy::LocalView(view) => {
                view.advance_to(&self.shared.trace, node);
                (view.state().clone(), view.idx())
            }
            ReadStrategy::FullReplay => (self.replay_to(node), node.idx()),
        }
    }

    /// Truncates this handle's own log prefix below the newest *published*
    /// checkpoint watermark (single-writer: each owner compacts only its own
    /// log). Called opportunistically before appends so every process's log
    /// shrinks after any process (or a background checkpointer) publishes.
    ///
    /// Cost: zero fences when the watermark has not advanced or nothing is
    /// droppable; one maintenance fence otherwise (bucketed separately from the
    /// per-update inherent fence).
    fn compact_log_below_watermark(&mut self) {
        let watermark = self.shared.checkpoint_watermark.load(Ordering::Acquire);
        if watermark <= self.truncated_below {
            return;
        }
        self.truncated_below = watermark;
        if self.log.first_live_index().is_some_and(|i| i <= watermark) {
            let _maintenance = self.shared.pool.stats().maintenance_scope();
            // Opportunistic maintenance: a failed truncation fence (crash or
            // poisoned backend) leaves the log merely un-compacted, and the
            // same failure will surface on this update's own publish fence.
            let _ = self.log.truncate_below(watermark);
            self.shared.log_live_entries[self.pid]
                .store(self.log.live_len() as u64, Ordering::Release);
        }
    }
}

impl<S: SnapshotSpec> ProcessHandle<S> {
    /// Persists an epoch-stamped checkpoint of this handle's local view (stage,
    /// then publish), advances the shared checkpoint watermark, truncates this
    /// process's persistent log below it, and reclaims the shared trace prefix
    /// that every registered process has already incorporated into its local
    /// view (Section 8 extension).
    ///
    /// Cost: two persistent fences (checkpoint publish + log-truncation start
    /// mark), both counted in the **maintenance** bucket — explicit maintenance
    /// amortized over the checkpoint interval; the per-update bound of Theorem
    /// 5.1 is unaffected. Other processes' logs are compacted by their owners on
    /// their next update (single-writer logs), one more maintenance fence each.
    ///
    /// Returns the execution index (watermark) the checkpoint covers.
    pub fn checkpoint(&mut self) -> Result<u64, OnllError> {
        if !self.shared.config.checkpointing_enabled() {
            return Err(OnllError::CheckpointingDisabled);
        }
        let ReadStrategy::LocalView(view) = &self.strategy else {
            return Err(OnllError::CheckpointingDisabled);
        };
        let idx = view.idx();
        let mut bytes = Vec::new();
        view.state().encode_state(&mut bytes);
        // Per-process sequence floors the checkpoint will carry: the sequence
        // highs this view actually applied, joined with the floors of the
        // newest published checkpoint (whose covered records a late-seeded
        // view never replays). Exact by construction — no in-flight identity
        // is ever folded in, so `resolve` never misreports a live operation
        // as Truncated.
        let mut floors: Vec<u64> = self
            .shared
            .resolve_floor
            .iter()
            .map(|f| f.load(Ordering::Acquire))
            .collect();
        for (pid, high) in view.seq_high().iter().enumerate() {
            if pid < floors.len() {
                floors[pid] = floors[pid].max(*high);
            }
        }
        let pid = self.pid as u32;
        let hooks = self.shared.hooks.clone();
        let _maintenance = self.shared.pool.stats().maintenance_scope();

        // Stage: floors and state bytes into the inactive slot (flushed, not
        // yet valid).
        hooks.fire(Phase::BeforeCheckpointStage, pid);
        self.checkpointer
            .stage(idx, &floors, &bytes)
            .map_err(OnllError::Nvm)?;
        hooks.fire(Phase::AfterCheckpointStage, pid);

        // Publish: one fence makes the checksummed slot durable and valid. A
        // failed fence means the slot header may not be durable — the
        // checkpoint is not published and the watermark must not advance.
        hooks.fire(Phase::BeforeCheckpointPublish, pid);
        self.checkpointer.publish().map_err(OnllError::Nvm)?;
        hooks.fire(Phase::AfterCheckpointPublish, pid);
        self.shared
            .checkpoint_watermark
            .fetch_max(idx, Ordering::AcqRel);
        for (p, floor) in floors.iter().enumerate() {
            self.shared.resolve_floor[p].fetch_max(*floor, Ordering::AcqRel);
        }
        // The compacted prefix is covered by the checkpoint: identities of
        // recovered operations at or below the watermark are no longer
        // individually answerable (documented contract), so drop them instead
        // of retaining one entry per recovered op for the process lifetime.
        self.shared.prune_recovered_below(idx);

        // Truncate-after-publish: all of this process's log entries carry
        // execution indices <= idx (its own updates are already reflected in its
        // local view), so the whole live window is redundant with the published
        // checkpoint. Crash-safe in every interleaving — see the truncation
        // safety argument in the `checkpoint` module.
        hooks.fire(Phase::BeforeLogTruncate, pid);
        let live_before = self.log.live_bytes();
        self.log.truncate_below(idx).map_err(log_error)?;
        self.shared.log_live_entries[self.pid].store(self.log.live_len() as u64, Ordering::Release);
        self.truncated_below = self.truncated_below.max(idx);
        hooks.fire(Phase::AfterLogTruncate, pid);
        let telemetry = self.shared.pool.telemetry();
        if telemetry.is_enabled() {
            telemetry
                .counter("ckpt.truncated_bytes")
                .add(live_before.saturating_sub(self.log.live_bytes()));
            telemetry.counter("ckpt.checkpoints").incr();
        }

        // Publish the snapshot as the seed for views registered (and anonymous
        // replays performed) after reclamation — they must not start from the
        // base state once the prefix below the watermark is unlinked.
        {
            let mut snapshot = self.shared.snapshot.write();
            if snapshot.as_ref().is_none_or(|s| s.idx < idx) {
                let state_bytes = bytes.clone();
                *snapshot = Some(crate::construction::SnapshotSeed {
                    idx,
                    make: Arc::new(move || {
                        S::decode_state(&state_bytes)
                            .expect("a published checkpoint's state always decodes")
                    }),
                });
            }
        }

        // Reclaim the shared trace prefix below both the slowest registered
        // process *and* the stored snapshot (fresh views seed from the latter,
        // so nodes above it must stay linked).
        let snapshot_floor = self
            .shared
            .snapshot
            .read()
            .as_ref()
            .map_or(self.shared.base_index, |s| s.idx);
        if let Some(min) = self.shared.min_progress() {
            let reclaim_to = min.min(snapshot_floor);
            let floor = self.shared.trace.reclaim_floor();
            if reclaim_to > floor && reclaim_to - floor >= self.shared.config.reclaim_batch {
                self.shared.trace.reclaim_prefix(reclaim_to);
            }
        }
        Ok(idx)
    }

    /// True if a configured checkpoint trigger currently fires: the ops-count
    /// trigger (at least `checkpoint_interval` linearized updates past the
    /// newest published watermark, as seen by this handle's view), the
    /// log-bytes trigger (**this handle's own** log at or above
    /// `checkpoint_log_bytes`), or the capacity backstop (this handle's log
    /// three-quarters full in *entries*). The backstop exists because
    /// `PersistentLog::live_bytes` counts true variable-length occupancy — a
    /// byte threshold sized against the worst-case slot stride might otherwise
    /// never fire, letting the ring fill and updates fail with `LogFull`
    /// while checkpointing is enabled and would have compacted it.
    ///
    /// The log-bytes trigger is deliberately per-owner: a checkpoint truncates
    /// only the checkpointing process's log immediately (logs are
    /// single-writer), so measuring another process's log would keep the
    /// trigger armed on state this handle cannot compact — checkpointing once
    /// per update without ever clearing the condition. Own-log measurement is
    /// self-correcting: the checkpoint that fires empties the log that fired
    /// it.
    pub fn should_checkpoint(&self) -> bool {
        let cfg = &self.shared.config;
        if !matches!(self.strategy, ReadStrategy::LocalView(_)) {
            return false;
        }
        let watermark = self.shared.checkpoint_watermark.load(Ordering::Acquire);
        if let Some(interval) = cfg.checkpoint_interval {
            if self.view_index().saturating_sub(watermark) >= interval {
                return true;
            }
        }
        if let Some(limit) = cfg.checkpoint_log_bytes {
            if self.log.live_bytes() >= limit {
                return true;
            }
        }
        // Capacity backstop: never let the ring run full while checkpointing
        // is enabled, whatever the byte threshold was sized against.
        if cfg.checkpointing_enabled() && self.log.free_slots() <= cfg.log_capacity_entries / 4 {
            return true;
        }
        false
    }

    /// Checkpoints if a trigger fires (see [`ProcessHandle::should_checkpoint`]);
    /// returns the covered watermark when a checkpoint was written.
    pub fn maybe_checkpoint(&mut self) -> Result<Option<u64>, OnllError> {
        if self.should_checkpoint() {
            self.checkpoint().map(Some)
        } else {
            Ok(None)
        }
    }

    /// [`ProcessHandle::try_update`] followed by an automatic
    /// [`ProcessHandle::maybe_checkpoint`].
    pub fn update_with_checkpoint(&mut self, op: S::UpdateOp) -> Result<S::Value, OnllError> {
        let value = self.try_update(op)?;
        self.maybe_checkpoint()?;
        Ok(value)
    }
}

fn log_error(e: LogError) -> OnllError {
    match e {
        LogError::Full => OnllError::LogFull,
        LogError::EntryTooLarge(msg) => OnllError::Nvm(msg),
        // A publish fence that failed (backend poisoned by EIO) or was frozen
        // by a crash mid-update: the operation must not be acknowledged.
        LogError::Backend(e) => OnllError::Nvm(e.to_string()),
    }
}

impl<S: SequentialSpec> Drop for ProcessHandle<S> {
    fn drop(&mut self) {
        // Lower the slot's progress back to the conservative floor *before*
        // releasing the claim: the next claimer's fresh view seeds from the
        // newest snapshot, and trace reclamation must never observe a claimed
        // slot still carrying this handle's (higher) progress while the new
        // owner is still building its view. The release of `claimed`
        // synchronizes with the claimer's acquire CAS, making the reset
        // visible to it.
        self.shared.progress[self.pid].store(self.shared.base_index, Ordering::Release);
        // Release the slot so the process identifier can be claimed again (e.g.
        // after recovery or when worker threads are re-spawned).
        self.shared.claimed[self.pid].store(false, Ordering::Release);
    }
}

impl<S: SequentialSpec> std::fmt::Debug for ProcessHandle<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessHandle")
            .field("pid", &self.pid)
            .field("view_index", &self.view_index())
            .field("log_len", &self.log_len())
            .finish()
    }
}
