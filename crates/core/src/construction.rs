//! The ONLL universal construction: shared object state, creation and recovery.
//!
//! [`Durable<S>`] turns a deterministic sequential specification `S` into a
//! lock-free, durably linearizable (indeed detectably executable) object:
//!
//! * [`Durable::create`] formats a fresh object inside an [`NvmPool`]: per-process
//!   persistent logs, per-process checkpoint areas and a metadata block registered
//!   under a named root so recovery can find everything again.
//! * [`Durable::register`] / [`Durable::handle_for`] hand out per-process
//!   [`ProcessHandle`](crate::ProcessHandle)s, which perform the actual `update`
//!   and `read` operations (Listings 3 and 4).
//! * [`Durable::recover`] (and [`Durable::recover_with_checkpoints`] for
//!   checkpointable specs) rebuild the transient execution trace from the
//!   persistent logs after a crash (Listing 5) and report which operations were
//!   linearized before the crash (detectable execution).

use crate::checkpoint;
use crate::config::OnllConfig;
use crate::error::OnllError;
use crate::hooks::Hooks;
use crate::op_id::{decode_record, record_slot_size, OpId, Record, ResolveOutcome};
use crate::spec::{SequentialSpec, SnapshotSpec};
use exec_trace::{check_fuzzy_invariant, ExecutionTrace};
use nvm_sim::{FenceStats, NvmPool, PAddr, RootId};
use parking_lot::{Mutex, RwLock};
use persist_log::{reconstruct_history_from, LogConfig, PersistentLog};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const META_MAGIC: u64 = 0x4F4E4C_4C4D455441; // "ONLL" "META"

/// Outcome of a recovery: what was found in NVM and reinstated.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Execution index of the checkpoint the recovery started from (0 if none).
    pub checkpoint_index: u64,
    /// Epoch of the checkpoint the recovery started from (0 if none). Epochs are
    /// per checkpoint-area counters; sharded recovery surfaces them per shard so
    /// operators can see how far each shard's compaction had progressed.
    pub checkpoint_epoch: u64,
    /// Execution index of the last operation recovered from the logs (equals
    /// `checkpoint_index` if the logs held nothing newer).
    pub durable_index: u64,
    /// Identities of the operations recovered from the logs, in linearization
    /// order (operations covered by the checkpoint are not listed individually).
    pub recovered_ops: Vec<(u64, OpId)>,
}

impl RecoveryReport {
    /// Number of operations replayed from the logs.
    pub fn replayed_ops(&self) -> usize {
        self.recovered_ops.len()
    }
}

/// Seed for fresh local views and anonymous replays: the newest *published*
/// checkpoint's watermark and a factory decoding its state. Without it, a
/// handle registered after trace-prefix reclamation would start from the base
/// state and silently miss the reclaimed history.
pub(crate) struct SnapshotSeed<S> {
    pub(crate) idx: u64,
    pub(crate) make: Arc<dyn Fn() -> S + Send + Sync>,
}

pub(crate) struct Shared<S: SequentialSpec> {
    pub(crate) trace: ExecutionTrace<Option<Record<S::UpdateOp>>>,
    pub(crate) pool: NvmPool,
    pub(crate) config: OnllConfig,
    pub(crate) hooks: Hooks,
    pub(crate) log_cfg: LogConfig,
    pub(crate) log_bases: Vec<PAddr>,
    pub(crate) cp_bases: Vec<PAddr>,
    pub(crate) claimed: Vec<AtomicBool>,
    /// Per-process local-view progress (execution index), used to decide how far
    /// the trace prefix may be reclaimed.
    pub(crate) progress: Vec<AtomicU64>,
    /// Last operation sequence number used per process slot. Kept in the shared
    /// state (not the handle) so operation identities stay unique when a slot is
    /// released and re-claimed, and seeded from the logs on recovery so post-crash
    /// operations never collide with pre-crash ones.
    pub(crate) last_op_seq: Vec<AtomicU64>,
    /// Execution index of the newest *published* checkpoint. Updated by whichever
    /// handle publishes; every log owner truncates its own log prefix below this
    /// watermark opportunistically (single-writer logs — owners never truncate
    /// each other's logs).
    pub(crate) checkpoint_watermark: AtomicU64,
    /// Per-process sequence floors of the newest *published* checkpoint: the
    /// highest operation sequence number per process slot whose effect is
    /// compacted into it. An identity absent from the trace with a sequence
    /// number at or below its slot's floor is [`ResolveOutcome::Truncated`]
    /// (no longer individually answerable), not merely unexecuted. Seeded from
    /// the chosen checkpoint at recovery, advanced (`fetch_max`) at each
    /// publish.
    pub(crate) resolve_floor: Vec<AtomicU64>,
    /// Live-entry count of each process's persistent log, maintained by the log's
    /// owner on append/truncate. Drives the log-bytes checkpoint trigger without
    /// scanning other processes' logs.
    pub(crate) log_live_entries: Vec<AtomicU64>,
    /// Execution index represented by the trace's sentinel (checkpoint index).
    pub(crate) base_index: u64,
    /// Builds the state corresponding to the sentinel (INITIALIZE or the decoded
    /// checkpoint the recovery started from).
    pub(crate) base_state: Box<dyn Fn() -> S + Send + Sync>,
    /// Newest published checkpoint of this incarnation, seeding views created
    /// after trace reclamation. Reclamation never passes the stored `idx`, so a
    /// seeded view's missing suffix is always still linked.
    pub(crate) snapshot: RwLock<Option<SnapshotSeed<S>>>,
    /// Operations found in the logs by the most recent recovery, keyed by
    /// identity with their execution index (for detectable-execution queries).
    /// Pruned below the checkpoint watermark whenever a checkpoint publishes,
    /// so a long-running service does not retain one entry per recovered
    /// operation forever (operations below the watermark are no longer
    /// individually identifiable anyway — the documented checkpoint contract).
    pub(crate) recovered: Mutex<HashMap<OpId, u64>>,
    /// Set when a fuzzy-window persist failed even after
    /// `OnllConfig::persist_retries` attempts. The failed window's nodes are
    /// ordered in the volatile trace but will never be linearized; letting any
    /// *later* commit linearize past them would make them visible to replay
    /// (double-apply on resubmission). Once set, every subsequent update is
    /// rejected *before* ordering anything; reads and `resolve` still serve
    /// the linearized prefix, and a restart recovers cleanly from the logs
    /// (the poisoned window was never durably appended).
    pub(crate) commit_poisoned: AtomicBool,
}

impl<S: SequentialSpec> Shared<S> {
    /// Minimum local-view progress over all currently claimed handles. Returns
    /// `None` if no handle is claimed.
    pub(crate) fn min_progress(&self) -> Option<u64> {
        let mut min = None;
        for (claimed, progress) in self.claimed.iter().zip(self.progress.iter()) {
            if claimed.load(Ordering::Acquire) {
                let p = progress.load(Ordering::Acquire);
                min = Some(min.map_or(p, |m: u64| m.min(p)));
            }
        }
        min
    }

    /// Drops recovered-operation identities at execution indices at or below
    /// `watermark`. Called when a checkpoint publishes: the covered prefix is
    /// compacted out of the logs, and the matching identity entries would
    /// otherwise accumulate for the life of the process.
    pub(crate) fn prune_recovered_below(&self, watermark: u64) {
        self.recovered.lock().retain(|_, idx| *idx > watermark);
    }

    /// Claims the lowest free process slot, returning its identifier. The
    /// caller owns the slot until it stores `false` back into
    /// `claimed[pid]` (after lowering `progress[pid]` to the base floor).
    pub(crate) fn claim_free_slot(&self) -> Option<usize> {
        (0..self.config.max_processes).find(|&pid| self.try_claim(pid))
    }

    /// Claims a slot by CAS. Progress of an unclaimed slot is always at the
    /// conservative `base_index` floor (initialized there; lowered again by
    /// the previous owner before it released the claim), so a new owner's
    /// fresh view can never be outrun by trace reclamation between this claim
    /// and the owner publishing its own progress. Only a slot's owner ever
    /// writes its progress.
    pub(crate) fn try_claim(&self, pid: usize) -> bool {
        self.claimed[pid]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Seed for a fresh view or anonymous replay: the newest published snapshot
    /// if any, else the recovery/creation base. Validated against the reclaim
    /// floor and retried, because a concurrent checkpoint may publish a newer
    /// snapshot and reclaim the trace past a just-read older seed.
    pub(crate) fn view_seed(&self) -> (u64, S) {
        loop {
            let (idx, state) = match self.snapshot.read().as_ref() {
                Some(seed) => (seed.idx, (seed.make)()),
                None => (self.base_index, (self.base_state)()),
            };
            // Reclamation is clamped at the stored snapshot index, so once the
            // floor is visible the snapshot covering it is too — the retry
            // always converges.
            if self.trace.reclaim_floor() <= idx + 1 {
                return (idx, state);
            }
        }
    }
}

/// A durable, lock-free object produced by the ONLL universal construction.
///
/// Cloning is cheap (the object is an `Arc` internally); all clones refer to the
/// same object. Per-process operation is performed through
/// [`ProcessHandle`](crate::ProcessHandle)s obtained from [`Durable::register`].
pub struct Durable<S: SequentialSpec> {
    pub(crate) shared: Arc<Shared<S>>,
}

impl<S: SequentialSpec> Clone for Durable<S> {
    fn clone(&self) -> Self {
        Durable {
            shared: self.shared.clone(),
        }
    }
}

/// Decoded metadata block: `(max_processes, log geometry, checkpoint slot
/// bytes, per-process log bases, per-process checkpoint bases)`.
type DecodedMeta = (usize, LogConfig, usize, Vec<PAddr>, Vec<PAddr>);

fn meta_root(name: &str) -> RootId {
    RootId::from_name(&format!("onll:{name}:meta"))
}

fn meta_size(max_processes: usize) -> usize {
    32 + 16 * max_processes
}

impl<S: SequentialSpec> Durable<S> {
    fn log_config(config: &OnllConfig) -> LogConfig {
        // Entries hold the worst-case fuzzy window: every process with a full
        // group in flight (max_processes * max_group_ops operations).
        LogConfig::for_processes(config.ops_per_entry())
            .op_slot_size(record_slot_size::<S::UpdateOp>())
            .capacity_entries(config.log_capacity_entries)
    }

    /// Formats a fresh object in `pool` under `config.name` and returns it.
    ///
    /// Fails if an object with the same name already exists in the pool (use
    /// [`Durable::recover`] for that) or if the pool is too small.
    pub fn create(pool: NvmPool, config: OnllConfig) -> Result<Self, OnllError> {
        Self::create_with_hooks(pool, config, Hooks::none())
    }

    /// Provisions a pool on the backend selected by `config.backend`
    /// (`OnllConfig::backend`) and formats a fresh object in it. For the file
    /// backend the pool lives at `dir/<config.name>.pmem`; use
    /// [`Durable::recover_in`] (or `recover_in_with_checkpoints`) to reopen it
    /// after a process restart.
    pub fn create_in(pmem: nvm_sim::PmemConfig, config: OnllConfig) -> Result<Self, OnllError> {
        let pool = NvmPool::provision(&config.backend, pmem, &config.name)?;
        Self::create(pool, config)
    }

    /// Reopens the pool previously provisioned by [`Durable::create_in`] under
    /// the same `config.backend`/`config.name` and recovers the object from it
    /// — the cross-process recovery entry point (checkpoint-free objects; see
    /// [`Durable::recover`] for the failure modes).
    pub fn recover_in(
        pmem: nvm_sim::PmemConfig,
        config: OnllConfig,
    ) -> Result<(Self, RecoveryReport), OnllError> {
        let pool = NvmPool::reopen(&config.backend, pmem, &config.name)?;
        Self::recover(pool, config)
    }

    /// Like [`Durable::create`], with execution hooks installed (used by tests, the
    /// crash harness and the Figure-1 / lower-bound reproductions).
    pub fn create_with_hooks(
        pool: NvmPool,
        config: OnllConfig,
        hooks: Hooks,
    ) -> Result<Self, OnllError> {
        if config.checkpointing_enabled() && !config.use_local_views {
            return Err(OnllError::MetadataMismatch(
                "checkpointing requires local views to be enabled".into(),
            ));
        }
        // With telemetry enabled on the pool, phase-span hooks ride along with
        // whatever the caller installed; with it disabled this is the identity.
        let hooks = crate::phase_spans::install(pool.telemetry(), hooks);
        let root = meta_root(&config.name);
        if pool.get_root(root).is_some() {
            return Err(OnllError::MetadataMismatch(format!(
                "an object named '{}' already exists in this pool; use recover()",
                config.name
            )));
        }
        let log_cfg = Self::log_config(&config);
        let mut log_bases = Vec::with_capacity(config.max_processes);
        let mut cp_bases = Vec::with_capacity(config.max_processes);
        for _ in 0..config.max_processes {
            let log_base = pool.alloc(PersistentLog::region_size(&log_cfg))?;
            // Format the log header now so that recovery finds a consistent header
            // even for processes that never perform an update.
            drop(PersistentLog::create(
                pool.clone(),
                log_cfg.clone(),
                log_base,
            ));
            let cp_base = pool.alloc(checkpoint::area_size(
                config.checkpoint_slot_bytes,
                config.max_processes,
            ))?;
            log_bases.push(log_base);
            cp_bases.push(cp_base);
        }
        // Persist the metadata block and register it under the named root.
        let meta_addr = pool.alloc(meta_size(config.max_processes))?;
        let mut meta = vec![0u8; meta_size(config.max_processes)];
        meta[0..8].copy_from_slice(&META_MAGIC.to_le_bytes());
        meta[8..12].copy_from_slice(&(config.max_processes as u32).to_le_bytes());
        meta[12..16].copy_from_slice(&(config.log_capacity_entries as u32).to_le_bytes());
        meta[16..20].copy_from_slice(&(log_cfg.op_slot_size as u32).to_le_bytes());
        meta[20..24].copy_from_slice(&(config.checkpoint_slot_bytes as u32).to_le_bytes());
        // Log-entry width (operations per entry). Recovery must reconstruct the
        // exact log geometry, which depends on max_group_ops, not just
        // max_processes. Zero (pre-group-persist metadata) means max_processes.
        meta[24..28].copy_from_slice(&(log_cfg.max_ops_per_entry as u32).to_le_bytes());
        for i in 0..config.max_processes {
            let off = 32 + i * 16;
            meta[off..off + 8].copy_from_slice(&log_bases[i].to_le_bytes());
            meta[off + 8..off + 16].copy_from_slice(&cp_bases[i].to_le_bytes());
        }
        pool.persist(meta_addr, &meta)?;
        pool.set_root(root, meta_addr, meta.len() as u64)?;

        let shared = Shared {
            trace: ExecutionTrace::new(None),
            pool,
            claimed: (0..config.max_processes)
                .map(|_| AtomicBool::new(false))
                .collect(),
            progress: (0..config.max_processes)
                .map(|_| AtomicU64::new(0))
                .collect(),
            last_op_seq: (0..config.max_processes)
                .map(|_| AtomicU64::new(0))
                .collect(),
            checkpoint_watermark: AtomicU64::new(0),
            resolve_floor: (0..config.max_processes)
                .map(|_| AtomicU64::new(0))
                .collect(),
            log_live_entries: (0..config.max_processes)
                .map(|_| AtomicU64::new(0))
                .collect(),
            base_index: 0,
            base_state: Box::new(S::initialize),
            snapshot: RwLock::new(None),
            recovered: Mutex::new(HashMap::new()),
            commit_poisoned: AtomicBool::new(false),
            hooks,
            log_cfg,
            log_bases,
            cp_bases,
            config,
        };
        Ok(Durable {
            shared: Arc::new(shared),
        })
    }

    fn read_meta(pool: &NvmPool, config: &OnllConfig) -> Result<DecodedMeta, OnllError> {
        let root = meta_root(&config.name);
        let (meta_addr, meta_len) = pool
            .get_root(root)
            .ok_or_else(|| OnllError::MetadataMissing(config.name.clone()))?;
        let meta = pool.read_vec(meta_addr, meta_len as usize);
        if meta.len() < 32 || u64::from_le_bytes(meta[0..8].try_into().unwrap()) != META_MAGIC {
            return Err(OnllError::MetadataMismatch("bad metadata magic".into()));
        }
        let max_processes = u32::from_le_bytes(meta[8..12].try_into().unwrap()) as usize;
        let log_capacity = u32::from_le_bytes(meta[12..16].try_into().unwrap()) as usize;
        let op_slot_size = u32::from_le_bytes(meta[16..20].try_into().unwrap()) as usize;
        let cp_slot_bytes = u32::from_le_bytes(meta[20..24].try_into().unwrap()) as usize;
        let mut ops_per_entry = u32::from_le_bytes(meta[24..28].try_into().unwrap()) as usize;
        if ops_per_entry == 0 {
            ops_per_entry = max_processes; // metadata written before group persist existed
        }
        if ops_per_entry < max_processes {
            return Err(OnllError::MetadataMismatch(format!(
                "log entries hold {ops_per_entry} operations but {max_processes} processes may help"
            )));
        }
        if op_slot_size != record_slot_size::<S::UpdateOp>() {
            return Err(OnllError::MetadataMismatch(format!(
                "operation slot size mismatch: persisted {} vs expected {} — was the object created with a different spec?",
                op_slot_size,
                record_slot_size::<S::UpdateOp>()
            )));
        }
        if meta.len() < 32 + 16 * max_processes {
            return Err(OnllError::MetadataMismatch(
                "truncated metadata block".into(),
            ));
        }
        let mut log_bases = Vec::with_capacity(max_processes);
        let mut cp_bases = Vec::with_capacity(max_processes);
        for i in 0..max_processes {
            let off = 32 + i * 16;
            log_bases.push(u64::from_le_bytes(meta[off..off + 8].try_into().unwrap()));
            cp_bases.push(u64::from_le_bytes(
                meta[off + 8..off + 16].try_into().unwrap(),
            ));
        }
        let log_cfg = LogConfig::for_processes(ops_per_entry)
            .op_slot_size(op_slot_size)
            .capacity_entries(log_capacity);
        Ok((max_processes, log_cfg, cp_slot_bytes, log_bases, cp_bases))
    }

    /// Recovers an object (Listing 5) that does **not** use checkpoints: the
    /// execution trace is rebuilt from the persistent logs alone.
    ///
    /// Returns the recovered object and a [`RecoveryReport`] describing what was
    /// found (the basis of detectable execution). Fails if a checkpoint exists in
    /// the pool — use [`Durable::recover_with_checkpoints`] in that case.
    pub fn recover(pool: NvmPool, config: OnllConfig) -> Result<(Self, RecoveryReport), OnllError> {
        Self::recover_with_hooks(pool, config, Hooks::none())
    }

    /// Like [`Durable::recover`], with execution hooks installed.
    pub fn recover_with_hooks(
        pool: NvmPool,
        config: OnllConfig,
        hooks: Hooks,
    ) -> Result<(Self, RecoveryReport), OnllError> {
        let (max_processes, log_cfg, cp_slot_bytes, log_bases, cp_bases) =
            Self::read_meta(&pool, &config)?;
        if checkpoint::read_best(&pool, &cp_bases, cp_slot_bytes, max_processes).is_some() {
            return Err(OnllError::MetadataMismatch(
                "a checkpoint exists; recover_with_checkpoints must be used".into(),
            ));
        }
        Self::finish_recovery(
            pool,
            config,
            hooks,
            max_processes,
            log_cfg,
            cp_slot_bytes,
            log_bases,
            cp_bases,
            0,
            0,
            vec![0; max_processes],
            Box::new(S::initialize),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_recovery(
        pool: NvmPool,
        mut config: OnllConfig,
        hooks: Hooks,
        max_processes: usize,
        log_cfg: LogConfig,
        cp_slot_bytes: usize,
        log_bases: Vec<PAddr>,
        cp_bases: Vec<PAddr>,
        base_index: u64,
        base_epoch: u64,
        base_floors: Vec<u64>,
        base_state: Box<dyn Fn() -> S + Send + Sync>,
    ) -> Result<(Self, RecoveryReport), OnllError> {
        let hooks = crate::phase_spans::install(pool.telemetry(), hooks);
        config.max_processes = max_processes;
        config.log_capacity_entries = log_cfg.capacity_entries;
        config.checkpoint_slot_bytes = cp_slot_bytes;
        config.max_group_ops = (log_cfg.max_ops_per_entry / max_processes).max(1);

        // Gather every process's valid log entries.
        let mut per_process_entries = Vec::with_capacity(max_processes);
        let mut per_process_live = Vec::with_capacity(max_processes);
        for base in &log_bases {
            let (log, entries) = PersistentLog::open(pool.clone(), log_cfg.clone(), *base);
            per_process_live.push(log.live_len() as u64);
            per_process_entries.push(entries);
        }
        // Reconstruct the durable history above the checkpoint (Listing 5).
        let recovered_raw = reconstruct_history_from(&per_process_entries, base_index + 1);

        let trace: ExecutionTrace<Option<Record<S::UpdateOp>>> =
            ExecutionTrace::with_base(None, base_index);
        let mut recovered_ops = Vec::with_capacity(recovered_raw.len());
        let mut recovered_set = HashMap::with_capacity(recovered_raw.len());
        for raw in &recovered_raw {
            let record: Record<S::UpdateOp> =
                decode_record(&raw.encoded_op).ok_or(OnllError::CorruptOperation {
                    execution_index: raw.execution_index,
                })?;
            recovered_ops.push((raw.execution_index, record.op_id));
            recovered_set.insert(record.op_id, raw.execution_index);
            let node = trace.insert(Some(record));
            debug_assert_eq!(node.idx(), raw.execution_index);
            trace.set_available(node);
        }
        let durable_index = recovered_ops
            .last()
            .map(|(idx, _)| *idx)
            .unwrap_or(base_index);
        // Seed per-slot operation sequence numbers past everything recovered so new
        // invocations never reuse a pre-crash identity. The checkpoint's sequence
        // floors participate too: an identity compacted below the watermark is no
        // longer in any log, and handing it out again would let a fresh operation
        // collide with a checkpoint-covered one (breaking exactly-once resolve).
        debug_assert_eq!(base_floors.len(), max_processes);
        let mut last_op_seq: Vec<u64> = base_floors.clone();
        for (_, op_id) in &recovered_ops {
            if (op_id.pid as usize) < max_processes {
                last_op_seq[op_id.pid as usize] = last_op_seq[op_id.pid as usize].max(op_id.seq);
            }
        }

        let shared = Shared {
            trace,
            pool,
            claimed: (0..max_processes).map(|_| AtomicBool::new(false)).collect(),
            progress: (0..max_processes)
                .map(|_| AtomicU64::new(base_index))
                .collect(),
            last_op_seq: last_op_seq.into_iter().map(AtomicU64::new).collect(),
            checkpoint_watermark: AtomicU64::new(base_index),
            resolve_floor: base_floors.into_iter().map(AtomicU64::new).collect(),
            log_live_entries: per_process_live.into_iter().map(AtomicU64::new).collect(),
            base_index,
            base_state,
            snapshot: RwLock::new(None),
            recovered: Mutex::new(recovered_set),
            commit_poisoned: AtomicBool::new(false),
            hooks,
            log_cfg,
            log_bases,
            cp_bases,
            config,
        };
        let report = RecoveryReport {
            checkpoint_index: base_index,
            checkpoint_epoch: base_epoch,
            durable_index,
            recovered_ops,
        };
        Ok((
            Durable {
                shared: Arc::new(shared),
            },
            report,
        ))
    }

    /// The object's configuration (possibly adjusted to the persisted metadata
    /// after a recovery).
    pub fn config(&self) -> &OnllConfig {
        &self.shared.config
    }

    /// The pool this object lives in.
    pub fn pool(&self) -> &NvmPool {
        &self.shared.pool
    }

    /// Persistence statistics of the underlying pool.
    pub fn stats(&self) -> &FenceStats {
        self.shared.pool.stats()
    }

    /// Execution index of the youngest *ordered* operation (whether or not it has
    /// been linearized yet).
    pub fn ordered_index(&self) -> u64 {
        self.shared.trace.tail_idx()
    }

    /// Execution index of the youngest *linearized* operation (the latest node with
    /// a set available flag).
    pub fn linearized_index(&self) -> u64 {
        self.shared.trace.latest_available().idx()
    }

    /// Current size of the fuzzy window (operations ordered but not yet covered by
    /// an available flag). Bounded by `max_processes` (Proposition 5.2), extended
    /// to `max_processes * max_group_ops` when group persist is enabled (*every*
    /// process may have a whole group ordered but not yet persisted).
    pub fn fuzzy_window_len(&self) -> usize {
        self.shared.trace.fuzzy_window_len()
    }

    /// Checks Proposition 5.2 (generalized to group persist) over the whole trace.
    /// Returns a human-readable error if violated (which would indicate a bug in
    /// the construction).
    pub fn check_invariants(&self) -> Result<(), String> {
        check_fuzzy_invariant(&self.shared.trace, self.shared.config.ops_per_entry())
            .map_err(|v| format!("fuzzy-window bound violated: {v:?}"))
    }

    /// Detectable execution: true if the update identified by `op_id` has been
    /// linearized — i.e. it appears in the execution trace (either inserted during
    /// this incarnation or recovered from the logs after a crash).
    ///
    /// After a checkpoint-based recovery, operations already covered by the
    /// checkpoint are no longer individually identifiable; this method only answers
    /// for operations at execution indices above the checkpoint.
    pub fn was_linearized(&self, op_id: OpId) -> bool {
        if self.shared.recovered.lock().contains_key(&op_id) {
            return true;
        }
        // Only linearized operations count: walk from the latest available node.
        let latest = self.shared.trace.latest_available();
        self.shared
            .trace
            .iter_from(latest)
            .any(|n| n.op().as_ref().is_some_and(|r| r.op_id == op_id))
    }

    /// Claims the lowest free process slot and returns a handle for it.
    pub fn register(&self) -> Result<crate::ProcessHandle<S>, OnllError> {
        match self.shared.claim_free_slot() {
            Some(pid) => crate::handle::new_handle(self.shared.clone(), pid),
            None => Err(OnllError::NoFreeProcessSlot),
        }
    }

    /// Claims a specific process slot and returns a handle for it.
    pub fn handle_for(&self, pid: usize) -> Result<crate::ProcessHandle<S>, OnllError> {
        if pid >= self.shared.config.max_processes || !self.shared.try_claim(pid) {
            return Err(OnllError::ProcessSlotUnavailable(pid));
        }
        crate::handle::new_handle(self.shared.clone(), pid)
    }

    /// Exactly-once reply retrieval: recomputes the *remembered response* of
    /// the update identified by `op_id` by replaying the linearized history.
    ///
    /// The typed outcome is what a retrying client needs to act safely:
    /// [`ResolveOutcome::Executed`] carries the remembered value,
    /// [`ResolveOutcome::Unknown`] means the operation never linearized (safe
    /// to re-submit under the same identity), and
    /// [`ResolveOutcome::Truncated`] means its sequence number lies at or
    /// below a published checkpoint's per-process floor — the covered prefix
    /// is compacted away, so whether it executed is permanently unanswerable
    /// and re-submitting could double-apply it.
    ///
    /// Replay determinism (the [`crate::SequentialSpec`] contract) guarantees
    /// the recomputed value equals the value originally handed to the invoker
    /// — across crashes too, which is what makes combined-commit replies
    /// (`DurableService`) exactly-once: a client that crashed after its op
    /// persisted but before consuming the reply re-fetches the identical
    /// response here instead of re-submitting.
    ///
    /// Cost: zero persistent fences (a trace replay, like
    /// [`Durable::read_latest`]); work proportional to the suffix above the
    /// newest snapshot.
    pub fn resolve(&self, op_id: OpId) -> ResolveOutcome<S::Value> {
        loop {
            let (seed_idx, mut state) = self.shared.view_seed();
            let latest = self.shared.trace.latest_available();
            let mut found = None;
            for node in self.shared.trace.nodes_between(seed_idx, latest) {
                if let Some(record) = node.op() {
                    let value = state.apply(&record.op);
                    if record.op_id == op_id {
                        found = Some(value);
                        break;
                    }
                }
            }
            // A concurrent checkpoint may have reclaimed part of the suffix
            // mid-walk; retry from the then-newer snapshot (cf. materialize).
            if self.shared.trace.reclaim_floor() <= seed_idx + 1 {
                return match found {
                    Some(value) => ResolveOutcome::Executed(value),
                    // The floor check runs only after the identity was *not*
                    // found: floors are exact (each checkpoint records the
                    // sequence highs its view actually applied), so a live
                    // above-watermark identity is never misreported.
                    None if op_id.seq > 0
                        && self
                            .shared
                            .resolve_floor
                            .get(op_id.pid as usize)
                            .is_some_and(|f| f.load(Ordering::Acquire) >= op_id.seq) =>
                    {
                        ResolveOutcome::Truncated
                    }
                    None => ResolveOutcome::Unknown,
                };
            }
        }
    }

    /// Number of recovered-operation identities currently retained for
    /// detectable-execution queries. Grows with each recovery, shrinks when a
    /// checkpoint publishes (identities at or below the watermark are pruned),
    /// so long-running services stay bounded by the checkpoint interval.
    pub fn recovered_backlog(&self) -> usize {
        self.shared.recovered.lock().len()
    }

    /// Reads the object without a process handle by replaying the suffix above
    /// the newest published snapshot (or the whole trace prefix if none) up to
    /// the latest available node. No NVM access, no persistent fences. Intended
    /// for tests, examples and one-off inspection; per-process handles with
    /// local views are faster.
    pub fn read_latest(&self, op: &S::ReadOp) -> S::Value {
        self.materialize().read(op)
    }

    /// Materializes the full object state at the latest linearized operation by
    /// replaying the trace suffix above the current view seed (the newest
    /// published snapshot, or the recovery/creation base). Used by tests and
    /// the checkpoint-equivalence property suite to compare recovered states
    /// against full replays; per-process handles with local views are faster
    /// for serving reads.
    pub fn materialize(&self) -> S {
        loop {
            let (seed_idx, mut state) = self.shared.view_seed();
            let latest = self.shared.trace.latest_available();
            for node in self.shared.trace.nodes_between(seed_idx, latest) {
                if let Some(record) = node.op() {
                    state.apply(&record.op);
                }
            }
            // A concurrent checkpoint may have reclaimed part of the suffix
            // mid-walk, silently shortening it (retired nodes stay allocated,
            // so the walk itself is always safe — only completeness must be
            // re-checked). Retry from the then-newer snapshot if so.
            if self.shared.trace.reclaim_floor() <= seed_idx + 1 {
                return state;
            }
        }
    }

    /// Execution index of the newest *published* checkpoint (0 if none). Log
    /// owners may truncate their log prefixes below this watermark at any time.
    pub fn checkpoint_watermark(&self) -> u64 {
        self.shared.checkpoint_watermark.load(Ordering::Acquire)
    }

    /// Upper bound on the bytes of live entries in the largest per-process
    /// persistent log, maintained by log owners without scanning NVM. Counts
    /// live entries at full slot stride; entries are variable-length, so the
    /// exact occupancy (`PersistentLog::live_bytes`, which drives each owner's
    /// log-bytes checkpoint trigger) is usually much smaller.
    pub fn max_log_live_bytes(&self) -> u64 {
        let max_entries = self
            .shared
            .log_live_entries
            .iter()
            .map(|e| e.load(Ordering::Acquire))
            .max()
            .unwrap_or(0);
        max_entries * self.shared.log_cfg.entry_size() as u64
    }
}

impl<S: SnapshotSpec> Durable<S> {
    /// Recovers an object that may have checkpoints: the newest valid checkpoint
    /// across all processes seeds the state, and only log entries above its
    /// watermark are replayed (Section 8 extension).
    ///
    /// Validity is checksum-based (torn checkpoint writes are detected and
    /// skipped) plus a defensive decode: if the newest checksum-valid slot fails
    /// to decode, recovery falls back to the next-newest valid checkpoint, and
    /// finally to a full log replay when no checkpoint is usable. Falling back is
    /// always safe because logs are only truncated *after* a checkpoint publishes
    /// (the truncate-after-publish safety argument, documented on
    /// [`SnapshotSpec`] and in the `checkpoint` module) — any watermark whose
    /// truncation may have run is durable and, short of NVM corruption beyond
    /// what checksums catch, decodable.
    pub fn recover_with_checkpoints(
        pool: NvmPool,
        config: OnllConfig,
    ) -> Result<(Self, RecoveryReport), OnllError> {
        Self::recover_with_checkpoints_and_hooks(pool, config, Hooks::none())
    }

    /// [`Durable::recover_with_checkpoints`] against the pool reopened from
    /// `config.backend`/`config.name` (see [`Durable::recover_in`]).
    pub fn recover_in_with_checkpoints(
        pmem: nvm_sim::PmemConfig,
        config: OnllConfig,
    ) -> Result<(Self, RecoveryReport), OnllError> {
        let pool = NvmPool::reopen(&config.backend, pmem, &config.name)?;
        Self::recover_with_checkpoints(pool, config)
    }

    /// Like [`Durable::recover_with_checkpoints`], with execution hooks installed.
    pub fn recover_with_checkpoints_and_hooks(
        pool: NvmPool,
        config: OnllConfig,
        hooks: Hooks,
    ) -> Result<(Self, RecoveryReport), OnllError> {
        let (max_processes, log_cfg, cp_slot_bytes, log_bases, cp_bases) =
            Self::read_meta(&pool, &config)?;
        // Newest-first fallback chain: first checksum-valid checkpoint whose
        // state also decodes wins; an empty chain means full replay.
        let mut chosen: Option<checkpoint::ValidSlot> = None;
        for slot in checkpoint::read_all_valid(&pool, &cp_bases, cp_slot_bytes, max_processes) {
            if S::decode_state(&slot.state).is_some() {
                chosen = Some(slot);
                break;
            }
        }
        type BaseState<S> = Box<dyn Fn() -> S + Send + Sync>;
        let (base_index, base_epoch, base_floors, base_state): (u64, u64, Vec<u64>, BaseState<S>) =
            match chosen {
                Some(slot) => (
                    slot.stamp.execution_index,
                    slot.stamp.epoch,
                    slot.seq_floors,
                    Box::new(move || S::decode_state(&slot.state).expect("validated above")),
                ),
                None => (0, 0, vec![0; max_processes], Box::new(S::initialize)),
            };
        Self::finish_recovery(
            pool,
            config,
            hooks,
            max_processes,
            log_cfg,
            cp_slot_bytes,
            log_bases,
            cp_bases,
            base_index,
            base_epoch,
            base_floors,
            base_state,
        )
    }
}

impl<S: SequentialSpec> std::fmt::Debug for Durable<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durable")
            .field("name", &self.shared.config.name)
            .field("max_processes", &self.shared.config.max_processes)
            .field("ordered_index", &self.ordered_index())
            .field("linearized_index", &self.linearized_index())
            .finish()
    }
}
