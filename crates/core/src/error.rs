//! Errors of the ONLL construction.

use std::fmt;

/// Errors returned by [`crate::Durable`] and [`crate::ProcessHandle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OnllError {
    /// NVM allocation or root-table failure.
    Nvm(String),
    /// All process identifiers are already claimed.
    NoFreeProcessSlot,
    /// The requested process identifier is out of range or already claimed.
    ProcessSlotUnavailable(usize),
    /// The per-process persistent log is full. Enable checkpointing
    /// (`OnllConfig::checkpoint_every`) or increase `log_capacity_entries`.
    LogFull,
    /// A persisted operation could not be decoded during recovery.
    CorruptOperation {
        /// Execution index of the operation that failed to decode.
        execution_index: u64,
    },
    /// The object's metadata root was not found in the pool during recovery.
    MetadataMissing(String),
    /// The object's persisted metadata is inconsistent with the configuration.
    MetadataMismatch(String),
    /// Checkpointing was requested but is not configured.
    CheckpointingDisabled,
    /// A group persist was asked to cover more operations than
    /// `OnllConfig::max_group_ops` allows (the log entries are not sized for it).
    GroupTooLarge {
        /// Number of operations in the rejected group.
        len: usize,
        /// Configured maximum (`OnllConfig::max_group_ops`).
        max: usize,
    },
    /// A caller-supplied operation identity is unusable: its process component
    /// is out of range for this object, its sequence number is 0, or it does
    /// not belong to the submitting client's identity slot.
    InvalidOpId {
        /// Process component of the rejected identity.
        pid: u32,
        /// Sequence component of the rejected identity.
        seq: u64,
    },
}

impl fmt::Display for OnllError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnllError::Nvm(msg) => write!(f, "NVM error: {msg}"),
            OnllError::NoFreeProcessSlot => write!(f, "all process slots are claimed"),
            OnllError::ProcessSlotUnavailable(pid) => {
                write!(f, "process slot {pid} is unavailable")
            }
            OnllError::LogFull => write!(
                f,
                "persistent log is full; enable checkpointing or increase log capacity"
            ),
            OnllError::CorruptOperation { execution_index } => {
                write!(f, "operation at execution index {execution_index} is corrupt")
            }
            OnllError::MetadataMissing(name) => {
                write!(f, "no ONLL object named '{name}' found in the pool")
            }
            OnllError::MetadataMismatch(msg) => write!(f, "metadata mismatch: {msg}"),
            OnllError::CheckpointingDisabled => {
                write!(f, "checkpointing is not enabled in the configuration")
            }
            OnllError::GroupTooLarge { len, max } => write!(
                f,
                "group of {len} operations exceeds max_group_ops = {max}; raise OnllConfig::group_persist"
            ),
            OnllError::InvalidOpId { pid, seq } => write!(
                f,
                "operation identity p{pid}#{seq} is not usable by this client"
            ),
        }
    }
}

impl std::error::Error for OnllError {}

impl From<nvm_sim::NvmError> for OnllError {
    fn from(e: nvm_sim::NvmError) -> Self {
        OnllError::Nvm(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(OnllError::LogFull.to_string().contains("checkpoint"));
        assert!(OnllError::MetadataMissing("kv".into())
            .to_string()
            .contains("kv"));
        assert!(OnllError::CorruptOperation { execution_index: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn nvm_errors_convert() {
        let e: OnllError = nvm_sim::NvmError::RootTableFull.into();
        assert!(matches!(e, OnllError::Nvm(_)));
    }
}
