//! The concurrent front-end: a cross-thread *combining commit* layer that
//! amortizes the inherent persistent fence over live clients.
//!
//! The paper proves (Theorem 6.3) that every detectable update must issue at
//! least one persistent fence — per *operation invoked by a process*. The bound
//! says nothing about how many operations one fence may cover, and that is the
//! only lever left at scale: [`DurableService`] lets N concurrent client
//! threads share single fences. Each client publishes its operation into a
//! private publication slot; whichever thread wins the commit lock becomes the
//! **combiner**, drains every pending slot, and commits the whole batch through
//! the ordinary ONLL update path — one execution-trace ordering sweep, **one
//! log entry, one persistent fence** (the zero-copy `EntryWriter` encode path
//! shared with `ProcessHandle::try_update`) — then hands each waiter its return
//! value together with a durable [`OpId`].
//!
//! The per-*operation* cost therefore falls toward `1/N` fences with N live
//! clients, while every individual operation still pays the inherent price the
//! lower bound demands: its response is not delivered until the fence covering
//! it has completed. Amortization changes who executes the fence, not whether
//! an operation waits for one — exactly the trade-off the paper describes for
//! flat combining, reproduced here on top of a lock-free, detectably-executable
//! object rather than a lock-protected state copy.
//!
//! ## Thread-ownership rules
//!
//! * A [`DurableService`] is shared (it is `Clone`, clones refer to the same
//!   service); a [`ServiceClient`] belongs to exactly one thread at a time
//!   (`&mut self` receivers, not `Sync`-shared).
//! * Each client owns one publication slot and one process-slot identity
//!   (claimed from the same `max_processes` space as `ProcessHandle`s, so
//!   [`OpId`]s stay globally unique and recovery re-seeds their sequence
//!   numbers). Create services against configs with
//!   `max_processes >= clients + 1` (the `+ 1` is the combiner's handle).
//! * The combiner is *elected per batch*: whichever submitting thread acquires
//!   the commit lock drains the slots. There is no dedicated combiner thread
//!   to stall behind — but the construction is blocking in the same sense as
//!   flat combining: while a combiner is mid-commit, later submitters wait for
//!   the lock or for their slot to be served.
//!
//! ## Exactly-once replies across crashes
//!
//! A client learns its operation's [`OpId`] *before* publishing it
//! ([`ServiceClient::peek_next_op_id`], or the value returned by
//! [`ServiceClient::submit_async`]). After a crash it can therefore always ask
//! [`DurableService::resolve`] (backed by [`Durable::resolve`]):
//! [`ResolveOutcome::Executed`] means the operation is linearized and the
//! carried value is byte-for-byte the response the original submit returned
//! (replay determinism); [`ResolveOutcome::Unknown`] means it never linearized
//! and may be safely re-submitted; [`ResolveOutcome::Truncated`] means the
//! identity's history was compacted below a checkpoint floor — the operation
//! *did* execute but its response is no longer derivable, so re-submitting it
//! would double-apply. Responses are *remembered* by construction — the
//! durable log determines them — rather than stored twice.

use crate::construction::Durable;
use crate::error::OnllError;
use crate::handle::ProcessHandle;
use crate::op_id::{OpId, Record, ResolveOutcome};
use crate::snapshot::{ReadSnapshot, SnapshotCell};
use crate::spec::{SequentialSpec, SnapshotSpec};
use nvm_sim::{Counter, Histogram};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Slot states of the publication protocol. Transitions:
/// `EMPTY → PENDING` (client, after writing the record),
/// `PENDING → COMBINING` (combiner, after taking the record into its batch),
/// `COMBINING → READY` (combiner, after writing the reply),
/// `READY → EMPTY` (client, after taking the reply).
const EMPTY: u32 = 0;
const PENDING: u32 = 1;
const READY: u32 = 2;
const COMBINING: u32 = 3;

/// Re-scan rounds of the combining window: after its first scan, a combiner
/// yields and re-scans up to this many times while fewer operations than
/// `min(live clients, max_batch)` are pending. Clients released by the
/// previous batch republish within roughly one scheduler round, so a couple
/// of yields lets each fence cover ~all live clients instead of the ~half
/// that would otherwise accumulate during the previous fence (the batch-size
/// oscillation classic flat combining exhibits without a window).
const COMBINE_WINDOW_ROUNDS: usize = 4;

/// Claimable hazard slots beyond the per-client reserved ones: the budget of
/// concurrent [`SnapshotReader`] handles plus transient service-level
/// snapshot reads. Exhaustion degrades gracefully (service-level reads fall
/// back to the locked path; `snapshot_reader` reports
/// [`OnllError::NoFreeProcessSlot`]).
const SNAPSHOT_POOL_SLOTS: usize = 32;

/// A combiner's answer to one submitted operation: the durable identity and
/// the value, or the error that failed the whole batch before ordering it.
type Reply<S> = Result<(OpId, <S as SequentialSpec>::Value), OnllError>;

/// One client's publication slot. The `state` atomic carries the ownership of
/// the two cells: `EMPTY`/`READY` — the claiming client; `PENDING`/`COMBINING`
/// — whoever holds the commit lock. Every cross-thread transition is a
/// `Release` store observed by an `Acquire` load on the other side, so cell
/// contents written before a transition are visible after it.
struct Slot<S: SequentialSpec> {
    claimed: AtomicBool,
    state: AtomicU32,
    op: UnsafeCell<Option<Record<S::UpdateOp>>>,
    reply: UnsafeCell<Option<Reply<S>>>,
}

// SAFETY: the cells are only ever accessed by the party `state` designates
// (see the protocol above); `S::UpdateOp` and `S::Value` are `Send + Sync` by
// the `SequentialSpec` bounds, so moving them across the threads that take
// turns owning the cells is sound.
unsafe impl<S: SequentialSpec> Sync for Slot<S> {}

impl<S: SequentialSpec> Slot<S> {
    fn new() -> Self {
        Slot {
            claimed: AtomicBool::new(false),
            state: AtomicU32::new(EMPTY),
            op: UnsafeCell::new(None),
            reply: UnsafeCell::new(None),
        }
    }
}

/// Monomorphized snapshot builder installed by `ensure_snapshots`; see the
/// `snapshot_fn` field.
type SnapshotFn<S> = fn(&mut ProcessHandle<S>) -> ReadSnapshot<S>;

struct ServiceShared<S: SequentialSpec> {
    durable: Durable<S>,
    /// The commit lock *is* the combiner's process handle: winning the lock is
    /// winning the combiner election, and every batch flows through this one
    /// handle's `commit_batch` → `persist_fuzzy_window` path.
    combiner: Mutex<ProcessHandle<S>>,
    slots: Box<[Slot<S>]>,
    /// Largest batch one combining pass may drain: `min(clients,
    /// max_group_ops)` — the log entries are sized for `max_group_ops`
    /// operations from one process, and the combiner is one process.
    max_batch: usize,
    /// Rotating scan origin so saturated low-index slots cannot starve
    /// high-index ones.
    scan_from: AtomicUsize,
    /// Currently claimed client slots — the combining window's fill target.
    live_clients: AtomicUsize,
    batches: AtomicU64,
    combined_ops: AtomicU64,
    /// Operations per committed batch ("combine.batch_size") — the measured
    /// amortization factor as a distribution, not just a ratio.
    batch_hist: Histogram,
    /// Submit→response latency of blocking submits ("combine.submit_ns").
    submit_hist: Histogram,
    /// Exactly-once reply retrievals that found a value ("combine.resolve_hits").
    resolve_hits: Counter,
    /// Retrievals that found nothing ("combine.resolve_misses").
    resolve_misses: Counter,
    /// Retrievals answered `Truncated` — identity compacted below a checkpoint
    /// floor ("combine.resolve_truncated").
    resolve_truncated: Counter,
    /// The published-snapshot cell of the lock-free read path. Dormant (never
    /// published, never cloned into) until `ensure_snapshots` runs.
    snapshots: SnapshotCell<S>,
    /// Snapshot builder, installed by `ensure_snapshots`. A monomorphized fn
    /// pointer so the `S: Clone` bound lives only on the snapshot-enabling
    /// entry points instead of spreading through the whole service API; unset
    /// means the read path is dormant and batches skip the per-commit clone.
    snapshot_fn: OnceLock<SnapshotFn<S>>,
    /// Reads served lock-free from a published snapshot.
    snapshot_reads: AtomicU64,
    /// Reads served under the commit lock (`read_latest` and fallbacks).
    latest_reads: AtomicU64,
    /// Time to clone + publish one snapshot ("combine.snapshot_publish_ns") —
    /// the write-path overhead the read path buys its lock freedom with.
    publish_hist: Histogram,
}

impl<S: SequentialSpec> ServiceShared<S> {
    /// One combining pass: drain up to `max_batch` pending slots, commit them
    /// as one batch (one log entry, one persistent fence), post each reply.
    /// Returns the number of operations served. Must be called with the
    /// combiner lock held (enforced by the `&mut ProcessHandle` argument,
    /// which only the lock hands out).
    ///
    /// `own_slot` is the calling client's slot when the caller has an
    /// operation in flight: it is drained **first**, before the rotating scan
    /// and the batch cap apply. This keeps the audited Theorem 5.1 upper
    /// bound intact per submit — a submitter that becomes the combiner pays
    /// exactly the one fence that covers its own operation, never several
    /// passes' worth because the cap kept excluding it (possible whenever
    /// live clients exceed `max_group_ops`).
    fn combine_pass(&self, handle: &mut ProcessHandle<S>, own_slot: Option<usize>) -> usize {
        let n_slots = self.slots.len();
        let start = self.scan_from.fetch_add(1, Ordering::Relaxed) % n_slots;
        let mut batch_slots: Vec<usize> = Vec::with_capacity(self.max_batch);
        let mut records: Vec<Record<S::UpdateOp>> = Vec::with_capacity(self.max_batch);
        let drain = |i: usize,
                     batch_slots: &mut Vec<usize>,
                     records: &mut Vec<Record<S::UpdateOp>>| {
            let slot = &self.slots[i];
            if slot.state.load(Ordering::Acquire) == PENDING {
                // SAFETY: PENDING hands the cells to the commit-lock holder —
                // us. The client wrote the record before its Release store of
                // PENDING and will not touch the cell again until READY.
                // COMBINING marks the slot as already drained so window
                // re-scans cannot take it twice.
                let record = unsafe { (*slot.op.get()).take() }.expect("pending slot holds an op");
                slot.state.store(COMBINING, Ordering::Relaxed);
                batch_slots.push(i);
                records.push(record);
            }
        };
        let scan = |batch_slots: &mut Vec<usize>, records: &mut Vec<Record<S::UpdateOp>>| {
            for k in 0..n_slots {
                if records.len() == self.max_batch {
                    break;
                }
                drain((start + k) % n_slots, batch_slots, records);
            }
        };
        if let Some(own) = own_slot {
            drain(own, &mut batch_slots, &mut records);
        }
        scan(&mut batch_slots, &mut records);
        // Combining window: wait a bounded beat (yielding, so publishers get
        // the CPU even on a single-core host) for the other live clients to
        // publish, so the fence about to be paid covers as many operations as
        // the client population allows — see COMBINE_WINDOW_ROUNDS. Two
        // consecutive rounds without a new arrival end the window early: the
        // missing clients are busy elsewhere (reading, or submitting to
        // another shard's service) and waiting for them grows nothing, while
        // a single empty round may just mean a publisher was mid-preemption.
        let target = self
            .live_clients
            .load(Ordering::Relaxed)
            .min(self.max_batch);
        let mut patience = COMBINE_WINDOW_ROUNDS;
        let mut dry_rounds = 0;
        while records.len() < target && patience > 0 && dry_rounds < 2 {
            patience -= 1;
            let before = records.len();
            std::thread::yield_now();
            scan(&mut batch_slots, &mut records);
            dry_rounds = if records.len() == before {
                dry_rounds + 1
            } else {
                0
            };
        }
        if records.is_empty() {
            return 0;
        }
        let served = records.len();
        match handle.commit_batch(records) {
            Ok(replies) => {
                debug_assert_eq!(replies.len(), batch_slots.len());
                // Publish-after-linearize, publish-before-ack: the batch is
                // linearized, and no waiter has seen its reply yet. A client
                // whose `Acquire` of READY observes a reply below therefore
                // also observes this publication (or a later one), so its next
                // snapshot read includes its own acknowledged write — the
                // recency half of the snapshot contract.
                self.publish_snapshot(handle);
                for (&i, reply) in batch_slots.iter().zip(replies) {
                    self.post(i, Ok(reply));
                }
            }
            Err(e) => {
                // The batch failed before linearizing anything; every waiter
                // learns the same error. Pre-order failures (full log, group
                // too large, poisoned commit path) are safe to re-submit.
                // Persist failures were already retried inside `commit_batch`;
                // when they still fail the commit path poisons itself, so a
                // resubmission fails fast instead of double-applying.
                for &i in &batch_slots {
                    self.post(i, Err(e.clone()));
                }
            }
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.combined_ops
            .fetch_add(served as u64, Ordering::Relaxed);
        self.batch_hist.record(served as u64);
        served
    }

    fn post(&self, slot_index: usize, reply: Reply<S>) {
        let slot = &self.slots[slot_index];
        // SAFETY: still COMBINING, cells still ours (the commit-lock holder's).
        unsafe { *slot.reply.get() = Some(reply) };
        slot.state.store(READY, Ordering::Release);
    }

    /// Publishes a fresh snapshot from the combiner handle's view, if the
    /// snapshot read path has been enabled. Must be called with the commit
    /// lock held (the `&mut ProcessHandle` only the lock hands out).
    fn publish_snapshot(&self, handle: &mut ProcessHandle<S>) {
        if let Some(make) = self.snapshot_fn.get() {
            let timer = self.publish_hist.start_timer();
            self.snapshots.publish(make(handle));
            timer.stop();
        }
    }

    /// Idempotently enables the lock-free snapshot read path: installs the
    /// snapshot builder and publishes a seed snapshot of the current
    /// linearized state (so the path is immediately live, including right
    /// after recovery). Takes the commit lock once; later batches refresh the
    /// snapshot as part of their commit.
    fn ensure_snapshots(&self)
    where
        S: Clone,
    {
        if self.snapshot_fn.get().is_some() && self.snapshots.is_published() {
            return;
        }
        let mut handle = self.combiner.lock();
        // Re-check under the lock: a racing enabler may have won.
        if self.snapshot_fn.get().is_none() || !self.snapshots.is_published() {
            let timer = self.publish_hist.start_timer();
            self.snapshots.publish(make_snapshot(&mut handle));
            timer.stop();
            let _ = self.snapshot_fn.set(make_snapshot::<S>);
        }
    }

    /// The locked (linearizable) read path, shared by every `read_latest`.
    fn read_locked(&self, op: &S::ReadOp) -> S::Value {
        self.latest_reads.fetch_add(1, Ordering::Relaxed);
        self.combiner.lock().read(op)
    }
}

/// The monomorphized snapshot builder `ensure_snapshots` installs: clones the
/// combiner view's state at the newest linearized operation.
fn make_snapshot<S: SequentialSpec + Clone>(handle: &mut ProcessHandle<S>) -> ReadSnapshot<S> {
    let (state, idx) = handle.snapshot_state();
    ReadSnapshot::new(state, idx)
}

/// A concurrent session layer over one [`Durable`] object: N client threads
/// [`ServiceClient::submit`] update operations, and per batch one of them
/// (the commit-lock winner) persists all pending operations with a **single
/// persistent fence** — see the [module documentation](self) for the protocol
/// and the amortized-cost argument.
///
/// Cloning is cheap; clones refer to the same service.
pub struct DurableService<S: SequentialSpec> {
    inner: Arc<ServiceShared<S>>,
}

impl<S: SequentialSpec> Clone for DurableService<S> {
    fn clone(&self) -> Self {
        DurableService {
            inner: self.inner.clone(),
        }
    }
}

impl<S: SequentialSpec> Durable<S> {
    /// Opens a combining-commit service over this object for up to `clients`
    /// concurrent client threads. Claims one process slot for the combiner
    /// handle; each [`DurableService::client`] claims one more for its
    /// identity, so the object needs `max_processes >= clients + 1` (plus any
    /// plain handles registered besides the service).
    pub fn service(&self, clients: usize) -> Result<DurableService<S>, OnllError> {
        assert!(clients >= 1, "a service needs at least one client slot");
        let combiner = self.register()?;
        let max_batch = self.config().max_group_ops.min(clients);
        let telemetry = self.shared.pool.telemetry();
        Ok(DurableService {
            inner: Arc::new(ServiceShared {
                durable: self.clone(),
                combiner: Mutex::new(combiner),
                slots: (0..clients).map(|_| Slot::new()).collect(),
                max_batch,
                scan_from: AtomicUsize::new(0),
                live_clients: AtomicUsize::new(0),
                batches: AtomicU64::new(0),
                combined_ops: AtomicU64::new(0),
                batch_hist: telemetry.histogram("combine.batch_size"),
                submit_hist: telemetry.histogram("combine.submit_ns"),
                resolve_hits: telemetry.counter("combine.resolve_hits"),
                resolve_misses: telemetry.counter("combine.resolve_misses"),
                resolve_truncated: telemetry.counter("combine.resolve_truncated"),
                snapshots: SnapshotCell::new(clients, SNAPSHOT_POOL_SLOTS),
                snapshot_fn: OnceLock::new(),
                snapshot_reads: AtomicU64::new(0),
                latest_reads: AtomicU64::new(0),
                publish_hist: telemetry.histogram("combine.snapshot_publish_ns"),
            }),
        })
    }
}

impl<S: SequentialSpec> DurableService<S> {
    /// The underlying durable object (shared, not consumed).
    pub fn durable(&self) -> &Durable<S> {
        &self.inner.durable
    }

    /// Claims a free client slot (publication slot + process-slot identity)
    /// and returns the per-thread client. Fails with
    /// [`OnllError::NoFreeProcessSlot`] when either space is exhausted.
    pub fn client(&self) -> Result<ServiceClient<S>, OnllError> {
        let shared = &self.inner.durable.shared;
        let slot = (0..self.inner.slots.len())
            .find(|&i| {
                self.inner.slots[i]
                    .claimed
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            })
            .ok_or(OnllError::NoFreeProcessSlot)?;
        let Some(pid) = shared.claim_free_slot() else {
            self.inner.slots[slot]
                .claimed
                .store(false, Ordering::Release);
            return Err(OnllError::NoFreeProcessSlot);
        };
        // A client never materializes a view, so it must not pin trace
        // reclamation at the base floor for its whole lifetime: publish
        // "infinitely far" progress instead. Drop lowers it back to the
        // conservative floor before releasing the identity slot.
        shared.progress[pid].store(u64::MAX, Ordering::Release);
        self.inner.live_clients.fetch_add(1, Ordering::Relaxed);
        Ok(ServiceClient {
            service: self.inner.clone(),
            slot,
            pid,
            last_op_id: None,
        })
    }

    /// Claims the client slot at `index` — publication slot `index` and
    /// process-slot identity `index + 1` — instead of the first free pair.
    /// Fails with [`OnllError::ProcessSlotUnavailable`] when either half is
    /// taken or `index` is out of range.
    ///
    /// The deterministic mapping is what a *session layer* needs across
    /// restarts: when the service is opened before any other handle is
    /// registered, the combiner holds pid 0 and client `index` always gets
    /// pid `index + 1`, so an external client that reconnects to "slot 3"
    /// after a server crash resumes the same [`OpId`] identity space its
    /// unacknowledged operations were published under — the precondition for
    /// replaying them through [`DurableService::resolve`] and
    /// [`ServiceClient::submit_with_id`].
    pub fn client_for(&self, index: usize) -> Result<ServiceClient<S>, OnllError> {
        if index >= self.inner.slots.len() {
            return Err(OnllError::ProcessSlotUnavailable(index));
        }
        if self.inner.slots[index]
            .claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(OnllError::ProcessSlotUnavailable(index));
        }
        let shared = &self.inner.durable.shared;
        let pid = index + 1;
        if pid >= shared.config.max_processes || !shared.try_claim(pid) {
            self.inner.slots[index]
                .claimed
                .store(false, Ordering::Release);
            return Err(OnllError::ProcessSlotUnavailable(index));
        }
        // Same progress discipline as `client()`: a client never materializes
        // a view, so it must not pin trace reclamation.
        shared.progress[pid].store(u64::MAX, Ordering::Release);
        self.inner.live_clients.fetch_add(1, Ordering::Relaxed);
        Ok(ServiceClient {
            service: self.inner.clone(),
            slot: index,
            pid,
            last_op_id: None,
        })
    }

    /// Runs one combining pass on the calling thread (acquiring the commit
    /// lock) and returns the number of operations served. Useful for driving
    /// the service without dedicated submitter threads — polling servers,
    /// deterministic tests — and a no-op returning 0 when nothing is pending.
    pub fn combine_now(&self) -> usize {
        let mut handle = self.inner.combiner.lock();
        self.inner.combine_pass(&mut handle, None)
    }

    /// Reads through the combiner handle's local view (blocking on the commit
    /// lock, zero persistent fences). The view advances incrementally, so a
    /// service read is O(missing suffix), not O(history).
    ///
    /// Alias for [`DurableService::read_latest`]; prefer
    /// [`DurableService::read_snapshot`] for read paths that must not contend
    /// with the commit lock.
    pub fn read(&self, op: &S::ReadOp) -> S::Value {
        self.read_latest(op)
    }

    /// The **linearizable** read path: acquires the commit lock and reads the
    /// newest linearized state. Zero persistent fences (Theorem 5.1's read
    /// cost), but serializes behind in-flight write batches and behind other
    /// locked readers.
    pub fn read_latest(&self, op: &S::ReadOp) -> S::Value {
        self.inner.read_locked(op)
    }

    /// The **lock-free** read path: one `Acquire` load of the published
    /// snapshot and a pure `state.read(op)` — no lock, no persistent fence,
    /// no NVM access, no trace traversal. Enables the snapshot path on first
    /// use (one locked pass; see [`DurableService::enable_snapshots`]).
    ///
    /// Semantics: **sequentially consistent** reads over a linearized prefix.
    /// The snapshot refreshes on every committed service batch (and on
    /// [`DurableService::maybe_checkpoint`]), and it is published *before*
    /// any of the batch's replies, so a caller that has observed an update's
    /// acknowledgement observes that update here. Updates applied through
    /// plain [`Durable::register`] handles that bypass the service do not
    /// refresh the snapshot until the next service batch; use
    /// [`DurableService::read_latest`] when those must be visible immediately.
    ///
    /// Falls back to the locked path in the rare case every one of the
    /// `SNAPSHOT_POOL_SLOTS` transient hazard slots is busy (long-lived
    /// readers should hold a [`SnapshotReader`] instead, which pins its slot
    /// once).
    pub fn read_snapshot(&self, op: &S::ReadOp) -> S::Value
    where
        S: Clone,
    {
        self.inner.ensure_snapshots();
        let Some(slot) = self.inner.snapshots.claim_pool_slot() else {
            return self.inner.read_locked(op);
        };
        let value = match self.inner.snapshots.load_protected(slot) {
            Some(guard) => {
                self.inner.snapshot_reads.fetch_add(1, Ordering::Relaxed);
                guard.read(op)
            }
            // Unreachable after ensure_snapshots, but degrade rather than panic.
            None => self.inner.read_locked(op),
        };
        self.inner.snapshots.release_pool_slot(slot);
        value
    }

    /// Enables the lock-free snapshot read path without performing a read:
    /// publishes a seed snapshot of the current linearized state (one locked
    /// pass) and arms per-batch republication. Idempotent. Servers call this
    /// at open so recovered state is immediately readable lock-free.
    pub fn enable_snapshots(&self)
    where
        S: Clone,
    {
        self.inner.ensure_snapshots();
    }

    /// Claims a dedicated hazard slot and returns a long-lived lock-free
    /// reader. Enables the snapshot path on first use. Fails with
    /// [`OnllError::NoFreeProcessSlot`] when all `SNAPSHOT_POOL_SLOTS`
    /// claimable slots are held by other readers.
    pub fn snapshot_reader(&self) -> Result<SnapshotReader<S>, OnllError>
    where
        S: Clone,
    {
        self.inner.ensure_snapshots();
        let slot = self
            .inner
            .snapshots
            .claim_pool_slot()
            .ok_or(OnllError::NoFreeProcessSlot)?;
        Ok(SnapshotReader {
            service: self.inner.clone(),
            slot,
        })
    }

    /// Counts of reads served by each path: lock-free snapshot reads vs
    /// commit-lock (`read_latest` and fallback) reads.
    pub fn read_stats(&self) -> ReadStats {
        ReadStats {
            snapshot_reads: self.inner.snapshot_reads.load(Ordering::Relaxed),
            latest_reads: self.inner.latest_reads.load(Ordering::Relaxed),
        }
    }

    /// Exactly-once reply retrieval by identity — see [`Durable::resolve`].
    pub fn resolve(&self, op_id: OpId) -> ResolveOutcome<S::Value> {
        let outcome = self.inner.durable.resolve(op_id);
        match &outcome {
            ResolveOutcome::Executed(_) => self.inner.resolve_hits.incr(),
            ResolveOutcome::Unknown => self.inner.resolve_misses.incr(),
            ResolveOutcome::Truncated => self.inner.resolve_truncated.incr(),
        }
        outcome
    }

    /// Detectable execution by identity — see [`Durable::was_linearized`].
    pub fn was_linearized(&self, op_id: OpId) -> bool {
        self.inner.durable.was_linearized(op_id)
    }

    /// `(batches committed, operations they contained)`. The ratio is the
    /// measured amortization factor: fences per operation is
    /// `batches / operations`.
    pub fn batch_stats(&self) -> (u64, u64) {
        (
            self.inner.batches.load(Ordering::Relaxed),
            self.inner.combined_ops.load(Ordering::Relaxed),
        )
    }

    /// Number of client slots (claimed or not).
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }
}

impl<S: SnapshotSpec> DurableService<S> {
    /// Syncs the combiner's view and checkpoints if a configured trigger fires
    /// (see `ProcessHandle::maybe_checkpoint`). Blocks combining for the
    /// duration; fences land in the maintenance bucket. Long-running services
    /// should call this periodically (or from a background thread) so their
    /// logs — and the recovered-identity backlog — stay bounded.
    pub fn maybe_checkpoint(&self) -> Result<Option<u64>, OnllError> {
        let mut handle = self.inner.combiner.lock();
        handle.sync();
        // The synced view may be ahead of the last batch commit (e.g. plain
        // handles updated the object directly): refresh the snapshot too, so
        // periodic checkpointing doubles as a staleness bound for the
        // lock-free read path.
        self.inner.publish_snapshot(&mut handle);
        handle.maybe_checkpoint()
    }
}

impl<S: SequentialSpec> std::fmt::Debug for DurableService<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (batches, ops) = self.batch_stats();
        f.debug_struct("DurableService")
            .field("clients", &self.inner.slots.len())
            .field("max_batch", &self.inner.max_batch)
            .field("batches", &batches)
            .field("combined_ops", &ops)
            .finish()
    }
}

/// A per-thread client of a [`DurableService`].
///
/// Owns one publication slot and one process-slot identity; at most one
/// operation is in flight per client (the paper's process model), enforced by
/// the `&mut self` receivers and the slot state machine.
pub struct ServiceClient<S: SequentialSpec> {
    service: Arc<ServiceShared<S>>,
    slot: usize,
    pid: usize,
    last_op_id: Option<OpId>,
}

impl<S: SequentialSpec> ServiceClient<S> {
    /// This client's identity slot (the `pid` component of its [`OpId`]s).
    pub fn client_pid(&self) -> usize {
        self.pid
    }

    /// Identity of the most recent operation submitted through this client.
    pub fn last_op_id(&self) -> Option<OpId> {
        self.last_op_id
    }

    /// Identity the *next* submitted operation will carry. Record it before
    /// submitting and a crash-interrupted submission can still be resolved
    /// after recovery ([`DurableService::resolve`]).
    pub fn peek_next_op_id(&self) -> OpId {
        let shared = &self.service.durable.shared;
        OpId::new(
            self.pid as u32,
            shared.last_op_seq[self.pid].load(Ordering::Acquire) + 1,
        )
    }

    /// Submits an update and blocks until it is durable and linearized:
    /// publishes the operation, then either gets served by a concurrent
    /// combiner or wins the commit lock and combines (its own operation plus
    /// every other pending one — one fence for the whole batch).
    ///
    /// Returns the operation's value and its durable [`OpId`]. On error (e.g.
    /// [`OnllError::LogFull`]) the operation was **not** linearized and may be
    /// re-submitted.
    pub fn submit(&mut self, op: S::UpdateOp) -> Result<(S::Value, OpId), OnllError> {
        let timer = self.service.submit_hist.start_timer();
        self.submit_async(op);
        let reply = self.wait_reply();
        timer.stop();
        reply
    }

    /// Publishes an update without waiting, returning its pre-assigned
    /// [`OpId`]. The operation becomes durable and visible only once a
    /// combiner serves it — a concurrent client's, [`DurableService::combine_now`],
    /// or this client's own [`ServiceClient::wait_reply`].
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight on this client (take its
    /// reply first: one operation in flight per process).
    pub fn submit_async(&mut self, op: S::UpdateOp) -> OpId {
        let slot = &self.service.slots[self.slot];
        assert_eq!(
            slot.state.load(Ordering::Acquire),
            EMPTY,
            "one operation in flight per client: take the previous reply first"
        );
        let shared = &self.service.durable.shared;
        let seq = shared.last_op_seq[self.pid].fetch_add(1, Ordering::AcqRel) + 1;
        let op_id = OpId::new(self.pid as u32, seq);
        self.last_op_id = Some(op_id);
        // SAFETY: the slot is EMPTY and claimed by us — the cells are ours
        // until the Release store of PENDING below hands them to the combiner.
        unsafe { *slot.op.get() = Some(Record::new(op_id, op)) };
        slot.state.store(PENDING, Ordering::Release);
        op_id
    }

    /// Submits an update under a **caller-supplied** identity and blocks until
    /// it is durable and linearized — the replay half of the exactly-once
    /// contract. A session layer that pre-assigned `op_id` to an operation,
    /// lost the acknowledgment (crash, dropped connection), and then observed
    /// [`ResolveOutcome::Unknown`] re-submits the *same* identity here; if the
    /// retry crashes too, the next resolve of `op_id` still answers for
    /// exactly this operation.
    ///
    /// The caller is responsible for resolving **before** re-submitting: this
    /// method publishes unconditionally, so re-submitting an identity that
    /// already executed would double-apply the operation.
    ///
    /// Fails with [`OnllError::InvalidOpId`] if `op_id` does not belong to
    /// this client's identity slot or has a zero sequence number.
    pub fn submit_with_id(
        &mut self,
        op_id: OpId,
        op: S::UpdateOp,
    ) -> Result<(S::Value, OpId), OnllError> {
        let timer = self.service.submit_hist.start_timer();
        self.submit_async_with_id(op_id, op)?;
        let reply = self.wait_reply();
        timer.stop();
        reply
    }

    /// Publishes an update under a caller-supplied identity without waiting —
    /// the async half of [`ServiceClient::submit_with_id`].
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight on this client.
    pub fn submit_async_with_id(&mut self, op_id: OpId, op: S::UpdateOp) -> Result<(), OnllError> {
        if op_id.pid as usize != self.pid || op_id.seq == 0 {
            return Err(OnllError::InvalidOpId {
                pid: op_id.pid,
                seq: op_id.seq,
            });
        }
        let slot = &self.service.slots[self.slot];
        assert_eq!(
            slot.state.load(Ordering::Acquire),
            EMPTY,
            "one operation in flight per client: take the previous reply first"
        );
        // Keep the identity counter monotone past the replayed sequence so
        // `peek_next_op_id`/`submit_async` never hand out an identity the
        // replay already used. `fetch_max` (not a blind store) because a
        // same-incarnation retry legitimately replays a sequence *below* the
        // counter — the first attempt burned it.
        let shared = &self.service.durable.shared;
        shared.last_op_seq[self.pid].fetch_max(op_id.seq, Ordering::AcqRel);
        self.last_op_id = Some(op_id);
        // SAFETY: the slot is EMPTY and claimed by us — the cells are ours
        // until the Release store of PENDING below hands them to the combiner.
        unsafe { *slot.op.get() = Some(Record::new(op_id, op)) };
        slot.state.store(PENDING, Ordering::Release);
        Ok(())
    }

    /// Takes the reply of a served operation, if one is ready. Non-blocking.
    pub fn try_take_reply(&mut self) -> Option<Result<(S::Value, OpId), OnllError>> {
        let slot = &self.service.slots[self.slot];
        if slot.state.load(Ordering::Acquire) != READY {
            return None;
        }
        // SAFETY: READY hands the cells back to us; the combiner wrote the
        // reply before its Release store of READY.
        let reply = unsafe { (*slot.reply.get()).take() }.expect("ready slot holds a reply");
        slot.state.store(EMPTY, Ordering::Release);
        Some(reply.map(|(op_id, value)| (value, op_id)))
    }

    /// Blocks until the in-flight operation's reply is available, combining
    /// on this thread whenever the commit lock is free (combiner election).
    pub fn wait_reply(&mut self) -> Result<(S::Value, OpId), OnllError> {
        loop {
            if let Some(reply) = self.try_take_reply() {
                return reply;
            }
            if let Some(mut handle) = self.service.combiner.try_lock() {
                // Own slot first: the pass this client pays a fence in always
                // covers its own operation, whatever the batch cap excludes.
                self.service.combine_pass(&mut handle, Some(self.slot));
            } else {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }

    /// Reads through the service — alias for [`ServiceClient::read_latest`].
    pub fn read(&self, op: &S::ReadOp) -> S::Value {
        self.read_latest(op)
    }

    /// The linearizable read path — see [`DurableService::read_latest`].
    pub fn read_latest(&self, op: &S::ReadOp) -> S::Value {
        self.service.read_locked(op)
    }

    /// The lock-free snapshot read path — see
    /// [`DurableService::read_snapshot`] for the semantics. A client reads
    /// through its own reserved hazard slot, so this never contends with
    /// other readers either (`&mut self` keeps the slot single-threaded; a
    /// client is one thread's handle by construction).
    pub fn read_snapshot(&mut self, op: &S::ReadOp) -> S::Value
    where
        S: Clone,
    {
        self.service.ensure_snapshots();
        match self.service.snapshots.load_protected(self.slot) {
            Some(guard) => {
                self.service.snapshot_reads.fetch_add(1, Ordering::Relaxed);
                guard.read(op)
            }
            // Unreachable after ensure_snapshots, but degrade rather than panic.
            None => self.service.read_locked(op),
        }
    }
}

impl<S: SequentialSpec> Drop for ServiceClient<S> {
    fn drop(&mut self) {
        // Leave the window's fill target first: a combiner must not wait for
        // an operation this client will never publish.
        self.service.live_clients.fetch_sub(1, Ordering::Relaxed);
        // Complete any published-but-unserved operation so it cannot leak
        // into the slot's next owner, then discard an untaken reply.
        loop {
            match self.service.slots[self.slot].state.load(Ordering::Acquire) {
                PENDING => {
                    if let Some(mut handle) = self.service.combiner.try_lock() {
                        self.service.combine_pass(&mut handle, Some(self.slot));
                    } else {
                        std::thread::yield_now();
                    }
                }
                // An in-progress combiner holds the op; its reply is imminent.
                COMBINING => std::thread::yield_now(),
                _ => break,
            }
        }
        let _ = self.try_take_reply();
        self.service.slots[self.slot]
            .claimed
            .store(false, Ordering::Release);
        // Mirror ProcessHandle::drop: lower the identity slot's progress to
        // the conservative floor *before* releasing the claim.
        let shared = &self.service.durable.shared;
        shared.progress[self.pid].store(shared.base_index, Ordering::Release);
        shared.claimed[self.pid].store(false, Ordering::Release);
    }
}

impl<S: SequentialSpec> std::fmt::Debug for ServiceClient<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceClient")
            .field("slot", &self.slot)
            .field("pid", &self.pid)
            .field("last_op_id", &self.last_op_id)
            .finish()
    }
}

/// Per-path read counts of a [`DurableService`] — see
/// [`DurableService::read_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Reads served lock-free from a published snapshot.
    pub snapshot_reads: u64,
    /// Reads served under the commit lock (`read_latest` plus fallbacks).
    pub latest_reads: u64,
}

impl ReadStats {
    /// Element-wise sum — aggregating per-shard stats.
    pub fn merge(self, other: ReadStats) -> ReadStats {
        ReadStats {
            snapshot_reads: self.snapshot_reads + other.snapshot_reads,
            latest_reads: self.latest_reads + other.latest_reads,
        }
    }
}

/// A long-lived lock-free reader over a [`DurableService`]'s published
/// snapshots, created by [`DurableService::snapshot_reader`].
///
/// Owns one hazard slot for its lifetime, so each read is exactly one
/// `Acquire` load, one hazard store, one validating load and a pure
/// `state.read(op)` — no slot scan, no lock, no persistent fence, no NVM
/// access. `&mut self` receivers keep the hazard slot single-threaded; clone
/// nothing, create one reader per thread.
pub struct SnapshotReader<S: SequentialSpec> {
    service: Arc<ServiceShared<S>>,
    slot: usize,
}

impl<S: SequentialSpec> SnapshotReader<S> {
    /// Reads from the current published snapshot — sequentially consistent
    /// over a linearized prefix; see [`DurableService::read_snapshot`] for
    /// the exact staleness/recency contract.
    pub fn read(&mut self, op: &S::ReadOp) -> S::Value {
        match self.service.snapshots.load_protected(self.slot) {
            Some(guard) => {
                self.service.snapshot_reads.fetch_add(1, Ordering::Relaxed);
                guard.read(op)
            }
            // The cell was published before this reader existed; degrade
            // rather than panic if that invariant is ever violated.
            None => self.service.read_locked(op),
        }
    }

    /// Execution index of the newest operation the current snapshot covers —
    /// a monotone observation of the service's linearized-prefix progress.
    pub fn snapshot_index(&mut self) -> u64 {
        self.service
            .snapshots
            .load_protected(self.slot)
            .map(|guard| guard.index())
            .unwrap_or(0)
    }
}

impl<S: SequentialSpec> Drop for SnapshotReader<S> {
    fn drop(&mut self) {
        self.service.snapshots.release_pool_slot(self.slot);
    }
}

impl<S: SequentialSpec> std::fmt::Debug for SnapshotReader<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("slot", &self.slot)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OnllConfig;
    use nvm_sim::{NvmPool, PmemConfig};

    #[derive(Debug, Clone, PartialEq)]
    struct Counter(i64);

    #[derive(Debug, Clone, PartialEq)]
    struct Add(i64);

    impl crate::spec::OpCodec for Add {
        const MAX_ENCODED_SIZE: usize = 8;
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            Some(Add(i64::from_le_bytes(bytes.try_into().ok()?)))
        }
    }

    impl SequentialSpec for Counter {
        type UpdateOp = Add;
        type ReadOp = ();
        type Value = i64;
        fn initialize() -> Self {
            Counter(0)
        }
        fn apply(&mut self, op: &Add) -> i64 {
            self.0 += op.0;
            self.0
        }
        fn read(&self, _: &()) -> i64 {
            self.0
        }
    }

    fn counter_service(clients: usize, group: usize) -> (NvmPool, DurableService<Counter>) {
        let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20).apply_pending_at_crash(0.0));
        let obj = Durable::<Counter>::create(
            pool.clone(),
            OnllConfig::named("svc")
                .max_processes(clients + 1)
                .log_capacity(1 << 12)
                .group_persist(group),
        )
        .unwrap();
        let service = obj.service(clients).unwrap();
        (pool, service)
    }

    #[test]
    fn single_client_submit_is_one_fence_and_resolvable() {
        let (pool, service) = counter_service(1, 4);
        let mut client = service.client().unwrap();
        let predicted = client.peek_next_op_id();
        let w = pool.stats().op_window();
        let (value, op_id) = client.submit(Add(5)).unwrap();
        assert_eq!(w.close().persistent_fences, 1);
        assert_eq!(value, 5);
        assert_eq!(op_id, predicted);
        assert_eq!(client.last_op_id(), Some(op_id));
        assert_eq!(service.resolve(op_id), ResolveOutcome::Executed(5));
        assert!(service.was_linearized(op_id));
        assert_eq!(service.read(&()), 5);
    }

    #[test]
    fn async_submit_is_served_by_combine_now() {
        let (pool, service) = counter_service(2, 4);
        let mut a = service.client().unwrap();
        let mut b = service.client().unwrap();
        let id_a = a.submit_async(Add(1));
        let id_b = b.submit_async(Add(2));
        // Both pending operations land in ONE entry: one fence for the batch.
        let w = pool.stats().op_window();
        assert_eq!(service.combine_now(), 2);
        assert_eq!(w.close().persistent_fences, 1);
        let (va, ra) = a.try_take_reply().unwrap().unwrap();
        let (vb, rb) = b.try_take_reply().unwrap().unwrap();
        assert_eq!(ra, id_a);
        assert_eq!(rb, id_b);
        // Values are computed in linearization order: whichever op linearized
        // second observed the full sum.
        assert!(
            (va, vb) == (1, 3) || (va, vb) == (3, 2),
            "unexpected values ({va}, {vb})"
        );
        assert_eq!(service.read(&()), 3);
        assert_eq!(service.batch_stats(), (1, 2));
        assert_eq!(service.resolve(id_a), ResolveOutcome::Executed(va));
        assert_eq!(service.resolve(id_b), ResolveOutcome::Executed(vb));
    }

    #[test]
    fn concurrent_clients_amortize_fences() {
        let threads = 4;
        let per_thread = 200;
        let (pool, service) = counter_service(threads, threads);
        let fences_before = pool.stats().persistent_fences();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let service = service.clone();
                scope.spawn(move || {
                    let mut client = service.client().unwrap();
                    for _ in 0..per_thread {
                        client.submit(Add(1)).unwrap();
                    }
                });
            }
        });
        assert_eq!(service.read(&()), (threads * per_thread) as i64);
        let (batches, ops) = service.batch_stats();
        assert_eq!(ops, (threads * per_thread) as u64);
        // Every batch pays exactly one fence, and batches never exceed ops.
        assert_eq!(
            pool.stats().persistent_fences() - fences_before,
            batches,
            "one persistent fence per combined batch"
        );
        assert!(batches <= ops);
        service.durable().check_invariants().unwrap();
    }

    #[test]
    fn per_client_identities_are_sequential_and_distinct() {
        let (_pool, service) = counter_service(2, 2);
        let mut a = service.client().unwrap();
        let mut b = service.client().unwrap();
        let (_, a1) = a.submit(Add(1)).unwrap();
        let (_, b1) = b.submit(Add(1)).unwrap();
        let (_, a2) = a.submit(Add(1)).unwrap();
        assert_ne!(a1.pid, b1.pid);
        assert_eq!(a2.pid, a1.pid);
        assert_eq!(a2.seq, a1.seq + 1);
    }

    #[test]
    fn client_slots_are_bounded_and_reusable() {
        let (_pool, service) = counter_service(1, 1);
        let c = service.client().unwrap();
        assert!(matches!(
            service.client(),
            Err(OnllError::NoFreeProcessSlot)
        ));
        drop(c);
        let mut c = service.client().unwrap();
        assert_eq!(c.submit(Add(2)).unwrap().0, 2);
    }

    #[test]
    fn dropping_a_client_with_a_pending_op_completes_it() {
        let (_pool, service) = counter_service(1, 1);
        let mut c = service.client().unwrap();
        let op_id = c.submit_async(Add(7));
        drop(c); // must not leak the pending op into the next owner
        assert_eq!(service.read(&()), 7);
        assert_eq!(service.resolve(op_id), ResolveOutcome::Executed(7));
        let mut c = service.client().unwrap();
        assert_eq!(c.submit(Add(1)).unwrap().0, 8);
    }

    #[test]
    fn client_for_claims_deterministic_identity_and_replays() {
        let (_pool, service) = counter_service(3, 4);
        let mut c2 = service.client_for(2).unwrap();
        // Service opened first → combiner holds pid 0 → slot 2 is pid 3.
        assert_eq!(c2.client_pid(), 3);
        assert!(matches!(
            service.client_for(2),
            Err(OnllError::ProcessSlotUnavailable(2))
        ));
        assert!(matches!(
            service.client_for(9),
            Err(OnllError::ProcessSlotUnavailable(9))
        ));
        let id = c2.peek_next_op_id();
        // Foreign or zero-sequence identities are rejected before publishing.
        assert!(matches!(
            c2.submit_with_id(OpId::new(0, 1), Add(1)),
            Err(OnllError::InvalidOpId { .. })
        ));
        assert!(matches!(
            c2.submit_with_id(OpId::new(id.pid, 0), Add(1)),
            Err(OnllError::InvalidOpId { .. })
        ));
        // The replay protocol: resolve first, re-submit only on Unknown.
        assert_eq!(service.resolve(id), ResolveOutcome::Unknown);
        let (v, rid) = c2.submit_with_id(id, Add(5)).unwrap();
        assert_eq!((v, rid), (5, id));
        assert_eq!(service.resolve(id), ResolveOutcome::Executed(5));
        // The identity counter advanced past the replayed sequence.
        assert_eq!(c2.peek_next_op_id().seq, id.seq + 1);
        // Dropping the client releases both halves of the pair for re-claim.
        drop(c2);
        service.client_for(2).unwrap();
    }

    #[test]
    fn errors_are_reported_and_clients_can_retry() {
        // Tiny log with no checkpointing: filling it must surface LogFull
        // through submit, not wedge the combiner.
        let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20));
        let obj = Durable::<Counter>::create(
            pool,
            OnllConfig::named("svc-full")
                .max_processes(2)
                .log_capacity(2)
                .group_persist(1),
        )
        .unwrap();
        let service = obj.service(1).unwrap();
        let mut client = service.client().unwrap();
        client.submit(Add(1)).unwrap();
        client.submit(Add(1)).unwrap();
        assert!(matches!(client.submit(Add(1)), Err(OnllError::LogFull)));
        // The failed operation was never linearized.
        assert_eq!(service.read(&()), 2);
    }

    #[test]
    fn snapshot_read_is_fence_free_and_sees_own_acked_write() {
        let (pool, service) = counter_service(2, 4);
        let mut client = service.client().unwrap();
        // Recency: after the submit acked, the same session's snapshot read
        // must observe the write (publish-after-linearize, before the ack).
        client.submit(Add(5)).unwrap();
        let w = pool.stats().op_window();
        assert_eq!(client.read_snapshot(&()), 5);
        assert_eq!(service.read_snapshot(&()), 5);
        let cost = w.close();
        assert_eq!(cost.persistent_fences, 0, "snapshot reads issue no fence");
        assert_eq!(cost.flushes, 0, "snapshot reads flush nothing");
        client.submit(Add(2)).unwrap();
        assert_eq!(client.read_snapshot(&()), 7);
        let stats = service.read_stats();
        assert_eq!(stats.snapshot_reads, 3);
        assert_eq!(stats.latest_reads, 0);
        assert_eq!(service.read_latest(&()), 7);
        assert_eq!(service.read_stats().latest_reads, 1);
    }

    #[test]
    fn enable_snapshots_seeds_from_current_state_before_any_batch() {
        let (_pool, service) = counter_service(1, 1);
        let mut client = service.client().unwrap();
        client.submit(Add(3)).unwrap();
        // Enabled *after* writes: the seed snapshot is the synced view, so
        // pre-enable state (think recovered state at server open) is visible
        // without waiting for the next batch.
        service.enable_snapshots();
        assert_eq!(service.read_snapshot(&()), 3);
    }

    #[test]
    fn snapshot_readers_run_while_the_commit_lock_is_held() {
        let (_pool, service) = counter_service(1, 1);
        let mut client = service.client().unwrap();
        client.submit(Add(9)).unwrap();
        let mut reader = service.snapshot_reader().unwrap();
        let idx_before = reader.snapshot_index();
        // Hold the commit lock (as an in-flight combiner would) and show the
        // snapshot reader is unaffected — this deadlocks if reads lock.
        let guard = service.inner.combiner.lock();
        assert_eq!(reader.read(&()), 9);
        drop(guard);
        client.submit(Add(1)).unwrap();
        assert_eq!(reader.read(&()), 10);
        assert!(reader.snapshot_index() > idx_before, "index is monotone");
    }

    #[test]
    fn snapshot_reader_slots_are_bounded_and_released_on_drop() {
        let (_pool, service) = counter_service(1, 1);
        let mut readers: Vec<_> = (0..SNAPSHOT_POOL_SLOTS)
            .map(|_| service.snapshot_reader().unwrap())
            .collect();
        assert!(matches!(
            service.snapshot_reader(),
            Err(OnllError::NoFreeProcessSlot)
        ));
        // Pool exhaustion degrades service-level snapshot reads to the locked
        // path instead of failing them.
        assert_eq!(service.read_snapshot(&()), 0);
        assert_eq!(service.read_stats().latest_reads, 1);
        readers.pop();
        service.snapshot_reader().unwrap();
        for reader in &mut readers {
            assert_eq!(reader.read(&()), 0);
        }
    }

    #[test]
    fn concurrent_snapshot_reads_are_monotone_under_writes() {
        let readers = 4;
        let (_pool, service) = counter_service(2, 4);
        service.enable_snapshots();
        std::thread::scope(|scope| {
            for _ in 0..readers {
                let mut reader = service.snapshot_reader().unwrap();
                scope.spawn(move || {
                    let mut last = 0;
                    for _ in 0..2_000 {
                        let v = reader.read(&());
                        assert!(v >= last, "snapshot read regressed: {v} < {last}");
                        last = v;
                    }
                });
            }
            let writer = service.clone();
            scope.spawn(move || {
                let mut client = writer.client().unwrap();
                for _ in 0..500 {
                    client.submit(Add(1)).unwrap();
                }
            });
        });
        assert_eq!(service.read_snapshot(&()), 500);
        service.durable().check_invariants().unwrap();
    }

    #[test]
    fn service_updates_interleave_with_plain_handles() {
        let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20));
        let obj = Durable::<Counter>::create(
            pool,
            OnllConfig::named("svc-mixed")
                .max_processes(3)
                .log_capacity(1 << 10),
        )
        .unwrap();
        let service = obj.service(1).unwrap();
        let mut client = service.client().unwrap();
        let mut handle = obj.register().unwrap();
        client.submit(Add(1)).unwrap();
        handle.update(Add(10));
        client.submit(Add(100)).unwrap();
        assert_eq!(obj.read_latest(&()), 111);
        obj.check_invariants().unwrap();
    }
}
