//! # onll — Order Now, Linearize Later
//!
//! A reproduction of the universal construction from *The Inherent Cost of
//! Remembering Consistently* (Cohen, Guerraoui, Zablotchi — SPAA 2018).
//!
//! Given a deterministic sequential specification of an object
//! ([`SequentialSpec`]), ONLL produces a **lock-free, durably linearizable**
//! implementation ([`Durable`]) that issues **at most one persistent fence per
//! update operation and zero per read-only operation** — matching the paper's
//! Theorem 5.1 upper bound, which is tight by its Theorem 6.3 lower bound. The
//! construction additionally provides *detectable execution*: after a crash,
//! [`Durable::was_linearized`] tells whether a given operation took effect.
//!
//! An update proceeds in three stages:
//!
//! 1. **Order** — a descriptor is appended to a shared, transient, lock-free
//!    execution trace, fixing the operation's linearization *order* (crate
//!    [`exec_trace`]).
//! 2. **Persist** — the operation and the unpersisted operations ordered before it
//!    (the *fuzzy window*) are appended to the process's private persistent log,
//!    with a single persistent fence (crate [`persist_log`]).
//! 3. **Linearize** — the descriptor's *available* flag is set; the operation (and
//!    any helped predecessors) become visible to readers.
//!
//! Read-only operations traverse the trace to the latest available descriptor and
//! compute their value from the corresponding prefix — no NVM access, no fences.
//!
//! ## Quick example
//!
//! ```
//! use nvm_sim::{NvmPool, PmemConfig};
//! use onll::{Durable, OnllConfig, OpCodec, SequentialSpec};
//!
//! // A sequential counter specification.
//! struct Counter(u64);
//! #[derive(Debug, Clone, PartialEq)]
//! struct Inc;
//! impl OpCodec for Inc {
//!     const MAX_ENCODED_SIZE: usize = 1;
//!     fn encode(&self, buf: &mut Vec<u8>) { buf.push(1); }
//!     fn decode(b: &[u8]) -> Option<Self> { (b == [1]).then_some(Inc) }
//! }
//! impl SequentialSpec for Counter {
//!     type UpdateOp = Inc;
//!     type ReadOp = ();
//!     type Value = u64;
//!     fn initialize() -> Self { Counter(0) }
//!     fn apply(&mut self, _: &Inc) -> u64 { self.0 += 1; self.0 }
//!     fn read(&self, _: &()) -> u64 { self.0 }
//! }
//!
//! let pool = NvmPool::new(PmemConfig::default());
//! let counter = Durable::<Counter>::create(pool.clone(), OnllConfig::named("ctr")).unwrap();
//! let mut h = counter.register().unwrap();
//!
//! let w = pool.stats().op_window();
//! assert_eq!(h.update(Inc), 1);          // one persistent fence
//! assert_eq!(h.read(&()), 1);            // zero persistent fences
//! assert_eq!(w.close().persistent_fences, 1);
//!
//! // Crash and recover: the increment survives.
//! drop(h);
//! drop(counter);
//! pool.crash_and_restart();
//! let (counter, report) = Durable::<Counter>::recover(pool, OnllConfig::named("ctr")).unwrap();
//! assert_eq!(report.durable_index, 1);
//! assert_eq!(counter.read_latest(&()), 1);
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod combine;
mod config;
mod construction;
mod error;
mod handle;
mod hooks;
mod local_view;
mod op_id;
pub mod phase_spans;
mod snapshot;
mod spec;

pub use combine::{DurableService, ReadStats, ServiceClient, SnapshotReader};
pub use config::OnllConfig;
pub use construction::{Durable, RecoveryReport};
pub use error::OnllError;
pub use handle::ProcessHandle;
pub use hooks::{Hooks, Phase};
pub use local_view::LocalView;
pub use op_id::{OpId, Record, ResolveOutcome};
pub use snapshot::{ReadSnapshot, SnapshotGuard};
/// Former name of [`SnapshotSpec`], kept as an alias for downstream code.
pub use spec::SnapshotSpec as CheckpointableSpec;
pub use spec::{replay, KeyedSpec, OpCodec, SequentialSpec, SnapshotSpec};
