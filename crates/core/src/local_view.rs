//! Per-process local views (Section 8, "compressing the execution trace").
//!
//! In the base construction a read replays the entire execution trace, i.e. every
//! update ever applied. The paper's read-performance extension gives each process a
//! *local view*: a materialized object state together with the execution index it
//! reflects. A read then only replays the trace suffix between the local view's
//! index and the latest available node — typically a handful of operations — and an
//! update only replays the suffix up to its own node.

use crate::op_id::Record;
use crate::spec::SequentialSpec;
use exec_trace::{ExecutionTrace, TraceNode};

/// A materialized object state reflecting the trace prefix up to `idx`.
pub struct LocalView<S: SequentialSpec> {
    state: S,
    idx: u64,
    /// Highest operation sequence number this view has applied, per process
    /// slot (indexed by `OpId::pid`, grown on demand). Checkpoints persist
    /// these as their per-process sequence floors: every operation the
    /// checkpoint covers was applied by the checkpointing view, so an absent
    /// identity with a sequence number at or below the floor is *compacted*,
    /// not merely unexecuted (`ResolveOutcome::Truncated`).
    seq_high: Vec<u64>,
}

impl<S: SequentialSpec> LocalView<S> {
    /// A view of the initial state (reflecting execution index `base_idx`, which is
    /// 0 for a fresh object or the checkpoint index after recovery).
    pub fn new(state: S, base_idx: u64) -> Self {
        LocalView {
            state,
            idx: base_idx,
            seq_high: Vec::new(),
        }
    }

    /// The execution index this view reflects.
    pub fn idx(&self) -> u64 {
        self.idx
    }

    /// Read access to the materialized state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Highest applied operation sequence number per process slot (see the
    /// field documentation). Slots this view never applied an operation for
    /// are absent or 0.
    pub fn seq_high(&self) -> &[u64] {
        &self.seq_high
    }

    fn note_applied(&mut self, op_id: crate::op_id::OpId) {
        let pid = op_id.pid as usize;
        if self.seq_high.len() <= pid {
            self.seq_high.resize(pid + 1, 0);
        }
        self.seq_high[pid] = self.seq_high[pid].max(op_id.seq);
    }

    /// Advances the view to `target` by replaying the missing suffix of the trace,
    /// returning the value of the last applied operation (used by updates, whose
    /// return value is computed on the state immediately after their own
    /// operation). Returns `None` if no operation needed to be applied.
    pub fn advance_to(
        &mut self,
        trace: &ExecutionTrace<Option<Record<S::UpdateOp>>>,
        target: &TraceNode<Option<Record<S::UpdateOp>>>,
    ) -> Option<S::Value> {
        if target.idx() <= self.idx {
            return None;
        }
        if target.idx() == self.idx + 1 {
            // Single-step advance — the common case for an updating handle
            // (its own just-ordered operation): apply directly, no suffix
            // collection, no allocation.
            self.idx = target.idx();
            return target.op().as_ref().map(|r| {
                self.note_applied(r.op_id);
                self.state.apply(&r.op)
            });
        }
        let missing = trace.nodes_between(self.idx, target);
        let mut last_value = None;
        for node in missing {
            if let Some(record) = node.op() {
                self.note_applied(record.op_id);
                last_value = Some(self.state.apply(&record.op));
            }
            self.idx = node.idx();
        }
        last_value
    }
}

impl<S: SequentialSpec + std::fmt::Debug> std::fmt::Debug for LocalView<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalView")
            .field("idx", &self.idx)
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op_id::OpId;
    use crate::spec::OpCodec;

    #[derive(Debug, PartialEq)]
    struct Counter {
        value: u64,
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Inc;

    impl OpCodec for Inc {
        const MAX_ENCODED_SIZE: usize = 1;
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.push(1);
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            (bytes == [1]).then_some(Inc)
        }
    }

    impl SequentialSpec for Counter {
        type UpdateOp = Inc;
        type ReadOp = ();
        type Value = u64;
        fn initialize() -> Self {
            Counter { value: 0 }
        }
        fn apply(&mut self, _op: &Inc) -> u64 {
            self.value += 1;
            self.value
        }
        fn read(&self, _op: &()) -> u64 {
            self.value
        }
    }

    type Trace = ExecutionTrace<Option<Record<Inc>>>;

    fn record(pid: u32, seq: u64) -> Option<Record<Inc>> {
        Some(Record::new(OpId::new(pid, seq), Inc))
    }

    #[test]
    fn advance_applies_only_the_missing_suffix() {
        let trace: Trace = ExecutionTrace::new(None);
        let mut view = LocalView::new(Counter::initialize(), 0);
        let n1 = trace.insert(record(0, 1));
        let n2 = trace.insert(record(0, 2));
        assert_eq!(view.advance_to(&trace, n1), Some(1));
        assert_eq!(view.idx(), 1);
        assert_eq!(view.state().value, 1);
        // Advancing to the same node is a no-op.
        assert_eq!(view.advance_to(&trace, n1), None);
        assert_eq!(view.advance_to(&trace, n2), Some(2));
        assert_eq!(view.state().value, 2);
    }

    #[test]
    fn advance_skips_nothing_when_target_is_older() {
        let trace: Trace = ExecutionTrace::new(None);
        let n1 = trace.insert(record(0, 1));
        let n2 = trace.insert(record(0, 2));
        let mut view = LocalView::new(Counter::initialize(), 0);
        view.advance_to(&trace, n2);
        assert_eq!(view.idx(), 2);
        assert_eq!(view.advance_to(&trace, n1), None, "never goes backwards");
        assert_eq!(view.idx(), 2);
    }

    #[test]
    fn advance_from_checkpoint_base() {
        // A view based at index 10 (checkpoint state value 10) replays only newer nodes.
        let trace: Trace = ExecutionTrace::with_base(None, 10);
        let n11 = trace.insert(record(1, 1));
        let mut view = LocalView::new(Counter { value: 10 }, 10);
        assert_eq!(view.advance_to(&trace, n11), Some(11));
        assert_eq!(view.state().value, 11);
    }

    #[test]
    fn sentinel_record_is_skipped() {
        let trace: Trace = ExecutionTrace::new(None);
        let n1 = trace.insert(record(0, 1));
        let mut view = LocalView::new(Counter::initialize(), 0);
        // nodes_between never includes the sentinel, but even a None payload in the
        // range must not panic or count as an apply.
        assert_eq!(view.advance_to(&trace, n1), Some(1));
    }

    #[test]
    fn multi_process_interleaving_replays_in_index_order() {
        let trace: Trace = ExecutionTrace::new(None);
        for seq in 1..=3 {
            trace.insert(record(0, seq));
            trace.insert(record(1, seq));
        }
        let tail = trace.tail();
        let mut view = LocalView::new(Counter::initialize(), 0);
        assert_eq!(view.advance_to(&trace, tail), Some(6));
        assert_eq!(view.state().value, 6);
        assert_eq!(view.idx(), 6);
    }
}
