//! Operation identities and the records stored in the execution trace and logs.
//!
//! ONLL provides *detectable execution* (stronger than durable linearizability):
//! after recovery a process can determine whether a given operation was linearized
//! before the crash. To support this, every update is tagged with an [`OpId`] —
//! (process id, per-process sequence number) — and the tag is persisted together
//! with the operation in the log entries, so recovery can answer
//! "was my operation linearized?" exactly.

use crate::spec::OpCodec;

/// Identity of an update operation: the invoking process and its per-process
/// invocation sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId {
    /// Process (handle) identifier, `0 .. max_processes`.
    pub pid: u32,
    /// Per-process invocation counter, starting at 1.
    pub seq: u64,
}

impl OpId {
    /// Creates an operation id.
    pub fn new(pid: u32, seq: u64) -> Self {
        OpId { pid, seq }
    }
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}#{}", self.pid, self.seq)
    }
}

/// Outcome of an exactly-once reply retrieval ([`crate::Durable::resolve`]).
///
/// The three cases are what a retrying client needs to act safely:
///
/// * [`ResolveOutcome::Executed`] — the operation is linearized and the value
///   is byte-for-byte the response the original invocation returned (replay
///   determinism). Deliver it; do not re-submit.
/// * [`ResolveOutcome::Unknown`] — the operation never linearized. It is safe
///   to re-submit it under the **same** identity.
/// * [`ResolveOutcome::Truncated`] — the operation's sequence number falls at
///   or below a published checkpoint's per-process sequence floor: the covered
///   prefix was compacted away, so whether the operation executed is no longer
///   individually answerable. Re-submitting could double-apply it; callers
///   must surface a permanent error instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveOutcome<V> {
    /// Linearized; the remembered response.
    Executed(V),
    /// Never linearized; safe to re-submit under the same identity.
    Unknown,
    /// Compacted below a checkpoint's sequence floor; permanently unanswerable.
    Truncated,
}

impl<V> ResolveOutcome<V> {
    /// The remembered value, if the operation executed.
    pub fn executed(self) -> Option<V> {
        match self {
            ResolveOutcome::Executed(v) => Some(v),
            _ => None,
        }
    }

    /// True for [`ResolveOutcome::Executed`].
    pub fn is_executed(&self) -> bool {
        matches!(self, ResolveOutcome::Executed(_))
    }

    /// True for [`ResolveOutcome::Truncated`].
    pub fn is_truncated(&self) -> bool {
        matches!(self, ResolveOutcome::Truncated)
    }

    /// Maps the executed value, preserving the other cases.
    pub fn map<W>(self, f: impl FnOnce(V) -> W) -> ResolveOutcome<W> {
        match self {
            ResolveOutcome::Executed(v) => ResolveOutcome::Executed(f(v)),
            ResolveOutcome::Unknown => ResolveOutcome::Unknown,
            ResolveOutcome::Truncated => ResolveOutcome::Truncated,
        }
    }
}

/// An update operation tagged with its identity; this is the payload of execution
/// trace nodes and (encoded) of persistent log slots.
#[derive(Debug, Clone, PartialEq)]
pub struct Record<U> {
    /// Identity of the invocation.
    pub op_id: OpId,
    /// The update operation itself.
    pub op: U,
}

impl<U> Record<U> {
    /// Creates a record.
    pub fn new(op_id: OpId, op: U) -> Self {
        Record { op_id, op }
    }
}

/// Encoded size of a record with operations of type `U`.
pub(crate) fn record_slot_size<U: OpCodec>() -> usize {
    // pid (4) + seq (8) + op length prefix (2) + op payload.
    14 + U::MAX_ENCODED_SIZE
}

/// Appends a record's encoding to `buf` without intermediate allocation — the
/// hot-path variant used to encode fuzzy-window records directly into the
/// persistent log's entry buffer.
pub(crate) fn encode_record_into<U: OpCodec>(record: &Record<U>, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&record.op_id.pid.to_le_bytes());
    buf.extend_from_slice(&record.op_id.seq.to_le_bytes());
    // Reserve the op length prefix and back-patch it after the op encodes
    // itself straight into `buf`.
    let len_at = buf.len();
    buf.extend_from_slice(&[0u8; 2]);
    record.op.encode(buf);
    let op_len = buf.len() - len_at - 2;
    assert!(
        op_len <= U::MAX_ENCODED_SIZE,
        "operation encoding exceeds its declared MAX_ENCODED_SIZE"
    );
    buf[len_at..len_at + 2].copy_from_slice(&(op_len as u16).to_le_bytes());
}

/// Encodes a record into a fresh vector (test-only; the hot path encodes in
/// place via [`encode_record_into`]).
#[cfg(test)]
pub(crate) fn encode_record<U: OpCodec>(record: &Record<U>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(record_slot_size::<U>());
    encode_record_into(record, &mut buf);
    buf
}

/// Decodes a record previously encoded by [`encode_record`]. Returns `None` on
/// malformed input.
pub(crate) fn decode_record<U: OpCodec>(bytes: &[u8]) -> Option<Record<U>> {
    if bytes.len() < 14 {
        return None;
    }
    let pid = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let seq = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    let op_len = u16::from_le_bytes(bytes[12..14].try_into().ok()?) as usize;
    if bytes.len() < 14 + op_len {
        return None;
    }
    let op = U::decode(&bytes[14..14 + op_len])?;
    Some(Record {
        op_id: OpId::new(pid, seq),
        op,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct TinyOp(u32);

    impl OpCodec for TinyOp {
        const MAX_ENCODED_SIZE: usize = 4;
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            Some(TinyOp(u32::from_le_bytes(bytes.try_into().ok()?)))
        }
    }

    #[test]
    fn op_id_display_and_ordering() {
        let a = OpId::new(1, 5);
        let b = OpId::new(1, 6);
        let c = OpId::new(2, 1);
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "p1#5");
    }

    #[test]
    fn record_roundtrip() {
        let r = Record::new(OpId::new(3, 42), TinyOp(0xDEAD));
        let bytes = encode_record(&r);
        assert!(bytes.len() <= record_slot_size::<TinyOp>());
        let back: Record<TinyOp> = decode_record(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn record_decode_rejects_truncation() {
        let r = Record::new(OpId::new(0, 1), TinyOp(7));
        let bytes = encode_record(&r);
        for cut in 0..bytes.len() {
            assert!(
                decode_record::<TinyOp>(&bytes[..cut]).is_none(),
                "truncated to {cut} bytes still decoded"
            );
        }
    }

    #[test]
    fn slot_size_covers_worst_case() {
        assert!(record_slot_size::<TinyOp>() >= 14 + TinyOp::MAX_ENCODED_SIZE);
    }
}
