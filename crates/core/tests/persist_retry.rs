//! Fault absorption in the persist path: transient backend faults are retried
//! inside `try_update`/`commit_batch` (the failed log publish leaves slot and
//! sequence number unconsumed, so the retry overwrites exactly the same
//! entry), while an exhausted retry budget poisons the commit path so the
//! orphaned — ordered but never linearized — window can never be linearized
//! past (the double-apply hazard described on `OnllConfig::persist_retries`).

mod common;

use common::{CounterOp, CounterSpec};
use nvm_sim::{FaultPlan, NvmPool, PmemConfig};
use onll::{Durable, OnllConfig, OnllError, ResolveOutcome};

fn pool_with(plan: &FaultPlan) -> NvmPool {
    NvmPool::new(PmemConfig::with_capacity(32 << 20).fault_plan(plan.clone()))
}

#[test]
fn transient_fsync_faults_are_absorbed_by_persist_retry() {
    let plan = FaultPlan::seeded(7);
    let p = pool_with(&plan);
    let c = Durable::<CounterSpec>::create(p, OnllConfig::named("ctr")).unwrap();
    let mut h = c.register().unwrap();
    assert_eq!(h.update(CounterOp::Add(1)), 1);

    // Two consecutive injected fsync EIOs: attempts 1 and 2 fail, attempt 3
    // succeeds (default persist_retries = 3 allows up to 4 attempts).
    plan.fail_next_fsyncs_transient(2);
    assert_eq!(h.update(CounterOp::Add(10)), 11, "retry must absorb faults");
    assert!(plan.injected() >= 2, "both faults actually fired");

    // Exactly-once: the operation was applied a single time and is durable.
    let op_id = h.last_op_id().unwrap();
    assert_eq!(h.read(&()), 11);
    assert_eq!(c.resolve(op_id), ResolveOutcome::Executed(11));
    c.check_invariants().unwrap();
}

#[test]
fn transient_pwrite_faults_are_absorbed_too() {
    let plan = FaultPlan::seeded(3);
    let p = pool_with(&plan);
    let c = Durable::<CounterSpec>::create(p, OnllConfig::named("ctr")).unwrap();
    let mut h = c.register().unwrap();
    plan.fail_next_pwrites_transient(1);
    assert_eq!(h.update(CounterOp::Add(5)), 5);
    assert_eq!(plan.injected(), 1);
    c.check_invariants().unwrap();
}

#[test]
fn combiner_batches_retry_transient_faults() {
    let plan = FaultPlan::seeded(11);
    let p = pool_with(&plan);
    let cfg = OnllConfig::named("svc-ctr")
        .max_processes(4)
        .group_persist(2);
    let c = Durable::<CounterSpec>::create(p, cfg).unwrap();
    let service = c.service(2).unwrap();
    let mut client = service.client().unwrap();
    plan.fail_next_fsyncs_transient(2);
    let (value, op_id) = client.submit(CounterOp::Add(3)).unwrap();
    assert_eq!(value, 3);
    assert_eq!(c.resolve(op_id), ResolveOutcome::Executed(3));
    c.check_invariants().unwrap();
}

#[test]
fn exhausted_retries_poison_the_commit_path_but_not_reads() {
    let plan = FaultPlan::seeded(5);
    let p = pool_with(&plan);
    let c = Durable::<CounterSpec>::create(p, OnllConfig::named("ctr")).unwrap();
    let mut h = c.register().unwrap();
    assert_eq!(h.update(CounterOp::Add(1)), 1);

    // More consecutive faults than the retry budget (4 attempts) can absorb.
    plan.fail_next_fsyncs_transient(16);
    let failed_id = h.peek_next_op_id();
    let err = h.try_update(CounterOp::Add(100)).unwrap_err();
    assert!(matches!(err, OnllError::Nvm(_)), "persist error: {err:?}");

    // The commit path is poisoned: later updates are rejected *before*
    // ordering anything, even though the fault window has long recovered —
    // a success here could linearize past the orphaned window.
    let err = h.try_update(CounterOp::Add(200)).unwrap_err();
    let OnllError::Nvm(msg) = &err else {
        panic!("expected poisoned-path error, got {err:?}");
    };
    assert!(msg.contains("poisoned"), "unexpected message: {msg}");

    // Reads and resolve still serve the linearized prefix; the failed
    // operation is detectably not-executed (safe to replay after restart).
    assert_eq!(h.read(&()), 1);
    assert_eq!(c.read_latest(&()), 1);
    assert_eq!(c.resolve(failed_id), ResolveOutcome::Unknown);
}
