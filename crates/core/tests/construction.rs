//! Integration tests of the ONLL universal construction: fence bounds
//! (Theorem 5.1), concurrency, crash recovery (durable linearizability),
//! detectable execution, local views and checkpointing.

mod common;

use common::{Append, CounterOp, CounterSpec, ListSpec};
use nvm_sim::{NvmPool, PmemConfig, WritebackPolicy};
use onll::{Durable, Hooks, OnllConfig, OnllError, OpId, Phase, ResolveOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn pool() -> NvmPool {
    NvmPool::new(PmemConfig::with_capacity(32 << 20).apply_pending_at_crash(0.0))
}

fn counter(pool: &NvmPool, name: &str) -> Durable<CounterSpec> {
    Durable::create(pool.clone(), OnllConfig::named(name)).unwrap()
}

#[test]
fn sequential_updates_and_reads() {
    let p = pool();
    let c = counter(&p, "ctr");
    let mut h = c.register().unwrap();
    assert_eq!(h.update(CounterOp::Add(1)), 1);
    assert_eq!(h.update(CounterOp::Add(2)), 3);
    assert_eq!(h.read(&()), 3);
    assert_eq!(c.read_latest(&()), 3);
    assert_eq!(c.ordered_index(), 2);
    assert_eq!(c.linearized_index(), 2);
    c.check_invariants().unwrap();
}

#[test]
fn update_costs_exactly_one_persistent_fence_and_read_zero() {
    let p = pool();
    let c = counter(&p, "ctr");
    let mut h = c.register().unwrap();
    for i in 0..100 {
        let w = p.stats().op_window();
        h.update(CounterOp::Add(i));
        let d = w.close();
        assert_eq!(d.persistent_fences, 1, "update #{i}");
        let w = p.stats().op_window();
        h.read(&());
        let d = w.close();
        assert_eq!(d.persistent_fences, 0, "read #{i} must not fence");
        assert_eq!(d.fences, 0, "read #{i} must not even issue a plain fence");
        assert_eq!(d.flushes, 0, "read #{i} must not flush");
        assert_eq!(d.stores, 0, "read #{i} must not store to NVM");
    }
}

#[test]
fn full_replay_mode_matches_local_view_mode() {
    let p = pool();
    let c_lv = Durable::<CounterSpec>::create(p.clone(), OnllConfig::named("lv")).unwrap();
    let c_fr =
        Durable::<CounterSpec>::create(p.clone(), OnllConfig::named("fr").local_views(false))
            .unwrap();
    let mut h_lv = c_lv.register().unwrap();
    let mut h_fr = c_fr.register().unwrap();
    for i in -20i64..20 {
        assert_eq!(
            h_lv.update(CounterOp::Add(i)),
            h_fr.update(CounterOp::Add(i))
        );
        assert_eq!(h_lv.read(&()), h_fr.read(&()));
    }
}

#[test]
fn updates_visible_to_other_handles_only_after_linearization() {
    let p = pool();
    let c = counter(&p, "ctr");
    let mut h0 = c.register().unwrap();
    let mut h1 = c.register().unwrap();
    h0.update(CounterOp::Add(5));
    assert_eq!(h1.read(&()), 5, "reader sees linearized update");
}

#[test]
fn concurrent_updates_sum_correctly() {
    let p = pool();
    let c = Durable::<CounterSpec>::create(
        p.clone(),
        OnllConfig::named("ctr").max_processes(4).log_capacity(1024),
    )
    .unwrap();
    let threads = 4;
    let per_thread = 200;
    let mut join = Vec::new();
    for _ in 0..threads {
        let c = c.clone();
        join.push(std::thread::spawn(move || {
            let mut h = c.register().unwrap();
            for _ in 0..per_thread {
                h.update(CounterOp::Add(1));
            }
        }));
    }
    for j in join {
        j.join().unwrap();
    }
    assert_eq!(c.read_latest(&()), (threads * per_thread) as i64);
    assert_eq!(c.ordered_index(), (threads * per_thread) as u64);
    c.check_invariants().unwrap();
}

#[test]
fn concurrent_total_fences_at_most_one_per_update() {
    let p = pool();
    let c = Durable::<CounterSpec>::create(
        p.clone(),
        OnllConfig::named("ctr").max_processes(4).log_capacity(2048),
    )
    .unwrap();
    let before = p.stats().persistent_fences();
    let threads = 4;
    let per_thread = 150;
    let mut join = Vec::new();
    for _ in 0..threads {
        let c = c.clone();
        join.push(std::thread::spawn(move || {
            let mut h = c.register().unwrap();
            for _ in 0..per_thread {
                h.update(CounterOp::Add(1));
                h.read(&());
            }
        }));
    }
    for j in join {
        j.join().unwrap();
    }
    let total = p.stats().persistent_fences() - before;
    assert!(
        total <= (threads * per_thread) as u64,
        "{total} persistent fences for {} updates",
        threads * per_thread
    );
}

#[test]
fn linearization_order_is_a_single_total_order() {
    // Appends from multiple threads must be observed in the same total order by
    // every reader, and that order must equal the execution-index order.
    let p = pool();
    let c = Durable::<ListSpec>::create(
        p.clone(),
        OnllConfig::named("list")
            .max_processes(4)
            .log_capacity(1024),
    )
    .unwrap();
    let threads = 4;
    let per_thread = 100u32;
    let mut join = Vec::new();
    for t in 0..threads {
        let c = c.clone();
        join.push(std::thread::spawn(move || {
            let mut h = c.register().unwrap();
            for i in 0..per_thread {
                h.update(Append(t * 1000 + i));
            }
        }));
    }
    for j in join {
        j.join().unwrap();
    }
    let items = c.read_latest(&());
    assert_eq!(items.len(), (threads * per_thread) as usize);
    // Per-thread subsequences appear in program order.
    for t in 0..threads {
        let mine: Vec<u32> = items.iter().copied().filter(|v| v / 1000 == t).collect();
        let expected: Vec<u32> = (0..per_thread).map(|i| t * 1000 + i).collect();
        assert_eq!(mine, expected, "thread {t} program order violated");
    }
}

#[test]
fn recovery_restores_all_completed_updates() {
    let p = pool();
    let name = "ctr";
    {
        let c = counter(&p, name);
        let mut h = c.register().unwrap();
        for _ in 0..25 {
            h.update(CounterOp::Add(2));
        }
        assert_eq!(h.read(&()), 50);
    }
    p.crash_and_restart();
    let (c, report) = Durable::<CounterSpec>::recover(p.clone(), OnllConfig::named(name)).unwrap();
    assert_eq!(report.durable_index, 25);
    assert_eq!(report.replayed_ops(), 25);
    assert_eq!(c.read_latest(&()), 50);
    // The object keeps working after recovery.
    let mut h = c.register().unwrap();
    assert_eq!(h.update(CounterOp::Add(1)), 51);
}

#[test]
fn recovery_of_empty_object() {
    let p = pool();
    {
        let _c = counter(&p, "ctr");
    }
    p.crash_and_restart();
    let (c, report) = Durable::<CounterSpec>::recover(p.clone(), OnllConfig::named("ctr")).unwrap();
    assert_eq!(report.durable_index, 0);
    assert_eq!(c.read_latest(&()), 0);
}

#[test]
fn recovery_without_explicit_crash_is_also_consistent() {
    // Even without a crash (clean shutdown), recovery from NVM alone must
    // reconstruct everything, because all updates were persisted before returning.
    let p = pool();
    {
        let c = counter(&p, "ctr");
        let mut h = c.register().unwrap();
        for _ in 0..10 {
            h.update(CounterOp::Add(3));
        }
    }
    let (c, _) = Durable::<CounterSpec>::recover(p.clone(), OnllConfig::named("ctr")).unwrap();
    assert_eq!(c.read_latest(&()), 30);
}

#[test]
fn crash_during_update_preserves_prefix() {
    // Crash after the trace insert but before the log append: the in-flight update
    // must not be reflected after recovery, while all completed ones must be.
    let p = pool();
    let crashed = Arc::new(AtomicU64::new(0));
    let crashed2 = crashed.clone();
    let p2 = p.clone();
    let hooks = Hooks::new(move |phase, _pid| {
        if phase == Phase::BeforePersist && crashed2.fetch_add(1, Ordering::SeqCst) == 10 {
            let _ = p2.crash();
        }
    });
    let c = Durable::<CounterSpec>::create_with_hooks(p.clone(), OnllConfig::named("ctr"), hooks)
        .unwrap();
    let mut h = c.register().unwrap();
    let mut completed = 0i64;
    for _ in 0..20 {
        if p.is_frozen() {
            break;
        }
        match h.try_update(CounterOp::Add(1)) {
            Ok(_) if !p.is_frozen() => completed += 1,
            _ => break,
        }
    }
    assert!(p.is_frozen(), "the armed hook should have crashed the pool");
    p.crash_and_restart();
    let (c, report) = Durable::<CounterSpec>::recover(p.clone(), OnllConfig::named("ctr")).unwrap();
    // All updates that completed before the crash are present; the one in flight is
    // not (it never reached the log).
    assert_eq!(report.durable_index as i64, completed);
    assert_eq!(c.read_latest(&()), completed);
}

#[test]
fn detectable_execution_reports_linearized_ops() {
    let p = pool();
    let name = "ctr";
    let mut last_op: Option<OpId> = None;
    {
        let c = counter(&p, name);
        let mut h = c.register().unwrap();
        for _ in 0..5 {
            h.update(CounterOp::Add(1));
            last_op = h.last_op_id();
        }
        assert!(c.was_linearized(last_op.unwrap()));
        assert!(!c.was_linearized(OpId::new(7, 99)));
    }
    p.crash_and_restart();
    let (c, _) = Durable::<CounterSpec>::recover(p.clone(), OnllConfig::named(name)).unwrap();
    assert!(
        c.was_linearized(last_op.unwrap()),
        "completed op must be detected as linearized after recovery"
    );
    assert!(
        !c.was_linearized(OpId::new(0, 6)),
        "never-invoked op not reported"
    );
}

#[test]
fn hook_phases_fire_in_algorithm_order() {
    let p = pool();
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let order2 = order.clone();
    let hooks = Hooks::new(move |phase, _| order2.lock().push(phase));
    let c = Durable::<CounterSpec>::create_with_hooks(p, OnllConfig::named("ctr"), hooks).unwrap();
    let mut h = c.register().unwrap();
    h.update(CounterOp::Add(1));
    h.read(&());
    let seen = order.lock().clone();
    assert_eq!(
        seen,
        vec![
            Phase::BeforeOrder,
            Phase::AfterOrder,
            Phase::BeforePersist,
            Phase::AfterPersist,
            Phase::BeforeLinearize,
            Phase::AfterLinearize,
            Phase::BeforeResponse,
            Phase::BeforeReadSnapshot,
            Phase::BeforeReadResponse,
        ]
    );
}

#[test]
fn register_assigns_distinct_pids_and_releases_on_drop() {
    let p = pool();
    let c = Durable::<CounterSpec>::create(p, OnllConfig::named("ctr").max_processes(2)).unwrap();
    let h0 = c.register().unwrap();
    let h1 = c.register().unwrap();
    assert_ne!(h0.pid(), h1.pid());
    assert!(matches!(c.register(), Err(OnllError::NoFreeProcessSlot)));
    drop(h0);
    let h2 = c.register().unwrap();
    assert_eq!(h2.pid(), 0, "released slot is reused");
    assert!(matches!(
        c.handle_for(1),
        Err(OnllError::ProcessSlotUnavailable(1))
    ));
    drop(h1);
    assert!(c.handle_for(1).is_ok());
}

#[test]
fn create_twice_with_same_name_fails() {
    let p = pool();
    let _c = counter(&p, "ctr");
    assert!(matches!(
        Durable::<CounterSpec>::create(p.clone(), OnllConfig::named("ctr")),
        Err(OnllError::MetadataMismatch(_))
    ));
}

#[test]
fn recover_missing_object_fails() {
    let p = pool();
    assert!(matches!(
        Durable::<CounterSpec>::recover(p, OnllConfig::named("nope")),
        Err(OnllError::MetadataMissing(_))
    ));
}

#[test]
fn two_objects_share_a_pool_independently() {
    let p = pool();
    let a = counter(&p, "a");
    let b = counter(&p, "b");
    let mut ha = a.register().unwrap();
    let mut hb = b.register().unwrap();
    ha.update(CounterOp::Add(7));
    hb.update(CounterOp::Add(100));
    assert_eq!(a.read_latest(&()), 7);
    assert_eq!(b.read_latest(&()), 100);
    p.crash_and_restart();
    let (a, _) = Durable::<CounterSpec>::recover(p.clone(), OnllConfig::named("a")).unwrap();
    let (b, _) = Durable::<CounterSpec>::recover(p.clone(), OnllConfig::named("b")).unwrap();
    assert_eq!(a.read_latest(&()), 7);
    assert_eq!(b.read_latest(&()), 100);
}

#[test]
fn log_full_is_reported_and_nothing_is_ordered() {
    let p = pool();
    let c = Durable::<CounterSpec>::create(p, OnllConfig::named("ctr").log_capacity(4)).unwrap();
    let mut h = c.register().unwrap();
    for _ in 0..4 {
        h.update(CounterOp::Add(1));
    }
    let before = c.ordered_index();
    assert!(matches!(
        h.try_update(CounterOp::Add(1)),
        Err(OnllError::LogFull)
    ));
    assert_eq!(
        c.ordered_index(),
        before,
        "rejected update must not be ordered"
    );
    assert_eq!(c.read_latest(&()), 4);
}

#[test]
fn checkpointing_truncates_logs_and_recovery_uses_the_checkpoint() {
    let p = pool();
    let cfg = OnllConfig::named("ctr")
        .log_capacity(64)
        .checkpoint_every(10)
        .checkpoint_slot_bytes(256);
    let c = Durable::<CounterSpec>::create(p.clone(), cfg.clone()).unwrap();
    {
        let mut h = c.register().unwrap();
        for _ in 0..200 {
            h.update_with_checkpoint(CounterOp::Add(1)).unwrap();
        }
        assert!(
            h.log_len() < 64,
            "log must have been truncated by checkpoints (len={})",
            h.log_len()
        );
    }
    p.crash_and_restart();
    let (c, report) =
        Durable::<CounterSpec>::recover_with_checkpoints(p.clone(), cfg.clone()).unwrap();
    assert!(
        report.checkpoint_index > 0,
        "recovery started from a checkpoint"
    );
    assert_eq!(report.durable_index, 200);
    let mut h = c.register().unwrap();
    assert_eq!(h.read(&()), 200);
    assert_eq!(h.update(CounterOp::Add(5)), 205);
}

#[test]
fn plain_recover_refuses_when_checkpoints_exist() {
    let p = pool();
    let cfg = OnllConfig::named("ctr").checkpoint_every(5);
    let c = Durable::<CounterSpec>::create(p.clone(), cfg.clone()).unwrap();
    {
        let mut h = c.register().unwrap();
        for _ in 0..20 {
            h.update_with_checkpoint(CounterOp::Add(1)).unwrap();
        }
    }
    p.crash_and_restart();
    assert!(matches!(
        Durable::<CounterSpec>::recover(p.clone(), cfg.clone()),
        Err(OnllError::MetadataMismatch(_))
    ));
    let (c, _) = Durable::<CounterSpec>::recover_with_checkpoints(p, cfg).unwrap();
    assert_eq!(c.read_latest(&()), 20);
}

#[test]
fn checkpoint_requires_local_views() {
    let p = pool();
    assert!(matches!(
        Durable::<CounterSpec>::create(
            p,
            OnllConfig::named("ctr")
                .local_views(false)
                .checkpoint_every(5)
        ),
        Err(OnllError::MetadataMismatch(_))
    ));
}

#[test]
fn trace_prefix_reclamation_keeps_results_correct() {
    let p = pool();
    let cfg = OnllConfig::named("ctr")
        .checkpoint_every(8)
        .log_capacity(64)
        .checkpoint_slot_bytes(128);
    let c = Durable::<CounterSpec>::create(p.clone(), cfg).unwrap();
    let mut h = c.register().unwrap();
    // reclaim_batch default is 1024; lower the bar by doing enough updates.
    for _ in 0..2000 {
        h.update_with_checkpoint(CounterOp::Add(1)).unwrap();
    }
    assert_eq!(h.read(&()), 2000);
    c.check_invariants().unwrap();
}

#[test]
fn handle_registered_after_reclamation_seeds_from_the_snapshot() {
    // Regression: a handle registered after trace-prefix reclamation used to
    // seed its local view from the base state and silently miss the reclaimed
    // history. Fresh views (and anonymous replays) must seed from the newest
    // published checkpoint instead.
    let p = pool();
    let cfg = OnllConfig::named("ctr")
        .checkpoint_every(8)
        .log_capacity(4096)
        .checkpoint_slot_bytes(128);
    let c = Durable::<CounterSpec>::create(p.clone(), cfg).unwrap();
    {
        let mut h = c.register().unwrap();
        // Well past reclaim_batch (default 1024) so reclamation fires.
        for _ in 0..2000 {
            h.update_with_checkpoint(CounterOp::Add(1)).unwrap();
        }
    }
    let mut late = c.register().unwrap();
    assert_eq!(late.read(&()), 2000);
    assert_eq!(c.read_latest(&()), 2000);
    assert_eq!(late.update(CounterOp::Add(5)), 2005);
    c.check_invariants().unwrap();
}

#[test]
fn works_under_eager_and_random_eviction_policies() {
    for policy in [
        WritebackPolicy::EagerOnFlush,
        WritebackPolicy::RandomEviction {
            probability: 0.3,
            seed: 7,
        },
    ] {
        let p = NvmPool::new(
            PmemConfig::with_capacity(32 << 20)
                .policy(policy)
                .apply_pending_at_crash(1.0),
        );
        let c = Durable::<CounterSpec>::create(p.clone(), OnllConfig::named("ctr")).unwrap();
        {
            let mut h = c.register().unwrap();
            for _ in 0..30 {
                h.update(CounterOp::Add(1));
            }
        }
        drop(c);
        p.crash_and_restart();
        let (c, _) = Durable::<CounterSpec>::recover(p.clone(), OnllConfig::named("ctr")).unwrap();
        assert_eq!(c.read_latest(&()), 30, "policy {policy:?}");
    }
}

#[test]
fn repeated_crash_recover_cycles_accumulate_state() {
    let p = pool();
    {
        let c = counter(&p, "ctr");
        let mut h = c.register().unwrap();
        for _ in 0..5 {
            h.update(CounterOp::Add(1));
        }
    }
    let mut expected = 5i64;
    for round in 0..5 {
        p.crash_and_restart();
        let (c, report) =
            Durable::<CounterSpec>::recover(p.clone(), OnllConfig::named("ctr")).unwrap();
        assert_eq!(c.read_latest(&()), expected, "round {round}");
        assert_eq!(report.durable_index, expected as u64);
        let mut h = c.register().unwrap();
        for _ in 0..3 {
            h.update(CounterOp::Add(1));
        }
        expected += 3;
    }
}

#[test]
fn capacity_backstop_checkpoints_before_the_ring_fills() {
    // Entries are variable-length, so a log-bytes threshold sized against the
    // worst-case slot stride may never be reached by true occupancy. With
    // checkpointing enabled, the capacity backstop must still compact the
    // ring before appends fail with LogFull.
    let p = pool();
    let cfg = OnllConfig::named("backstop")
        .log_capacity(32)
        // Unreachably high byte threshold: 32 single-op entries occupy far
        // less than this, so only the backstop can fire.
        .checkpoint_when_log_exceeds(1 << 30)
        .checkpoint_slot_bytes(256);
    let obj = Durable::<CounterSpec>::create(p.clone(), cfg).unwrap();
    let mut h = obj.register().unwrap();
    for i in 0..200 {
        h.update_with_checkpoint(CounterOp::Add(1))
            .unwrap_or_else(|e| panic!("update {i} failed before the backstop fired: {e:?}"));
    }
    assert_eq!(obj.read_latest(&()), 200);
    assert!(
        obj.checkpoint_watermark() > 0,
        "the capacity backstop never checkpointed"
    );
}

#[test]
fn resolve_distinguishes_truncated_from_unknown() {
    // Regression: resolve used to answer `None` both for "never executed"
    // (safe to re-submit) and "compacted below a checkpoint floor" (re-submit
    // double-applies). The typed outcome must keep the two cases apart.
    let p = pool();
    let cfg = OnllConfig::named("resolve")
        .log_capacity(256)
        .checkpoint_every(10)
        .checkpoint_slot_bytes(256);
    let c = Durable::<CounterSpec>::create(p.clone(), cfg.clone()).unwrap();
    let mut h = c.register().unwrap();
    let early = h.peek_next_op_id();
    h.update(CounterOp::Add(1));
    // Before any checkpoint: an executed identity resolves Executed and a
    // never-invoked one resolves Unknown.
    assert_eq!(c.resolve(early), ResolveOutcome::Executed(1));
    assert_eq!(c.resolve(OpId::new(0, 999)), ResolveOutcome::Unknown);
    for _ in 0..30 {
        h.update_with_checkpoint(CounterOp::Add(1)).unwrap();
    }
    assert!(c.checkpoint_watermark() > 0, "a checkpoint published");
    // The early identity now lies below the published per-process floor: its
    // response is no longer derivable, so the answer is Truncated — never the
    // Unknown that would invite a double-applying re-submit.
    assert_eq!(c.resolve(early), ResolveOutcome::Truncated);
    // Identities above the floor are unaffected on both paths.
    let last = h.last_op_id().unwrap();
    assert_eq!(c.resolve(last), ResolveOutcome::Executed(31));
    assert_eq!(c.resolve(OpId::new(0, 999)), ResolveOutcome::Unknown);
    assert_eq!(c.resolve(OpId::new(7, 1)), ResolveOutcome::Unknown);
    drop(h);

    // The floors are persisted in the checkpoint slot, so the distinction
    // must survive a crash.
    p.crash_and_restart();
    let (c, _) = Durable::<CounterSpec>::recover_with_checkpoints(p.clone(), cfg).unwrap();
    assert_eq!(c.resolve(early), ResolveOutcome::Truncated);
    assert_eq!(c.resolve(last), ResolveOutcome::Executed(31));
    assert_eq!(c.resolve(OpId::new(0, 999)), ResolveOutcome::Unknown);
    // Post-recovery identities never collide with checkpoint-covered ones:
    // the sequence counter is re-seeded from max(floor, recovered log).
    let mut h = c.register().unwrap();
    let next = h.peek_next_op_id();
    assert!(
        next.seq > last.seq,
        "fresh identity {next} must be above the recovered high {last}"
    );
    assert_eq!(h.update(CounterOp::Add(1)), 32);
    assert_eq!(c.resolve(next), ResolveOutcome::Executed(32));
}

#[test]
fn recovered_identity_backlog_is_pruned_by_checkpoints() {
    // A long-running service recovers once, then keeps checkpointing: the
    // recovered-identity set must shrink below the watermark instead of
    // retaining one entry per recovered operation for the process lifetime.
    let p = pool();
    let cfg = OnllConfig::named("backlog")
        .log_capacity(256)
        .checkpoint_every(10)
        .checkpoint_slot_bytes(256);
    let c = Durable::<CounterSpec>::create(p.clone(), cfg.clone()).unwrap();
    let mut ids = Vec::new();
    {
        let mut h = c.register().unwrap();
        // No checkpoint before the crash: everything must be replayed.
        for _ in 0..25 {
            ids.push(h.peek_next_op_id());
            h.update(CounterOp::Add(1));
        }
    }
    p.crash_and_restart();
    let (c, report) = Durable::<CounterSpec>::recover(p.clone(), cfg).unwrap();
    assert_eq!(report.replayed_ops(), 25);
    assert_eq!(c.recovered_backlog(), 25, "one identity per recovered op");
    for id in &ids {
        assert!(c.was_linearized(*id));
    }

    // Keep updating with the small checkpoint interval: the first checkpoint's
    // watermark covers the whole recovered prefix and must prune it.
    let mut h = c.register().unwrap();
    for _ in 0..20 {
        h.update_with_checkpoint(CounterOp::Add(1)).unwrap();
    }
    assert!(c.checkpoint_watermark() >= 25, "a checkpoint published");
    assert_eq!(
        c.recovered_backlog(),
        0,
        "identities at or below the watermark must be pruned"
    );
    // Detectability above the watermark is unaffected, and recovered ops still
    // linked in the trace stay answerable through it.
    assert!(c.was_linearized(h.last_op_id().unwrap()));
    assert_eq!(c.read_latest(&()), 45);
}
