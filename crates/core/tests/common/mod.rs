//! Shared test specifications for the `onll` integration tests.

// Shared by several test binaries; not every binary uses every spec.
#![allow(dead_code)]

use onll::{OpCodec, SequentialSpec, SnapshotSpec};

/// A counter supporting `Add(k)` updates and a read returning the current value.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSpec {
    pub value: i64,
}

#[derive(Debug, Clone, PartialEq)]
pub enum CounterOp {
    Add(i64),
}

impl OpCodec for CounterOp {
    const MAX_ENCODED_SIZE: usize = 9;

    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CounterOp::Add(k) => {
                buf.push(1);
                buf.extend_from_slice(&k.to_le_bytes());
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() == 9 && bytes[0] == 1 {
            Some(CounterOp::Add(i64::from_le_bytes(
                bytes[1..].try_into().ok()?,
            )))
        } else {
            None
        }
    }
}

impl SequentialSpec for CounterSpec {
    type UpdateOp = CounterOp;
    type ReadOp = ();
    type Value = i64;

    fn initialize() -> Self {
        CounterSpec { value: 0 }
    }

    fn apply(&mut self, op: &CounterOp) -> i64 {
        match op {
            CounterOp::Add(k) => self.value += k,
        }
        self.value
    }

    fn read(&self, _op: &()) -> i64 {
        self.value
    }
}

impl SnapshotSpec for CounterSpec {
    fn encode_state(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.value.to_le_bytes());
    }

    fn decode_state(bytes: &[u8]) -> Option<Self> {
        Some(CounterSpec {
            value: i64::from_le_bytes(bytes.try_into().ok()?),
        })
    }
}

/// An append-only list of small integers; reads return the whole list (useful for
/// checking linearization *order*, not just final values).
#[derive(Debug, Clone, PartialEq)]
pub struct ListSpec {
    pub items: Vec<u32>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Append(pub u32);

impl OpCodec for Append {
    const MAX_ENCODED_SIZE: usize = 4;

    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(Append(u32::from_le_bytes(bytes.try_into().ok()?)))
    }
}

impl SequentialSpec for ListSpec {
    type UpdateOp = Append;
    type ReadOp = ();
    type Value = Vec<u32>;

    fn initialize() -> Self {
        ListSpec { items: Vec::new() }
    }

    fn apply(&mut self, op: &Append) -> Vec<u32> {
        self.items.push(op.0);
        self.items.clone()
    }

    fn read(&self, _op: &()) -> Vec<u32> {
        self.items.clone()
    }
}
