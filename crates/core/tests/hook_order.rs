//! Hook-ordering regression tests: every successful update fires the
//! [`Phase`] sequence exactly once and in order — on the simulator *and* the
//! file backend, and through the combined-commit front-end. The phase-span
//! telemetry relies on this (each span is opened by one phase and closed by a
//! later one), so a reordered or duplicated hook would silently corrupt the
//! latency distributions long before any consistency check noticed.

mod common;

use common::{CounterOp, CounterSpec};
use nvm_sim::{scratch_dir, BackendSpec, NvmPool, PmemConfig};
use onll::{Durable, Hooks, OnllConfig, Phase};
use std::sync::{Arc, Mutex};

/// Shared record of every `(phase, pid)` a hook observed, in firing order.
type PhaseLog = Arc<Mutex<Vec<(Phase, u32)>>>;

/// A hook recording every `(phase, pid)` it observes, in firing order.
fn recorder() -> (Hooks, PhaseLog) {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    let hooks = Hooks::new(move |phase, pid| sink.lock().unwrap().push((phase, pid)));
    (hooks, seen)
}

/// Asserts `phases` is exactly `n` back-to-back repetitions of
/// [`Phase::UPDATE_PHASES`].
fn assert_update_sequences(phases: &[Phase], n: usize, context: &str) {
    assert_eq!(
        phases.len(),
        n * Phase::UPDATE_PHASES.len(),
        "{context}: expected {n} complete update sequences, got {phases:?}"
    );
    for (i, phase) in phases.iter().enumerate() {
        let expected = Phase::UPDATE_PHASES[i % Phase::UPDATE_PHASES.len()];
        assert_eq!(
            *phase, expected,
            "{context}: phase {i} out of order in {phases:?}"
        );
    }
}

fn run_direct_updates(pool: NvmPool, updates: usize, context: &str) {
    let (hooks, seen) = recorder();
    let c = Durable::<CounterSpec>::create_with_hooks(pool, OnllConfig::named("hook-order"), hooks)
        .unwrap();
    let mut h = c.register().unwrap();
    for i in 0..updates {
        h.update(CounterOp::Add(i as i64 + 1));
    }
    let phases: Vec<Phase> = seen.lock().unwrap().iter().map(|(p, _)| *p).collect();
    assert_update_sequences(&phases, updates, context);
}

#[test]
fn direct_updates_fire_the_phase_sequence_once_each_on_sim() {
    let pool = NvmPool::new(PmemConfig::with_capacity(32 << 20));
    run_direct_updates(pool, 25, "sim backend");
}

#[test]
fn direct_updates_fire_the_phase_sequence_once_each_on_file() {
    let dir = scratch_dir("hook-order-file").unwrap();
    let pool = NvmPool::provision(
        &BackendSpec::file(&dir),
        PmemConfig::with_capacity(32 << 20),
        "hook-order",
    )
    .unwrap();
    run_direct_updates(pool, 10, "file backend");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn reads_fire_only_the_read_phases() {
    let pool = NvmPool::new(PmemConfig::with_capacity(32 << 20));
    let (hooks, seen) = recorder();
    let c = Durable::<CounterSpec>::create_with_hooks(pool, OnllConfig::named("hook-order"), hooks)
        .unwrap();
    let mut h = c.register().unwrap();
    h.update(CounterOp::Add(1));
    seen.lock().unwrap().clear();
    for _ in 0..5 {
        h.read(&());
    }
    let phases: Vec<Phase> = seen.lock().unwrap().iter().map(|(p, _)| *p).collect();
    assert_eq!(
        phases,
        [Phase::BeforeReadSnapshot, Phase::BeforeReadResponse].repeat(5)
    );
}

#[test]
fn single_client_combined_commits_fire_the_sequence_once_per_update() {
    // One live client: every submit is its own combined batch, so the update
    // sequence must fire exactly once per update, in order, on that client.
    let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20));
    let (hooks, seen) = recorder();
    let c = Durable::<CounterSpec>::create_with_hooks(
        pool,
        OnllConfig::named("hook-order").max_processes(2),
        hooks,
    )
    .unwrap();
    let service = c.service(1).unwrap();
    let mut client = service.client().unwrap();
    for i in 0..20 {
        client.submit(CounterOp::Add(i + 1)).unwrap();
    }
    let phases: Vec<Phase> = seen.lock().unwrap().iter().map(|(p, _)| *p).collect();
    assert_update_sequences(&phases, 20, "combined commit, single client");
}

#[test]
fn concurrent_combined_commits_fire_one_ordered_sequence_per_batch() {
    // With several live clients, ops coalesce: the sequence fires once per
    // *combined commit* on the combiner's pid. Each pid's stream must still be
    // a concatenation of complete in-order sequences, and the total number of
    // sequences must equal the service's own batch count (no batch commits
    // without firing the sequence; none fires it twice).
    let threads = 4usize;
    let per_thread = 50usize;
    let pool = NvmPool::new(PmemConfig::with_capacity(64 << 20));
    let (hooks, seen) = recorder();
    let c = Durable::<CounterSpec>::create_with_hooks(
        pool,
        OnllConfig::named("hook-order")
            .max_processes(threads + 1)
            .log_capacity(1 << 12)
            .group_persist(threads),
        hooks,
    )
    .unwrap();
    let service = c.service(threads).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let mut client = service.client().unwrap();
            scope.spawn(move || {
                for i in 0..per_thread {
                    client.submit(CounterOp::Add(i as i64 + 1)).unwrap();
                }
            });
        }
    });
    let events = seen.lock().unwrap();
    let pids: std::collections::BTreeSet<u32> = events.iter().map(|(_, pid)| *pid).collect();
    let mut total_sequences = 0;
    for pid in pids {
        let phases: Vec<Phase> = events
            .iter()
            .filter(|(_, p)| *p == pid)
            .map(|(phase, _)| *phase)
            .collect();
        assert_eq!(
            phases.len() % Phase::UPDATE_PHASES.len(),
            0,
            "pid {pid}: truncated sequence in {phases:?}"
        );
        let n = phases.len() / Phase::UPDATE_PHASES.len();
        assert_update_sequences(&phases, n, &format!("combined commit, pid {pid}"));
        total_sequences += n as u64;
    }
    let (batches, ops) = service.batch_stats();
    assert_eq!(ops, (threads * per_thread) as u64);
    assert_eq!(
        total_sequences, batches,
        "every combined batch fires the update sequence exactly once"
    );
}
