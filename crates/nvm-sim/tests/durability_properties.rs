//! Property tests of the simulator's durability guarantees.
//!
//! Whatever the write-back policy and crash point, two invariants must hold:
//!
//! 1. data that was written, flushed and fenced before the crash is always
//!    readable afterwards (persistence is guaranteed);
//! 2. data that was never written never materializes (no phantom bytes), and under
//!    the adversarial `OnlyOnFence` policy with pending-flush probability 0, data
//!    that was never fenced never survives.

use nvm_sim::{NvmPool, PmemConfig, WritebackPolicy, CACHE_LINE_SIZE};
use proptest::prelude::*;

fn policies() -> Vec<WritebackPolicy> {
    vec![
        WritebackPolicy::OnlyOnFence,
        WritebackPolicy::EagerOnFlush,
        WritebackPolicy::RandomEviction {
            probability: 0.5,
            seed: 11,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Persisted writes survive a crash under every policy and any pending-flush
    /// fate.
    #[test]
    fn persisted_writes_always_survive(
        writes in proptest::collection::vec((0u64..64, proptest::collection::vec(any::<u8>(), 1..40)), 1..20),
        pending_prob in 0.0f64..=1.0,
        policy_idx in 0usize..3,
    ) {
        let policy = policies()[policy_idx];
        let pool = NvmPool::new(
            PmemConfig::with_capacity(4 << 20)
                .policy(policy)
                .apply_pending_at_crash(pending_prob),
        );
        let base = pool.alloc(64 * CACHE_LINE_SIZE).unwrap();
        // Persist each write (write + flush + fence); later writes may overlap
        // earlier ones — the last persisted value per byte must win.
        let mut expected = vec![0u8; 64 * CACHE_LINE_SIZE];
        for (slot, data) in &writes {
            let addr = base + slot * CACHE_LINE_SIZE as u64;
            pool.persist(addr, data).unwrap();
            expected[(slot * CACHE_LINE_SIZE as u64) as usize..][..data.len()]
                .copy_from_slice(data);
        }
        pool.crash_and_restart();
        for (slot, data) in &writes {
            let addr = base + slot * CACHE_LINE_SIZE as u64;
            let got = pool.read_vec(addr, data.len());
            let want = &expected[(slot * CACHE_LINE_SIZE as u64) as usize..][..data.len()];
            prop_assert_eq!(got.as_slice(), want, "slot {} lost or corrupted", slot);
        }
    }

    /// Unfenced writes never survive under the adversarial policy with pending
    /// flushes dropped, and bytes that were never written never appear.
    #[test]
    fn unfenced_writes_never_survive_under_adversarial_policy(
        writes in proptest::collection::vec((0u64..32, any::<u8>()), 1..20),
        flush_some in any::<bool>(),
    ) {
        let pool = NvmPool::new(
            PmemConfig::with_capacity(1 << 20)
                .policy(WritebackPolicy::OnlyOnFence)
                .apply_pending_at_crash(0.0),
        );
        let base = pool.alloc(32 * CACHE_LINE_SIZE).unwrap();
        for (slot, byte) in &writes {
            let addr = base + slot * CACHE_LINE_SIZE as u64;
            pool.write(addr, &[*byte]);
            if flush_some {
                pool.flush(addr, 1); // flushed but never fenced
            }
        }
        pool.crash_and_restart();
        for slot in 0..32u64 {
            let got = pool.read_vec(base + slot * CACHE_LINE_SIZE as u64, 1);
            prop_assert_eq!(got[0], 0, "slot {} retained an unfenced write", slot);
        }
    }

    /// The persistent-fence counter equals the number of fences that had pending
    /// flushes, independent of interleaving with plain fences.
    #[test]
    fn persistent_fence_accounting_is_exact(
        script in proptest::collection::vec(0u8..3, 1..60),
    ) {
        let pool = NvmPool::new(PmemConfig::with_capacity(1 << 20));
        let base = pool.alloc(4096).unwrap();
        let before = pool.stats().snapshot();
        let mut pending = false;
        let mut expected_persistent = 0u64;
        let mut expected_fences = 0u64;
        for (i, action) in script.iter().enumerate() {
            match action {
                0 => pool.write(base + (i as u64 % 32) * 64, &[i as u8]),
                1 => {
                    pool.flush(base + (i as u64 % 32) * 64, 1);
                    pending = true;
                }
                _ => {
                    pool.fence().unwrap();
                    expected_fences += 1;
                    if pending {
                        expected_persistent += 1;
                        pending = false;
                    }
                }
            }
        }
        let delta = pool.stats().snapshot().global_delta(&before);
        prop_assert_eq!(delta.fences, expected_fences);
        prop_assert_eq!(delta.persistent_fences, expected_persistent);
    }
}
