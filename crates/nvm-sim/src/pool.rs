//! A persistent pool: an [`NvmRegion`] plus a crash-surviving allocator and a table
//! of named roots.
//!
//! Persistent data structures need a way to find their data again after a crash:
//! machine pointers are meaningless across restarts, so the pool hands out stable
//! offsets ([`PAddr`]) and lets structures register *named roots* that the recovery
//! code looks up. The allocator is a simple bump allocator whose cursor is itself
//! persisted (allocation is rare — logs and checkpoint areas are allocated at
//! setup time).

use crate::backend::{BackendSpec, PmemBackend};
use crate::device::PersistDevice;
use crate::error::NvmError;
use crate::file::FileBackend;
use crate::layout::{PAddr, CACHE_LINE_SIZE};
use crate::policy::PmemConfig;
use crate::region::{CrashToken, CrashTrigger, NvmRegion};
use crate::stats::FenceStats;
use parking_lot::Mutex;
use std::sync::Arc;

const MAGIC: u64 = 0x4F4E4C4C_53504141; // "ONLL" "SPAA"
const MAGIC_ADDR: PAddr = 0;
const BUMP_ADDR: PAddr = 8;
const ROOT_TABLE_ADDR: PAddr = 64;
const ROOT_ENTRY_SIZE: u64 = 24;
/// Maximum number of named roots a pool can hold.
pub const MAX_ROOTS: usize = 64;
const DATA_START: PAddr = 4096;

/// Identifier of a named root. Produced by [`RootId::from_name`] or from a raw id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RootId(pub u64);

impl RootId {
    /// Derives a root id from a human-readable name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        // Zero is reserved to mean "empty slot".
        if h == 0 {
            h = 1;
        }
        RootId(h)
    }
}

/// A persistent-memory pool: backend + allocator + named roots.
///
/// The pool is cheaply cloneable (it is an `Arc` internally); clones refer to
/// the same backend. Which [`PmemBackend`] carries the bytes — the simulator
/// or a real file — is fixed at construction; everything above the pool is
/// backend-agnostic.
#[derive(Clone)]
pub struct NvmPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    backend: Arc<dyn PmemBackend>,
    alloc_lock: Mutex<()>,
}

impl NvmPool {
    /// Creates and formats a fresh simulator-backed pool (the historical
    /// default; equivalent to [`NvmPool::format`] over an [`NvmRegion`]).
    pub fn new(cfg: PmemConfig) -> Self {
        Self::format(Arc::new(NvmRegion::new(cfg)))
    }

    /// Wraps `backend` in a pool and formats it: writes the magic header,
    /// zeroes the root table and resets the allocation cursor. Destroys any
    /// previous pool contents — use [`NvmPool::open`] to attach to an
    /// existing pool (e.g. a reopened file) instead.
    pub fn format(backend: Arc<dyn PmemBackend>) -> Self {
        assert!(
            backend.capacity() > DATA_START + CACHE_LINE_SIZE as u64,
            "pool capacity too small"
        );
        let pool = NvmPool {
            inner: Arc::new(PoolInner {
                backend,
                alloc_lock: Mutex::new(()),
            }),
        };
        pool.write_u64(BUMP_ADDR, DATA_START);
        // Zero the root table.
        let zeros = vec![0u8; (MAX_ROOTS as u64 * ROOT_ENTRY_SIZE) as usize];
        pool.write(ROOT_TABLE_ADDR, &zeros);
        pool.write_u64(MAGIC_ADDR, MAGIC);
        pool.flush(0, DATA_START as usize);
        pool.fence().expect("pool format fence failed");
        pool
    }

    /// Attaches to an already-formatted pool in `backend` **without**
    /// formatting — the recovery entry point. Fails if the header magic is
    /// missing (the backend never held a pool, or lost its header).
    pub fn open(backend: Arc<dyn PmemBackend>) -> Result<Self, NvmError> {
        let pool = NvmPool {
            inner: Arc::new(PoolInner {
                backend,
                alloc_lock: Mutex::new(()),
            }),
        };
        pool.check_header()?;
        Ok(pool)
    }

    /// Creates and formats a fresh pool on the backend selected by `spec`.
    /// For [`BackendSpec::File`], the backing file is `dir/<label>.pmem`
    /// (truncated if present). For [`BackendSpec::Device`], the pool becomes a
    /// segment of the shared device file and its fences coalesce with every
    /// other pool on the device.
    pub fn provision(spec: &BackendSpec, cfg: PmemConfig, label: &str) -> Result<Self, NvmError> {
        match spec {
            BackendSpec::Sim => Ok(Self::new(cfg)),
            BackendSpec::File { .. } => {
                let path = spec.pool_path(label).expect("file spec has a pool path");
                Ok(Self::format(Arc::new(FileBackend::create(path, cfg)?)))
            }
            BackendSpec::Device { path } => {
                let device = PersistDevice::handle(path, &cfg)?;
                Ok(Self::format(Arc::new(FileBackend::create_on_device(
                    &device, label, cfg,
                )?)))
            }
        }
    }

    /// Reopens an existing pool previously created by [`NvmPool::provision`]
    /// under the same `spec`/`label` — this is how a restarted process finds
    /// its data again. The simulator has no cross-process representation, so
    /// reopening it is an error.
    pub fn reopen(spec: &BackendSpec, cfg: PmemConfig, label: &str) -> Result<Self, NvmError> {
        match spec {
            BackendSpec::Sim => Err(NvmError::ReopenUnsupported("sim")),
            BackendSpec::File { .. } => {
                let path = spec.pool_path(label).expect("file spec has a pool path");
                Self::open(Arc::new(FileBackend::open(path, cfg)?))
            }
            BackendSpec::Device { path } => {
                let device = PersistDevice::handle(path, &cfg)?;
                Self::open(Arc::new(FileBackend::open_on_device(&device, label, cfg)?))
            }
        }
    }

    /// Checks that the pool header survived (magic intact). Call after a crash and
    /// restart before using the pool again.
    pub fn check_header(&self) -> Result<(), NvmError> {
        if self.read_u64(MAGIC_ADDR) == MAGIC {
            Ok(())
        } else {
            Err(NvmError::CorruptHeader)
        }
    }

    /// The underlying persistence backend.
    pub fn backend(&self) -> &Arc<dyn PmemBackend> {
        &self.inner.backend
    }

    /// Short name of the underlying backend ("sim" / "file").
    pub fn backend_name(&self) -> &'static str {
        self.inner.backend.backend_name()
    }

    /// Persistence statistics (shared with the backend).
    pub fn stats(&self) -> &FenceStats {
        self.inner.backend.stats()
    }

    /// The metric sink configured for this pool (disabled by default). Every
    /// layer built on the pool — persist-log, core, combine, checkpoint —
    /// resolves its metric handles through here, so enabling telemetry on the
    /// [`PmemConfig`] instruments the whole stack.
    pub fn telemetry(&self) -> &onll_telemetry::Telemetry {
        &self.inner.backend.config().telemetry
    }

    /// Allocates `size` bytes (rounded up to whole cache lines) and returns the
    /// starting address. The allocation cursor is persisted so allocations are not
    /// forgotten across crashes.
    pub fn alloc(&self, size: usize) -> Result<PAddr, NvmError> {
        let _guard = self.inner.alloc_lock.lock();
        let rounded = size.div_ceil(CACHE_LINE_SIZE) * CACHE_LINE_SIZE;
        let cur = self.read_u64(BUMP_ADDR);
        let end = cur
            .checked_add(rounded as u64)
            .ok_or(NvmError::OutOfMemory {
                requested: size,
                remaining: 0,
            })?;
        if end > self.capacity() {
            return Err(NvmError::OutOfMemory {
                requested: size,
                remaining: self.capacity().saturating_sub(cur),
            });
        }
        self.write_u64(BUMP_ADDR, end);
        self.flush(BUMP_ADDR, 8);
        self.fence()?;
        Ok(cur)
    }

    /// Registers (or updates) a named root pointing at `[addr, addr+len)`.
    pub fn set_root(&self, id: RootId, addr: PAddr, len: u64) -> Result<(), NvmError> {
        let _guard = self.inner.alloc_lock.lock();
        let mut free_slot = None;
        for slot in 0..MAX_ROOTS {
            let entry_addr = ROOT_TABLE_ADDR + slot as u64 * ROOT_ENTRY_SIZE;
            let existing = self.read_u64(entry_addr);
            if existing == id.0 {
                free_slot = Some(entry_addr);
                break;
            }
            if existing == 0 && free_slot.is_none() {
                free_slot = Some(entry_addr);
            }
        }
        let entry_addr = free_slot.ok_or(NvmError::RootTableFull)?;
        // Write payload first, then the id, so a torn update never exposes an id
        // with a stale payload from a *different* root.
        self.write_u64(entry_addr + 8, addr);
        self.write_u64(entry_addr + 16, len);
        self.write_u64(entry_addr, id.0);
        self.flush(entry_addr, ROOT_ENTRY_SIZE as usize);
        self.fence()?;
        Ok(())
    }

    /// Looks up a named root. Returns `(addr, len)`.
    pub fn get_root(&self, id: RootId) -> Option<(PAddr, u64)> {
        for slot in 0..MAX_ROOTS {
            let entry_addr = ROOT_TABLE_ADDR + slot as u64 * ROOT_ENTRY_SIZE;
            if self.read_u64(entry_addr) == id.0 {
                let addr = self.read_u64(entry_addr + 8);
                let len = self.read_u64(entry_addr + 16);
                return Some((addr, len));
            }
        }
        None
    }

    /// Looks up a named root, returning an error if missing.
    pub fn require_root(&self, id: RootId) -> Result<(PAddr, u64), NvmError> {
        self.get_root(id).ok_or(NvmError::RootNotFound(id.0))
    }

    // ----- forwarding helpers to the region -----

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.backend.capacity()
    }

    /// See [`NvmRegion::write`].
    pub fn write(&self, addr: PAddr, data: &[u8]) {
        self.inner.backend.write(addr, data)
    }

    /// See [`NvmRegion::read`].
    pub fn read(&self, addr: PAddr, buf: &mut [u8]) {
        self.inner.backend.read(addr, buf)
    }

    /// Reads `len` bytes at `addr` into a fresh vector.
    pub fn read_vec(&self, addr: PAddr, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf);
        buf
    }

    /// Reads the *durable* contents only — what a crash at this instant would
    /// preserve. See [`PmemBackend::read_durable`].
    pub fn read_durable(&self, addr: PAddr, buf: &mut [u8]) {
        self.inner.backend.read_durable(addr, buf)
    }

    /// See [`NvmRegion::flush`].
    pub fn flush(&self, addr: PAddr, len: usize) {
        self.inner.backend.flush(addr, len)
    }

    /// Drains the calling thread's pending flushes. See [`PmemBackend::fence`]
    /// for the meaning of `Ok(true)` / `Ok(false)` / `Err`.
    pub fn fence(&self) -> Result<bool, NvmError> {
        self.inner.backend.fence()
    }

    /// Write + flush + fence of one range. See [`PmemBackend::persist`].
    pub fn persist(&self, addr: PAddr, data: &[u8]) -> Result<bool, NvmError> {
        self.inner.backend.persist(addr, data)
    }

    /// Writes a little-endian `u64` at `addr` (cache only; not durable yet).
    pub fn write_u64(&self, addr: PAddr, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: PAddr) -> u64 {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&self, addr: PAddr, value: u32) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: PAddr) -> u32 {
        let mut buf = [0u8; 4];
        self.read(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Injects a full-system crash. See [`NvmRegion::crash`].
    pub fn crash(&self) -> CrashToken {
        self.inner.backend.crash()
    }

    /// Restarts after a crash. See [`NvmRegion::restart`].
    pub fn restart(&self, token: CrashToken) {
        self.inner.backend.restart(token)
    }

    /// Injects a crash and immediately restarts (the common pattern in tests).
    pub fn crash_and_restart(&self) {
        let t = self.crash();
        self.restart(t);
    }

    /// Arms an automatic crash. See [`NvmRegion::arm_crash`].
    pub fn arm_crash(&self, trigger: CrashTrigger) {
        self.inner.backend.arm_crash(trigger)
    }

    /// Disarms an armed crash. See [`NvmRegion::disarm_crash`].
    pub fn disarm_crash(&self) {
        self.inner.backend.disarm_crash()
    }

    /// True if the region is currently frozen by a crash.
    pub fn is_frozen(&self) -> bool {
        self.inner.backend.is_frozen()
    }
}

impl std::fmt::Debug for NvmPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmPool")
            .field("capacity", &self.capacity())
            .field("crashes", &self.inner.backend.crash_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PmemConfig;

    fn pool() -> NvmPool {
        NvmPool::new(PmemConfig::with_capacity(1 << 20))
    }

    #[test]
    fn header_survives_crash() {
        let p = pool();
        p.crash_and_restart();
        assert!(p.check_header().is_ok());
    }

    #[test]
    fn alloc_returns_distinct_line_aligned_regions() {
        let p = pool();
        let a = p.alloc(10).unwrap();
        let b = p.alloc(100).unwrap();
        assert_eq!(a % CACHE_LINE_SIZE as u64, 0);
        assert_eq!(b % CACHE_LINE_SIZE as u64, 0);
        assert!(b >= a + 64);
        assert!(a >= DATA_START);
    }

    #[test]
    fn alloc_cursor_survives_crash() {
        let p = pool();
        let a = p.alloc(64).unwrap();
        p.crash_and_restart();
        let b = p.alloc(64).unwrap();
        assert_ne!(a, b, "allocator must not hand out the same region twice");
    }

    #[test]
    fn alloc_out_of_memory() {
        let p = NvmPool::new(PmemConfig::with_capacity(8192));
        let r = p.alloc(1 << 20);
        assert!(matches!(r, Err(NvmError::OutOfMemory { .. })));
    }

    #[test]
    fn roots_roundtrip_and_survive_crash() {
        let p = pool();
        let id = RootId::from_name("my-log");
        let addr = p.alloc(256).unwrap();
        p.set_root(id, addr, 256).unwrap();
        assert_eq!(p.get_root(id), Some((addr, 256)));
        p.crash_and_restart();
        assert_eq!(p.get_root(id), Some((addr, 256)));
    }

    #[test]
    fn root_update_overwrites_in_place() {
        let p = pool();
        let id = RootId::from_name("root");
        p.set_root(id, 100, 1).unwrap();
        p.set_root(id, 200, 2).unwrap();
        assert_eq!(p.get_root(id), Some((200, 2)));
        // Did not consume two slots: we can still fill the rest of the table.
        for i in 0..(MAX_ROOTS - 1) {
            p.set_root(RootId(1000 + i as u64), i as u64, 0).unwrap();
        }
        assert!(matches!(
            p.set_root(RootId(5_000_000), 0, 0),
            Err(NvmError::RootTableFull)
        ));
    }

    #[test]
    fn missing_root_is_none() {
        let p = pool();
        assert_eq!(p.get_root(RootId::from_name("nope")), None);
        assert!(p.require_root(RootId::from_name("nope")).is_err());
    }

    #[test]
    fn root_ids_from_names_are_stable_and_distinct() {
        assert_eq!(RootId::from_name("a"), RootId::from_name("a"));
        assert_ne!(RootId::from_name("a"), RootId::from_name("b"));
        assert_ne!(RootId::from_name("log-0").0, 0);
    }

    #[test]
    fn u64_and_u32_helpers_roundtrip() {
        let p = pool();
        let a = p.alloc(64).unwrap();
        p.write_u64(a, u64::MAX - 5);
        p.write_u32(a + 8, 77);
        assert_eq!(p.read_u64(a), u64::MAX - 5);
        assert_eq!(p.read_u32(a + 8), 77);
    }

    #[test]
    fn clones_share_the_same_memory() {
        let p = pool();
        let q = p.clone();
        let a = p.alloc(64).unwrap();
        p.write_u64(a, 123);
        assert_eq!(q.read_u64(a), 123);
    }

    #[test]
    fn unpersisted_root_payload_lost_on_crash_when_not_fenced() {
        // set_root persists internally; a raw write does not.
        let p = pool();
        let a = p.alloc(64).unwrap();
        p.write_u64(a, 999);
        p.crash_and_restart();
        assert_eq!(p.read_u64(a), 0);
    }

    #[test]
    fn debug_format_mentions_capacity() {
        let p = pool();
        let s = format!("{p:?}");
        assert!(s.contains("capacity"));
    }
}
